"""Calibration-sensitivity benchmark: the shapes are not knife-edge.

Extension artefact: perturbs every framework constant ±50% and checks
that the two headline findings (I-I best pair / M-X worst; co-location
beats serial for I-I) survive — evidence the reproduction captures the
paper's physics rather than a lucky constant set.
"""

from repro.experiments.sensitivity import run_sensitivity


def test_calibration_sensitivity(benchmark, save):
    report = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    save("sensitivity", report.render())

    assert report.checks[0].holds  # baseline by construction
    # Every ±50% perturbation of every framework constant preserves
    # the headline shapes.
    assert report.all_hold
    # And the I-I gain never collapses to parity.
    assert min(c.ii_gain for c in report.checks) > 1.3
