"""TAB1 benchmark: APE of the learned EDP models.

Paper reference: Table 1 — average APE of LR ≈ 55.2%, REPTree ≈ 4.38%,
MLP ≈ 0.77%.  The reproduced shape is the steep accuracy ordering
LR ≫ REPTree > MLP (absolute percentages depend on the substrate).
"""

from repro.experiments.table1_ape import run_table1


def test_table1_ape(benchmark, save):
    report = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save("table1_ape", report.render())

    avg = report.averages()
    # Ordering: linear regression is by far the worst; the non-linear
    # models are an order of magnitude better.  (The paper has MLP
    # strictly below REPTree — 0.77% vs 4.38%; on our sharper discrete
    # simulated surface they converge to parity, see EXPERIMENTS.md.)
    assert avg["lr"] > 10 * avg["reptree"]
    assert avg["lr"] > 10 * avg["mlp"]
    assert avg["mlp"] < 1.5 * avg["reptree"]
    # Absolute bands: LR tens-to-hundreds of percent, the others
    # single digits.
    assert avg["lr"] > 25.0
    assert avg["reptree"] < 10.0
    assert avg["mlp"] < 10.0

    # Every class pair individually preserves LR >> MLP.
    for row in report.ape.values():
        assert row["lr"] > row["mlp"]
