"""Performance micro-benchmarks of the reproduction's hot paths.

These are classic pytest-benchmark timings (multiple rounds) of the
kernels everything else is built on: the vectorised sweep, the
discrete-event engine, the functional runtime and the learned models.
They guard against performance regressions — the whole point of the
closed-form/NumPy design is that an 84,480-run measurement campaign
replays in seconds.
"""

import numpy as np

from repro.mapreduce.engine import ClusterEngine, NodeEngine
from repro.mapreduce.functional import MapReduceRuntime
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.model.costmodel import pair_metrics
from repro.model.sweep import sweep_pair, sweep_solo
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app
from repro.workloads.streams import poisson_job_stream


def test_bench_solo_sweep(benchmark):
    """160-configuration exhaustive sweep of one application."""
    inst = AppInstance(get_app("ts"), 5 * GB)
    result = benchmark(sweep_solo, inst)
    assert len(result.edp) == 160


def test_bench_pair_sweep(benchmark):
    """2,800-configuration co-location sweep (the COLAO oracle)."""
    a = AppInstance(get_app("st"), 5 * GB)
    b = AppInstance(get_app("fp"), 5 * GB)
    result = benchmark(sweep_pair, a, b)
    assert len(result.edp) == 2800


def test_bench_pair_metrics_vectorised(benchmark):
    """Raw cost-kernel throughput on a 10k-point grid."""
    rng = np.random.default_rng(0)
    n = 10_000
    freqs = rng.choice([1.2e9, 1.6e9, 2.0e9, 2.4e9], size=n)
    blocks = rng.choice([64, 128, 256, 512, 1024], size=n) * MB
    m1 = rng.integers(1, 8, size=n).astype(float)
    m2 = 8.0 - m1
    a, b = get_app("st").profile, get_app("wc").profile

    def run():
        return pair_metrics(a, 5 * GB, freqs, blocks, m1, b, 5 * GB, freqs, blocks, m2)

    result = benchmark(run)
    assert result.edp.shape == (n,)


def test_bench_des_cluster(benchmark):
    """Discrete-event simulation of 16 jobs on 8 nodes."""

    def run():
        cluster = ClusterEngine(n_nodes=8)
        for i in range(16):
            code = ("st", "wc", "ts", "gp")[i % 4]
            cluster.submit(
                JobSpec(
                    instance=AppInstance(get_app(code), 5 * GB),
                    config=JobConfig(
                        frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=4
                    ),
                )
            )
        cluster.run()
        return cluster

    cluster = benchmark(run)
    assert len(cluster.results) == 16


def test_bench_steady_state_1k(benchmark):
    """1,000 Poisson arrivals on 8 nodes — the heavy streaming regime.

    Tuned-configuration stream (the controller's converged steady
    state): the same few job identities recur, which is what the
    engine's recontext cache exists for.  Asserts the ≥80% hit rate
    alongside the timing.
    """
    specs = list(poisson_job_stream(1000, tuned=True))

    def run():
        cluster = ClusterEngine(n_nodes=8, recorder="off")
        for s in specs:
            cluster.submit(s)
        cluster.run()
        return cluster

    cluster = benchmark(run)
    assert len(cluster.results) == 1000
    assert cluster.telemetry.recontext_hit_rate >= 0.8


def test_bench_functional_wordcount(benchmark):
    """Functional runtime throughput on 2,000 records."""
    app = get_app("wc")
    runtime = MapReduceRuntime(n_reducers=4, split_records=250)
    records = list(app.generate_records(2000, seed=0))
    output = benchmark(runtime.run, app, records)
    assert output.n_input_records == 2000


def test_bench_reptree_predict(benchmark, small_dataset):
    """Tree inference over a full pair configuration grid."""
    import numpy as np

    from repro.ml.reptree import REPTree

    tree = REPTree(seed=0).fit(small_dataset.X, np.log(small_dataset.y))
    grid = small_dataset.X[:2800]
    out = benchmark(tree.predict, grid)
    assert out.shape == (2800,)
