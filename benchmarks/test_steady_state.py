"""Steady-state benchmark: queue behaviour under continuous arrivals.

Extension artefact: the paper's §5 queue is exercised the way a
datacenter actually sees it — a Poisson stream of unknown
applications — validating that the head reservation prevents
starvation even though the decision tree de-prioritises memory-bound
applications.
"""

from repro.experiments.artifacts import get_classifier, get_mlm
from repro.experiments.steady_state import run_steady_state


def test_steady_state(benchmark, save):
    stp = get_mlm("mlp")
    classifier = get_classifier()
    report = benchmark.pedantic(
        run_steady_state,
        args=(stp, classifier),
        rounds=1,
        iterations=1,
    )
    save("steady_state", report.render())

    ecost, fifo = report.runs
    assert ecost.n_jobs == fifo.n_jobs == 40

    # No starvation: the head reservation bounds every job's wait well
    # below the horizon, for both pairing policies.
    for run in report.runs:
        assert run.max_wait_s < run.makespan * 0.75
        # Every class got scheduled and measured.
        assert len(run.mean_wait_by_class) == 4

    # De-prioritising M cannot starve it: the between-class mean-wait
    # spread stays a small fraction of the horizon (leap-forward is
    # guarded by the head reservation).
    assert ecost.fairness_spread_s() < ecost.makespan * 0.25
