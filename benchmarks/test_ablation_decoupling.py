"""Decoupling ablation: what does separating the two decisions cost?

The paper's §5 design decouples *which* applications to co-locate from
*how* to tune them, and §7.1 argues the ~4% gap to the joint
brute-force oracle is a cheap price.  This benchmark decomposes the
Fig. 9 ECoST-vs-UB gap into its two components:

* UB — joint oracle (optimal matching + oracle configurations);
* ECoST[oracle cfg] — ECoST's decoupled online scheduling, but each
  placement receives the brute-force configuration → isolates the
  *scheduling* cost of decoupling;
* ECoST[MLP cfg] — the full pipeline → the additional cost is the
  *prediction* error.
"""

import numpy as np

from repro.baselines.mapping import evaluate_policy
from repro.baselines.oracle_stp import OraclePairSTP
from repro.core.controller import ECoSTController
from repro.core.stp import describe_instance
from repro.experiments.artifacts import get_components
from repro.experiments.scenarios import scenario_instances
from repro.mapreduce.engine import ClusterEngine
from repro.utils.tables import render_table


def test_ablation_decoupling(benchmark, save):
    def run():
        comp = get_components("mlp")
        rows = []
        for ws in ("WS1", "WS4", "WS7"):
            workload = scenario_instances(ws)
            ub = evaluate_policy("UB", workload, 8, components=comp).edp

            oracle = OraclePairSTP().register_workload(workload, describe_instance)
            cluster = ClusterEngine(8)
            ctrl = ECoSTController(cluster, oracle, comp.classifier)
            for inst in workload:
                ctrl.submit(inst)
            ctrl.run()
            sched_only = cluster.edp()

            full = evaluate_policy("ECoST", workload, 8, components=comp).edp
            rows.append([ws, 1.0, sched_only / ub, full / ub])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save(
        "ablation_decoupling",
        render_table(
            ["workload", "UB (joint oracle)", "ECoST + oracle cfg", "ECoST + MLP cfg"],
            rows,
            title="Ablation — cost decomposition of decoupling (EDP / UB, 8 nodes)",
            floatfmt=".3f",
        ),
    )

    sched = np.array([r[2] for r in rows])
    full = np.array([r[3] for r in rows])
    # Decoupled scheduling alone is nearly free (the paper's claim):
    # within a few percent of the joint oracle.
    assert sched.mean() < 1.10
    # The prediction error adds the rest, and the total stays within
    # the Fig. 9 band.
    assert np.all(full >= sched - 0.02)
    assert full.mean() < 1.25
