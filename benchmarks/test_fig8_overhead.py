"""FIG8 benchmark: training and prediction cost of each technique.

Paper reference: Figure 8 — LR/REPTree train orders of magnitude
faster than LkT (which needs the exhaustive sweeps) and MLP; at
prediction time LkT is the cheapest and MLP the most expensive, which
is why §7.2 recommends REPTree as the accuracy/cost sweet spot.
"""

from repro.experiments.fig8_overhead import run_fig8


def test_fig8_overhead(benchmark, save):
    report = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    save("fig8_overhead", report.render())

    train, predict = report.train_s, report.predict_s
    # Training: the cheap closed-form fits beat the MLP; the lookup
    # table's cost is the measurement campaign it requires.
    assert train["LR"] < train["MLP"]
    assert train["LR"] < train["REPTree"]
    # Prediction: the lookup table is the cheapest of all techniques;
    # model-based techniques must evaluate the whole config grid.
    assert predict["LkT"] < predict["LR"]
    assert predict["LkT"] < predict["REPTree"]
    assert predict["LkT"] < predict["MLP"]
