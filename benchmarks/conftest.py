"""Benchmark fixtures: results directory and shared artifacts.

Every benchmark regenerates one of the paper's tables/figures, writes
the rendered text to ``results/`` and asserts the reproduction's shape
targets.  Run with::

    pytest benchmarks/ --benchmark-only

The first run builds and disk-caches the heavyweight artifacts
(sweeps, fitted models); later runs reuse them.
"""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def results_dir() -> Path:
    path = Path(__file__).resolve().parents[1] / "results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture(scope="session")
def save(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def small_dataset():
    """A reduced training dataset for model micro-benchmarks."""
    from repro.core.database import build_database
    from repro.core.stp import build_training_dataset
    from repro.utils.units import GB
    from repro.workloads.base import AppInstance
    from repro.workloads.registry import get_app

    instances = [
        AppInstance(get_app(code), size)
        for code in ("wc", "st", "ts", "fp")
        for size in (1 * GB, 5 * GB)
    ]
    _db, sweeps = build_database(instances, keep_sweeps=True)
    return build_training_dataset(instances, sweeps=sweeps, rows_per_pair=200, seed=0)
