"""FIG9 benchmark: mapping policies on 1/2/4/8-node clusters.

Paper reference: Figure 9 — untuned serial mapping is worst; predictive
tuning (PTM) strongly improves on SNM/CBM (paper: ~53-55% at 8 nodes);
ECoST is the best online policy at every size and averages within ~10%
of the brute-force upper bound on 8 nodes (paper: 8%).
"""

import numpy as np

from repro.experiments.fig9_scalability import POLICY_ORDER, run_fig9


def test_fig9_scalability(benchmark, save):
    report = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    save("fig9_scalability", report.render())

    for n in report.node_counts:
        norm = {
            p: float(np.mean([report.normalized(ws, n)[p] for ws in report.scenarios]))
            for p in POLICY_ORDER
        }
        # UB is the floor everywhere.
        assert all(norm[p] >= 0.99 for p in POLICY_ORDER)
        # ECoST is the best online policy on average.
        online = [p for p in POLICY_ORDER if p != "UB"]
        assert norm["ECoST"] == min(norm[p] for p in online)
        # Untuned policies are far behind the tuned ones.
        untuned_best = min(norm[p] for p in ("SM", "MNM1", "MNM2", "SNM", "CBM"))
        assert untuned_best > 1.3 * norm["ECoST"]
        if n >= 2:
            # Whole-cluster serial mapping is the worst once there is
            # real parallelism to forgo (at 1 node the untuned
            # policies all degenerate into near-serial execution).
            assert norm["SM"] == max(norm[p] for p in online)

    # 8-node headline numbers.
    assert report.ecost_gap(8) < 16.0  # paper: within 8% of UB
    n8 = {
        p: float(np.mean([report.normalized(ws, 8)[p] for ws in report.scenarios]))
        for p in POLICY_ORDER
    }
    # Predictive tuning strongly beats the untuned node-level policies
    # (paper: PTM is ~53%/55% better than SNM/CBM at 8 nodes).
    assert n8["PTM"] < 0.75 * n8["SNM"]
    assert n8["PTM"] < 0.75 * n8["CBM"]
