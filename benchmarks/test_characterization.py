"""§3 characterisation benchmark: class signatures of all 11 apps.

Extension artefact (the paper's §3 is narrative + Fig. 1): one table
with each application's tuned solo execution, resource utilisations
and counters, asserting every class's published signature.
"""

from repro.experiments.characterization import run_characterization


def test_characterization(benchmark, save):
    report = benchmark.pedantic(run_characterization, rounds=1, iterations=1)
    save("characterization", report.render())

    by_class = report.by_class()
    assert set(by_class) == {"C", "H", "I", "M"}

    # Compute-bound: CPU saturated, little I/O wait.
    for row in by_class["C"]:
        assert row.cpu_user_pct > 75.0
        assert row.cpu_iowait_pct < 10.0

    # I/O-bound: heavy iowait, low IPC pressure on the core.
    for row in by_class["I"]:
        assert row.cpu_iowait_pct > 30.0
        assert row.disk_util > 0.5

    # Memory-bound: pathological LLC misses, saturating DRAM, and the
    # longest runtimes in the study.
    m_runtimes = [row.runtime_s for row in by_class["M"]]
    others = [
        row.runtime_s for cls, rows in by_class.items() if cls != "M" for row in rows
    ]
    for row in by_class["M"]:
        assert row.llc_mpki > 4.0
        assert row.mem_util > 0.5
    assert min(m_runtimes) > 0.9 * max(others)

    # Every tuned config prefers a non-minimal frequency (EDP weights
    # delay twice, §2.6).
    for row in report.rows:
        assert "1.2GHz" not in row.tuned_config
