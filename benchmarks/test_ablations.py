"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation removes one ingredient of the pipeline and measures the
cost, substantiating the paper's architectural claims:

* **decoupling** (§5): ECoST separates the co-locate decision from the
  tune decision; the combined oracle (UB) quantifies what the
  decoupling gives up.
* **pairing priority** (Fig. 4/5): replace the I > H > C > M decision
  tree with plain FIFO pairing.
* **size-aware lookup**: the LkT variant that keys on sizes as well as
  classes (strictly more flexible than the paper's minimum-EDP scan).
* **beyond-2 co-location** (§4.2): the paper found 4-way co-location
  degrades energy efficiency; we reproduce the comparison.
"""

import numpy as np

from repro.baselines.mapping import evaluate_policy
from repro.core.pairing import PairingPolicy
from repro.core.stp import LkTSTP, describe_instance
from repro.experiments.artifacts import (
    get_components,
    get_database_and_sweep_labels,
)
from repro.experiments.scenarios import scenario_instances
from repro.model.costmodel import pair_metrics, serial_pair_edp, standalone_metrics
from repro.model.costmodel import colocation_context, fluid_stretch
from repro.model.sweep import sweep_pair
from repro.utils.tables import render_table
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import TESTING_APPS, instances_for, get_app


def test_ablation_pairing_priority(benchmark, save):
    """FIFO pairing vs the class-priority decision tree on WS8."""

    def run():
        comp = get_components("mlp")
        workload = scenario_instances("WS8")
        with_tree = evaluate_policy("ECoST", workload, 8, components=comp)
        # Neutralise the decision tree: every class equal priority ->
        # the queue degenerates to FIFO pairing.
        flat = PairingPolicy(priority={c: 0 for c in AppClass})
        from repro.core.controller import ECoSTController
        from repro.mapreduce.engine import ClusterEngine

        cluster = ClusterEngine(8)
        ctrl = ECoSTController(
            cluster, comp.pair_stp, comp.classifier, pairing=flat
        )
        for inst in workload:
            ctrl.submit(inst)
        ctrl.run()
        return with_tree.edp, cluster.edp()

    tree_edp, fifo_edp = benchmark.pedantic(run, rounds=1, iterations=1)
    save(
        "ablation_pairing",
        render_table(
            ["pairing", "EDP (J*s)"],
            [["class-priority tree", tree_edp], ["FIFO", fifo_edp]],
            title="Ablation — pairing decision tree vs FIFO (WS8, 8 nodes)",
            floatfmt=".3e",
        ),
    )
    # The decision tree never hurts and typically helps on mixed
    # workloads (WS8 has M, H, C and I classes).
    assert tree_edp <= fifo_edp * 1.05


def test_ablation_lkt_size_awareness(benchmark, save):
    """Paper-literal LkT vs the size-aware lookup variant."""

    def run():
        db = get_database_and_sweep_labels()
        paper = LkTSTP(db)
        aware = LkTSTP(db, size_aware=True)
        errors = {"paper": [], "size-aware": []}
        testing = instances_for(TESTING_APPS, sizes=(1 * GB, 10 * GB))
        from itertools import combinations

        for a, b in combinations(testing, 2):
            sweep = sweep_pair(a, b)
            da, db_ = describe_instance(a), describe_instance(b)
            for name, stp in (("paper", paper), ("size-aware", aware)):
                ca, cb = stp.predict_configs(da, db_)
                pm = pair_metrics(
                    a.profile, a.data_bytes, ca.frequency, ca.block_size, ca.n_mappers,
                    b.profile, b.data_bytes, cb.frequency, cb.block_size, cb.n_mappers,
                )
                errors[name].append(
                    (float(pm.edp) - sweep.best_edp) / sweep.best_edp * 100
                )
        return {k: float(np.mean(v)) for k, v in errors.items()}

    means = benchmark.pedantic(run, rounds=1, iterations=1)
    save(
        "ablation_lkt",
        render_table(
            ["LkT variant", "mean err % vs COLAO"],
            [[k, v] for k, v in means.items()],
            title="Ablation — lookup-table size awareness",
            floatfmt=".2f",
        ),
    )
    # Size-aware lookup dominates the paper's minimum-EDP scan — the
    # inflexibility §7.2 describes is real and fixable.
    assert means["size-aware"] <= means["paper"]


def test_ablation_colocation_degree(benchmark, save):
    """2-way co-location helps; 4-way degrades (paper §4.2).

    A mixed four-application set (I, C, H, M) is processed three ways:
    serially with each app tuned alone (ILAO), as two oracle-tuned
    co-located pairs, and as a 4-way co-location (two cores each,
    per-app knobs carried over from the pair oracle).  The paper's
    finding: two co-residents is the sweet spot; "co-locating beyond 2
    applications at a node level degrades energy efficiency".
    """

    def run():
        from repro.baselines.colao import colao_best
        from repro.baselines.ilao import ilao_best
        from repro.hardware.node import ATOM_C2758

        insts = [AppInstance(get_app(c), 5 * GB) for c in ("st", "wc", "ts", "fp")]
        solos = [ilao_best(i) for i in insts]
        t_serial = sum(s.duration for s in solos)
        e_serial = sum(s.energy for s in solos)

        pair_ab = colao_best(insts[0], insts[1])
        pair_cd = colao_best(insts[2], insts[3])
        t_pairs = pair_ab.makespan + pair_cd.makespan
        e_pairs = pair_ab.energy + pair_cd.energy

        cfgs = [pair_ab.config_a, pair_ab.config_b, pair_cd.config_a, pair_cd.config_b]
        ctx = colocation_context([i.profile for i in insts], [2.0] * 4)
        jobs = [
            standalone_metrics(
                insts[i].profile, insts[i].data_bytes,
                cfgs[i].frequency, cfgs[i].block_size, 2,
                mpki_scale=float(ctx.mpki_scale[i]),
                disk_traffic_scale=float(ctx.disk_traffic_scale[i]),
                extra_streams=float(ctx.extra_streams[i]),
            )
            for i in range(4)
        ]
        stretch = fluid_stretch(jobs)
        t_four = max(float(j.duration) for j in jobs) * stretch
        pm = ATOM_C2758.power
        p_four = pm.idle_power + sum(float(j.core_power) for j in jobs) / stretch
        e_four = p_four * t_four
        return [
            ("serial (ILAO)", t_serial, e_serial * t_serial),
            ("2 co-located (COLAO pairs)", t_pairs, e_pairs * t_pairs),
            ("4 co-located", t_four, e_four * t_four),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save(
        "ablation_degree",
        render_table(
            ["strategy", "makespan (s)", "EDP (J*s)"],
            [list(r) for r in rows],
            title="Ablation — co-location degree (st/wc/ts/fp @5GB)",
            floatfmt=".3e",
        ),
    )
    edp = {name: e for name, _t, e in rows}
    # Pairing wins over serial; 4-way gives the win back and more.
    assert edp["2 co-located (COLAO pairs)"] < edp["serial (ILAO)"]
    assert edp["4 co-located"] > edp["2 co-located (COLAO pairs)"]


def test_ablation_stp_model_kind(benchmark, save):
    """Which learned model should drive ECoST online? (§7.2 revisited.)

    The paper recommends REPTree for its accuracy/overhead trade-off;
    at cluster level the makespan amplifies the prediction-error tail,
    so the MLP's smaller tail pays off.  This ablation runs the full
    ECoST policy with each backend on two mixed scenarios.
    """

    def run():
        rows = []
        for kind in ("reptree", "mlp"):
            comp = get_components(kind)
            for ws in ("WS4", "WS8"):
                workload = scenario_instances(ws)
                ub = evaluate_policy("UB", workload, 8, components=comp).edp
                out = evaluate_policy("ECoST", workload, 8, components=comp)
                rows.append([kind, ws, out.edp / ub])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save(
        "ablation_model_kind",
        render_table(
            ["STP backend", "workload", "EDP / UB"],
            rows,
            title="Ablation — ECoST's self-tuning backend (8 nodes)",
            floatfmt=".3f",
        ),
    )
    by_kind = {}
    for kind, _ws, ratio in rows:
        by_kind.setdefault(kind, []).append(ratio)
    # Both backends stay within the Fig. 9 band; the MLP's smaller
    # error tail keeps it at least competitive.
    assert np.mean(by_kind["mlp"]) <= np.mean(by_kind["reptree"]) + 0.05
    assert max(max(v) for v in by_kind.values()) < 1.6
