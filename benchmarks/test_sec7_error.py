"""SEC7 benchmark: STP error vs COLAO over all unknown workloads.

Paper reference: §7.1 — average error rates LkT 8.09%, LR 20.37%,
REPTree 3.84%, MLP 3.43%.  Reproduced shape: the ordering
MLP < REPTree < LkT ≪ LR, with the non-linear models in the
single-digit band.
"""

import numpy as np

from repro.experiments.sec7_error import run_sec7


def test_sec7_error(benchmark, save):
    report = benchmark.pedantic(run_sec7, rounds=1, iterations=1)
    save("sec7_error", report.render())

    means = report.means()
    # The paper's §7.1 ordering, end to end.
    assert means["MLP"] < means["REPTree"] < means["LkT"] < means["LR"]
    # Bands: the recommended models average in single digits; LR is
    # useless for selection.
    assert means["MLP"] < 10.0
    assert means["REPTree"] < 15.0
    assert means["LkT"] < 20.0
    assert means["LR"] > 50.0

    # Median errors of the good models are tiny (most workloads are
    # predicted nearly optimally).
    assert float(np.median(report.errors["MLP"])) < 5.0
