"""TAB2 benchmark: chosen configurations + error vs the COLAO oracle.

Paper reference: Table 2 — the STP techniques pick configurations
close to the brute-force optimum (errors mostly in low single digits,
worst case ~16% for the tree/MLP models).
"""

import numpy as np

from repro.experiments.table2_configs import run_table2


def test_table2_configs(benchmark, save):
    report = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save("table2_configs", report.render())

    rep_errors = [row.errors["REPTree"] for row in report.rows]
    mlp_errors = [row.errors["MLP"] for row in report.rows]
    # The non-linear models stay within a small factor of the oracle on
    # these unknown workloads (paper: <=16% worst case).
    assert float(np.median(rep_errors)) < 20.0
    assert float(np.median(mlp_errors)) < 20.0
    assert max(mlp_errors) < 100.0

    # Predicted mapper counts always form a feasible core partition.
    for row in report.rows:
        for cfg_a, cfg_b in row.predicted.values():
            assert cfg_a.n_mappers + cfg_b.n_mappers <= 8
