"""Model-consistency benchmark: DES vs the closed-form kernel.

The repository's central design invariant (DESIGN.md §3): the
discrete-event engine and the closed-form cost model share one kernel,
so the brute-force oracles (closed form) and the online controller
(DES) measure the same world.  This benchmark quantifies the residual
gap — which comes only from the tail-context approximation the closed
form makes — across a broad random sample of co-located pairs.
"""

import numpy as np

from repro.hdfs.blocks import HDFS_BLOCK_SIZES
from repro.mapreduce.engine import NodeEngine
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.model.costmodel import pair_metrics
from repro.utils.rng import rng_from
from repro.utils.tables import render_table
from repro.utils.units import GB, GHZ
from repro.workloads.base import AppInstance
from repro.workloads.registry import ALL_APPS, get_app

N_SAMPLES = 60


def _random_pairs(rng):
    freqs = [1.2 * GHZ, 1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ]
    for _ in range(N_SAMPLES):
        codes = rng.choice(ALL_APPS, size=2, replace=True)
        sizes = rng.choice([1 * GB, 5 * GB, 10 * GB], size=2)
        m1 = int(rng.integers(1, 8))
        m2 = int(rng.integers(1, 9 - m1))
        cfgs = [
            JobConfig(
                frequency=float(rng.choice(freqs)),
                block_size=int(rng.choice(HDFS_BLOCK_SIZES)),
                n_mappers=m,
            )
            for m in (m1, m2)
        ]
        yield (
            AppInstance(get_app(codes[0]), int(sizes[0])),
            AppInstance(get_app(codes[1]), int(sizes[1])),
            cfgs[0],
            cfgs[1],
        )


def test_des_matches_closed_form(benchmark, save):
    def run():
        rng = rng_from(7)
        makespan_err, energy_err = [], []
        for a, b, ca, cb in _random_pairs(rng):
            engine = NodeEngine()
            engine.submit(JobSpec(instance=a, config=ca))
            engine.submit(JobSpec(instance=b, config=cb))
            results = engine.run_to_completion()
            des_makespan = max(r.finish_time for r in results)
            des_energy = engine.energy_between(0.0, des_makespan)
            pm = pair_metrics(
                a.profile, a.data_bytes, ca.frequency, ca.block_size, ca.n_mappers,
                b.profile, b.data_bytes, cb.frequency, cb.block_size, cb.n_mappers,
            )
            makespan_err.append(
                abs(des_makespan - float(pm.makespan)) / float(pm.makespan)
            )
            energy_err.append(
                abs(des_energy - float(pm.energy)) / float(pm.energy)
            )
        return np.asarray(makespan_err), np.asarray(energy_err)

    makespan_err, energy_err = benchmark.pedantic(run, rounds=1, iterations=1)
    save(
        "consistency",
        render_table(
            ["quantity", "mean |rel err| %", "p95 %", "max %"],
            [
                ["makespan", 100 * makespan_err.mean(),
                 100 * float(np.percentile(makespan_err, 95)),
                 100 * makespan_err.max()],
                ["energy", 100 * energy_err.mean(),
                 100 * float(np.percentile(energy_err, 95)),
                 100 * energy_err.max()],
            ],
            title=(
                f"Model consistency — DES vs closed form over {N_SAMPLES} "
                "random co-located pairs"
            ),
            floatfmt=".3f",
        ),
    )

    # The only divergence is the documented tail-context approximation
    # (the closed form keeps the co-location context during the tail
    # segment; the engine re-evaluates it).  Typically it is sub-2%;
    # the worst case — a short heavy-footprint job whose departure
    # frees a long co-runner — reaches a few tens of percent.
    assert makespan_err.mean() < 0.03
    assert energy_err.mean() < 0.03
    assert float(np.percentile(makespan_err, 95)) < 0.08
    assert makespan_err.max() < 0.35
    assert energy_err.max() < 0.35
