"""FIG3 benchmark: COLAO vs ILAO over the training pairs.

Paper reference: Figure 3 — COLAO outperforms ILAO in almost all cases
(up to 4.52x, on an I-I pair); the gap narrows when memory-bound
applications are involved.
"""

from repro.experiments.fig3_colao_ilao import run_fig3
from repro.utils.units import GB


def _run_sizes():
    return {gb: run_fig3(data_bytes=gb * GB) for gb in (5, 10)}


def test_fig3_colao_ilao(benchmark, save):
    reports = benchmark.pedantic(_run_sizes, rounds=1, iterations=1)
    save("fig3_colao_ilao", "\n\n".join(r.render() for r in reports.values()))

    for report in reports.values():
        # Co-location wins nearly everywhere...
        ratios = [p.ratio for p in report.pairs]
        assert sum(r >= 0.95 for r in ratios) / len(ratios) >= 0.8
        # ...with the largest gain on the I-I pair...
        assert report.max_ratio.class_pair == "I-I"
        # ...by a solid factor (paper: 4.52x; simulated substrate: >1.8x).
        assert report.max_ratio.ratio > 1.8
        # ...and M-involved pairs close the gap.
        by_class = report.ratios_by_class()
        assert max(v for k, v in by_class.items() if "M" in k) < by_class["I-I"]
