"""FIG5 benchmark: class-pair ranking and the derived decision tree.

Paper reference: Figure 5 — I-I achieves the lowest EDP over all core
partitionings; M-X pairs the highest; the scheduler's priority is
derived as I > H/C > M.
"""

from repro.experiments.fig5_priority import run_fig5
from repro.workloads.base import AppClass


def test_fig5_priority(benchmark, save):
    report = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    save("fig5_priority", report.render())

    ranking = [name for name, _ in report.ranking()]
    assert ranking[0] == "I-I"
    assert set(ranking[-4:]) == {"I-M", "H-M", "C-M", "M-M"}

    p = report.priority
    assert p[AppClass.IO] > p[AppClass.HYBRID]
    assert p[AppClass.HYBRID] >= p[AppClass.COMPUTE]
    assert p[AppClass.COMPUTE] > p[AppClass.MEMORY]
