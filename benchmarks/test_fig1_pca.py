"""FIG1 benchmark: PCA + feature clustering of all 33 instances.

Paper reference: Figure 1 — PC1+PC2 cover 85.22% of variance; the 14
metrics reduce to 7 representative features.
"""

from repro.experiments.fig1_pca import run_fig1
from repro.telemetry.profiling import REDUCED_FEATURE_NAMES


def test_fig1_pca(benchmark, save):
    report = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    save("fig1_pca", report.render())

    # Shape: two components dominate and features group into the 7
    # clusters that motivated the paper's reduced counter set.
    assert report.pc12_variance > 0.5
    assert len(report.feature_clusters) == 7

    # Each paper-chosen representative lands in a distinct cluster.
    cluster_of = {
        name: cid
        for cid, names in report.feature_clusters.items()
        for name in names
    }
    # The paper's 7 representatives cover most clusters; in our data
    # (cpu_iowait, io_write) and (mem_footprint, llc_mpki) co-cluster,
    # so the 7 names span at least 5 distinct groups.
    rep_clusters = {cluster_of[n] for n in REDUCED_FEATURE_NAMES}
    assert len(rep_clusters) >= 5
