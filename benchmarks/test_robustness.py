"""Robustness extension benchmark: STP under injected faults.

Not a paper artefact — one of DESIGN.md §5's extensions.  Quantifies
how measurement noise and misclassification degrade the recommended
REPTree self-tuner, substantiating the deployment claim that the
pipeline tolerates its classifier's realistic error modes.
"""

from repro.experiments.artifacts import get_mlm
from repro.experiments.robustness import run_robustness


def test_robustness_injection(benchmark, save):
    stp = get_mlm("reptree")
    report = benchmark.pedantic(
        run_robustness, args=(stp,), rounds=1, iterations=1
    )
    save("robustness", report.render())

    base = report.mean_error["counter noise x1"]
    heavy_noise = report.mean_error["counter noise x10"]
    half_flip = report.mean_error["misclassify p=0.5"]
    full_flip = report.mean_error["misclassify p=1"]

    # Counter noise is absorbed entirely: the training-manifold
    # projection snaps the noisy feature vector back onto a known
    # application, so even 10x the nominal PMU noise costs nothing.
    assert heavy_noise <= base + 2.0
    # Misclassification, by contrast, is NOT free: the class tag
    # drives pair orientation and model routing, so adjacent-class
    # confusion degrades the selection materially — which is why the
    # paper invests in a reliable classifier (Step 1).  Degradation is
    # monotone in the error probability and bounded well below LR's
    # ~1000% selection error.
    assert base <= half_flip <= full_flip
    assert full_flip < 150.0
