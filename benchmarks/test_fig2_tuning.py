"""FIG2 benchmark: EDP improvement from individual vs joint tuning.

Paper reference: Figure 2 — joint tuning of HDFS block size and
frequency always beats tuning either alone; sensitivity shrinks as the
mapper count grows.
"""

import numpy as np

from repro.experiments.fig2_tuning import run_fig2


def _run_all():
    return {code: run_fig2(code) for code in ("wc", "st", "ts", "fp")}


def test_fig2_tuning(benchmark, save):
    reports = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save("fig2_tuning", "\n\n".join(r.render() for r in reports.values()))

    gains = []
    for report in reports.values():
        # Joint >= best individual at every mapper count.
        for b, f, c in zip(report.block_only, report.freq_only, report.concurrent):
            assert c >= max(b, f) - 1e-9
        # Paper remark: sensitivity falls as mappers rise.
        assert report.concurrent[0] >= report.concurrent[-1]
        gains.extend(report.concurrent_gain_over_individual)

    # The joint-over-individual margin is real (paper: 3.73%-87.39%).
    assert max(gains) > 3.0
