"""MetricsRegistry tests: snapshot/delta/flatten and the cluster wiring."""

import json

import pytest

from repro.telemetry.profiling import EngineTelemetry, SweepTelemetry
from repro.telemetry.registry import MetricsRegistry, cluster_registry


class TestRegistryBasics:
    def test_snapshot_groups_by_namespace(self):
        reg = MetricsRegistry()
        reg.register("a", lambda: {"x": 1, "y": 2.5})
        reg.register("b", lambda: {"z": 0})
        assert reg.snapshot() == {"a": {"x": 1, "y": 2.5}, "b": {"z": 0}}
        assert reg.namespaces == ["a", "b"]

    def test_sources_repolled_each_snapshot(self):
        counter = {"n": 0}

        def source():
            counter["n"] += 1
            return {"n": counter["n"]}

        reg = MetricsRegistry().register("c", source)
        assert reg.snapshot()["c"]["n"] == 1
        assert reg.snapshot()["c"]["n"] == 2

    def test_non_numeric_and_bool_values_dropped(self):
        reg = MetricsRegistry().register(
            "a", lambda: {"ok": 1, "label": "x", "flag": True, "none": None}
        )
        assert reg.snapshot() == {"a": {"ok": 1}}

    def test_as_dict_objects_accepted(self):
        reg = MetricsRegistry().register("engine", EngineTelemetry())
        assert reg.snapshot()["engine"]["events"] == 0

    def test_bad_namespace_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.register("", lambda: {})
        with pytest.raises(ValueError):
            reg.register("a.b", lambda: {})

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError, match="as_dict"):
            MetricsRegistry().register("a", object())

    def test_reregister_replaces(self):
        reg = MetricsRegistry()
        reg.register("a", lambda: {"v": 1})
        reg.register("a", lambda: {"v": 9})
        assert reg.snapshot() == {"a": {"v": 9}}


class TestDeltaAndFlatten:
    def test_delta_subtracts_per_metric(self):
        before = {"a": {"x": 3, "y": 1.0}}
        after = {"a": {"x": 10, "y": 1.5, "new": 2}, "b": {"z": 4}}
        assert MetricsRegistry.delta(before, after) == {
            "a": {"x": 7, "y": 0.5, "new": 2},
            "b": {"z": 4},
        }

    def test_flatten_sorted_dotted_keys(self):
        flat = MetricsRegistry.flatten({"b": {"y": 2}, "a": {"x": 1}})
        assert list(flat) == ["a.x", "b.y"]

    def test_to_json_writes_flat_file(self, tmp_path):
        reg = MetricsRegistry().register("a", lambda: {"x": 1})
        path = tmp_path / "metrics.json"
        flat = reg.to_json(path)
        assert flat == {"a.x": 1}
        assert json.loads(path.read_text()) == {"a.x": 1}

    def test_render_lists_namespaces(self):
        reg = MetricsRegistry().register("ns", lambda: {"metric": 1.25})
        text = reg.render()
        assert "ns:" in text and "metric = 1.25" in text


class TestTelemetryAsDict:
    def test_engine_counters_complete(self):
        tel = EngineTelemetry()
        tel.record_event()
        tel.record_recontext(hit=True, jobs=2)
        tel.record_recontext(hit=False)
        tel.record_fault("task_fail")
        d = tel.as_dict()
        assert d["events"] == 1
        assert d["recontext_hits"] == 2
        assert d["faults_injected"] == 1
        assert d["recontext_hit_rate"] == pytest.approx(2 / 3)

    def test_sweep_derived_rates_conditional(self):
        tel = SweepTelemetry()
        d = tel.as_dict()
        assert d["n_tasks"] == 0
        assert "cache_hit_rate" not in d
        tel.record_task("1", 0.5)
        tel.record_batch(0.25)
        tel.record_cache(3, 1)
        d = tel.as_dict()
        assert d["cache_hit_rate"] == pytest.approx(0.75)
        assert d["parallel_speedup"] == pytest.approx(2.0)


class TestClusterRegistry:
    def test_wires_engine_and_cache(self):
        from repro.mapreduce.engine import ClusterEngine
        from repro.workloads.streams import poisson_job_stream

        cluster = ClusterEngine(2, recorder="off")
        for s in poisson_job_stream(10, tuned=True, job_ids_from=1):
            cluster.submit(s)
        cluster.run()
        reg = cluster_registry(cluster)
        snap = reg.snapshot()
        assert snap["engine"]["events"] > 0
        assert set(snap["artifact_cache"]) == {"hits", "misses", "corrupt", "stale"}
        # Live telemetry: a second run on the same cache moves the delta.
        before = snap
        cluster2 = ClusterEngine(
            2, recorder="off", metrics_cache=cluster.metrics_cache
        )
        for s in poisson_job_stream(10, tuned=True, job_ids_from=100):
            cluster2.submit(s)
        cluster2.run()
        delta = MetricsRegistry.delta(before, reg.snapshot())
        assert delta["engine"]["events"] > 0
