"""Load/soak harness: the service vs the offline engine, at scale.

The determinism contract under test: a virtual-clock service run is a
pure function of its request stream, and feeding the jobs it accepted
to a plain offline :class:`ClusterEngine` (or batch
:class:`ECoSTController`) reproduces the service's results **bit for
bit** — energy, makespan, and the full per-job placement sequence.

Three sizes of the same assertion:

* ``test_soak_50k_three_tenants`` — the full soak (50k jobs, 3
  tenants, admission active), ``slow``-marked for the nightly lane;
* ``test_replay_identity_10k`` — the acceptance-criterion replay at
  10k jobs, admission disabled so the comparison covers every job;
* ``test_smoke_*`` — the same checks at smoke size for the fast lane.
"""

from __future__ import annotations

import pytest

from repro.mapreduce.engine import ClusterEngine
from repro.service import (
    ClusterService,
    ServiceConfig,
    requests_to_specs,
    seeded_requests,
)

pytestmark = pytest.mark.service


def _result_rows(results):
    """The full identity tuple per completed job."""
    return [
        (r.spec.job_id, r.node_id, r.start_time, r.finish_time, r.energy_joules)
        for r in results
    ]


def _offline_rows(specs, n_nodes):
    engine = ClusterEngine(n_nodes)
    for spec in specs:
        engine.submit(spec)
    results = engine.run()
    makespan = engine.makespan
    return _result_rows(results), makespan, engine.total_energy(makespan)


def _service_run(config, requests):
    service = ClusterService(config)
    acks = [service.submit_request(req) for req in requests]
    summary = service.drain()
    return service, acks, summary


def _soak(n_jobs: int, *, seed: int, config: ServiceConfig, tenants=("t0", "t1", "t2")):
    """Drive a seeded stream through the service and check everything."""
    requests = seeded_requests(
        n_jobs, seed=seed, tenants=tenants, mean_interarrival_s=2.0
    )
    service, acks, summary = _service_run(config, requests)

    # --- conservation: accepted == completed, exactly once, nothing else
    accepted = [
        (req, ack) for req, ack in zip(requests, acks) if ack.get("accepted")
    ]
    assert summary["completed"] == len(accepted) == summary["accepted"]
    assert summary["inflight"] == 0
    completed_ids = sorted(r.spec.job_id for r in service.results)
    assert completed_ids == sorted(ack["job_id"] for _req, ack in accepted)
    for tenant in service.tenants:
        assert tenant.inflight == 0
        assert tenant.accepted == tenant.completed

    # --- queue-depth bounds
    assert service.tenants.inflight_highwater <= config.max_inflight
    total_highwater = sum(
        t.inflight_highwater for t in service.tenants
    )
    assert total_highwater >= summary["accepted"] / n_jobs  # sanity: nonzero

    # --- bit-identity vs the offline engine on the accepted job list
    offline_specs = requests_to_specs([req for req, _ack in accepted])
    off_rows, off_makespan, off_energy = _offline_rows(
        offline_specs, config.n_nodes
    )
    assert _result_rows(service.results) == off_rows
    assert service.cluster.makespan == off_makespan
    assert service.cluster.total_energy(service.cluster.makespan) == off_energy
    return service, summary


# ------------------------------------------------------------ fast lane
def test_smoke_2k_three_tenants():
    """Fast-lane miniature of the full soak, admission active."""
    config = ServiceConfig(n_nodes=8, rate_per_s=2.0, burst=32.0, max_inflight=400)
    service, summary = _soak(2_000, seed=42, config=config)
    assert summary["completed"] >= 1_000  # admission passes real traffic
    assert len(service.tenants) == 3


def test_replay_identity_10k():
    """Acceptance criterion: 10k-job seeded replay, bit-identical.

    Admission is left wide open so *every* job of the stream is in the
    comparison — the offline engine sees the identical job list.
    """
    config = ServiceConfig(n_nodes=16)
    requests = seeded_requests(
        10_000, seed=0, tenants=("t0", "t1", "t2"), mean_interarrival_s=1.0
    )
    service, acks, summary = _service_run(config, requests)
    assert all(ack.get("accepted") for ack in acks)
    assert summary["completed"] == 10_000

    off_rows, off_makespan, off_energy = _offline_rows(
        requests_to_specs(requests), config.n_nodes
    )
    assert _result_rows(service.results) == off_rows
    assert service.cluster.makespan == off_makespan
    assert service.cluster.total_energy(service.cluster.makespan) == off_energy


def test_smoke_ecost_identity(small_dataset, small_training_instances):
    """The live-controller path replays bit-identically too.

    Online: each arrival registered with the controller, scheduler
    woken in arrival order.  Offline: all arrivals pre-registered, one
    batch run.  Same pairing, same tuning, same placements.  Uses the
    small fixture pipeline (as ``test_core_controller.py`` does) so the
    fast lane never pays the full component build.
    """
    from repro.analysis.classify import NearestCentroidClassifier
    from repro.analysis.features import build_feature_matrix
    from repro.core.controller import ECoSTController
    from repro.core.stp import MLMSTP

    stp = MLMSTP("reptree").fit(small_dataset)
    fm = build_feature_matrix(small_training_instances, seed=0)
    classifier = NearestCentroidClassifier().fit(
        fm, [i.app_class for i in small_training_instances]
    )

    def factory(cluster):
        return ECoSTController(cluster, stp, classifier)

    requests = seeded_requests(150, seed=5, mean_interarrival_s=4.0)
    config = ServiceConfig(n_nodes=4, scheduler="ecost")
    service = ClusterService(config, controller_factory=factory)
    acks = [service.submit_request(req) for req in requests]
    assert all(ack.get("accepted") for ack in acks)
    summary = service.drain()
    assert summary["completed"] == 150

    engine = ClusterEngine(4)
    controller = factory(engine)
    for spec in requests_to_specs(requests):
        controller.submit(spec.instance, spec.submit_time)
    offline_results = controller.run()
    # Controller runs re-spec the jobs (self-tuned knobs, fresh ids), so
    # compare by placement identity rather than job_id.
    def rows(results):
        return [
            (r.spec.instance.label, r.node_id, r.start_time, r.finish_time,
             r.energy_joules)
            for r in results
        ]

    assert rows(service.results) == rows(offline_results)
    assert service.cluster.makespan == engine.makespan
    assert (
        service.cluster.total_energy(service.cluster.makespan)
        == engine.total_energy(engine.makespan)
    )


# ------------------------------------------------------------ slow lane
@pytest.mark.slow
def test_soak_50k_three_tenants():
    """The full soak: 50k jobs, 3 tenants, live admission control."""
    config = ServiceConfig(
        n_nodes=32, rate_per_s=60.0, burst=256.0, max_inflight=20_000
    )
    service, summary = _soak(50_000, seed=1337, config=config)
    assert summary["completed"] >= 45_000
    assert service.telemetry.requests == 50_000


@pytest.mark.slow
def test_soak_rejecting_regime_stays_conserved():
    """Under heavy rejection the accepted subset still replays exactly."""
    config = ServiceConfig(
        n_nodes=8, rate_per_s=0.5, burst=16.0, max_inflight=200
    )
    service, summary = _soak(20_000, seed=7, config=config)
    assert summary["rejected"] > 0
    assert summary["completed"] == summary["accepted"]
