"""Metamorphic relation registry: the invariants and their gating.

Each registered relation must (a) hold on every standard registry
scenario it applies to, (b) declare itself *not applicable* — rather
than vacuously passing — when its preconditions fail, and (c) actually
apply somewhere on the registry (dead relations are coverage bugs,
enforced by ``run_conformance``; spot-checked here per relation).
"""

from __future__ import annotations

import pytest

from repro.conformance import (
    RELATIONS,
    Scenario,
    ScenarioJob,
    check_relations,
    get_relation,
    registry_scenarios,
)
from repro.conformance.relations import RelationResult
from repro.faults.plan import FaultEvent
from repro.utils.units import GB, GHZ, MB

_REGISTRY = registry_scenarios()


def _job(code="wc", *, freq=1.2 * GHZ, block=128 * MB, size=1 * GB, t=0.0):
    return ScenarioJob(
        code=code, data_bytes=size, frequency=freq,
        block_size=block, n_mappers=2, submit_time=t,
    )


@pytest.mark.parametrize("name", sorted(RELATIONS))
def test_relation_holds_across_registry(name):
    relation = get_relation(name)
    applicable = 0
    for scenario in _REGISTRY:
        result = relation(scenario)
        assert isinstance(result, RelationResult)
        assert result.name == name
        if result.applicable:
            applicable += 1
            assert result.held, result.describe()
    # A relation that never fires on the standard registry is dead code.
    assert applicable > 0


def test_check_relations_defaults_to_all():
    results = check_relations(_REGISTRY[0])
    assert [r.name for r in results] == list(RELATIONS)


def test_get_relation_unknown_name():
    with pytest.raises(KeyError, match="unknown relation 'nope'; registered:"):
        get_relation("nope")


def test_result_describe_states():
    held = RelationResult(name="x", applicable=True)
    assert held.held and held.describe() == "x: held"
    gated = RelationResult(name="x", applicable=False)
    assert not gated.held and "not applicable" in gated.describe()
    bad = RelationResult(name="x", applicable=True, failures=("boom",))
    assert not bad.held and "VIOLATED" in bad.describe()


# --------------------------------------------------------------- gating
class TestGating:
    """Preconditions must gate to not-applicable, never to a false pass."""

    def test_add_idle_node_gated_on_faults(self):
        scenario = Scenario(
            1,
            (_job(),),
            fault_events=(FaultEvent(3.0, "node_crash", 0, severity=1.0, pick=0.1),),
        )
        assert not get_relation("add-idle-node")(scenario).applicable

    def test_halve_block_gated_on_smallest_block(self):
        # 64 MB is the smallest studied block: halving would leave the
        # valid grid, so the relation must not apply.
        scenario = Scenario(1, (_job(block=64 * MB),))
        assert not get_relation("halve-block-size")(scenario).applicable

    def test_halve_block_gated_on_indivisible_input(self):
        # The exact-doubling claim needs the input to divide into whole
        # blocks: 1280 MB is not a multiple of 512 MB.
        scenario = Scenario(1, (_job(block=512 * MB, size=1 * GB + 256 * MB),))
        assert not get_relation("halve-block-size")(scenario).applicable

    def test_halve_block_applies_when_divisible(self):
        result = get_relation("halve-block-size")(
            Scenario(1, (_job(block=512 * MB, size=1 * GB),))
        )
        assert result.applicable and result.held

    @pytest.mark.parametrize("freq_ghz", [1.6, 2.0, 2.4])
    def test_double_frequency_gated_off_grid(self, freq_ghz):
        # Only 1.2 GHz doubles onto another DVFS level (2.4 GHz); every
        # other clock's double is off the table.
        scenario = Scenario(1, (_job(freq=freq_ghz * GHZ),))
        assert not get_relation("double-frequency-pipeline")(scenario).applicable

    def test_double_frequency_applies_from_lowest_clock(self):
        result = get_relation("double-frequency-pipeline")(
            Scenario(1, (_job(freq=1.2 * GHZ),))
        )
        assert result.applicable and result.held


# ------------------------------------------------------ faulty scenarios
def test_unconditional_relations_hold_under_faults():
    """Relations without a fault gate must hold on faulty scenarios too."""
    scenario = Scenario(
        2,
        (_job("wc"), _job("st", t=30.0)),
        fault_events=(
            FaultEvent(10.0, "node_crash", 0, severity=1.0, pick=0.3),
            FaultEvent(60.0, "straggler", 1, severity=2.0, pick=0.7),
        ),
    )
    for name in ("permute-job-ids", "zero-rate-fault-plan", "recorder-equivalence"):
        result = get_relation(name)(scenario)
        assert result.applicable
        assert result.held, result.describe()
