"""14-feature profiling-vector tests."""

import numpy as np
import pytest

from repro.analysis.features import PROFILING_CONFIG
from repro.telemetry.profiling import (
    FEATURE_NAMES,
    REDUCED_FEATURE_NAMES,
    feature_vector,
    profile_features,
    reduced_vector,
)
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


def test_fourteen_features_in_canonical_order():
    assert len(FEATURE_NAMES) == 14
    feats = profile_features(AppInstance(get_app("wc"), 5 * GB), PROFILING_CONFIG)
    assert set(feats) == set(FEATURE_NAMES)


def test_reduced_set_is_the_papers_seven():
    assert set(REDUCED_FEATURE_NAMES) == {
        "cpu_user", "cpu_iowait", "io_read_mbps", "io_write_mbps",
        "ipc", "mem_footprint_mb", "llc_mpki",
    }


def test_deterministic_for_seed():
    inst = AppInstance(get_app("st"), 5 * GB)
    a = profile_features(inst, PROFILING_CONFIG, seed=1)
    b = profile_features(inst, PROFILING_CONFIG, seed=1)
    assert a == b
    c = profile_features(inst, PROFILING_CONFIG, seed=2)
    assert a != c


def test_feature_vector_ordering():
    feats = profile_features(AppInstance(get_app("fp"), 5 * GB), PROFILING_CONFIG)
    vec = feature_vector(feats)
    assert vec.shape == (14,)
    assert vec[FEATURE_NAMES.index("llc_mpki")] == feats["llc_mpki"]


def test_reduced_vector_ordering():
    feats = profile_features(AppInstance(get_app("fp"), 5 * GB), PROFILING_CONFIG)
    vec = reduced_vector(feats)
    assert vec.shape == (7,)
    assert vec[REDUCED_FEATURE_NAMES.index("ipc")] == feats["ipc"]


def test_missing_feature_rejected():
    with pytest.raises(KeyError, match="missing"):
        feature_vector({"cpu_user": 1.0})
    with pytest.raises(KeyError, match="missing"):
        reduced_vector({"cpu_user": 1.0})


def test_class_signatures_separate_in_feature_space():
    """C/I/M apps must be far apart — classification depends on it."""
    feats = {
        code: feature_vector(
            profile_features(AppInstance(get_app(code), 5 * GB), PROFILING_CONFIG)
        )
        for code in ("wc", "st", "fp")
    }
    # I/O app: much higher iowait than compute app.
    iowait = FEATURE_NAMES.index("cpu_iowait")
    assert feats["st"][iowait] > 5 * feats["wc"][iowait]
    # Memory app: much higher LLC MPKI than both.
    llc = FEATURE_NAMES.index("llc_mpki")
    assert feats["fp"][llc] > 3 * feats["wc"][llc]
    assert feats["fp"][llc] > 3 * feats["st"][llc]
