"""Calibration shape tests: the paper's qualitative findings.

These assert the headline phenomena the reproduction is built around —
if a profile or hardware-constant change breaks one of the paper's
observed shapes, this file is where it shows up.
"""

import numpy as np
import pytest

from repro.baselines.colao import colao_best
from repro.baselines.ilao import ilao_best, ilao_pair_edp
from repro.model.costmodel import standalone_metrics
from repro.model.sweep import sweep_solo
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import ALL_APPS, get_app


@pytest.fixture(scope="module")
def solo_best():
    return {
        code: ilao_best(AppInstance(get_app(code), 10 * GB)) for code in ALL_APPS
    }


class TestClassSignatures:
    """§3: tuned solo runs must show each class's resource signature."""

    def test_compute_bound_high_cpu_low_disk(self, solo_best):
        for code in ("wc", "svm", "hmm"):
            r = solo_best[code]
            i = r.sweep.best_index
            assert float(r.sweep.metrics.u_cpu[i]) > 0.8
            assert float(r.sweep.metrics.u_disk[i]) < 0.35

    def test_io_bound_high_disk_low_cpu(self, solo_best):
        for code in ("st", "nb"):
            r = solo_best[code]
            i = r.sweep.best_index
            assert float(r.sweep.metrics.u_disk[i]) > 0.5
            assert float(r.sweep.metrics.u_cpu[i]) < 0.45

    def test_memory_bound_longest_and_bandwidth_hungry(self, solo_best):
        m_durations = [solo_best[c].duration for c in ("fp", "cf", "pr")]
        others = [
            solo_best[c].duration for c in ALL_APPS if c not in ("fp", "cf", "pr")
        ]
        assert min(m_durations) > max(others) * 0.9
        for code in ("fp", "cf", "pr"):
            r = solo_best[code]
            i = r.sweep.best_index
            from repro.hardware.node import ATOM_C2758

            u_mem = float(r.sweep.metrics.mem_demand[i]) / ATOM_C2758.membw.achievable_bw
            assert u_mem > 0.5


class TestColocationShapes:
    """§4.2 / Fig. 3 / Fig. 5 shapes."""

    def test_io_pair_gains_most_from_colocation(self, solo_best):
        reps = {"I": "st", "C": "wc", "H": "gp", "M": "fp"}
        ratios = {}
        for ka, a in reps.items():
            for kb, b in reps.items():
                if ka > kb:
                    continue
                co = colao_best(
                    AppInstance(get_app(a), 10 * GB), AppInstance(get_app(b), 10 * GB)
                )
                ratios[f"{ka}-{kb}"] = (
                    ilao_pair_edp(solo_best[a], solo_best[b]) / co.edp
                )
        assert max(ratios, key=ratios.get) == "I-I"
        assert ratios["I-I"] > 1.8  # the paper's headline co-location win
        # Memory-bound pairs close the gap (paper: "EDP gap reduces").
        assert ratios["M-M"] < ratios["I-I"] / 1.5

    def test_m_class_prefers_many_cores_in_pairs(self):
        co = colao_best(
            AppInstance(get_app("wc"), 1 * GB), AppInstance(get_app("fp"), 10 * GB)
        )
        # The long memory-bound job takes the lion's share of cores.
        assert co.config_b.n_mappers > co.config_a.n_mappers


class TestTuningSensitivity:
    """§4.1 / Fig. 2 shapes."""

    def test_sensitivity_decreases_with_mappers(self):
        profile = get_app("st").profile
        improvements = []
        for m in (1, 4, 8):
            base = float(
                standalone_metrics(profile, 10 * GB, 1.2 * GHZ, 64 * MB, m).edp
            )
            freqs = np.array([1.2, 1.6, 2.0, 2.4]) * GHZ
            blocks = np.array([64, 128, 256, 512, 1024]) * MB
            ff, bb = np.meshgrid(freqs, blocks, indexing="ij")
            best = float(
                standalone_metrics(profile, 10 * GB, ff.ravel(), bb.ravel(), m).edp.min()
            )
            improvements.append(base / best)
        assert improvements[0] > improvements[1] > improvements[2]

    def test_concurrent_tuning_beats_individual(self):
        for code in ("wc", "st", "ts"):
            profile = get_app(code).profile
            for m in (2, 6):
                base_args = (profile, 10 * GB)
                base = float(standalone_metrics(*base_args, 1.2 * GHZ, 64 * MB, m).edp)
                freqs = np.array([1.2, 1.6, 2.0, 2.4]) * GHZ
                blocks = np.array([64, 128, 256, 512, 1024], dtype=float) * MB
                f_best = base / float(
                    standalone_metrics(*base_args, freqs, 64 * MB, m).edp.min()
                )
                b_best = base / float(
                    standalone_metrics(*base_args, 1.2 * GHZ, blocks, m).edp.min()
                )
                ff, bb = np.meshgrid(freqs, blocks, indexing="ij")
                joint = base / float(
                    standalone_metrics(*base_args, ff.ravel(), bb.ravel(), m).edp.min()
                )
                assert joint >= max(f_best, b_best) - 1e-9


class TestOptimalConfigShapes:
    """Table 2-style shapes: where the optima live."""

    def test_solo_optimum_prefers_high_frequency(self):
        for code in ("wc", "gp", "fp"):
            best = sweep_solo(AppInstance(get_app(code), 10 * GB)).best_config
            assert best.frequency >= 2.0 * GHZ

    def test_solo_optimum_avoids_tiny_blocks(self):
        for code in ALL_APPS:
            best = sweep_solo(AppInstance(get_app(code), 10 * GB)).best_config
            assert best.block_size >= 128 * MB
