"""Sharded execution must be bit-identical to the serial path.

``repro.shard`` partitions scenario batches, Monte-Carlo fault
replicas, and multi-rack sweep grids into fixed-size shards, fans them
across processes, and merges per-shard artifacts in shard order.  The
contract is *bit identity*: for any ``REPRO_WORKERS`` the merged
result must equal the serial computation byte for byte.  These tests
pin that contract for worker counts 1, 2 and 4, plus the merge
primitives in isolation.
"""

from __future__ import annotations

import pytest

from repro.batch.engine import evaluate_scenarios
from repro.conformance.scenarios import oracle_matrix
from repro.experiments.fault_tolerance import run_fault_tolerance
from repro.shard import (
    evaluate_scenarios_sharded,
    fault_mc_sharded,
    merge_chrome_traces,
    merge_registry_snapshots,
    rack_sweep_sharded,
    shard_slices,
)
from repro.telemetry.profiling import BatchTelemetry

WORKER_COUNTS = (1, 2, 4)


# ---------------------------------------------------------- slicing
def test_shard_slices_cover_exactly():
    assert shard_slices(0, 512) == []
    assert shard_slices(5, 2) == [(0, 2), (2, 4), (4, 5)]
    bounds = shard_slices(1300, 512)
    assert bounds[0] == (0, 512)
    assert bounds[-1] == (1024, 1300)
    covered = [i for lo, hi in bounds for i in range(lo, hi)]
    assert covered == list(range(1300))
    with pytest.raises(ValueError):
        shard_slices(10, 0)


# ------------------------------------------------- scenario batches
@pytest.fixture(scope="module")
def matrix():
    return oracle_matrix()


@pytest.fixture(scope="module")
def serial_outcomes(matrix):
    return evaluate_scenarios(matrix, backend="batch")


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_scenario_batches_bit_identical(matrix, serial_outcomes, workers, monkeypatch):
    # Drive the worker count the way CI does: through REPRO_WORKERS.
    monkeypatch.setenv("REPRO_WORKERS", str(workers))
    telemetry = BatchTelemetry()
    # shard_size=16 forces multiple shards even on this small matrix.
    sharded = evaluate_scenarios_sharded(
        matrix, backend="batch", telemetry=telemetry, shard_size=16
    )
    assert sharded == serial_outcomes  # NamedTuple equality: every byte
    assert telemetry.kernel_calls > 0


def test_scenario_shard_size_does_not_change_outcomes(matrix, serial_outcomes):
    for shard_size in (7, 50, 10_000):
        sharded = evaluate_scenarios_sharded(
            matrix, backend="batch", shard_size=shard_size, workers=1
        )
        assert sharded == serial_outcomes


# ------------------------------------------------ fault Monte-Carlo
@pytest.fixture(scope="module")
def mc_kwargs():
    return dict(rates=(0.0, 5.0), n_jobs=24, mean_interarrival_s=4.0, n_nodes=3)


@pytest.fixture(scope="module")
def serial_mc(mc_kwargs):
    return fault_mc_sharded((7, 11), workers=1, **mc_kwargs)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_fault_replicas_bit_identical(serial_mc, mc_kwargs, workers):
    report = fault_mc_sharded((7, 11), workers=workers, **mc_kwargs)
    assert report == serial_mc  # frozen dataclasses: full deep equality


def test_fault_replica_equals_direct_call(serial_mc, mc_kwargs):
    direct = run_fault_tolerance(fault_seed=11, **mc_kwargs)
    assert serial_mc.replicas[1] == direct
    stats = serial_mc.degradation_stats()
    assert {row["policy"] for row in stats}
    for row in stats:
        assert row["n_replicas"] == 2
        assert row["edp_degradation_min"] <= row["edp_degradation_max"]


# --------------------------------------------------- rack sweeps
@pytest.fixture(scope="module")
def serial_sweep():
    return rack_sweep_sharded((2, 4, 8), n_jobs=40, workers=1)


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_rack_sweep_bit_identical(serial_sweep, workers):
    report = rack_sweep_sharded((2, 4, 8), n_jobs=40, workers=workers)
    assert report == serial_sweep


def test_rack_sweep_merges_metrics_and_finds_knee(serial_sweep):
    assert [r.n_nodes for r in serial_sweep.rows] == [2, 4, 8]
    assert serial_sweep.rows[0].makespan > serial_sweep.rows[-1].makespan
    assert serial_sweep.knee() in (2, 4, 8)
    # Merged snapshot sums the per-cell engine counters in shard order.
    merged = serial_sweep.merged_metrics["engine"]
    total = sum(r.metrics["engine"]["events"] for r in serial_sweep.rows)
    assert merged["events"] == total


# ------------------------------------------------ merge primitives
def test_merge_registry_snapshots_sums_and_sorts():
    merged = merge_registry_snapshots(
        [
            {"engine": {"b": 1.5, "a": 2}},
            {"engine": {"a": 3}, "cache": {"hits": 1}},
        ]
    )
    assert merged == {"cache": {"hits": 1}, "engine": {"a": 5, "b": 1.5}}
    assert list(merged) == ["cache", "engine"]
    assert list(merged["engine"]) == ["a", "b"]
    assert merge_registry_snapshots([]) == {}


def test_merge_chrome_traces_separates_shard_pids():
    a = {
        "traceEvents": [{"pid": 0, "name": "x"}, {"pid": 2, "name": "y"}],
        "displayTimeUnit": "ms",
    }
    b = {"traceEvents": [{"pid": 0, "name": "z"}]}
    merged = merge_chrome_traces([a, b])
    assert merged["displayTimeUnit"] == "ms"
    pids = [ev["pid"] for ev in merged["traceEvents"]]
    # Stride = max pid + 1 = 3: shard 0 keeps 0/2, shard 1 moves to 3.
    assert pids == [0, 2, 3]
    # Inputs are never mutated.
    assert a["traceEvents"][0]["pid"] == 0
    assert b["traceEvents"][0]["pid"] == 0
