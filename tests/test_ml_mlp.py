"""MLP regressor tests."""

import numpy as np
import pytest

from repro.ml.mlp import MLPRegressor


def test_fits_linear_function():
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, size=(400, 2))
    y = 3 * X[:, 0] - X[:, 1] + 5
    model = MLPRegressor(hidden=(16,), epochs=300, log_target=False, seed=0).fit(X, y)
    pred = model.predict(X)
    assert float(np.abs(pred - y).mean()) < 0.2


def test_fits_nonlinear_function():
    rng = np.random.default_rng(1)
    X = rng.uniform(-2, 2, size=(600, 2))
    y = np.sin(X[:, 0]) * X[:, 1] ** 2 + 3.0
    model = MLPRegressor(hidden=(32, 16), epochs=400, log_target=False, seed=0).fit(X, y)
    resid = model.predict(X) - y
    assert float(np.abs(resid).mean()) < 0.3


def test_log_target_multiplicative_surface():
    rng = np.random.default_rng(2)
    X = rng.uniform(0.5, 2.0, size=(500, 3))
    y = 1e5 * X[:, 0] ** 2 / X[:, 1] * np.exp(0.2 * X[:, 2])
    model = MLPRegressor(epochs=300, log_target=True, seed=0).fit(X, y)
    pred = model.predict(X)
    ape = float((np.abs(pred - y) / y).mean())
    assert ape < 0.05
    assert np.all(pred > 0)


def test_log_target_rejects_nonpositive():
    with pytest.raises(ValueError):
        MLPRegressor(log_target=True).fit(np.eye(3) + 1, np.array([1.0, -1.0, 2.0]))


def test_deterministic_for_seed():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(100, 2))
    y = X[:, 0] + 1.0
    a = MLPRegressor(epochs=50, log_target=False, seed=7).fit(X, y).predict(X)
    b = MLPRegressor(epochs=50, log_target=False, seed=7).fit(X, y).predict(X)
    assert np.array_equal(a, b)


def test_training_loss_decreases():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(300, 3))
    y = X @ np.ones(3)
    model = MLPRegressor(epochs=100, log_target=False, early_stop_patience=0, seed=0)
    model.fit(X, y)
    losses = model.train_losses_
    assert losses[-1] < losses[0] / 5


def test_early_stopping_truncates():
    rng = np.random.default_rng(5)
    X = rng.normal(size=(200, 2))
    y = X[:, 0]
    model = MLPRegressor(epochs=2000, early_stop_patience=5, log_target=False, seed=0)
    model.fit(X, y)
    assert len(model.train_losses_) < 2000


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        MLPRegressor().predict(np.zeros((1, 2)))


def test_validation():
    with pytest.raises(ValueError):
        MLPRegressor(hidden=())
    with pytest.raises(ValueError):
        MLPRegressor(hidden=(0,))
    with pytest.raises(ValueError):
        MLPRegressor(epochs=0)
    with pytest.raises(ValueError):
        MLPRegressor(lr=0.0)
    model = MLPRegressor(epochs=10, log_target=False, seed=0).fit(np.eye(3), np.ones(3))
    with pytest.raises(ValueError):
        model.predict(np.zeros((1, 5)))
