"""Edge-case coverage for ``repro.ml``: degenerate shapes and inputs.

The model suites (``test_ml_linreg`` et al.) check accuracy on
well-formed data; this file pins the *boundaries*: constant feature
columns, single-sample fits, empty or mismatched test sets, and
predict-before-fit — every one must either work exactly or raise a
clean ``ValueError``/``RuntimeError``, never emit NaNs or warnings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.base import check_X, check_Xy
from repro.ml.linreg import LinearRegression
from repro.ml.metrics import mae, mean_ape, mse, r2_score
from repro.ml.mlp import MLPRegressor
from repro.ml.preprocessing import StandardScaler, train_val_split
from repro.ml.reptree import REPTree


def _toy(n=40, d=3, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = X @ np.arange(1.0, d + 1.0) + 0.5
    return X, y


# ---------------------------------------------------------- validation
class TestCheckXy:
    def test_empty_training_set_raises(self):
        with pytest.raises(ValueError, match="empty training set"):
            check_Xy(np.empty((0, 3)), np.empty(0))

    def test_row_mismatch_raises(self):
        with pytest.raises(ValueError, match="3 rows but y has 2"):
            check_Xy(np.zeros((3, 2)), np.zeros(2))

    def test_non_2d_X_raises(self):
        with pytest.raises(ValueError, match="X must be 2-D"):
            check_Xy(np.zeros(3), np.zeros(3))

    def test_non_1d_y_raises(self):
        with pytest.raises(ValueError, match="y must be 1-D"):
            check_Xy(np.zeros((3, 2)), np.zeros((3, 1)))

    def test_non_finite_raises(self):
        with pytest.raises(ValueError, match="finite"):
            check_Xy(np.array([[1.0], [np.nan]]), np.zeros(2))
        with pytest.raises(ValueError, match="finite"):
            check_Xy(np.zeros((2, 1)), np.array([0.0, np.inf]))

    def test_check_X_promotes_1d_row(self):
        out = check_X(np.array([1.0, 2.0]), 2)
        assert out.shape == (1, 2)

    def test_check_X_wrong_width_raises(self):
        with pytest.raises(ValueError, match=r"must be \(n, 2\)"):
            check_X(np.zeros((4, 3)), 2)


# ------------------------------------------------------------- metrics
class TestMetricsEdges:
    def test_empty_test_set_raises_cleanly(self):
        empty = np.empty(0)
        for fn in (mse, mae, mean_ape, r2_score):
            with pytest.raises(ValueError, match="empty arrays"):
                fn(empty, empty)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            mse(np.zeros(3), np.zeros(4))

    def test_mean_ape_zero_target_raises(self):
        with pytest.raises(ValueError, match="APE undefined for zero targets"):
            mean_ape([0.0, 1.0], [0.1, 1.0])

    def test_r2_constant_target_raises(self):
        with pytest.raises(ValueError, match="undefined for constant targets"):
            r2_score([2.0, 2.0, 2.0], [2.0, 2.1, 1.9])

    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 4.0])
        assert mse(y, y) == 0.0
        assert mae(y, y) == 0.0
        assert mean_ape(y, y) == 0.0
        assert r2_score(y, y) == 1.0

    def test_single_sample_pointwise_metrics(self):
        # One test row is legal for pointwise metrics (r2 needs variance).
        assert mse([2.0], [3.0]) == 1.0
        assert mae([2.0], [3.0]) == 1.0
        assert mean_ape([2.0], [3.0]) == pytest.approx(50.0)  # percent


# ------------------------------------------------------- preprocessing
class TestScalerEdges:
    def test_constant_column_transforms_to_zero(self):
        X = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        # The degenerate std is clamped to 1, so a constant column maps
        # to exactly zero — never NaN/inf from a 0/0.
        assert np.all(Z[:, 0] == 0.0)
        assert np.all(np.isfinite(Z))
        assert np.std(Z[:, 1]) == pytest.approx(1.0)

    def test_constant_column_roundtrips(self):
        X = np.column_stack([np.full(6, -3.5), np.linspace(0, 1, 6)])
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        np.testing.assert_allclose(back, X, rtol=0, atol=1e-12)

    def test_single_sample_fit(self):
        X = np.array([[4.0, -1.0]])
        Z = StandardScaler().fit_transform(X)
        assert Z.shape == (1, 2)
        assert np.all(Z == 0.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="scaler is not fitted"):
            StandardScaler().transform(np.zeros((1, 2)))
        with pytest.raises(RuntimeError, match="scaler is not fitted"):
            StandardScaler().inverse_transform(np.zeros((1, 2)))

    def test_fit_non_2d_raises(self):
        with pytest.raises(ValueError, match="X must be 2-D"):
            StandardScaler().fit(np.zeros(3))


class TestSplitEdges:
    def test_single_sample_split_raises(self):
        with pytest.raises(ValueError, match="need at least 2 samples"):
            train_val_split(np.zeros((1, 2)), np.zeros(1))

    def test_bad_fraction_raises(self):
        X, y = np.zeros((4, 1)), np.zeros(4)
        for frac in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="val_fraction"):
                train_val_split(X, y, val_fraction=frac)

    def test_two_samples_yield_one_each(self):
        X, y = np.arange(2.0)[:, None], np.arange(2.0)
        Xt, yt, Xv, yv = train_val_split(X, y, val_fraction=0.5, seed=0)
        assert len(yt) == 1 and len(yv) == 1
        assert sorted([*yt, *yv]) == [0.0, 1.0]

    def test_split_is_a_partition(self):
        X, y = _toy(n=23)
        Xt, yt, Xv, yv = train_val_split(X, y, val_fraction=0.25, seed=3)
        assert len(yt) + len(yv) == 23
        assert sorted([*yt, *yv]) == sorted(y.tolist())


# -------------------------------------------------------------- models
class TestModelEdges:
    def test_predict_before_fit_raises(self):
        X = np.zeros((2, 2))
        for model in (LinearRegression(), REPTree(), MLPRegressor()):
            with pytest.raises(RuntimeError, match="not fitted"):
                model.predict(X)

    def test_single_sample_fit(self):
        # A 1-row training set is degenerate but legal: every model must
        # fit and predict that row's target back (constant prediction).
        X, y = np.array([[1.0, 2.0]]), np.array([5.0])
        assert LinearRegression().fit(X, y).predict(X) == pytest.approx([5.0])
        tree = REPTree().fit(X, y)
        assert tree.predict(X) == pytest.approx([5.0])
        assert tree.n_leaves == 1 and tree.depth == 0
        mlp = MLPRegressor(hidden=(4,), epochs=2, batch_size=1).fit(X, y)
        assert np.all(np.isfinite(mlp.predict(X)))

    def test_constant_feature_columns(self):
        # A constant column carries no signal; fitting must stay finite
        # and the informative column must still be used.
        rng = np.random.default_rng(1)
        X = np.column_stack([np.full(60, 3.0), rng.normal(size=60)])
        y = 2.0 * X[:, 1] + 1.0
        for model in (
            LinearRegression(ridge=1e-6),
            REPTree(seed=0),
            MLPRegressor(
                hidden=(8,), epochs=300, lr=1e-2, seed=0, log_target=False
            ),
        ):
            pred = model.fit(X, y).predict(X)
            assert np.all(np.isfinite(pred))
            assert r2_score(y, pred) > 0.8

    def test_all_constant_features_predict_mean(self):
        X = np.full((12, 2), 4.0)
        y = np.arange(12.0)
        assert REPTree(prune=False).fit(X, y).predict(X[:1]) == pytest.approx(
            [y.mean()]
        )
        pred = LinearRegression().fit(X, y).predict(X[:1])
        assert pred == pytest.approx([y.mean()])

    def test_mlp_log_target_rejects_nonpositive(self):
        X, _ = _toy(n=12)
        y = np.linspace(-1.0, 1.0, 12)
        with pytest.raises(ValueError, match="strictly positive targets"):
            MLPRegressor(log_target=True).fit(X, y)

    def test_constant_target(self):
        X, _ = _toy()
        y = np.full(len(X), 2.5)
        assert REPTree().fit(X, y).predict(X) == pytest.approx(y)
        assert LinearRegression().fit(X, y).predict(X) == pytest.approx(y)

    def test_empty_fit_raises(self):
        X, y = np.empty((0, 2)), np.empty(0)
        for model in (LinearRegression(), REPTree(), MLPRegressor()):
            with pytest.raises(ValueError, match="empty training set"):
                model.fit(X, y)

    def test_feature_count_enforced_at_predict(self):
        X, y = _toy(d=3)
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            model.predict(np.zeros((2, 4)))

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="ridge"):
            LinearRegression(ridge=-1.0)
        with pytest.raises(ValueError, match="max_depth"):
            REPTree(max_depth=0)
        with pytest.raises(ValueError, match="min_leaf"):
            REPTree(min_leaf=0)
        with pytest.raises(ValueError, match="prune_fraction"):
            REPTree(prune_fraction=1.0)
        with pytest.raises(ValueError, match="hidden"):
            MLPRegressor(hidden=())
        with pytest.raises(ValueError, match="lr must be positive"):
            MLPRegressor(lr=0.0)
        with pytest.raises(ValueError, match="epochs and batch_size"):
            MLPRegressor(epochs=0)


# -------------------------------------------- log-space EDP targets
class TestEdpTargetValidation:
    """``MLMSTP.fit``/``SoloSTP.fit`` train on ``log(y)``: a zero,
    negative, or non-finite EDP row used to become ``-inf``/``nan``
    silently and poison the model far from the bad row.  Both now
    fail fast and name the first offender."""

    def test_mlm_fit_rejects_nonpositive_targets(self, small_dataset):
        import dataclasses

        from repro.core.stp import MLMSTP

        bad_y = np.array(small_dataset.y, copy=True)
        bad_y[7] = 0.0
        bad_y[11] = -2.5
        poisoned = dataclasses.replace(small_dataset, y=bad_y)
        with pytest.raises(ValueError, match=r"MLMSTP\.fit.*row 7"):
            MLMSTP("reptree").fit(poisoned)

    def test_mlm_fit_rejects_non_finite_targets(self, small_dataset):
        import dataclasses

        from repro.core.stp import MLMSTP

        bad_y = np.array(small_dataset.y, copy=True)
        bad_y[3] = np.nan
        poisoned = dataclasses.replace(small_dataset, y=bad_y)
        with pytest.raises(ValueError, match="row 3"):
            MLMSTP("lr").fit(poisoned)

    def test_offender_count_reported(self):
        from repro.core.stp import _validate_edp_targets

        with pytest.raises(ValueError, match=r"row 1.*3 offending row\(s\)"):
            _validate_edp_targets(
                np.array([1.0, -1.0, np.inf, 2.0, 0.0]), "MLMSTP.fit"
            )

    def test_clean_targets_pass(self):
        from repro.core.stp import _validate_edp_targets

        _validate_edp_targets(np.array([1e-12, 1.0, 1e12]), "SoloSTP.fit")
