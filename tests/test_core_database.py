"""Configuration-database tests (built on the small fixture set)."""

import pytest

from repro.core.database import ConfigDatabase, build_database, training_pairs
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import get_app


def test_training_pairs_canonical_and_counted(small_training_instances):
    pairs = training_pairs(small_training_instances, include_self=False)
    # C(8, 2) = 28 unordered pairs.
    assert len(pairs) == 28
    with_self = training_pairs(small_training_instances, include_self=True)
    assert len(with_self) == 36


def test_database_entry_count(small_database, small_training_instances):
    assert len(small_database) == 36


def test_lookup_exact_class_size_match(small_database):
    cfg_a, cfg_b, entry = small_database.lookup(
        AppClass.IO, AppClass.IO, 5 * GB, 5 * GB
    )
    assert entry.class_a is AppClass.IO and entry.class_b is AppClass.IO
    assert entry.size_a == 5 * GB and entry.size_b == 5 * GB
    assert cfg_a == entry.config_a


def test_lookup_orientation_swapped(small_database):
    """Querying (M, C) must return configs mirrored from the canonical
    (C, M) entry."""
    a1, b1, _ = small_database.lookup(AppClass.COMPUTE, AppClass.MEMORY, 5 * GB, 5 * GB)
    a2, b2, _ = small_database.lookup(AppClass.MEMORY, AppClass.COMPUTE, 5 * GB, 5 * GB)
    assert (a1, b1) == (b2, a2)


def test_lookup_nearest_size(small_database):
    # 10 GB is absent from the small fixture; nearest (5 GB) serves.
    _, _, entry = small_database.lookup(AppClass.IO, AppClass.IO, 10 * GB, 10 * GB)
    assert entry.size_a == 5 * GB


def test_entries_for_classes(small_database):
    entries = small_database.entries_for_classes(AppClass.COMPUTE, AppClass.MEMORY)
    assert entries
    for e in entries:
        assert {e.class_a, e.class_b} == {AppClass.COMPUTE, AppClass.MEMORY}


def test_best_configs_are_oracle_minima(small_database_with_sweeps):
    db, sweeps = small_database_with_sweeps
    for entry in db.entries[:5]:
        sweep = sweeps[(entry.label_a, entry.label_b)]
        assert entry.best_edp == pytest.approx(sweep.best_edp)


def test_empty_database_rejected():
    with pytest.raises(ValueError):
        ConfigDatabase([])


def test_build_database_needs_at_least_one_pair():
    insts = [AppInstance(get_app("wc"), 1 * GB)]
    with pytest.raises(ValueError):
        build_database(insts, include_self=False)


def test_build_database_single_self_pair():
    insts = [AppInstance(get_app("wc"), 1 * GB)]
    db, _ = build_database(insts, include_self=True)
    assert len(db) == 1
    entry = db.entries[0]
    assert entry.label_a == entry.label_b == "wc@1GB"
