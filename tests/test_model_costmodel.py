"""Cost-kernel tests: algebraic invariants and physical monotonicity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdfs.blocks import HDFS_BLOCK_SIZES
from repro.model.costmodel import (
    colocation_context,
    distributed_metrics,
    fluid_stretch,
    pair_metrics,
    serial_pair_edp,
    standalone_metrics,
)
from repro.utils.units import GB, GHZ, MB
from repro.workloads.registry import get_app

WC = get_app("wc").profile
ST = get_app("st").profile
FP = get_app("fp").profile

FREQS = [1.2 * GHZ, 1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ]

cfg_strategy = st.tuples(
    st.sampled_from(FREQS),
    st.sampled_from(HDFS_BLOCK_SIZES),
    st.integers(min_value=1, max_value=8),
    st.sampled_from([1 * GB, 5 * GB, 10 * GB]),
)


class TestStandalone:
    def test_energy_is_power_times_duration(self):
        jm = standalone_metrics(WC, 5 * GB, 2.4 * GHZ, 256 * MB, 4)
        assert float(jm.energy) == pytest.approx(float(jm.power) * float(jm.duration))
        assert float(jm.edp) == pytest.approx(float(jm.energy) * float(jm.duration))

    @settings(max_examples=60, deadline=None)
    @given(cfg=cfg_strategy)
    def test_utilizations_bounded(self, cfg):
        f, b, m, d = cfg
        for profile in (WC, ST, FP):
            jm = standalone_metrics(profile, d, f, b, m)
            for u in (jm.u_cpu, jm.u_disk, jm.u_net):
                assert 0.0 <= float(u) <= 1.0 + 1e-9
            assert float(jm.duration) > 0
            assert float(jm.power) > 0

    def test_duration_increases_with_data(self):
        t1 = float(standalone_metrics(WC, 1 * GB, 2.4 * GHZ, 256 * MB, 8).duration)
        t10 = float(standalone_metrics(WC, 10 * GB, 2.4 * GHZ, 256 * MB, 8).duration)
        assert t10 > 5 * t1

    def test_compute_bound_speeds_up_with_frequency(self):
        lo = float(standalone_metrics(WC, 5 * GB, 1.2 * GHZ, 256 * MB, 8).duration)
        hi = float(standalone_metrics(WC, 5 * GB, 2.4 * GHZ, 256 * MB, 8).duration)
        assert 1.5 < lo / hi < 2.0  # memory wall bounds the gain below 2x

    def test_io_bound_barely_speeds_up_with_frequency(self):
        lo = float(standalone_metrics(ST, 5 * GB, 1.2 * GHZ, 512 * MB, 4).duration)
        hi = float(standalone_metrics(ST, 5 * GB, 2.4 * GHZ, 512 * MB, 4).duration)
        assert lo / hi < 1.5

    def test_compute_bound_scales_with_mappers(self):
        one = float(standalone_metrics(WC, 5 * GB, 2.4 * GHZ, 256 * MB, 1).duration)
        eight = float(standalone_metrics(WC, 5 * GB, 2.4 * GHZ, 256 * MB, 8).duration)
        assert one / eight > 5.0

    def test_mappers_capped_by_task_count(self):
        # 1 GB at 1 GB blocks = 1 task; extra mappers are inert.
        a = standalone_metrics(WC, 1 * GB, 2.4 * GHZ, 1024 * MB, 1)
        b = standalone_metrics(WC, 1 * GB, 2.4 * GHZ, 1024 * MB, 8)
        assert float(a.duration) == pytest.approx(float(b.duration))
        assert float(b.m_eff) == 1.0

    def test_power_at_most_full_load(self):
        jm = standalone_metrics(WC, 10 * GB, 2.4 * GHZ, 256 * MB, 8)
        from repro.hardware.node import ATOM_C2758

        pm = ATOM_C2758.power
        upper = (
            pm.idle_power
            + 8 * pm.core_max_power
            + pm.mem_max_power
            + pm.disk_max_power
        )
        assert float(jm.power) <= upper

    def test_vectorised_grid_matches_scalar(self):
        f = np.array([1.2 * GHZ, 2.4 * GHZ])
        b = np.array([64 * MB, 512 * MB], dtype=float)
        m = np.array([2.0, 6.0])
        grid = standalone_metrics(ST, 5 * GB, f, b, m)
        for i in range(2):
            scalar = standalone_metrics(ST, 5 * GB, float(f[i]), float(b[i]), float(m[i]))
            assert float(grid.duration[i]) == pytest.approx(float(scalar.duration))
            assert float(grid.edp[i]) == pytest.approx(float(scalar.edp))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            standalone_metrics(WC, -1, 2.4 * GHZ, 256 * MB, 4)
        with pytest.raises(ValueError):
            standalone_metrics(WC, 1 * GB, 2.4 * GHZ, 256 * MB, 0)
        with pytest.raises(ValueError, match="non-DVFS"):
            standalone_metrics(WC, 1 * GB, 1.9 * GHZ, 256 * MB, 4)


class TestPair:
    def test_makespan_at_least_each_job(self):
        pm = pair_metrics(
            WC, 5 * GB, 2.4 * GHZ, 256 * MB, 4,
            ST, 5 * GB, 2.4 * GHZ, 256 * MB, 4,
        )
        assert float(pm.makespan) >= float(pm.duration_a) - 1e-9
        assert float(pm.makespan) >= float(pm.duration_b) - 1e-9
        assert float(pm.stretch) >= 1.0

    def test_core_partition_enforced(self):
        with pytest.raises(ValueError, match="core partition"):
            pair_metrics(
                WC, 5 * GB, 2.4 * GHZ, 256 * MB, 5,
                ST, 5 * GB, 2.4 * GHZ, 256 * MB, 5,
            )

    def test_two_io_jobs_interleave_without_stretch(self):
        """The co-location premise: tuned I jobs leave enough slack."""
        pm = pair_metrics(
            ST, 5 * GB, 2.0 * GHZ, 512 * MB, 4,
            ST, 5 * GB, 2.0 * GHZ, 512 * MB, 4,
        )
        assert float(pm.stretch) < 1.25

    def test_colocation_beats_serial_for_io_pairs(self):
        pm = pair_metrics(
            ST, 5 * GB, 2.0 * GHZ, 512 * MB, 4,
            ST, 5 * GB, 2.0 * GHZ, 512 * MB, 4,
        )
        serial = serial_pair_edp(pm.job_a, pm.job_b)
        assert float(pm.edp) < float(serial)

    def test_symmetric_arguments(self):
        ab = pair_metrics(
            WC, 5 * GB, 2.4 * GHZ, 256 * MB, 3,
            ST, 10 * GB, 2.0 * GHZ, 512 * MB, 5,
        )
        ba = pair_metrics(
            ST, 10 * GB, 2.0 * GHZ, 512 * MB, 5,
            WC, 5 * GB, 2.4 * GHZ, 256 * MB, 3,
        )
        assert float(ab.edp) == pytest.approx(float(ba.edp))
        assert float(ab.makespan) == pytest.approx(float(ba.makespan))

    @settings(max_examples=30, deadline=None)
    @given(cfg_a=cfg_strategy, cfg_b=cfg_strategy)
    def test_pair_invariants(self, cfg_a, cfg_b):
        fa, ba, ma, da = cfg_a
        fb, bb, mb, db = cfg_b
        if ma + mb > 8:
            return
        pm = pair_metrics(WC, da, fa, ba, ma, ST, db, fb, bb, mb)
        assert float(pm.stretch) >= 1.0
        assert float(pm.energy) > 0
        assert float(pm.makespan) >= max(
            float(pm.job_a.duration), float(pm.job_b.duration)
        ) - 1e-6
        # The pair is never faster than the slower member alone.
        assert float(pm.edp) > 0


class TestColocationContext:
    def test_single_job_is_neutral(self):
        ctx = colocation_context([WC], [4.0])
        assert float(ctx.mpki_scale[0]) == pytest.approx(1.0)
        assert float(ctx.extra_streams[0]) == 0.0

    def test_even_split_shares_no_module(self):
        ctx = colocation_context([FP, FP], [4.0, 4.0])
        assert np.allclose(ctx.mpki_scale, 1.0)

    def test_odd_split_inflates_mpki(self):
        ctx = colocation_context([FP, FP], [5.0, 3.0])
        assert np.all(ctx.mpki_scale >= 1.0)
        assert np.any(ctx.mpki_scale > 1.0)

    def test_footprint_overcommit_raises_disk_traffic(self):
        small = colocation_context([WC, WC], [2.0, 2.0])
        big = colocation_context([FP, FP], [4.0, 4.0])
        assert float(big.disk_traffic_scale[0]) > float(small.disk_traffic_scale[0])

    def test_extra_streams_are_corunners(self):
        ctx = colocation_context([WC, ST, FP], [2.0, 3.0, 3.0])
        assert list(ctx.extra_streams) == [6.0, 5.0, 5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            colocation_context([], [])
        with pytest.raises(ValueError):
            colocation_context([WC], [0.5])
        with pytest.raises(ValueError):
            colocation_context([WC, ST], [1.0])


class TestFluidStretchAndDistributed:
    def test_fluid_stretch_empty(self):
        assert fluid_stretch([]) == 1.0

    def test_fluid_stretch_sums_demands(self):
        jm = standalone_metrics(ST, 5 * GB, 2.4 * GHZ, 256 * MB, 4)
        s = fluid_stretch([jm, jm])
        assert s >= 2 * float(jm.u_disk) - 1e-9

    def test_distributed_splits_data(self):
        one = distributed_metrics(WC, 8 * GB, 1, 2.4 * GHZ, 256 * MB, 8)
        eight = distributed_metrics(WC, 8 * GB, 8, 2.4 * GHZ, 256 * MB, 8)
        # Sub-linear scaling: overheads and stragglers eat some gain.
        assert float(eight["makespan"]) < float(one["makespan"]) / 3
        # Eight nodes burn more total energy (idle floors), but the
        # much shorter makespan still wins on EDP.
        assert float(eight["energy"]) > float(one["energy"])
        assert float(eight["edp"]) < float(one["edp"])

    def test_distributed_straggler_grows_with_scale(self):
        two = distributed_metrics(WC, 8 * GB, 2, 2.4 * GHZ, 256 * MB, 8)
        four = distributed_metrics(WC, 8 * GB, 4, 2.4 * GHZ, 256 * MB, 8)
        # Per-node share halves, but makespan shrinks by less than 2x.
        assert float(two["makespan"]) / float(four["makespan"]) < 2.0

    def test_distributed_validation(self):
        with pytest.raises(ValueError):
            distributed_metrics(WC, 1 * GB, 0, 2.4 * GHZ, 256 * MB, 8)
