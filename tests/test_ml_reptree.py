"""REPTree tests: growth, pruning, prediction invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.reptree import REPTree, _best_split


def test_fits_a_step_function_exactly():
    X = np.arange(100.0)[:, None]
    y = (X[:, 0] >= 50).astype(float) * 10.0
    tree = REPTree(prune=False).fit(X, y)
    assert np.allclose(tree.predict(X), y)
    assert tree.n_leaves == 2


def test_fits_multi_step():
    X = np.arange(90.0)[:, None]
    y = np.repeat([1.0, 5.0, 9.0], 30)
    tree = REPTree(prune=False).fit(X, y)
    assert np.allclose(tree.predict(X), y)
    assert tree.n_leaves == 3


def test_best_split_maximises_variance_reduction():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([0.0, 0.0, 10.0, 10.0])
    j, thr, gain = _best_split(X, y, min_leaf=1)
    assert j == 0
    assert 1.0 < thr < 2.0
    assert gain == pytest.approx(100.0)  # total SSE removed


def test_best_split_none_for_constant_target():
    X = np.arange(10.0)[:, None]
    y = np.ones(10)
    assert _best_split(X, y, min_leaf=1) is None


def test_min_leaf_respected():
    X = np.arange(10.0)[:, None]
    y = np.array([0.0] * 9 + [100.0])
    tree = REPTree(min_leaf=3, prune=False).fit(X, y)
    # Cannot isolate the single outlier with min_leaf=3.
    preds = tree.predict(X)
    assert preds[-1] < 100.0


def test_max_depth_limits_tree():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    y = rng.normal(size=200)
    tree = REPTree(max_depth=2, prune=False).fit(X, y)
    assert tree.depth <= 2
    assert tree.n_leaves <= 4


def test_pruning_never_grows_the_tree():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 4))
    y = X[:, 0] + rng.normal(scale=2.0, size=300)  # very noisy
    unpruned = REPTree(prune=False, seed=0).fit(X, y)
    pruned = REPTree(prune=True, seed=0).fit(X, y)
    assert pruned.n_leaves <= unpruned.n_leaves


def test_pruning_improves_noisy_generalisation():
    rng = np.random.default_rng(2)
    X = rng.uniform(size=(400, 2))
    y = (X[:, 0] > 0.5).astype(float) + rng.normal(scale=0.5, size=400)
    X_test = rng.uniform(size=(200, 2))
    y_test = (X_test[:, 0] > 0.5).astype(float)
    unpruned = REPTree(prune=False, seed=0).fit(X, y)
    pruned = REPTree(prune=True, seed=0).fit(X, y)
    err_u = float(((unpruned.predict(X_test) - y_test) ** 2).mean())
    err_p = float(((pruned.predict(X_test) - y_test) ** 2).mean())
    assert err_p <= err_u * 1.1


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_predictions_within_target_range(n, seed):
    """A regression tree predicts leaf means — never outside the
    observed target range."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = rng.normal(size=n) * 10
    tree = REPTree(seed=0).fit(X, y)
    preds = tree.predict(rng.normal(size=(20, 3)))
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        REPTree().predict(np.zeros((1, 2)))


def test_validation():
    with pytest.raises(ValueError):
        REPTree(max_depth=0)
    with pytest.raises(ValueError):
        REPTree(min_leaf=0)
    with pytest.raises(ValueError):
        REPTree(prune_fraction=1.0)
