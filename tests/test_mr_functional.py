"""In-memory MapReduce runtime semantics."""

import pytest

from repro.mapreduce.functional import MapReduceRuntime
from repro.workloads.micro import WordCount


def test_split_sizes():
    rt = MapReduceRuntime(split_records=10)
    splits = list(rt.make_splits((i, i) for i in range(25)))
    assert [len(s) for s in splits] == [10, 10, 5]


def test_partitioning_is_total_and_deterministic():
    rt = MapReduceRuntime(n_reducers=4)
    parts = [rt.partition(k) for k in ["a", "b", (1, 2), 17]]
    assert all(0 <= p < 4 for p in parts)
    assert parts == [rt.partition(k) for k in ["a", "b", (1, 2), 17]]


def test_run_counts_accounting():
    rt = MapReduceRuntime(n_reducers=2, split_records=100, use_combiner=False)
    app = WordCount()
    out = rt.run_generated(app, 250, seed=0)
    assert out.n_map_tasks == 3
    assert out.n_input_records == 250
    assert out.n_intermediate_records == 2500  # 10 words per line


def test_reducer_count_respected():
    rt = MapReduceRuntime(n_reducers=5)
    out = rt.run_generated(WordCount(), 50, seed=0)
    assert len(out.partitions) == 5


def test_all_keys_routed_to_their_partition():
    rt = MapReduceRuntime(n_reducers=3)
    out = rt.run_generated(WordCount(), 100, seed=1)
    for pid, part in enumerate(out.partitions):
        for key, _v in part:
            assert rt.partition(key) == pid


def test_constructor_validation():
    with pytest.raises(ValueError):
        MapReduceRuntime(n_reducers=0)
    with pytest.raises(ValueError):
        MapReduceRuntime(split_records=0)


def test_run_generated_validation():
    with pytest.raises(ValueError):
        MapReduceRuntime().run_generated(WordCount(), 0)
