"""Property-based integration tests of the discrete-event cluster.

Random job mixes exercise the engine end to end; the assertions are
conservation laws that must hold for *any* schedule:

* makespan ≥ the longest standalone duration among the jobs;
* cluster energy ≥ idle power × nodes × makespan;
* per-job co-run duration ≥ its standalone duration (contention never
  speeds a job up);
* every submitted job completes exactly once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdfs.blocks import HDFS_BLOCK_SIZES
from repro.mapreduce.engine import ClusterEngine, NodeEngine
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.model.costmodel import standalone_metrics
from repro.utils.units import GB, GHZ
from repro.workloads.registry import ALL_APPS, get_app

job_strategy = st.tuples(
    st.sampled_from(ALL_APPS),
    st.sampled_from([1 * GB, 5 * GB]),
    st.sampled_from([1.2 * GHZ, 1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ]),
    st.sampled_from(HDFS_BLOCK_SIZES),
    st.integers(min_value=1, max_value=4),
)


def _spec(code, size, f, b, m):
    return JobSpec(
        instance=__import__("repro.workloads.base", fromlist=["AppInstance"]).AppInstance(
            get_app(code), size
        ),
        config=JobConfig(frequency=f, block_size=b, n_mappers=m),
    )


@settings(max_examples=25, deadline=None)
@given(jobs=st.lists(job_strategy, min_size=1, max_size=6))
def test_cluster_conservation_laws(jobs):
    cluster = ClusterEngine(n_nodes=2)
    specs = [_spec(*j) for j in jobs]
    for spec in specs:
        cluster.submit(spec)
    results = cluster.run()

    # Completion exactly once per job.
    assert sorted(r.spec.job_id for r in results) == sorted(
        s.job_id for s in specs
    )

    makespan = cluster.makespan
    # Makespan bounded below by the slowest job alone.
    longest = max(
        float(
            np.asarray(
                standalone_metrics(
                    s.instance.profile, s.instance.data_bytes,
                    s.config.frequency, s.config.block_size, s.config.n_mappers,
                ).duration
            )
        )
        for s in specs
    )
    assert makespan >= longest - 1e-6

    # Energy floor: both nodes draw idle power the whole horizon.
    idle = cluster.nodes[0].node.power.idle_power
    assert cluster.total_energy(makespan) >= 2 * idle * makespan - 1e-6

    # Per-job time never beats standalone execution.
    for r in results:
        s = r.spec
        alone = float(
            np.asarray(
                standalone_metrics(
                    s.instance.profile, s.instance.data_bytes,
                    s.config.frequency, s.config.block_size, s.config.n_mappers,
                ).duration
            )
        )
        assert r.duration >= alone * 0.999


@settings(max_examples=15, deadline=None)
@given(
    jobs=st.lists(job_strategy, min_size=2, max_size=4),
    stagger=st.floats(min_value=0.0, max_value=200.0),
)
def test_staggered_arrivals_never_start_early(jobs, stagger):
    cluster = ClusterEngine(n_nodes=1)
    arrival = 0.0
    specs = []
    for j in jobs:
        spec = _spec(*j)
        spec = JobSpec(
            instance=spec.instance, config=spec.config, submit_time=arrival
        )
        specs.append(spec)
        cluster.submit(spec)
        arrival += stagger
    results = cluster.run()
    for r in results:
        assert r.start_time >= r.spec.submit_time - 1e-9


def test_three_way_colocation_supported():
    """The engine handles more than two co-residents (the §4.2 case)."""
    engine = NodeEngine()
    for code in ("st", "wc", "gp"):
        engine.submit(_spec(code, 1 * GB, 2.4 * GHZ, HDFS_BLOCK_SIZES[2], 2))
    assert len(engine.running) == 3
    results = engine.run_to_completion()
    assert len(results) == 3
    assert engine.free_cores == 8
