"""Linear-regression tests."""

import numpy as np
import pytest

from repro.ml.linreg import LinearRegression


def test_recovers_exact_linear_relationship():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(100, 3))
    w = np.array([2.0, -1.0, 0.5])
    y = X @ w + 4.0
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.coef_, w, atol=1e-8)
    assert model.intercept_ == pytest.approx(4.0)
    assert np.allclose(model.predict(X), y, atol=1e-8)


def test_noisy_fit_close():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(500, 2))
    y = 3 * X[:, 0] - 2 * X[:, 1] + rng.normal(scale=0.1, size=500)
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.coef_, [3.0, -2.0], atol=0.05)


def test_ridge_shrinks_coefficients():
    rng = np.random.default_rng(2)
    X = rng.normal(size=(50, 4))
    y = X @ np.array([5.0, 5.0, 5.0, 5.0])
    plain = LinearRegression().fit(X, y)
    ridged = LinearRegression(ridge=100.0).fit(X, y)
    assert np.linalg.norm(ridged.coef_) < np.linalg.norm(plain.coef_)


def test_rank_deficient_handled():
    X = np.column_stack([np.arange(10.0), np.arange(10.0)])  # collinear
    y = np.arange(10.0)
    model = LinearRegression().fit(X, y)
    assert np.allclose(model.predict(X), y, atol=1e-8)


def test_single_row_prediction_shape():
    model = LinearRegression().fit(np.eye(3), np.ones(3))
    out = model.predict(np.array([1.0, 0.0, 0.0]))
    assert out.shape == (1,)


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        LinearRegression().predict(np.zeros((1, 2)))


def test_validation():
    with pytest.raises(ValueError):
        LinearRegression(ridge=-1.0)
    with pytest.raises(ValueError):
        LinearRegression().fit(np.zeros((3, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        LinearRegression().fit(np.full((3, 2), np.nan), np.zeros(3))
    model = LinearRegression().fit(np.eye(2), np.ones(2))
    with pytest.raises(ValueError):
        model.predict(np.zeros((1, 3)))
