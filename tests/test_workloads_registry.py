"""Registry, profile and class-assignment tests."""

import pytest

from repro.utils.units import GB
from repro.workloads.base import DATA_SIZES, AppClass, AppInstance
from repro.workloads.profiles import PROFILES, class_for, profile_for
from repro.workloads.registry import (
    ALL_APPS,
    TESTING_APPS,
    TRAINING_APPS,
    all_instances,
    all_pairs,
    get_app,
    instances_for,
)


def test_eleven_applications():
    assert len(ALL_APPS) == 11
    assert set(TRAINING_APPS) | set(TESTING_APPS) == set(ALL_APPS)
    assert not set(TRAINING_APPS) & set(TESTING_APPS)


def test_paper_split_of_known_and_unknown():
    # §7: NB, CF, SVM, PR, HMM, KM are the unknown testing apps.
    assert set(TESTING_APPS) == {"nb", "cf", "svm", "pr", "hmm", "km"}


def test_table3_class_assignments():
    """Classes listed in the paper's Table 3 scenarios."""
    expected = {
        "svm": "C", "wc": "C", "hmm": "C",
        "ts": "H", "gp": "H",
        "st": "I",
        "cf": "M", "fp": "M",
    }
    for code, cls in expected.items():
        assert get_app(code).app_class.value == cls


def test_every_class_has_a_training_representative():
    classes = {get_app(c).app_class for c in TRAINING_APPS}
    assert classes == set(AppClass)


def test_get_app_caches_instances():
    assert get_app("wc") is get_app("wc")


def test_get_app_unknown_code():
    with pytest.raises(KeyError, match="unknown application"):
        get_app("nope")


def test_data_sizes_match_paper():
    assert [s // GB for s in DATA_SIZES] == [1, 5, 10]


def test_instance_counts():
    assert len(all_instances()) == 33
    assert len(all_pairs()) == 528  # the paper's §7 workload count
    assert len(instances_for(("wc",), sizes=(1 * GB,))) == 1


def test_all_profiles_valid_and_distinct():
    assert set(PROFILES) == set(ALL_APPS)
    signatures = set()
    for code in ALL_APPS:
        p = profile_for(code)
        signatures.add(
            (p.instructions_per_byte, p.llc_mpki0, p.io_overlap, p.shuffle_factor)
        )
    assert len(signatures) == len(ALL_APPS)  # no two apps identical


def test_profile_lookup_errors():
    with pytest.raises(KeyError):
        profile_for("nope")
    with pytest.raises(KeyError):
        class_for("nope")


def test_instance_label_and_props():
    inst = AppInstance(get_app("st"), 5 * GB)
    assert inst.label == "st@5GB"
    assert inst.app_class is AppClass.IO
    assert inst.profile is get_app("st").profile


def test_memory_class_has_big_footprints():
    for code in ALL_APPS:
        app = get_app(code)
        if app.app_class is AppClass.MEMORY:
            assert app.profile.footprint_per_task >= 800 * 2**20
            assert app.profile.llc_mpki0 >= 4.0


def test_io_class_has_low_overlap_and_heavy_io():
    for code in ALL_APPS:
        app = get_app(code)
        if app.app_class is AppClass.IO:
            assert app.profile.io_overlap <= 0.3
            assert app.profile.disk_bytes_per_input_byte >= 2.0
