"""Unit tests of the sensitivity and steady-state extension modules."""

import pytest

from repro.core.stp import LkTSTP
from repro.experiments.sensitivity import run_sensitivity
from repro.experiments.steady_state import _poisson_workload, run_steady_state
from repro.model.calibration import DEFAULT_CONSTANTS
from repro.utils.units import GB


class TestSensitivity:
    @pytest.fixture(scope="class")
    def report(self):
        # One field, one delta: fast unit-level coverage; the full
        # sweep lives in benchmarks/test_sensitivity.py.
        import repro.experiments.sensitivity as mod

        old = mod.PERTURBED_FIELDS
        mod.PERTURBED_FIELDS = ("task_overhead_s",)
        try:
            return run_sensitivity(deltas=(0.5,), data_bytes=1 * GB)
        finally:
            mod.PERTURBED_FIELDS = old

    def test_baseline_first(self, report):
        assert report.checks[0].label == "baseline"
        assert report.checks[0].holds

    def test_perturbed_labelled(self, report):
        assert report.checks[1].label.startswith("task_overhead_s")

    def test_render(self, report):
        assert "sensitivity" in report.render().lower()


class TestPoissonWorkload:
    def test_deterministic_and_ordered(self):
        a = _poisson_workload(10, 30.0, seed=5)
        b = _poisson_workload(10, 30.0, seed=5)
        assert [(t, i.label) for t, i in a] == [(t, i.label) for t, i in b]
        times = [t for t, _ in a]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_mean_interarrival_roughly_respected(self):
        jobs = _poisson_workload(200, 30.0, seed=0)
        mean = jobs[-1][0] / len(jobs)
        assert 20.0 < mean < 45.0


class TestSteadyStateSmall:
    def test_runs_with_lkt_backend(self, small_database):
        report = run_steady_state(
            LkTSTP(small_database),
            _TrueClassClassifier(),
            n_jobs=8,
            mean_interarrival_s=40.0,
            n_nodes=2,
            seed=3,
        )
        ecost, fifo = report.runs
        assert ecost.n_jobs == fifo.n_jobs == 8
        assert ecost.makespan > 0
        assert "Poisson" in report.render()


class _TrueClassClassifier:
    """Stub classifier: threshold rules (no trained centroids needed)."""

    def classify(self, features):
        from repro.analysis.classify import RuleBasedClassifier

        return RuleBasedClassifier().classify(features)
