"""PCA tests, cross-checked against a direct SVD."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.pca import PCA


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    latent = rng.normal(size=(200, 2))
    mix = rng.normal(size=(2, 6))
    return latent @ mix + 0.01 * rng.normal(size=(200, 6))


def test_components_are_orthonormal(data):
    pca = PCA().fit(data)
    C = pca.components_
    assert np.allclose(C @ C.T, np.eye(len(C)), atol=1e-8)


def test_variance_ratios_sorted_and_sum_to_one(data):
    pca = PCA().fit(data)
    evr = pca.explained_variance_ratio_
    assert np.all(np.diff(evr) <= 1e-12)
    assert evr.sum() == pytest.approx(1.0)


def test_two_latent_dims_captured_by_two_components(data):
    pca = PCA(n_components=2).fit(data)
    assert pca.explained_variance_ratio_.sum() > 0.99


def test_transform_centers_data(data):
    pca = PCA(n_components=2).fit(data)
    scores = pca.transform(data)
    assert np.allclose(scores.mean(axis=0), 0.0, atol=1e-8)


def test_inverse_transform_reconstructs(data):
    pca = PCA(n_components=2).fit(data)
    recon = pca.inverse_transform(pca.transform(data))
    assert np.allclose(recon, data, atol=0.1)


def test_matches_numpy_svd_variances(data):
    pca = PCA().fit(data)
    Xc = data - data.mean(axis=0)
    s = np.linalg.svd(Xc, compute_uv=False)
    assert np.allclose(pca.explained_variance_, s**2 / (len(data) - 1), rtol=1e-10)


def test_fit_transform_equivalence(data):
    a = PCA(n_components=3).fit_transform(data)
    b = PCA(n_components=3).fit(data).transform(data)
    assert np.allclose(a, b)


def test_feature_loadings_accessor(data):
    pca = PCA(n_components=2).fit(data)
    assert pca.feature_loadings(0).shape == (6,)
    with pytest.raises(IndexError):
        pca.feature_loadings(5)


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        PCA().transform(np.zeros((3, 3)))


def test_validation():
    with pytest.raises(ValueError):
        PCA(n_components=0)
    with pytest.raises(ValueError):
        PCA().fit(np.zeros(5))
    with pytest.raises(ValueError):
        PCA().fit(np.zeros((1, 5)))
    with pytest.raises(ValueError):
        PCA(n_components=10).fit(np.zeros((4, 3)) + np.eye(4, 3))
    with pytest.raises(ValueError):
        PCA().fit(np.ones((5, 3)))  # zero variance


@settings(max_examples=25, deadline=None)
@given(
    X=arrays(
        np.float64,
        shape=st.tuples(st.integers(5, 30), st.integers(2, 6)),
        elements=st.floats(-100, 100),
    )
)
def test_projection_never_increases_variance(X):
    if np.allclose(X.var(axis=0).sum(), 0):
        return
    pca = PCA(n_components=1).fit(X)
    scores = pca.transform(X)
    assert scores.var() <= X.var(axis=0).sum() + 1e-6
