"""Robustness-extension module tests (small scope, fast)."""

import pytest

from repro.core.stp import LkTSTP
from repro.experiments.robustness import RobustnessReport, run_robustness


@pytest.fixture(scope="module")
def report(small_database):
    return run_robustness(
        LkTSTP(small_database),
        noise_scales=(1.0, 8.0),
        misclassify_probs=(0.0, 1.0),
        max_pairs=6,
        seed=1,
    )


def test_all_conditions_measured(report):
    assert set(report.conditions) == {
        "counter noise x1",
        "counter noise x8",
        "misclassify p=0",
        "misclassify p=1",
    }
    assert report.n_pairs == 6


def test_errors_nonnegative(report):
    assert all(v >= -1e-9 for v in report.mean_error.values())


def test_noise_bounded_for_lkt(report):
    """LkT keys on class+size, so pure counter noise cannot move it."""
    assert report.mean_error["counter noise x8"] == pytest.approx(
        report.mean_error["counter noise x1"], abs=1e-9
    )


def test_misclassification_matters(report):
    assert (
        report.mean_error["misclassify p=1"]
        >= report.mean_error["misclassify p=0"]
    )


def test_render(report):
    text = report.render()
    assert "Robustness" in text and "noise" in text
