"""Hardened artifact-cache tests: corruption, staleness, races.

The cache must never fail a caller because of what's on disk: corrupt
or stale files are quarantined and rebuilt, writes are atomic, and
concurrent writers on the same key both succeed.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import artifacts


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    artifacts.reset_cache_stats()
    return tmp_path


class TestContentKeys:
    def test_cache_dir_override(self, cache_dir):
        assert artifacts.cache_dir() == cache_dir
        artifacts.cached("where", lambda: 1)
        assert list(cache_dir.glob("where-*.pkl"))

    def test_path_embeds_version_and_fingerprint(self, cache_dir):
        path = artifacts.cache_path("item")
        fp = artifacts.content_fingerprint()
        assert path.name == f"item-{artifacts.CACHE_VERSION}-{fp}.pkl"
        assert len(fp) == 12

    def test_fingerprint_is_stable(self):
        assert artifacts.content_fingerprint() == artifacts.content_fingerprint()

    def test_fingerprint_stable_across_processes(self):
        """The digest must be identical in fresh interpreters, or the
        content-keyed cache never hits across runs (regression: a
        default ``repr`` leaked a memory address into the payload)."""
        src = str(Path(artifacts.__file__).parents[2])
        code = (
            "from repro.experiments.artifacts import content_fingerprint;"
            "print(content_fingerprint())"
        )
        seen = {
            subprocess.run(
                [sys.executable, "-c", code],
                env={**os.environ, "PYTHONPATH": src},
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert seen == {artifacts.content_fingerprint()}

    def test_version_bump_invalidates(self, cache_dir, monkeypatch):
        calls = []
        build = lambda: calls.append(1) or "value"
        artifacts.cached("versioned", build)
        artifacts.cached("versioned", build)
        assert len(calls) == 1
        monkeypatch.setattr(artifacts, "CACHE_VERSION", "v999-test")
        artifacts.cached("versioned", build)
        assert len(calls) == 2  # new version => rebuilt under a new key
        # both versions now coexist on disk
        assert len(list(cache_dir.glob("versioned-*.pkl"))) == 2


class TestCorruptionTolerance:
    def test_garbage_file_is_quarantined_and_rebuilt(self, cache_dir):
        path = artifacts.cache_path("item")
        path.write_bytes(b"\x04not a pickle at all")
        value = artifacts.cached("item", lambda: {"ok": True})
        assert value == {"ok": True}
        # the bad file moved aside; the rebuilt one loads cleanly
        assert (cache_dir / (path.name + ".corrupt")).exists()
        assert artifacts.cached("item", lambda: {"ok": False}) == {"ok": True}
        stats = artifacts.cache_stats()
        assert stats.corrupt == 1 and stats.misses == 1 and stats.hits == 1

    def test_truncated_pickle_recovers(self, cache_dir):
        path = artifacts.cache_path("trunc")
        blob = pickle.dumps({"version": artifacts.CACHE_VERSION, "payload": 1})
        path.write_bytes(blob[: len(blob) // 2])
        assert artifacts.cached("trunc", lambda: 42) == 42

    def test_unpicklable_class_reference_recovers(self, cache_dir):
        path = artifacts.cache_path("ghost")
        # references a class that does not exist => AttributeError on load
        blob = (
            b"\x80\x04\x95%\x00\x00\x00\x00\x00\x00\x00\x8c\x08builtins\x94"
            b"\x8c\x10NoSuchClassEver42\x94\x93\x94."
        )
        path.write_bytes(blob)
        assert artifacts.cached("ghost", lambda: "rebuilt") == "rebuilt"
        assert artifacts.cache_stats().corrupt == 1

    def test_legacy_raw_payload_treated_as_stale(self, cache_dir):
        path = artifacts.cache_path("legacy")
        with path.open("wb") as fh:
            pickle.dump({"not": "an envelope"}, fh)
        assert artifacts.cached("legacy", lambda: "fresh") == "fresh"
        assert artifacts.cache_stats().stale == 1

    def test_foreign_fingerprint_envelope_is_stale(self, cache_dir):
        path = artifacts.cache_path("moved")
        with path.open("wb") as fh:
            pickle.dump(
                {
                    "version": artifacts.CACHE_VERSION,
                    "fingerprint": "deadbeefdead",
                    "payload": "from another calibration",
                },
                fh,
            )
        assert artifacts.cached("moved", lambda: "rebuilt") == "rebuilt"
        assert artifacts.cache_stats().stale == 1


class TestAtomicity:
    def test_no_temp_files_left_behind(self, cache_dir):
        for i in range(5):
            artifacts.cached(f"tmpcheck-{i}", lambda: list(range(100)))
        assert list(cache_dir.glob(".*.tmp")) == []

    def test_failed_build_writes_nothing(self, cache_dir):
        with pytest.raises(RuntimeError):
            artifacts.cached("boom", _raise_build)
        assert list(cache_dir.glob("boom-*")) == []
        assert list(cache_dir.glob(".*.tmp")) == []


def _raise_build():
    raise RuntimeError("build failed")


def _race_one(args: tuple[str, str]) -> dict:
    """Child-process body for the concurrent-writer race."""
    cache_root, key = args
    os.environ["REPRO_CACHE_DIR"] = cache_root
    from repro.experiments import artifacts as child_artifacts

    return child_artifacts.cached(key, lambda: {"winner": True, "n": 123})


class TestConcurrentWriters:
    def test_two_processes_racing_same_key(self, cache_dir):
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        with ctx.Pool(2) as pool:
            results = pool.map(
                _race_one, [(str(cache_dir), "raced")] * 2
            )
        assert results == [{"winner": True, "n": 123}] * 2
        # whoever lost the race, the surviving file is a valid envelope
        assert artifacts.cached("raced", lambda: {"winner": False}) == {
            "winner": True,
            "n": 123,
        }


class TestClearCache:
    def test_counts_everything_it_removes(self, cache_dir):
        artifacts.cached("one", lambda: 1)
        artifacts.cached("two", lambda: 2)
        bad = artifacts.cache_path("bad")
        bad.write_bytes(b"junk")
        artifacts.cached("bad", lambda: 3)  # quarantines junk, writes fresh
        n = artifacts.clear_cache()
        assert n == 4  # three .pkl + one .pkl.corrupt
        assert list(cache_dir.glob("*.pkl")) == []
        assert list(cache_dir.glob("*.corrupt")) == []
        assert artifacts.clear_cache() == 0


class TestStats:
    def test_hits_misses_and_rate(self, cache_dir):
        artifacts.reset_cache_stats()
        artifacts.cached("s", lambda: 1)
        artifacts.cached("s", lambda: 1)
        artifacts.cached("s", lambda: 1)
        stats = artifacts.cache_stats()
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_rate_none_when_untouched(self):
        artifacts.reset_cache_stats()
        assert artifacts.cache_stats().hit_rate is None


class TestCliWithPoisonedCache:
    def test_classify_command_survives_garbage_pickle(
        self, cache_dir, capsys
    ):
        """The seed failure: a garbage ``.pkl`` pre-seeded exactly where
        the classifier cache lives must not crash the CLI."""
        artifacts.cache_path("classifier").write_bytes(b"\x04garbage bytes")
        from repro.__main__ import main

        assert main(["classify", "st", "1"]) == 0
        out = capsys.readouterr().out
        assert "classified as" in out
        assert artifacts.cache_stats().corrupt >= 1
