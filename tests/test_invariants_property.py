"""Property-based invariants: engine conservation laws under faults.

Every test here is a *property* checked over many generated cases:
random workloads (job count, arrival rate, tuned/untuned knobs, node
count) and random fault plans (rate, seed), all derived from one
integer case seed.  With ``hypothesis`` installed the cases come from
its integer strategy (shrinking included); without it a seeded
``parametrize`` fallback runs the same properties over a fixed seed
range, so the suite never silently loses coverage on a bare box.

The suite asserts the invariants the fault-injection PR must preserve:

* every submitted job completes exactly once — healthy or faulty;
* no node is busy longer than the horizon, and downtime never
  overlaps busy time;
* the O(1) prefix-sum energy path agrees with the windowed
  segment-scan path (and energy is additive over window splits);
* the recontext cache is semantically transparent (tiny cache ==
  default cache, byte-identical results);
* a node generation bump invalidates stale completion events — an
  evicted job never completes from its pre-eviction schedule;
* repeated identical runs yield identical recovery traces
  (independent of ``REPRO_WORKERS``, which CI varies);
* the process-pool sweep path is bit-identical to the serial path.

Total generated cases across the suite: >= 200.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, InjectionPlan
from repro.mapreduce.engine import ClusterEngine, RecontextCache
from repro.utils.rng import rng_from
from repro.workloads.streams import poisson_job_stream

try:
    from hypothesis import given
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on bare boxes only
    HAVE_HYPOTHESIS = False


def seeded_cases(n: int):
    """Run the test once per generated integer ``case_seed``.

    With hypothesis: cases drawn from the full int32 range (plus
    shrinking on failure), at the *depth of the active profile* —
    ``tests/conftest.py`` registers derandomized ``dev``/``ci``
    profiles selected via ``REPRO_HYPOTHESIS_PROFILE``, so each CI
    lane picks its own example budget instead of this file hard-coding
    one.  Without hypothesis: ``case_seed`` sweeps ``range(n)`` via
    ``parametrize`` — same property, fixed seeds, ``n`` per test.
    """

    def deco(fn):
        if HAVE_HYPOTHESIS:
            return given(case_seed=st.integers(min_value=0, max_value=2**31 - 1))(fn)
        return pytest.mark.parametrize("case_seed", range(n))(fn)

    return deco


# -------------------------------------------------------- generators
def _case(case_seed: int, *, max_jobs: int = 10, faulty: bool = True):
    """Derive one (n_nodes, specs, plan) workload from a case seed."""
    rng = rng_from(case_seed)
    n_nodes = int(rng.integers(1, 5))
    n_jobs = int(rng.integers(1, max_jobs + 1))
    specs = list(
        poisson_job_stream(
            n_jobs,
            mean_interarrival_s=float(rng.uniform(2.0, 60.0)),
            seed=int(rng.integers(2**31)),
            tuned=bool(rng.integers(2)),
            job_ids_from=1,
        )
    )
    horizon = specs[-1].submit_time + 4000.0
    rate = float(rng.choice([0.0, 2.0, 10.0, 30.0])) if faulty else 0.0
    if rate > 0:
        plan = InjectionPlan.generate(
            n_nodes, horizon, rate_per_1ks=rate, seed=int(rng.integers(2**31))
        )
    else:
        plan = InjectionPlan.empty()
    return n_nodes, specs, plan


def _run(n_nodes, specs, plan, *, recorder="off", cache=None):
    cluster = ClusterEngine(
        n_nodes, recorder=recorder, metrics_cache=cache
    )
    for s in specs:
        cluster.submit(s)
    injector = FaultInjector(cluster, plan).install()
    results = cluster.run()
    return cluster, injector, results


def _rows(results):
    return [
        (r.spec.label, r.node_id, r.start_time, r.finish_time, r.energy_joules)
        for r in results
    ]


# -------------------------------------------------------- properties
@seeded_cases(60)
def test_every_job_completes_exactly_once(case_seed):
    n_nodes, specs, plan = _case(case_seed)
    _cluster, _inj, results = _run(n_nodes, specs, plan)
    finished = sorted(r.spec.job_id for r in results)
    assert finished == sorted(s.job_id for s in specs)


@seeded_cases(45)
def test_busy_time_within_horizon(case_seed):
    n_nodes, specs, plan = _case(case_seed)
    cluster, _inj, results = _run(n_nodes, specs, plan)
    horizon = cluster.now
    assert cluster.makespan <= horizon + 1e-6
    for node in cluster.nodes:
        node.advance_to(horizon)
        busy = node.busy_seconds
        down = node.down_seconds(0.0, horizon)
        assert 0.0 <= busy <= horizon + 1e-6
        # Downtime and busy time never overlap: a crashed node runs
        # nothing, so the two together still fit in the horizon.
        assert busy + down <= horizon + 1e-6


@seeded_cases(40)
def test_energy_prefix_sum_equals_segment_scan(case_seed):
    n_nodes, specs, plan = _case(case_seed)
    cluster, _inj, _results = _run(n_nodes, specs, plan, recorder="full")
    # Late plan events (e.g. a recovery after the last completion) can
    # advance node clocks past the makespan; the engine clock bounds all.
    horizon = max(cluster.now, 1.0)
    rng = rng_from(case_seed + 1)
    mid = float(rng.uniform(0.0, horizon))
    for node in cluster.nodes:
        node.advance_to(horizon)
        full = node.energy_between(0.0, horizon)  # O(1) prefix-sum path
        split = node.energy_between(0.0, mid) + node.energy_between(mid, horizon)
        assert split == pytest.approx(full, rel=1e-9, abs=1e-6)
        assert full >= 0.0


@seeded_cases(35)
def test_recontext_cache_is_transparent(case_seed):
    n_nodes, specs, plan = _case(case_seed)
    _c1, i1, r1 = _run(n_nodes, specs, plan)
    _c2, i2, r2 = _run(
        n_nodes, specs, plan, cache=RecontextCache(maxsize=1)
    )
    assert _rows(r1) == _rows(r2)  # exact: the cache may never alter bytes
    assert i1.trace == i2.trace


@seeded_cases(30)
def test_repeat_run_is_deterministic(case_seed):
    n_nodes, specs, plan = _case(case_seed, max_jobs=6)
    c1, i1, r1 = _run(n_nodes, specs, plan)
    c2, i2, r2 = _run(n_nodes, specs, plan)
    assert i1.trace == i2.trace
    assert _rows(r1) == _rows(r2)
    assert c1.edp() == c2.edp()


@seeded_cases(25)
def test_no_completion_survives_generation_bump(case_seed):
    """Evicting a job at t must cancel its scheduled completion."""
    rng = rng_from(case_seed)
    specs = list(
        poisson_job_stream(
            1, seed=int(rng.integers(2**31)), tuned=bool(rng.integers(2)),
            job_ids_from=1,
        )
    )
    spec = specs[0]
    # Healthy duration, to aim the eviction mid-flight.
    ref = ClusterEngine(1, recorder="off")
    ref.submit(spec)
    d = ref.run()[0].finish_time - spec.submit_time
    cut = spec.submit_time + d * float(rng.uniform(0.2, 0.8))

    cluster = ClusterEngine(1, recorder="off")
    cluster.submit(spec)
    evicted = []

    def evict_and_resubmit(c, t):
        engine = c.nodes[0]
        if not engine.running:  # pragma: no cover - guard, never expected
            return
        engine.advance_to(t)
        evicted.append(engine.evict(spec.job_id))
        c._arm(engine)
        c.pending.append(spec)
        c.scheduler(c, t)

    cluster.call_at(cut, evict_and_resubmit)
    results = cluster.run()
    # Exactly one completion, and not the stale pre-eviction one: the
    # job restarted from scratch at `cut`, so it finishes a full
    # duration later, never at the originally-armed time.
    assert len(results) == 1
    assert len(evicted) == 1
    assert results[0].finish_time == pytest.approx(cut + d)
    assert results[0].finish_time > spec.submit_time + d + 1e-9


@seeded_cases(15)
def test_pool_sweep_matches_serial(case_seed):
    """SweepExecutor (REPRO_WORKERS-driven) == serial sweep, bitwise."""
    import numpy as np

    from repro.model.sweep import sweep_solo
    from repro.parallel.executor import SweepExecutor
    from repro.utils.units import GB
    from repro.workloads.base import AppInstance
    from repro.workloads.registry import ALL_APPS, get_app

    rng = rng_from(case_seed)
    code = ALL_APPS[int(rng.integers(len(ALL_APPS)))]
    inst = AppInstance(get_app(code), int(rng.choice([1 * GB, 5 * GB])))
    [pooled] = SweepExecutor().sweep_solos([inst])
    serial = sweep_solo(inst)
    assert np.array_equal(pooled.edp, serial.edp)
