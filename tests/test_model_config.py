"""Configuration-space tests."""

import numpy as np
import pytest

from repro.hardware.node import ATOM_C2758
from repro.model.config import (
    JobConfig,
    config_grid,
    grid_to_configs,
    iter_configs,
    pair_config_grid,
)
from repro.utils.units import GHZ, MB


def test_single_grid_is_160_points():
    """§7: 5 block sizes × 8 mapper counts × 4 frequencies."""
    f, b, m = config_grid(ATOM_C2758)
    assert len(f) == len(b) == len(m) == 160
    assert len({(x, y, z) for x, y, z in zip(f, b, m)}) == 160


def test_pair_grid_default_partitions():
    """(4·5)² knob combos × 7 full core partitions = 2800."""
    arrays = pair_config_grid(ATOM_C2758)
    assert all(len(a) == 2800 for a in arrays)
    f1, b1, m1, f2, b2, m2 = arrays
    assert np.all(m1 + m2 == ATOM_C2758.n_cores)


def test_pair_grid_custom_partitions():
    arrays = pair_config_grid(ATOM_C2758, partitions=[(2, 2)])
    assert len(arrays[0]) == 400
    with pytest.raises(ValueError, match="invalid core partition"):
        pair_config_grid(ATOM_C2758, partitions=[(8, 8)])


def test_job_config_validation():
    cfg = JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=4)
    assert cfg.validate_for(ATOM_C2758) is cfg
    with pytest.raises(ValueError):
        JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=0)
    with pytest.raises(ValueError, match="not a studied HDFS size"):
        JobConfig(frequency=2.4 * GHZ, block_size=100 * MB, n_mappers=4).validate_for(
            ATOM_C2758
        )
    with pytest.raises(ValueError, match="not a DVFS level"):
        JobConfig(frequency=1.8 * GHZ, block_size=256 * MB, n_mappers=4).validate_for(
            ATOM_C2758
        )


def test_job_config_label_and_row():
    cfg = JobConfig(frequency=2.4 * GHZ, block_size=512 * MB, n_mappers=3)
    assert cfg.label == "2.4GHz/512MB/3m"
    assert cfg.as_row() == (2.4, 512, 3)


def test_grid_roundtrip():
    f, b, m = config_grid(ATOM_C2758)
    configs = grid_to_configs(f, b, m)
    assert len(configs) == 160
    assert configs[0].validate_for(ATOM_C2758)


def test_iter_configs_restricted_mappers():
    configs = list(iter_configs(ATOM_C2758, mappers=[4]))
    assert len(configs) == 20
    assert all(c.n_mappers == 4 for c in configs)
