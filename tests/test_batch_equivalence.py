"""Differential testing of the SoA batch backend, to 1e-9.

Three independent implementations answer every solvable scenario: the
discrete-event engine (reference), the scalar closed forms, and the
vectorised batch solvers.  This file drives all three over the full
PR-5 oracle matrix and a seeded fuzzer corpus and requires:

* batch vs event engine within ``REL_TOL`` (1e-9) on makespan, total
  energy, EDP, node-0 busy seconds, and every per-job energy;
* batch vs oracle expectation within the same tolerance wherever the
  oracle dispatcher covers the scenario;
* scalar vs batch *bit-for-bit* — the two backends are required to
  perform the same floating-point operations (see
  ``repro.batch.engine._solve_scalar``);
* zero fallbacks on the matrix (every matrix scenario is a solvable
  shape) and an honest, bounded fallback count on the fuzz corpus.
"""

from __future__ import annotations

import random

import pytest

from repro.batch import (
    BACKENDS,
    SOLVABLE_CASES,
    ScenarioBatch,
    classify,
    evaluate_scenarios,
)
from repro.conformance import oracle_expectation, oracle_matrix
from repro.conformance.fuzzer import generate_scenario
from repro.conformance.oracles import REL_TOL
from repro.telemetry.profiling import BatchTelemetry

pytestmark = pytest.mark.batch

_MATRIX = oracle_matrix()
_FUZZ_N = 500
_FUZZ_SEED = 0

_QUANTITIES = ("makespan", "total_energy", "edp", "busy_seconds")


def _fuzz_corpus() -> list:
    return [
        generate_scenario(random.Random(f"{_FUZZ_SEED}:{i}"))
        for i in range(_FUZZ_N)
    ]


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


def _assert_close(got, want, scenario, what: str) -> None:
    for q in _QUANTITIES:
        assert _rel(getattr(got, q), getattr(want, q)) < REL_TOL, (
            f"{what}: {q} diverged on {scenario.to_source()}"
        )
    assert len(got.job_energies) == len(want.job_energies)
    for j, (g, w) in enumerate(zip(got.job_energies, want.job_energies)):
        assert _rel(g, w) < REL_TOL, (
            f"{what}: job_energies[{j}] diverged on {scenario.to_source()}"
        )


# ------------------------------------------------------------- matrix
def test_matrix_batch_agrees_with_event_engine():
    tel = BatchTelemetry()
    batch = evaluate_scenarios(_MATRIX, backend="batch", telemetry=tel)
    event = evaluate_scenarios(_MATRIX, backend="event")
    for scenario, b, e in zip(_MATRIX, batch, event):
        assert not b.fallback, (
            f"matrix scenario fell back: {scenario.to_source()}"
        )
        _assert_close(b, e, scenario, "batch vs event")
    assert tel.fallbacks == 0
    assert tel.batched == len(_MATRIX)
    # The matrix covers every solvable class.
    assert set(tel.by_case) == set(SOLVABLE_CASES)


def test_matrix_batch_agrees_with_oracles():
    batch = evaluate_scenarios(_MATRIX, backend="batch")
    for scenario, b in zip(_MATRIX, batch):
        expected = oracle_expectation(scenario)
        assert expected is not None
        assert _rel(b.makespan, expected.makespan) < REL_TOL
        assert _rel(b.total_energy, expected.total_energy) < REL_TOL
        assert _rel(b.edp, expected.edp) < REL_TOL


def test_matrix_scalar_is_bit_identical_to_batch():
    batch = evaluate_scenarios(_MATRIX, backend="batch")
    scal = evaluate_scenarios(_MATRIX, backend="scalar")
    for scenario, b, s in zip(_MATRIX, batch, scal):
        assert s.backend == "scalar" and not s.fallback
        for q in _QUANTITIES:
            assert getattr(b, q) == getattr(s, q), (
                f"scalar/batch bit divergence in {q}: {scenario.to_source()}"
            )
        assert b.job_energies == s.job_energies


def test_matrix_pack_unpack_round_trip():
    batch = ScenarioBatch.from_scenarios(list(_MATRIX))
    assert len(batch) == len(_MATRIX)
    for original, restored in zip(_MATRIX, batch.scenarios()):
        assert restored.n_nodes == original.n_nodes
        assert restored.jobs == original.jobs
        assert restored.recorder == original.recorder
        assert restored.fault_events == original.fault_events


# --------------------------------------------------------- fuzz corpus
def test_fuzz_corpus_batch_agrees_with_event_engine():
    corpus = _fuzz_corpus()
    batch = evaluate_scenarios(corpus, backend="batch")
    event = evaluate_scenarios(corpus, backend="event")
    supported = 0
    for scenario, b, e in zip(corpus, batch, event):
        if b.fallback:
            # A fallback *is* an event run — it must match trivially,
            # and its classification must be outside the closed forms
            # or a chain whose arrivals overlapped.
            assert b.case == "event" or b.case in SOLVABLE_CASES
            continue
        supported += 1
        _assert_close(b, e, scenario, "batch vs event (fuzz)")
    # The generator's shape mix guarantees a healthy solvable share;
    # a collapse here means the classifier got too conservative.
    assert supported >= _FUZZ_N // 3


def test_fuzz_corpus_scalar_is_bit_identical_to_batch():
    corpus = _fuzz_corpus()
    batch = evaluate_scenarios(corpus, backend="batch")
    scal = evaluate_scenarios(corpus, backend="scalar")
    for scenario, b, s in zip(corpus, batch, scal):
        assert b.fallback == s.fallback
        if b.fallback:
            continue
        for q in _QUANTITIES:
            assert getattr(b, q) == getattr(s, q), (
                f"scalar/batch bit divergence in {q}: {scenario.to_source()}"
            )
        assert b.job_energies == s.job_energies


# ------------------------------------------------------------ plumbing
def test_backend_validation():
    with pytest.raises(ValueError, match="unknown backend"):
        evaluate_scenarios(list(_MATRIX[:1]), backend="gpu")
    assert BACKENDS == ("event", "scalar", "batch")


def test_classify_routes_wide_sets_to_event():
    # 8+ co-resident jobs hit NumPy pairwise summation inside the
    # engine's context kernel; the batch layer must refuse them.
    from repro.conformance import Scenario, ScenarioJob
    from repro.utils.units import GB, GHZ, MB

    jobs = tuple(
        ScenarioJob(
            code="wc", data_bytes=1 * GB, frequency=1.2 * GHZ,
            block_size=128 * MB, n_mappers=1, submit_time=0.0,
        )
        for _ in range(8)
    )
    assert classify(Scenario(n_nodes=1, jobs=jobs)) == "event"


def test_colocation_context_soa_refuses_wide_and_invalid_sets():
    import numpy as np

    from repro.batch import colocation_context_soa
    from repro.batch.kernel import ProfileSoA
    from repro.workloads.registry import get_app

    p1 = ProfileSoA.from_profiles([get_app("wc").profile])
    wide = p1.take(np.zeros((1, 8), dtype=np.intp))
    with pytest.raises(ValueError, match="event engine"):
        colocation_context_soa(
            wide, np.ones((1, 8)), np.ones((1, 8), dtype=bool)
        )
    pair = p1.take(np.zeros((1, 2), dtype=np.intp))
    with pytest.raises(ValueError, match="mapper counts"):
        colocation_context_soa(
            pair, np.zeros((1, 2)), np.ones((1, 2), dtype=bool)
        )


def test_telemetry_merge_and_snapshot():
    a = BatchTelemetry()
    a.record_scenario("single", "batch", False)
    a.record_kernel(3)
    b = BatchTelemetry()
    b.record_scenario("pair", "event", True)
    b.record_scenario("single", "batch", False)
    b.record_kernel(1)
    merged = a.merge(b)
    assert merged is a
    assert a.scenarios == 3 and a.fallbacks == 1 and a.batched == 2
    assert a.by_case == {"single": 2, "pair": 1}
    snap = a.as_dict()
    assert snap["case_single"] == 2
    assert snap["batched_rate"] == pytest.approx(2 / 3)
    assert snap["mean_lanes_per_call"] == pytest.approx(2.0)
    empty = BatchTelemetry()
    assert empty.batched_rate is None
    assert empty.mean_lanes_per_call is None


def test_telemetry_counts_fallbacks():
    corpus = _fuzz_corpus()[:100]
    tel = BatchTelemetry()
    outcomes = evaluate_scenarios(corpus, backend="batch", telemetry=tel)
    assert tel.scenarios == len(corpus)
    assert tel.fallbacks == sum(1 for o in outcomes if o.fallback)
    assert tel.batched == sum(1 for o in outcomes if not o.fallback)
    assert tel.kernel_lanes <= len(corpus)
    rendered = tel.render()
    assert "batch telemetry" in rendered
