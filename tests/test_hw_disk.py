"""Disk model tests, including water-filling share properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.disk import DiskModel
from repro.utils.units import MB


@pytest.fixture
def disk():
    return DiskModel()


def test_sequential_efficiency_monotone_in_extent(disk):
    extents = np.array([1, 16, 64, 256, 1024]) * MB
    eff = disk.sequential_efficiency(extents)
    assert np.all(np.diff(eff) > 0)
    assert np.all(eff < 1.0)


def test_sequential_efficiency_half_point(disk):
    assert float(disk.sequential_efficiency(disk.half_extent)) == pytest.approx(0.5)


def test_aggregate_bw_degrades_with_streams(disk):
    bw = disk.aggregate_bw(np.array([1, 2, 4, 8]), 256 * MB)
    assert np.all(np.diff(bw) < 0)


def test_aggregate_bw_zero_streams(disk):
    assert float(disk.aggregate_bw(0, 256 * MB)) == 0.0


def test_aggregate_bw_never_exceeds_peak(disk):
    assert float(disk.aggregate_bw(1, 10_000 * MB)) < disk.peak_bw


def test_share_satisfies_small_demands_first(disk):
    alloc = disk.share(np.array([1 * MB, 500 * MB]), 256 * MB)
    assert alloc[0] == pytest.approx(1 * MB)
    assert alloc[1] < 500 * MB  # capped at remaining capacity


def test_share_zero_demand_gets_zero(disk):
    alloc = disk.share(np.array([0.0, 50 * MB]), 256 * MB)
    assert alloc[0] == 0.0
    assert alloc[1] == pytest.approx(50 * MB)


def test_share_rejects_2d(disk):
    with pytest.raises(ValueError):
        disk.share(np.zeros((2, 2)), 256 * MB)


@settings(max_examples=50, deadline=None)
@given(
    demands=st.lists(
        st.floats(min_value=0, max_value=400 * MB, allow_nan=False),
        min_size=1,
        max_size=8,
    )
)
def test_share_invariants(demands):
    """Water-filling: never exceed demand, never exceed capacity, and
    the allocation is work-conserving (either all demand met or the
    capacity exhausted)."""
    disk = DiskModel()
    d = np.asarray(demands)
    alloc = disk.share(d, 256 * MB)
    assert np.all(alloc <= d + 1e-6)
    k = int((d > 0).sum())
    if k:
        cap = float(disk.aggregate_bw(k, 256 * MB))
        assert alloc.sum() <= cap + 1e-6
        # Work conservation: leftover capacity implies all demands met.
        if alloc.sum() < cap - 1e-3:
            assert np.allclose(alloc, d)


def test_utilization_bounds(disk):
    assert disk.utilization([0.0], 256 * MB) == 0.0
    assert disk.utilization([1e12], 256 * MB) == 1.0


def test_constructor_validation():
    with pytest.raises(ValueError):
        DiskModel(peak_bw=0)
    with pytest.raises(ValueError):
        DiskModel(seek_penalty=1.5)


def test_share_cursor_matches_pop_reference(disk):
    """The index-cursor water-filling equals the legacy pop(0) loop.

    The cursor rewrite must perform the same arithmetic in the same
    order, so allocations are bit-identical, not just close.
    """

    def share_pop0(demands, extent):
        d = np.asarray(demands, dtype=float)
        active = d > 0
        k = int(active.sum())
        if k == 0:
            return np.zeros_like(d)
        capacity = float(disk.aggregate_bw(k, extent))
        alloc = np.zeros_like(d)
        remaining = capacity
        todo = list(np.flatnonzero(active))
        todo.sort(key=lambda i: d[i])
        while todo:
            fair = remaining / len(todo)
            i = todo.pop(0)
            if d[i] <= fair:
                alloc[i] = d[i]
                remaining -= d[i]
            else:
                alloc[i] = fair
                for j in todo:
                    alloc[j] = fair
                break
        return alloc

    rng = np.random.default_rng(42)
    for _ in range(50):
        n = int(rng.integers(1, 12))
        d = rng.uniform(0.0, 400 * MB, size=n)
        d[rng.random(n) < 0.25] = 0.0
        got = disk.share(d, 256 * MB)
        want = share_pop0(d, 256 * MB)
        assert np.array_equal(got, want)
