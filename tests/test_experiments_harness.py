"""Harness-level experiment tests: reporting registry, CLI, artifacts.

The heavyweight experiments have dedicated benchmarks; here we test
the machinery around them with small scopes and stub techniques.
"""

import numpy as np
import pytest

from repro.core.stp import LkTSTP
from repro.experiments import artifacts
from repro.experiments.reporting import (
    available_experiments,
    run_experiment,
    run_experiments,
)
from repro.experiments.sec7_error import run_sec7
from repro.experiments.table2_configs import run_table2
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


class TestReportingRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = set(available_experiments())
        assert {
            "FIG1", "FIG2", "FIG3", "FIG5",
            "TAB1", "TAB2", "SEC7", "FIG8", "FIG9",
        } <= ids
        # Extensions are registered with an EXT- prefix.
        assert any(i.startswith("EXT-") for i in ids)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("FIG4")  # the paper's Fig. 4 is a diagram

    def test_run_single_cheap_experiment(self):
        report = run_experiment("fig5")  # case-insensitive
        assert "I-I" in report.render()

    def test_run_experiments_combined(self):
        text = run_experiments(["FIG5"])
        assert text.startswith("### FIG5")


class TestSec7SmallScope:
    def test_custom_techniques_and_pair_subset(self, small_database):
        pairs = [
            (AppInstance(get_app("nb"), 1 * GB), AppInstance(get_app("km"), 1 * GB)),
            (AppInstance(get_app("svm"), 1 * GB), AppInstance(get_app("cf"), 1 * GB)),
        ]
        report = run_sec7(
            techniques={"LkT": LkTSTP(small_database)},
            pairs=pairs,
        )
        assert report.n_pairs == 2
        assert "LkT" in report.errors
        assert len(report.errors["LkT"]) == 2
        assert np.all(report.errors["LkT"] >= -1e-9)

    def test_max_pairs_subsamples(self, small_database):
        report = run_sec7(
            techniques={"LkT": LkTSTP(small_database)},
            max_pairs=5,
        )
        assert report.n_pairs == 5


class TestTable2SmallScope:
    def test_custom_workloads(self, small_database):
        report = run_table2(
            workloads=((("nb", 1), ("km", 1)),),
            techniques={"LkT": LkTSTP(small_database)},
        )
        assert len(report.rows) == 1
        row = report.rows[0]
        assert "LkT" in row.errors
        assert row.errors["LkT"] >= -1e-9
        text = report.render()
        assert "COLAO" in text


class TestArtifactsCache:
    def test_cached_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calls = []

        def build():
            calls.append(1)
            return {"x": 42}

        a = artifacts.cached("unit-test-item", build)
        b = artifacts.cached("unit-test-item", build)
        assert a == b == {"x": 42}
        assert len(calls) == 1  # second call served from disk

    def test_clear_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        artifacts.cached("another-item", lambda: [1, 2, 3])
        assert artifacts.clear_cache() >= 1
        assert list(tmp_path.glob("*.pkl")) == []


class TestCli:
    def test_list_command(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FIG9" in out and "SEC7" in out

    def test_classify_command(self, capsys):
        from repro.__main__ import main

        # Uses the disk-cached classifier; builds it if absent.
        assert main(["classify", "st", "1"]) == 0
        out = capsys.readouterr().out
        assert "classified as" in out

    def test_requires_subcommand(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main([])

    def test_domain_errors_are_clean(self, capsys):
        """Unknown ids print `error: ...` + the valid options and exit 2
        instead of dumping a traceback."""
        from repro.__main__ import main

        assert main(["run", "FIG4"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "valid" in err

        assert main(["classify", "nosuchapp"]) == 2
        err = capsys.readouterr().err
        assert "valid codes" in err
