"""Unit guarantees of the incremental-update primitives.

The contract the online layer leans on:

* :class:`OnlineRidge` after any ``partial_fit`` sequence equals a
  batch refit on the union of all rows (Sherman–Morrison is exact);
* :class:`SlidingWindow` keeps exactly the newest ``capacity`` rows;
* :class:`PageHinkley` stays quiet on a stationary residual stream,
  alarms promptly after a level shift, and honours ``burn_in``;
* :mod:`repro.faults.drift` arrival streams are seeded, monotone, and
  draw from the segment in force at each arrival.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.drift import DriftSchedule, MixSegment, drifted_arrivals
from repro.online import OnlineRidge, PageHinkley, SlidingWindow
from repro.utils.rng import rng_from
from repro.utils.units import GB

pytestmark = pytest.mark.online


# ------------------------------------------------------- OnlineRidge
class TestOnlineRidge:
    def test_partial_fit_matches_batch_refit(self):
        rng = rng_from(3)
        X0 = rng.normal(size=(40, 6))
        y0 = rng.normal(size=40)
        X1 = rng.normal(size=(25, 6))
        y1 = rng.normal(size=25)

        online = OnlineRidge(lam=1e-6).fit(X0, y0)
        for x, y in zip(X1, y1):
            online.partial_fit(x, y)
        batch = OnlineRidge(lam=1e-6).fit(
            np.vstack([X0, X1]), np.concatenate([y0, y1])
        )

        np.testing.assert_allclose(online.coef_, batch.coef_, atol=1e-8)
        assert online.intercept_ == pytest.approx(batch.intercept_, abs=1e-8)
        Xq = rng.normal(size=(10, 6))
        np.testing.assert_allclose(
            online.predict(Xq), batch.predict(Xq), atol=1e-8
        )
        assert online.n_rows_ == 65

    def test_partial_fit_requires_initial_fit(self):
        with pytest.raises(RuntimeError, match="initial fit"):
            OnlineRidge().partial_fit(np.zeros(3), 1.0)

    def test_partial_fit_rejects_bad_rows(self):
        model = OnlineRidge().fit(np.eye(3), np.arange(3.0))
        with pytest.raises(ValueError, match="expected 3 features"):
            model.partial_fit(np.zeros(5), 0.0)
        with pytest.raises(ValueError, match="finite"):
            model.partial_fit(np.array([1.0, np.nan, 0.0]), 0.0)

    def test_lam_must_be_positive(self):
        with pytest.raises(ValueError, match="lam"):
            OnlineRidge(lam=0.0)


# ------------------------------------------------------ SlidingWindow
class TestSlidingWindow:
    def test_newest_rows_displace_oldest(self):
        window = SlidingWindow(capacity=4)
        window.extend(np.arange(12).reshape(6, 2), np.arange(6.0))
        assert len(window) == 4
        X, y = window.arrays()
        np.testing.assert_array_equal(y, [2.0, 3.0, 4.0, 5.0])
        np.testing.assert_array_equal(X[0], [4.0, 5.0])

    def test_empty_window_raises(self):
        with pytest.raises(RuntimeError, match="empty"):
            SlidingWindow(capacity=2).arrays()

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError, match="row counts"):
            SlidingWindow(capacity=2).extend(np.zeros((2, 3)), np.zeros(3))

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            SlidingWindow(capacity=0)


# -------------------------------------------------------- PageHinkley
class TestPageHinkley:
    def test_quiet_on_stationary_stream(self):
        detector = PageHinkley(delta=0.1, threshold=1.0, burn_in=4)
        rng = rng_from(0)
        assert not any(
            detector.update(0.2 + 0.01 * float(rng.standard_normal()))
            for _ in range(200)
        )
        assert detector.alarms == 0
        assert detector.samples == 200

    def test_alarms_after_level_shift(self):
        detector = PageHinkley(delta=0.1, threshold=1.0, burn_in=4)
        for _ in range(20):
            assert not detector.update(0.1)
        fired_at = None
        for i in range(10):
            if detector.update(1.5):
                fired_at = i
                break
        assert fired_at is not None and fired_at <= 3
        assert detector.alarms == 1

    def test_burn_in_suppresses_early_alarms(self):
        detector = PageHinkley(delta=0.0, threshold=0.01, burn_in=6)
        # Wild values inside the burn-in must not alarm.
        for _ in range(6):
            assert not detector.update(10.0)

    def test_reset_restarts_the_test(self):
        detector = PageHinkley(delta=0.1, threshold=1.0, burn_in=4)
        for _ in range(20):
            detector.update(0.1)
        detector.reset()
        # Post-reset the accumulator and burn-in start over.
        for _ in range(4):
            assert not detector.update(5.0)

    @pytest.mark.parametrize(
        "kwargs", [{"threshold": 0.0}, {"delta": -1.0}, {"burn_in": -1}]
    )
    def test_parameters_validated(self, kwargs):
        with pytest.raises(ValueError):
            PageHinkley(**kwargs)


# ------------------------------------------------------ drift streams
class TestDriftSchedule:
    def test_workload_shift_segments(self):
        schedule = DriftSchedule.workload_shift(
            100.0,
            before_codes=("wc",),
            before_sizes=(1 * GB,),
            after_codes=("km",),
            after_sizes=(10 * GB,),
        )
        assert schedule.segment_at(0.0).codes == ("wc",)
        assert schedule.segment_at(99.9).codes == ("wc",)
        assert schedule.segment_at(100.0).codes == ("km",)
        assert schedule.segment_at(1e9).codes == ("km",)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one segment"):
            DriftSchedule(segments=())
        with pytest.raises(ValueError, match="start at t=0"):
            DriftSchedule(segments=(MixSegment(5.0, ("wc",), (GB,)),))
        with pytest.raises(ValueError, match="strictly increase"):
            DriftSchedule(
                segments=(
                    MixSegment(0.0, ("wc",), (GB,)),
                    MixSegment(0.0, ("km",), (GB,)),
                )
            )
        with pytest.raises(KeyError):
            MixSegment(0.0, ("not-an-app",), (GB,))

    def test_arrivals_deterministic_and_segment_respecting(self):
        schedule = DriftSchedule.workload_shift(
            60.0,
            before_codes=("wc", "st"),
            before_sizes=(1 * GB,),
            after_codes=("km",),
            after_sizes=(10 * GB,),
        )
        a1 = drifted_arrivals(40, schedule, seed=7, mean_interarrival_s=5.0)
        a2 = drifted_arrivals(40, schedule, seed=7, mean_interarrival_s=5.0)
        assert [(t, i.label) for t, i in a1] == [(t, i.label) for t, i in a2]
        times = [t for t, _ in a1]
        assert times == sorted(times)
        for t, inst in a1:
            expected = schedule.segment_at(t)
            assert inst.app.code in expected.codes
            assert inst.data_bytes in expected.sizes
        # A different seed reshuffles the stream.
        a3 = drifted_arrivals(40, schedule, seed=8, mean_interarrival_s=5.0)
        assert [(t, i.label) for t, i in a1] != [(t, i.label) for t, i in a3]

    def test_arrival_validation(self):
        schedule = DriftSchedule.workload_shift(
            10.0,
            before_codes=("wc",),
            before_sizes=(GB,),
            after_codes=("km",),
            after_sizes=(GB,),
        )
        with pytest.raises(ValueError, match="n_jobs"):
            drifted_arrivals(0, schedule)
        with pytest.raises(ValueError, match="mean_interarrival_s"):
            drifted_arrivals(4, schedule, mean_interarrival_s=0.0)
