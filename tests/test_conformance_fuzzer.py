"""Scenario fuzzer: determinism, generation validity, shrinking, emission.

The fuzzer is itself test infrastructure, so its guarantees get their
own tests: the walk is a pure function of the seed, every generated
scenario is constructible and runnable, shrinking converges to a
minimal scenario that still fails the *same named check*, and the
emitted pytest source is runnable Python that reproduces the failure.
"""

from __future__ import annotations

import random

import pytest

from repro.conformance import (
    Scenario,
    ScenarioJob,
    fuzz,
    generate_scenario,
    run_checks,
    shrink,
)
from repro.conformance.fuzzer import Failure, emit_pytest
from repro.conformance.mutants import off_by_one_waves
from repro.utils.units import GB, GHZ, MB


def _single(code="wc"):
    return Scenario(
        1,
        (
            ScenarioJob(
                code=code, data_bytes=1 * GB, frequency=1.2 * GHZ,
                block_size=128 * MB, n_mappers=2,
            ),
        ),
    )


# ---------------------------------------------------------- generation
def test_generate_scenario_is_seed_deterministic():
    a = generate_scenario(random.Random("42:7"))
    b = generate_scenario(random.Random("42:7"))
    assert a == b


def test_generated_scenarios_are_valid_and_diverse():
    scenarios = [generate_scenario(random.Random(f"0:{i}")) for i in range(200)]
    # Constructing a Scenario validates everything (codes, knobs, fault
    # targets); reaching here at all means 200/200 were valid.
    assert any(len(s.jobs) == 1 for s in scenarios)
    assert any(len(s.jobs) >= 3 for s in scenarios)
    assert any(s.n_nodes > 1 for s in scenarios)
    assert any(s.fault_events for s in scenarios)
    assert any(not s.fault_events for s in scenarios)
    assert any(j.submit_time > 0 for s in scenarios for j in s.jobs)
    # The oracle-friendly symmetric shape appears: identical job tuples.
    assert any(
        len(s.jobs) >= 2 and len({j.identity() for j in s.jobs}) == 1
        for s in scenarios
    )


def test_fault_events_respect_node_range():
    for i in range(100):
        s = generate_scenario(random.Random(f"9:{i}"))
        for ev in s.fault_events:
            assert 0 <= ev.node_id < s.n_nodes


# ------------------------------------------------------------- fuzzing
def test_fuzz_is_deterministic():
    a = fuzz(budget=25, seed=11)
    b = fuzz(budget=25, seed=11)
    assert a.executed == b.executed
    assert a.describe() == b.describe()


def test_fuzz_rejects_empty_budget():
    with pytest.raises(ValueError, match="budget must be >= 1"):
        fuzz(budget=0, seed=0)


@pytest.mark.fuzz
def test_healthy_engine_fuzzes_clean():
    report = fuzz(budget=60, seed=5)
    assert report.ok, report.describe()
    assert report.executed == 60
    assert report.shrunk is None and report.pytest_source is None
    assert "clean" in report.describe()


@pytest.mark.slow
@pytest.mark.fuzz
def test_nightly_depth_fuzz_multiple_seeds():
    """The full-matrix lane's deeper walk: several independent seeds."""
    for seed in (0, 1, 2):
        report = fuzz(budget=400, seed=seed)
        assert report.ok, report.describe()


# ------------------------------------------------------------ shrinking
def test_shrink_preserves_the_failing_check():
    with off_by_one_waves():
        report = fuzz(budget=40, seed=7)
        assert not report.ok
        check = report.failure.check
        assert check.startswith("oracle:")
        # Minimal repro for a per-job kernel defect is a single job.
        assert len(report.shrunk.jobs) == 1
        assert report.shrunk.n_nodes == 1
        assert not report.shrunk.fault_events
        # The shrunk scenario fails the same named check, nothing rode
        # along from the original scenario's other defect surfaces.
        assert any(f.check == check for f in run_checks(report.shrunk))
    # On the healthy engine the minimised repro passes: the defect was
    # in the mutant, not the checks.
    assert run_checks(report.shrunk) == []


def test_shrink_simplifies_knobs():
    with off_by_one_waves():
        report = fuzz(budget=40, seed=7)
        job = report.shrunk.jobs[0]
        assert job.submit_time == 0.0
        assert job.data_bytes == 1 * GB
        assert job.n_mappers == 1


def test_shrink_is_a_noop_on_a_passing_scenario():
    scenario = _single()
    assert shrink(scenario, "oracle:makespan") == scenario


# ------------------------------------------------------------- emission
def test_emit_pytest_is_runnable_and_passes_healthy():
    failure = Failure(check="oracle:makespan", message="x")
    source = emit_pytest(_single(), failure, seed=3)
    assert "def test_fuzz_regression_oracle_makespan()" in source
    assert "--seed 3" in source
    namespace: dict = {}
    exec(compile(source, "<fuzz-repro>", "exec"), namespace)
    namespace["test_fuzz_regression_oracle_makespan"]()  # healthy: no raise


def test_emit_pytest_fails_under_the_mutant():
    with off_by_one_waves():
        report = fuzz(budget=40, seed=7)
        source = report.pytest_source
        assert source is not None
        [test_name] = [
            line.split("(")[0].removeprefix("def ")
            for line in source.splitlines()
            if line.startswith("def test_")
        ]
        namespace: dict = {}
        exec(compile(source, "<fuzz-repro>", "exec"), namespace)
        with pytest.raises(AssertionError):
            namespace[test_name]()
    namespace[test_name]()  # and passes again once the mutant is gone


def test_emit_pytest_imports_faultevent_when_needed():
    from repro.faults.plan import FaultEvent

    scenario = Scenario(
        1,
        _single().jobs,
        fault_events=(FaultEvent(4.0, "node_crash", 0, severity=1.0, pick=0.2),),
    )
    source = emit_pytest(scenario, Failure(check="crash:X", message=""), seed=0)
    assert "from repro.faults.plan import FaultEvent" in source
    exec(compile(source, "<fuzz-repro>", "exec"), {})


# --------------------------------------------------------- crash capture
def test_engine_exception_becomes_a_crash_failure(monkeypatch):
    import repro.conformance.fuzzer as fuzzer_mod

    def boom(_scenario):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(fuzzer_mod, "check_oracle", boom)
    failures = run_checks(_single(), relations=[])
    assert [f.check for f in failures] == ["crash:RuntimeError"]
    assert "engine exploded" in failures[0].message


def test_relation_exception_becomes_a_crash_failure(monkeypatch):
    import repro.conformance.fuzzer as fuzzer_mod

    def boom(_scenario, _names):
        raise ValueError("relation exploded")

    monkeypatch.setattr(fuzzer_mod, "check_relations", boom)
    failures = run_checks(_single(), relations=["permute-job-ids"])
    assert any(f.check == "crash:ValueError" for f in failures)
