"""Core timing-model tests: the memory wall must behave."""

import numpy as np
import pytest

from repro.hardware.cpu import CoreModel
from repro.utils.units import GHZ


@pytest.fixture
def core():
    return CoreModel()


def test_spi_decreases_with_frequency_but_not_linearly(core):
    spi_low = core.seconds_per_instruction(1.2 * GHZ, 1.0, 5.0)
    spi_high = core.seconds_per_instruction(2.4 * GHZ, 1.0, 5.0)
    assert spi_high < spi_low
    # Memory stalls don't scale: doubling f must give < 2x speedup.
    assert spi_low / spi_high < 2.0


def test_zero_mpki_scales_linearly_with_frequency(core):
    spi_low = core.seconds_per_instruction(1.2 * GHZ, 1.0, 0.0)
    spi_high = core.seconds_per_instruction(2.4 * GHZ, 1.0, 0.0)
    assert spi_low / spi_high == pytest.approx(2.0)


def test_effective_ipc_at_most_core_ipc(core):
    ipc = core.effective_ipc(2.4 * GHZ, 1.0 / 1.1, 3.0)
    assert ipc < 1.1
    ipc_clean = core.effective_ipc(2.4 * GHZ, 1.0 / 1.1, 0.0)
    assert ipc_clean == pytest.approx(1.1)


def test_effective_ipc_drops_at_high_frequency_when_miss_heavy(core):
    lo = core.effective_ipc(1.2 * GHZ, 1.0, 8.0)
    hi = core.effective_ipc(2.4 * GHZ, 1.0, 8.0)
    assert hi < lo


def test_stall_fraction_bounds_and_monotonicity(core):
    f = core.stall_fraction(2.4 * GHZ, 1.0, np.array([0.0, 1.0, 5.0, 20.0]))
    assert f[0] == 0.0
    assert np.all(np.diff(f) > 0)
    assert np.all(f < 1.0)


def test_compute_seconds_additive(core):
    one = core.compute_seconds(1e9, 2.0 * GHZ, 1.0, 2.0)
    two = core.compute_seconds(2e9, 2.0 * GHZ, 1.0, 2.0)
    assert two == pytest.approx(2 * one)


def test_broadcasting_over_frequency_grid(core):
    freqs = np.array([1.2, 1.6, 2.0, 2.4]) * GHZ
    spi = core.seconds_per_instruction(freqs, 1.0, 2.0)
    assert spi.shape == (4,)
    assert np.all(np.diff(spi) < 0)


def test_invalid_inputs(core):
    with pytest.raises(ValueError):
        core.seconds_per_instruction(-1.0, 1.0, 1.0)
    with pytest.raises(ValueError):
        core.compute_seconds(-5.0, 1 * GHZ, 1.0, 1.0)
    with pytest.raises(ValueError):
        CoreModel(mem_latency_s=-1e-9)
    with pytest.raises(ValueError):
        CoreModel(mlp_overlap=1.5)
