"""Feature-matrix and classifier tests."""

import numpy as np
import pytest

from repro.analysis.classify import NearestCentroidClassifier, RuleBasedClassifier
from repro.analysis.features import PROFILING_CONFIG, build_feature_matrix, zscore
from repro.telemetry.profiling import profile_features
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import TESTING_APPS, TRAINING_APPS, instances_for, get_app


class TestZscore:
    def test_unit_normal_columns(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(100, 4))
        Z, scaler = zscore(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)
        assert np.allclose(scaler.inverse(Z), X)

    def test_constant_column_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z, _ = zscore(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            zscore(np.arange(5.0))


class TestFeatureMatrix:
    @pytest.fixture(scope="class")
    def fm(self):
        return build_feature_matrix(instances_for(TRAINING_APPS, sizes=(5 * GB,)), seed=0)

    def test_shape(self, fm):
        assert fm.raw.shape == (5, 14)
        assert fm.scaled.shape == (5, 14)

    def test_row_lookup(self, fm):
        row = fm.row_for("wc@5GB")
        assert row.shape == (14,)
        with pytest.raises(KeyError):
            fm.row_for("nope@1GB")

    def test_column_lookup(self, fm):
        col = fm.column("llc_mpki", scaled=False)
        assert col.shape == (5,)
        with pytest.raises(KeyError):
            fm.column("bogus")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_feature_matrix([])


class TestClassifiers:
    @pytest.fixture(scope="class")
    def fitted(self):
        tr = instances_for(TRAINING_APPS)
        fm = build_feature_matrix(tr, seed=1)
        return NearestCentroidClassifier().fit(fm, [i.app_class for i in tr])

    def test_training_apps_classified_correctly(self, fitted):
        for inst in instances_for(TRAINING_APPS):
            feats = profile_features(inst, PROFILING_CONFIG, seed=1)
            got = fitted.classify(feats)
            if inst.app_class is AppClass.HYBRID:
                # The hybrid class straddles compute (Grep) and I/O
                # (TeraSort) behaviour, so its members may fall to the
                # adjacent pure class — harmless for pairing, which
                # ranks I > H > C contiguously.
                assert got in (AppClass.HYBRID, AppClass.COMPUTE, AppClass.IO)
            else:
                assert got is inst.app_class

    def test_unknown_apps_mostly_correct(self, fitted):
        """§5 Step 1 on the paper's unknown apps: high accuracy with the
        known borderline case (K-Means looks compute-bound)."""
        correct = total = 0
        for inst in instances_for(TESTING_APPS):
            feats = profile_features(inst, PROFILING_CONFIG, seed=2)
            total += 1
            correct += fitted.classify(feats) is inst.app_class
        assert correct / total >= 0.8

    def test_distances_exposed(self, fitted):
        feats = profile_features(
            AppInstance(get_app("cf"), 5 * GB), PROFILING_CONFIG, seed=0
        )
        d = fitted.distances(feats)
        assert set(d) == set(AppClass)
        assert min(d, key=d.get) is AppClass.MEMORY

    def test_unfitted_raises(self):
        clf = NearestCentroidClassifier()
        with pytest.raises(RuntimeError):
            clf.classify({})
        with pytest.raises(RuntimeError):
            clf.classes_

    def test_label_count_mismatch(self):
        tr = instances_for(("wc",))
        fm = build_feature_matrix(tr, seed=0)
        with pytest.raises(ValueError):
            NearestCentroidClassifier().fit(fm, [AppClass.COMPUTE] * 5)

    def test_rule_based_on_clear_cases(self):
        rb = RuleBasedClassifier()
        for code, expected in (("wc", "C"), ("st", "I"), ("fp", "M"), ("ts", "H")):
            feats = profile_features(
                AppInstance(get_app(code), 10 * GB), PROFILING_CONFIG, seed=0
            )
            assert rb.classify(feats).value == expected
