"""Tracing layer tests: exporter schema, zero perturbation, span content."""

import json

import pytest

from repro.experiments.trace_run import TRACE_EXPERIMENTS, run_traced
from repro.telemetry.tracing import (
    NULL_TRACER,
    SWEEP_PID,
    NullTracer,
    Tracer,
    validate_chrome_trace,
)


class TestTracer:
    def test_span_rejects_negative_duration(self):
        t = Tracer()
        with pytest.raises(ValueError, match="ends before"):
            t.span("x", "job", 5.0, 4.0)

    def test_event_counts(self):
        t = Tracer()
        t.span("a", "job", 0.0, 1.0)
        t.instant("b", "fault", 0.5)
        t.counter("c", 0.2, {"n": 1})
        assert t.n_events == 3

    def test_spans_by_cat_sorted(self):
        t = Tracer()
        t.span("late", "job", 5.0, 6.0)
        t.span("early", "job", 1.0, 2.0)
        t.span("other", "phase", 0.0, 1.0)
        got = t.spans_by_cat("job")
        assert [s.name for s in got] == ["early", "late"]

    def test_chrome_export_valid_and_scaled(self):
        t = Tracer()
        t.name_process(0, "cluster")
        t.name_thread(1, 7, "job 7")
        t.span("j", "job", 1.0, 3.0, pid=1, tid=7, args={"energy": 2.5})
        t.instant("f", "fault", 2.0)
        t.counter("pending", 0.0, {"count": 4})
        payload = t.to_chrome()
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        # Metadata first, then timed events in timestamp order.
        assert [e["ph"] for e in events[:2]] == ["M", "M"]
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == pytest.approx(1e6)
        assert span["dur"] == pytest.approx(2e6)

    def test_write_round_trips(self, tmp_path):
        t = Tracer()
        t.span("j", "job", 0.0, 1.0)
        path = t.write(tmp_path / "trace.json")
        assert validate_chrome_trace(json.loads(path.read_text())) == []


class TestNullTracer:
    def test_disabled_and_inert(self):
        nt = NullTracer()
        assert nt.enabled is False
        nt.span("x", "job", 0.0, 1.0)
        nt.instant("x", "fault", 0.0)
        nt.counter("x", 0.0, {})
        nt.name_process(0, "x")
        nt.name_thread(0, 0, "x")
        assert nt.n_events == 0

    def test_shared_singleton_is_default(self):
        from repro.mapreduce.engine import ClusterEngine, NodeEngine
        from repro.parallel.executor import SweepExecutor

        assert NodeEngine().tracer is NULL_TRACER
        assert ClusterEngine(1).tracer is NULL_TRACER
        assert SweepExecutor(1).tracer is NULL_TRACER

    def test_no_slots_no_allocation_surface(self):
        with pytest.raises(AttributeError):
            NullTracer().stash = 1  # __slots__ = (): nothing to grow


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"nope": 1}) != []

    def test_rejects_bad_events(self):
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 0},
                {"ph": "X", "name": "x", "pid": 0, "ts": -1.0, "dur": 1.0},
                {"ph": "i", "name": "x", "pid": 0, "ts": 0.0, "s": "q"},
                {"ph": "C", "name": "x", "pid": 0, "ts": 0.0},
                {"ph": "X", "name": 3, "pid": 0, "ts": 0.0, "dur": 0.0},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert len(problems) >= 5


class TestTracedRuns:
    @pytest.fixture(scope="class")
    def faulty(self):
        return run_traced("faulty", n_jobs=24)

    def test_tracing_does_not_perturb_seeded_run(self):
        on = run_traced("steady", n_jobs=24)
        off = run_traced("steady", n_jobs=24, tracer=NULL_TRACER)
        key = lambda run: [
            (r.spec.job_id, r.node_id, r.start_time, r.finish_time, r.energy_joules)
            for r in run.results
        ]
        assert key(on) == key(off)
        assert on.makespan == off.makespan
        assert on.energy_joules == off.energy_joules
        assert off.tracer.n_events == 0

    def test_fault_run_not_perturbed_either(self, faulty):
        off = run_traced("faulty", n_jobs=24, tracer=NULL_TRACER)
        assert [r.finish_time for r in faulty.results] == [
            r.finish_time for r in off.results
        ]
        assert faulty.energy_joules == off.energy_joules

    def test_job_spans_cover_every_completion(self, faulty):
        jobs = faulty.tracer.spans_by_cat("job")
        assert len(jobs) == len(faulty.results)
        by_id = {r.spec.job_id: r for r in faulty.results}
        for s in jobs:
            r = by_id[s.args["job_id"]]
            assert s.start == r.start_time and s.end == r.finish_time
            assert s.pid == 1 + r.node_id
            assert s.args["energy_joules"] == r.energy_joules

    def test_phase_spans_nest_inside_their_job(self, faulty):
        jobs = {(s.pid, s.tid): s for s in faulty.tracer.spans_by_cat("job")}
        phases = faulty.tracer.spans_by_cat("phase")
        assert phases, "derived wave/shuffle phases missing"
        eps = 1e-6
        for p in phases:
            owner = jobs[(p.pid, p.tid)]
            assert p.start >= owner.start - eps
            assert p.end <= owner.end + eps

    def test_fault_and_recovery_events_present(self, faulty):
        cats = {s.cat for s in faulty.tracer.spans}
        cats |= {i.cat for i in faulty.tracer.instants}
        assert "fault" in cats
        assert "recovery" in cats
        assert any(c.name == "pending jobs" for c in faulty.tracer.counters)

    def test_export_is_valid_chrome_trace(self, faulty, tmp_path):
        path = faulty.tracer.write(tmp_path / "faulty.json")
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown trace experiment"):
            run_traced("nope")

    def test_experiment_list_stable(self):
        assert TRACE_EXPERIMENTS == ("steady", "faulty", "ecost")


class TestSweepExecutorTracing:
    def test_serial_map_emits_task_and_batch_spans(self):
        from repro.parallel.executor import SweepExecutor

        tracer = Tracer()
        ex = SweepExecutor(1, tracer=tracer)
        assert ex.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        sweep = tracer.spans_by_cat("sweep")
        names = [s.name for s in sweep]
        assert sum(1 for n in names if n.startswith("batch")) == 1
        assert all(s.pid == SWEEP_PID for s in sweep)
        # 3 task spans + 1 batch span, all on the wall-clock row.
        assert len(sweep) == 4
        assert validate_chrome_trace(tracer.to_chrome()) == []


class TestCli:
    def test_trace_command_writes_valid_files(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = main(
            [
                "trace",
                "steady",
                "--jobs",
                "12",
                "--out",
                str(out),
                "--metrics-out",
                str(metrics),
            ]
        )
        assert rc == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        flat = json.loads(metrics.read_text())
        assert any(k.startswith("engine.") for k in flat)
        assert "wrote" in capsys.readouterr().out
