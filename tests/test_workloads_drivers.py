"""Iterative-driver tests: the apps run to convergence end to end."""

import numpy as np
import pytest

from repro.workloads.drivers import run_hmm_em, run_kmeans, run_pagerank, run_svm


class TestKMeans:
    def test_converges_on_clustered_data(self):
        result, centroids = run_kmeans(n_records=300, seed=0)
        assert result.converged
        assert result.final_delta < 1e-3
        assert centroids.shape == (5, 8)

    def test_deltas_trend_downward(self):
        result, _ = run_kmeans(n_records=300, seed=1)
        assert result.history[-1] < result.history[0]

    def test_recovers_generator_centers(self):
        from repro.workloads import datagen

        result, centroids = run_kmeans(n_records=600, n_clusters=3, n_dims=4, seed=2)
        pts = {}
        for c, x in datagen.points(600, n_dims=4, n_clusters=3, seed=2):
            pts.setdefault(c, []).append(x)
        true_centers = np.array([np.mean(v, axis=0) for v in pts.values()])
        # Every true centre has a learned centroid nearby.
        for tc in true_centers:
            d = np.linalg.norm(centroids - tc, axis=1).min()
            assert d < 1.5


class TestPageRank:
    def test_converges(self):
        result, ranks = run_pagerank(n_edges=800, n_nodes=80, seed=0)
        assert result.converged
        assert len(ranks) == 80

    def test_ranks_bounded_below_by_teleport(self):
        _result, ranks = run_pagerank(n_edges=500, n_nodes=50, seed=1)
        assert all(r >= 0.15 - 1e-9 for r in ranks.values())

    def test_popular_nodes_rank_higher(self):
        """Preferential-attachment targets accumulate rank."""
        _result, ranks = run_pagerank(n_edges=2000, n_nodes=100, seed=3)
        top = sorted(ranks.values(), reverse=True)
        assert top[0] > 3 * np.median(list(ranks.values()))


class TestSVM:
    def test_learns_separable_data(self):
        result, weights, accuracy = run_svm(n_records=600, epochs=25, seed=0)
        assert accuracy > 0.9
        assert weights.shape == (16,)
        assert result.converged


class TestHMM:
    def test_em_updates_move_then_settle(self):
        result, emit = run_hmm_em(n_sequences=30, iterations=6, seed=0)
        assert result.iterations == 6
        # Valid distribution rows.
        assert np.allclose(emit.sum(axis=1), 1.0)
        # EM is monotone-ish here: later updates smaller than the first.
        assert result.history[-1] < result.history[0]
