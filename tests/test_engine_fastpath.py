"""The engine hot path: recontext cache, event core, recorders, energy.

Covers the fast-path machinery the discrete-event rewrite introduced:
memoized recontexting (hit/miss/poisoning semantics, LRU bounds),
generation-counter invalidation of completion checks (including
coincident completions), the pluggable interval recorders, the
prefix-sum energy accounting, and the single-pass FIFO first-fit
scheduler against a reference implementation of the original
quadratic loop.
"""

import pytest

from repro.mapreduce.engine import (
    ClusterEngine,
    NodeEngine,
    RecontextCache,
    fifo_first_fit,
    make_recorder,
)
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app
from repro.workloads.streams import poisson_job_stream


def _spec(code="wc", size=1 * GB, f=2.4 * GHZ, b=128 * MB, m=2, t=0.0):
    return JobSpec(
        instance=AppInstance(get_app(code), size),
        config=JobConfig(frequency=f, block_size=b, n_mappers=m),
        submit_time=t,
    )


def _stream_cluster(n_jobs=200, **kw):
    cluster = ClusterEngine(n_nodes=8, **kw)
    for s in poisson_job_stream(n_jobs, tuned=True):
        cluster.submit(s)
    cluster.run()
    return cluster


# ------------------------------------------------------- recontext cache
class TestRecontextCache:
    def test_identical_sets_hit(self):
        """The same running set twice costs one kernel evaluation."""
        cache = RecontextCache()
        e1 = NodeEngine(cache=cache)
        e1.submit(_spec())
        e2 = NodeEngine(cache=cache)
        e2.submit(_spec())
        tel = cache.telemetry
        assert tel.recontext_misses == 1  # e1 paid the kernel
        assert tel.recontext_hits == 1  # e2 rode the set entry
        assert tel.recontext_hit_rate == 0.5

    def test_job_level_fallback_on_new_set(self):
        """A new set reuses per-(job, context) entries of old sets."""
        cache = RecontextCache()
        e1 = NodeEngine(cache=cache)
        e1.submit(_spec(m=2))
        e1.submit(_spec("st", m=2))  # set (wc, st): 2 kernel evals
        evals_before = cache.telemetry.kernel_evals
        e2 = NodeEngine(cache=cache)
        e2.submit(_spec(m=2))
        e2.submit(_spec("st", m=2))
        e2.submit(_spec("gp", m=2))  # new set, but wc/st contexts differ
        # The triple's couplings differ from the pair's, so only truly
        # identical (identity, context) pairs are reused.
        assert cache.telemetry.kernel_evals >= evals_before

    def test_lru_bound(self):
        cache = RecontextCache(maxsize=2)
        cache.put(("job", "a"), 1)
        cache.put(("job", "b"), 2)
        cache.put(("job", "c"), 3)
        assert len(cache) == 2
        assert cache.get(("job", "a")) is None  # evicted (oldest)
        assert cache.get(("job", "c")) == 3

    def test_lru_touch_on_get(self):
        cache = RecontextCache(maxsize=2)
        cache.put(("k", 1), "one")
        cache.put(("k", 2), "two")
        cache.get(("k", 1))  # now most-recent
        cache.put(("k", 3), "three")
        assert cache.get(("k", 2)) is None
        assert cache.get(("k", 1)) == "one"

    def test_maxsize_validation(self):
        with pytest.raises(ValueError, match="maxsize"):
            RecontextCache(maxsize=0)

    def test_clear(self):
        cache = RecontextCache()
        cache.put(("k",), 1)
        cache.clear()
        assert len(cache) == 0


class TestCachePoisoning:
    def test_poisoned_entry_detected_and_recomputed(self):
        """An entry whose key echo disagrees with its slot is rejected."""
        cache = RecontextCache()
        warm = NodeEngine(cache=cache)
        warm.submit(_spec())
        warm.run_to_completion()
        # Corrupt every entry's echo so all of them look poisoned.
        for key in list(cache._data):
            echo, value = cache._data[key]
            cache._data[key] = (("poisoned",) + echo, value)
        # Any further lookup must reject the slot, recompute, and count.
        e = NodeEngine(cache=cache)
        e.submit(_spec())
        e.run_to_completion()
        assert cache.telemetry.recontext_rejects > 0

    def test_poisoned_values_never_served(self):
        """Even a poisoned warm cache yields the clean run's numbers."""
        specs = list(poisson_job_stream(60, tuned=True))
        clean = ClusterEngine(n_nodes=4)
        for s in specs:
            clean.submit(s)
        clean.run()

        cache = RecontextCache()
        warm = ClusterEngine(n_nodes=4, metrics_cache=cache)
        for s in poisson_job_stream(60, tuned=True):
            warm.submit(s)
        warm.run()
        for key in list(cache._data):
            echo, value = cache._data[key]
            cache._data[key] = (("poisoned",) + echo, value)

        replay = ClusterEngine(n_nodes=4, metrics_cache=cache)
        for s in poisson_job_stream(60, tuned=True):
            replay.submit(s)
        replay.run()
        assert cache.telemetry.recontext_rejects > 0
        assert replay.makespan == clean.makespan
        assert replay.total_energy() == clean.total_energy()


# ------------------------------------------------------------ event core
class TestEventCore:
    def test_coincident_completions_no_crash(self):
        """Two identical jobs finish at the same instant — both must
        complete, with no bare StopIteration from the check handler."""
        cluster = ClusterEngine(n_nodes=1)
        cluster.submit(_spec(m=2, t=0.0))
        cluster.submit(_spec(m=2, t=0.0))
        results = cluster.run()
        assert len(results) == 2
        assert results[0].finish_time == results[1].finish_time

    def test_stale_checks_counted_not_processed(self):
        cluster = _stream_cluster(200)
        tel = cluster.telemetry
        assert tel.stale_events > 0
        assert tel.live_events == tel.events - tel.stale_events
        assert len(cluster.results) == 200

    def test_generation_advances_on_membership_change(self):
        e = NodeEngine()
        g0 = e.generation
        e.submit(_spec(m=2))
        g1 = e.generation
        assert g1 > g0
        e.run_to_completion()
        assert e.generation > g1

    def test_hit_rate_on_tuned_stream(self):
        """The acceptance-criterion regime: ≥80% recontext hits."""
        cluster = _stream_cluster(1000, recorder="off")
        assert cluster.telemetry.recontext_hit_rate >= 0.8


# ------------------------------------------------------------- recorders
class TestRecorders:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown recorder"):
            make_recorder("verbose")
        with pytest.raises(ValueError, match="unknown recorder"):
            ClusterEngine(n_nodes=1, recorder="verbose")

    def test_off_mode_identical_outcomes(self):
        full = _stream_cluster(100, recorder="full")
        off = _stream_cluster(100, recorder="off")
        assert off.makespan == full.makespan
        assert off.total_energy() == full.total_energy()

    def test_off_mode_blocks_interval_queries(self):
        off = _stream_cluster(50, recorder="off")
        with pytest.raises(RuntimeError, match="recorder='full'"):
            off.nodes[0].intervals
        with pytest.raises(RuntimeError, match="recorder"):
            off.nodes[0].energy_between(1.0, 2.0)  # windowed needs segments
        # Full-horizon energy still works (prefix sums).
        assert off.total_energy() > 0

    def test_columnar_agrees_with_full(self):
        full = _stream_cluster(100, recorder="full")
        col = _stream_cluster(100, recorder="columnar")
        assert col.makespan == full.makespan
        assert col.total_energy() == full.total_energy()
        # Windowed queries agree too (same segments, no job tuples).
        t1 = full.makespan / 3
        for nf, nc in zip(full.nodes, col.nodes):
            assert nc.energy_between(100.0, t1) == nf.energy_between(100.0, t1)
        with pytest.raises(RuntimeError, match="recorder='full'"):
            col.nodes[0].intervals


# ------------------------------------------------------ energy fast path
class TestEnergyPrefixSums:
    def test_full_horizon_matches_interval_scan(self):
        cluster = _stream_cluster(150)
        h = cluster.makespan
        for node in cluster.nodes:
            fast = node.energy_between(0.0, h)
            busy, covered = node.recorder.busy_between(0.0, h)
            scan = busy + node.node.power.idle_power * ((h - 0.0) - covered)
            assert fast == scan

    def test_windowed_query_uses_scan(self):
        cluster = _stream_cluster(150)
        h = cluster.makespan
        node = cluster.nodes[0]
        # A window strictly inside the busy span cannot take the fast
        # path; it must agree with direct segment integration.
        t0, t1 = h * 0.25, h * 0.5
        busy, covered = node.recorder.busy_between(t0, t1)
        expect = busy + node.node.power.idle_power * ((t1 - t0) - covered)
        assert node.energy_between(t0, t1) == expect

    def test_subwindows_sum_to_total(self):
        engine = NodeEngine()
        engine.submit(_spec(m=4))
        engine.run_to_completion()
        end = engine.now
        total = engine.energy_between(0.0, end)
        split = engine.energy_between(0.0, end / 2) + engine.energy_between(
            end / 2, end
        )
        assert split == pytest.approx(total, rel=1e-12)


# -------------------------------------------------------- fifo first fit
def _reference_fifo_first_fit(cluster: ClusterEngine, t: float) -> None:
    """The original quadratic restart loop, kept as the behavioral
    reference for the single-pass rewrite."""
    placed = True
    while placed:
        placed = False
        for spec in list(cluster.pending):
            for engine in cluster.nodes:
                if engine.can_fit(spec):
                    cluster.place(spec, engine.node_id)
                    placed = True
                    break
            else:
                return


class TestFifoFirstFit:
    def _run(self, scheduler, n_jobs=300):
        cluster = ClusterEngine(n_nodes=8, scheduler=scheduler, recorder="off")
        for s in poisson_job_stream(n_jobs, seed=3):
            cluster.submit(s)
        cluster.run()
        return cluster

    def test_placement_order_matches_reference(self):
        """Regression: the cursor rewrite places every job on the same
        node at the same time as the quadratic original."""
        fast = self._run(fifo_first_fit)
        ref = self._run(_reference_fifo_first_fit)
        # job_ids differ between runs (global counter) but arrival order
        # is identical, so compare by submission order.
        fast_by_order = sorted(fast.results, key=lambda r: r.spec.job_id)
        ref_by_order = sorted(ref.results, key=lambda r: r.spec.job_id)
        assert [
            (r.node_id, r.start_time, r.finish_time) for r in fast_by_order
        ] == [(r.node_id, r.start_time, r.finish_time) for r in ref_by_order]
        assert fast.makespan == ref.makespan
        assert fast.total_energy() == ref.total_energy()

    def test_head_of_line_blocking_preserved(self):
        """A big job at the head blocks later small ones (FIFO)."""
        cluster = ClusterEngine(n_nodes=1)
        cluster.submit(_spec(m=6, t=0.0))  # occupies 6 of 8 cores
        big = _spec(m=8, t=1.0)  # cannot fit until node drains
        small = _spec(m=1, t=2.0)  # could fit, but queued behind big
        cluster.submit(big)
        cluster.submit(small)
        results = {r.spec.job_id: r for r in cluster.run()}
        assert results[small.job_id].start_time >= results[big.job_id].start_time


# -------------------------------------------------- windowed busy queries
class TestWindowedBusyIndex:
    """The bisect-bounded window index vs the legacy full scan."""

    @staticmethod
    def _full_scan(node, t0, t1):
        """The pre-index reference: one pass over every segment."""
        busy = 0.0
        covered = 0.0
        idx = node.recorder._index
        for start, end, watts in zip(idx.starts, idx.ends, idx.watts):
            lo, hi = max(start, t0), min(end, t1)
            if hi > lo:
                busy += watts * (hi - lo)
                covered += hi - lo
        return busy, covered

    def test_windows_bit_identical_to_full_scan(self):
        cluster = _stream_cluster(150)
        h = cluster.makespan
        windows = [
            (0.0, h),            # head-anchored full horizon (prefix path)
            (0.0, h * 0.4),      # head-anchored partial (prefix path)
            (h * 0.2, h * 0.7),  # interior (bounded scan)
            (h * 0.9, h * 2.0),  # tail past the horizon
            (h * 0.33, h * 0.34),  # narrow interior
        ]
        for node in cluster.nodes:
            for t0, t1 in windows:
                got = node.recorder.busy_between(t0, t1)
                want = self._full_scan(node, t0, t1)
                assert got == want, (node.node_id, t0, t1)

    def test_empty_and_disjoint_windows(self):
        engine = NodeEngine()
        engine.submit(_spec(m=4))
        engine.run_to_completion()
        end = engine.now
        assert engine.recorder.busy_between(end + 10, end + 20) == (0.0, 0.0)
        assert engine.recorder.busy_between(5.0, 5.0) == (0.0, 0.0)

    def test_columnar_windows_match_full_recorder(self):
        full = _stream_cluster(100, recorder="full")
        col = _stream_cluster(100, recorder="columnar")
        h = full.makespan
        for t0, t1 in [(0.0, h * 0.5), (h * 0.25, h * 0.75)]:
            for nf, nc in zip(full.nodes, col.nodes):
                assert nc.recorder.busy_between(t0, t1) == nf.recorder.busy_between(
                    t0, t1
                )
