"""Discrete-event engine tests: consistency with the closed form."""

import numpy as np
import pytest

from repro.mapreduce.engine import ClusterEngine, NodeEngine
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.model.costmodel import pair_metrics, standalone_metrics
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


def spec(code="st", gb=5, f=2.4, b=256, m=4, **kw):
    return JobSpec(
        instance=AppInstance(get_app(code), gb * GB),
        config=JobConfig(frequency=f * GHZ, block_size=b * MB, n_mappers=m),
        **kw,
    )


class TestNodeEngine:
    def test_solo_duration_matches_closed_form_exactly(self):
        s = spec()
        engine = NodeEngine()
        engine.submit(s)
        result = engine.run_to_completion()[0]
        cf = standalone_metrics(
            s.instance.profile, s.instance.data_bytes,
            s.config.frequency, s.config.block_size, s.config.n_mappers,
        )
        assert result.duration == pytest.approx(float(np.asarray(cf.duration)))

    def test_solo_energy_matches_closed_form(self):
        s = spec("wc")
        engine = NodeEngine()
        engine.submit(s)
        result = engine.run_to_completion()[0]
        cf = standalone_metrics(
            s.instance.profile, s.instance.data_bytes,
            s.config.frequency, s.config.block_size, s.config.n_mappers,
        )
        assert result.energy_joules == pytest.approx(float(np.asarray(cf.energy)), rel=1e-6)

    def test_pair_close_to_closed_form(self):
        sa, sb = spec("st", m=4), spec("wc", m=4)
        engine = NodeEngine()
        engine.submit(sa)
        engine.submit(sb)
        results = engine.run_to_completion()
        makespan = max(r.finish_time for r in results)
        pm = pair_metrics(
            sa.instance.profile, sa.instance.data_bytes,
            sa.config.frequency, sa.config.block_size, sa.config.n_mappers,
            sb.instance.profile, sb.instance.data_bytes,
            sb.config.frequency, sb.config.block_size, sb.config.n_mappers,
        )
        # The engine re-evaluates the tail context; the closed form
        # keeps it — bounded documented deviation.
        assert makespan == pytest.approx(float(np.asarray(pm.makespan)), rel=0.05)
        assert engine.energy_between(0, makespan) == pytest.approx(
            float(np.asarray(pm.energy)), rel=0.05
        )

    def test_capacity_enforced(self):
        engine = NodeEngine()
        engine.submit(spec(m=6))
        assert engine.free_cores == 2
        assert not engine.can_fit(spec(m=3))
        with pytest.raises(RuntimeError, match="free cores"):
            engine.submit(spec(m=3))

    def test_completions_ordered_in_time(self):
        engine = NodeEngine()
        engine.submit(spec("st", gb=1, m=2))
        engine.submit(spec("wc", gb=10, m=2))
        results = engine.run_to_completion()
        assert results[0].finish_time <= results[1].finish_time
        assert results[0].spec.instance.code == "st"

    def test_work_conserved_across_context_changes(self):
        """A co-run job that loses its partner finishes no later than a
        pair that keeps it (the survivor speeds up, never slows)."""
        alone = NodeEngine()
        alone.submit(spec("wc", m=4))
        t_alone = alone.run_to_completion()[0].duration

        shared = NodeEngine()
        shared.submit(spec("wc", m=4))
        shared.submit(spec("st", gb=1, m=4))
        results = shared.run_to_completion()
        wc = next(r for r in results if r.spec.instance.code == "wc")
        assert wc.duration >= t_alone * 0.999

    def test_intervals_cover_execution(self):
        engine = NodeEngine()
        engine.submit(spec())
        result = engine.run_to_completion()[0]
        covered = sum(seg.duration for seg in engine.intervals)
        assert covered == pytest.approx(result.duration)

    def test_energy_between_includes_idle(self):
        engine = NodeEngine()
        engine.submit(spec(gb=1))
        result = engine.run_to_completion()[0]
        horizon = result.finish_time + 100.0
        e = engine.energy_between(0, horizon)
        assert e == pytest.approx(
            result.energy_joules + 100.0 * engine.node.power.idle_power, rel=1e-6
        )

    def test_time_cannot_go_backwards(self):
        engine = NodeEngine()
        engine.advance_to(10.0)
        with pytest.raises(ValueError):
            engine.advance_to(5.0)


class TestClusterEngine:
    def test_fifo_first_fit_runs_everything(self):
        cluster = ClusterEngine(n_nodes=2)
        for _ in range(6):
            cluster.submit(spec(m=4))
        results = cluster.run()
        assert len(results) == 6
        assert cluster.makespan > 0

    def test_two_jobs_per_node_with_four_mappers(self):
        cluster = ClusterEngine(n_nodes=1)
        cluster.submit(spec(m=4))
        cluster.submit(spec(m=4))
        cluster.run()
        # Both must have started immediately (they fit together).
        starts = [r.start_time for r in cluster.results]
        assert starts == [0.0, 0.0]

    def test_total_energy_charges_idle_nodes(self):
        cluster = ClusterEngine(n_nodes=4)
        cluster.submit(spec(gb=1, m=8))
        cluster.run()
        t = cluster.makespan
        e = cluster.total_energy(t)
        idle = cluster.nodes[0].node.power.idle_power
        assert e >= 3 * idle * t  # three nodes never ran anything

    def test_distributed_group_barrier(self):
        parts = [spec(gb=1, m=8, group_id=77) for _ in range(2)]
        cluster = ClusterEngine(n_nodes=2)
        cluster.submit_distributed(parts)
        cluster.run()
        t = cluster.group_finish_time(77)
        assert t == pytest.approx(max(r.finish_time for r in cluster.results))

    def test_distributed_requires_group_id(self):
        cluster = ClusterEngine(n_nodes=2)
        with pytest.raises(ValueError, match="group_id"):
            cluster.submit_distributed([spec(), spec()])

    def test_edp_is_energy_times_makespan(self):
        cluster = ClusterEngine(n_nodes=1)
        cluster.submit(spec(gb=1))
        cluster.run()
        assert cluster.edp() == pytest.approx(
            cluster.total_energy() * cluster.makespan
        )

    def test_arrival_times_respected(self):
        cluster = ClusterEngine(n_nodes=1)
        cluster.submit(spec(gb=1, m=8, submit_time=0.0))
        cluster.submit(spec(gb=1, m=8, submit_time=50.0))
        cluster.run()
        second = cluster.results[-1]
        assert second.start_time >= 50.0
