"""Functional correctness of the seven analytics applications."""

import numpy as np
import pytest

from repro.mapreduce.functional import MapReduceRuntime
from repro.workloads.analytics import (
    CollaborativeFiltering,
    FPGrowth,
    HiddenMarkovModel,
    KMeans,
    NaiveBayes,
    PageRank,
    SupportVectorMachine,
)


def runtime():
    return MapReduceRuntime(n_reducers=2, split_records=64)


class TestNaiveBayes:
    def test_prior_counts_sum_to_records(self):
        app = NaiveBayes()
        out = runtime().run(app, app.generate_records(200, seed=0))
        priors = {k: v for k, v in out.records if isinstance(k, tuple) and k[0] == "prior"}
        assert sum(priors.values()) == 200

    def test_feature_counts_per_label(self):
        app = NaiveBayes(n_buckets=4)
        out = runtime().run(app, app.generate_records(100, seed=1))
        d = out.as_dict()
        n_pos = d.get(("prior", 1), 0)
        # Every feature dimension contributes exactly n_pos counts.
        feat0 = sum(v for k, v in d.items() if k not in (("prior", 1), ("prior", -1))
                    and k[0] == 1 and k[1] == 0)
        assert feat0 == n_pos

    def test_bucket_count_validation(self):
        with pytest.raises(ValueError):
            NaiveBayes(n_buckets=1)


class TestFPGrowth:
    def test_singleton_supports_match_brute_force(self):
        app = FPGrowth()
        records = list(app.generate_records(120, seed=2))
        out = runtime().run(app, records)
        d = out.as_dict()
        from collections import Counter

        truth = Counter()
        for _txn, basket in records:
            for item in basket:
                truth[(item,)] += 1
        singles = {k: v for k, v in d.items() if len(k) == 1}
        assert singles == dict(truth)

    def test_pair_supports_at_most_singleton(self):
        app = FPGrowth()
        out = runtime().run(app, app.generate_records(100, seed=3))
        d = out.as_dict()
        for key, support in d.items():
            if len(key) == 2:
                assert support <= d.get((key[0],), 0)
                assert support <= d.get((key[1],), 0)


class TestCollaborativeFiltering:
    def test_cooccurrence_symmetric_pairs(self):
        app = CollaborativeFiltering()
        out = runtime().run(app, app.generate_records(300, seed=4))
        for (a, b), _count in out.records:
            assert a < b  # canonical pair order from combinations()

    def test_counts_bounded_by_users(self):
        app = CollaborativeFiltering()
        records = list(app.generate_records(200, seed=5))
        n_users = len({u for u, _ in records})
        out = runtime().run(app, records)
        assert all(c <= n_users for _pair, c in out.records)


class TestSVM:
    def test_gradient_moves_toward_separation(self):
        app = SupportVectorMachine(n_features=8)
        out = runtime().run(app, app.generate_records(400, seed=6))
        grad = np.asarray(out.as_dict()["grad"])
        assert grad.shape == (8,)
        # With zero weights every point violates the margin; the mean
        # hinge gradient points away from the positive-class mean.
        records = list(app.generate_records(400, seed=6))
        mean_pos = np.mean([x for y, x in records if y == 1], axis=0)
        assert float(grad @ mean_pos) < 0

    def test_weight_shape_validated(self):
        with pytest.raises(ValueError):
            SupportVectorMachine(n_features=4, weights=np.zeros(5))


class TestPageRank:
    def test_one_iteration_matches_dense_computation(self):
        app = PageRank(damping=0.85)
        edges = [(0, 1), (0, 2), (1, 2), (2, 0)]
        ranks = {0: 1.0, 1: 1.0, 2: 1.0}
        degree = {0: 2, 1: 1, 2: 1}
        app.set_ranks(ranks, degree)
        out = runtime().run(app, edges)
        d = out.as_dict()
        assert d[1] == pytest.approx(0.15 + 0.85 * 0.5)
        assert d[2] == pytest.approx(0.15 + 0.85 * (0.5 + 1.0))
        assert d[0] == pytest.approx(0.15 + 0.85 * 1.0)

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.0)


class TestHMM:
    def test_emission_counts_sum_to_total_observations(self):
        app = HiddenMarkovModel(n_states=3, n_symbols=5)
        records = list(app.generate_records(20, seed=7))
        total_obs = sum(len(obs) for _sid, obs in records)
        out = runtime().run(app, records)
        total = sum(v for _k, v in out.records)
        # Posterior state mass sums to 1 per observation.
        assert total == pytest.approx(total_obs, rel=1e-6)

    def test_counts_nonnegative(self):
        app = HiddenMarkovModel()
        out = runtime().run(app, app.generate_records(10, seed=8))
        assert all(v >= 0 for _k, v in out.records)


class TestKMeans:
    def test_centroid_update_matches_numpy(self):
        app = KMeans(n_clusters=3, n_dims=4, seed=1)
        records = list(app.generate_records(200, seed=9))
        out = runtime().run(app, records)
        # Recompute assignment + means directly.
        X = np.array([x for _c, x in records])
        assign = np.argmin(
            np.linalg.norm(X[:, None, :] - app.centroids[None], axis=2), axis=1
        )
        for cluster, (mean, count) in out.as_dict().items():
            members = X[assign == cluster]
            assert count == len(members)
            assert np.allclose(mean, members.mean(axis=0))

    def test_set_centroids_shape_validated(self):
        app = KMeans(n_clusters=2, n_dims=3)
        with pytest.raises(ValueError):
            app.set_centroids(np.zeros((3, 3)))
