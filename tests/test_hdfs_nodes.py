"""DataNode and NameNode tests."""

import pytest

from repro.hdfs.blocks import Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.utils.units import GB, MB


def _block(i=0, length=64 * MB, name="f"):
    return Block(file_name=name, index=i, offset=i * length, length=length)


class TestDataNode:
    def test_store_and_account(self):
        dn = DataNode(node_id=0)
        dn.store(_block())
        assert dn.used_bytes == 64 * MB
        assert dn.has_block("f#0")
        assert len(dn) == 1

    def test_duplicate_store_rejected(self):
        dn = DataNode(node_id=0)
        dn.store(_block())
        with pytest.raises(ValueError, match="already stored"):
            dn.store(_block())

    def test_capacity_enforced(self):
        dn = DataNode(node_id=0, capacity_bytes=100 * MB)
        dn.store(_block(0))
        with pytest.raises(IOError, match="full"):
            dn.store(_block(1))

    def test_drop_frees_space(self):
        dn = DataNode(node_id=0)
        dn.store(_block())
        dn.drop("f#0")
        assert dn.used_bytes == 0
        with pytest.raises(KeyError):
            dn.drop("f#0")


class TestNameNode:
    def _nn(self, n=4, replication=3):
        return NameNode(
            datanodes=[DataNode(node_id=i) for i in range(n)],
            replication=replication,
        )

    def test_first_replica_on_writer(self):
        nn = self._nn()
        targets = nn.place_block(_block(), writer_node=2)
        assert targets[0] == 2
        assert len(targets) == 3
        assert len(set(targets)) == 3

    def test_replication_capped_by_cluster_size(self):
        nn = self._nn(n=2, replication=3)
        targets = nn.place_block(_block(), writer_node=0)
        assert len(targets) == 2

    def test_locate_and_locality(self):
        nn = self._nn()
        targets = nn.place_block(_block(), writer_node=1)
        assert nn.locate("f#0") == targets
        assert nn.is_local("f#0", 1)
        outside = next(i for i in range(4) if i not in targets)
        assert not nn.is_local("f#0", outside)

    def test_double_placement_rejected(self):
        nn = self._nn()
        nn.place_block(_block(), writer_node=0)
        with pytest.raises(ValueError, match="already placed"):
            nn.place_block(_block(), writer_node=1)

    def test_delete_block_drops_all_replicas(self):
        nn = self._nn()
        nn.place_block(_block(), writer_node=0)
        nn.delete_block("f#0")
        assert all(not dn.has_block("f#0") for dn in nn.datanodes)
        with pytest.raises(KeyError):
            nn.locate("f#0")

    def test_locality_fraction(self):
        nn = self._nn(n=8)
        b0, b1 = _block(0), _block(1)
        nn.place_block(b0, writer_node=0)
        nn.place_block(b1, writer_node=1)
        frac = nn.locality_fraction([b0.block_id, b1.block_id], 0)
        assert 0.0 <= frac <= 1.0
        assert nn.locality_fraction([], 0) == 1.0

    def test_invalid_writer(self):
        nn = self._nn()
        with pytest.raises(ValueError):
            nn.place_block(_block(), writer_node=99)
