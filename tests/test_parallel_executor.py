"""Parallel sweep executor: determinism, chunk-merge, telemetry.

The load-bearing property is *bit-identical equivalence*: every array
and every chosen configuration from the process-pool path must equal
the serial path exactly — a database built with ``REPRO_WORKERS=8``
is the same object as one built with ``REPRO_WORKERS=1``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.database import build_database
from repro.core.stp import SoloSTP, build_training_dataset
from repro.hardware.node import ATOM_C2758
from repro.model.config import pair_config_grid
from repro.model.sweep import merge_pair_sweeps, sweep_pair, sweep_solo
from repro.parallel import WORKERS_ENV, SweepExecutor, worker_count
from repro.telemetry.profiling import SweepTelemetry
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


@pytest.fixture(scope="module")
def small_pairs():
    a = AppInstance(get_app("st"), 1 * GB)
    b = AppInstance(get_app("wc"), 1 * GB)
    c = AppInstance(get_app("ts"), 5 * GB)
    return [(a, b), (b, c), (a, a)]


@pytest.fixture(scope="module")
def small_instances():
    return [AppInstance(get_app(code), 1 * GB) for code in ("wc", "st", "ts")]


class TestWorkerCount:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert worker_count() == 1

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert worker_count() == 4

    @pytest.mark.parametrize("raw", ["0", "auto", "AUTO"])
    def test_env_auto(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV, raw)
        assert worker_count() == (os.cpu_count() or 1)

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert worker_count(2) == 2

    def test_explicit_zero_means_all_cores(self):
        assert worker_count(0) == (os.cpu_count() or 1)

    def test_invalid_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            worker_count()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            worker_count(-1)

    def test_bad_freq_chunk_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(1, freq_chunk=0)


def _square(x: int) -> int:
    return x * x


class TestMap:
    def test_serial_order_preserved(self):
        assert SweepExecutor(1).map(_square, range(10)) == [i * i for i in range(10)]

    def test_parallel_order_preserved(self):
        assert SweepExecutor(2).map(_square, range(10)) == [i * i for i in range(10)]

    def test_empty(self):
        assert SweepExecutor(2).map(_square, []) == []


class TestChunkMerge:
    def test_freqs_a_chunks_concatenate_to_full_grid(self):
        node = ATOM_C2758
        full = pair_config_grid(node)
        parts = [pair_config_grid(node, freqs_a=[f]) for f in node.frequencies]
        for axis in range(6):
            merged = np.concatenate([p[axis] for p in parts])
            assert np.array_equal(merged, full[axis])

    def test_merged_chunks_bit_identical_to_full_sweep(self, small_pairs):
        a, b = small_pairs[0]
        full = sweep_pair(a, b)
        chunks = [
            sweep_pair(a, b, freqs_a=[f]) for f in ATOM_C2758.frequencies
        ]
        merged = merge_pair_sweeps(chunks)
        assert np.array_equal(merged.edp, full.edp)
        assert merged.best_index == full.best_index
        assert merged.best_configs == full.best_configs
        for name in ("freq_a", "block_a", "mappers_a", "freq_b", "block_b", "mappers_b"):
            assert np.array_equal(getattr(merged, name), getattr(full, name))

    def test_single_chunk_passthrough(self, small_pairs):
        a, b = small_pairs[0]
        sweep = sweep_pair(a, b)
        assert merge_pair_sweeps([sweep]) is sweep

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            merge_pair_sweeps([])

    def test_mismatched_pairs_rejected(self, small_pairs):
        (a, b), (c, d) = small_pairs[0], small_pairs[1]
        with pytest.raises(ValueError, match="different pairs"):
            merge_pair_sweeps([sweep_pair(a, b), sweep_pair(c, d)])


class TestParallelSerialEquivalence:
    """Every result from the pool path == the serial path, bitwise."""

    def test_pair_sweeps(self, small_pairs):
        serial = SweepExecutor(1).sweep_pairs(small_pairs)
        parallel = SweepExecutor(2, freq_chunk=1).sweep_pairs(small_pairs)
        for s, p in zip(serial, parallel):
            assert np.array_equal(s.edp, p.edp)
            assert np.array_equal(s.metrics.energy, p.metrics.energy)
            assert np.array_equal(s.metrics.makespan, p.metrics.makespan)
            assert s.best_index == p.best_index
            assert s.best_configs == p.best_configs

    def test_pair_bests(self, small_pairs):
        direct = [sweep_pair(a, b) for a, b in small_pairs]
        for workers in (1, 2):
            bests = SweepExecutor(workers, freq_chunk=1).sweep_pairs_best(small_pairs)
            for ref, best in zip(direct, bests):
                assert best.best_index == ref.best_index
                assert best.best_edp == ref.best_edp
                assert best.best_configs == ref.best_configs

    def test_solo_sweeps(self, small_instances):
        direct = [sweep_solo(i) for i in small_instances]
        parallel = SweepExecutor(2).sweep_solos(small_instances)
        for s, p in zip(direct, parallel):
            assert np.array_equal(s.edp, p.edp)
            assert s.best_config == p.best_config

    def test_build_database(self, small_instances):
        db_serial, _ = build_database(small_instances, executor=SweepExecutor(1))
        db_parallel, _ = build_database(
            small_instances, executor=SweepExecutor(2, freq_chunk=1)
        )
        assert db_serial.entries == db_parallel.entries

    def test_build_database_keep_sweeps_same_entries(self, small_instances):
        db_best, _ = build_database(small_instances)
        db_full, sweeps = build_database(small_instances, keep_sweeps=True)
        assert db_best.entries == db_full.entries
        assert len(sweeps) == len(db_full.entries)

    def test_training_dataset_fixed_seed(self, small_instances):
        serial = build_training_dataset(
            small_instances, rows_per_pair=50, seed=0, executor=SweepExecutor(1)
        )
        parallel = build_training_dataset(
            small_instances,
            rows_per_pair=50,
            seed=0,
            executor=SweepExecutor(2, freq_chunk=1),
        )
        assert np.array_equal(serial.X, parallel.X)
        assert np.array_equal(serial.y, parallel.y)
        assert np.array_equal(serial.pair_codes, parallel.pair_codes)

    def test_solo_stp_fit(self, small_instances):
        a = AppInstance(get_app("nb"), 1 * GB)
        from repro.core.stp import describe_instance

        desc = describe_instance(a, seed=0)
        cfg_serial = (
            SoloSTP("lr").fit(small_instances, seed=0, executor=SweepExecutor(1))
        ).predict_config(desc)
        cfg_parallel = (
            SoloSTP("lr").fit(small_instances, seed=0, executor=SweepExecutor(2))
        ).predict_config(desc)
        assert cfg_serial == cfg_parallel


class TestExperimentDrivers:
    def test_fig2_parallel_equals_serial(self):
        from repro.experiments.fig2_tuning import run_fig2

        serial = run_fig2("wc", data_bytes=1 * GB, executor=SweepExecutor(1))
        parallel = run_fig2("wc", data_bytes=1 * GB, executor=SweepExecutor(2))
        assert serial == parallel

    def test_table2_parallel_equals_serial(self, small_database):
        from repro.core.stp import LkTSTP
        from repro.experiments.table2_configs import run_table2

        kwargs = dict(
            workloads=((("nb", 1), ("km", 1)),),
            techniques={"LkT": LkTSTP(small_database)},
        )
        serial = run_table2(executor=SweepExecutor(1), **kwargs)
        parallel = run_table2(executor=SweepExecutor(2, freq_chunk=1), **kwargs)
        assert serial == parallel


class TestTelemetry:
    def test_tasks_and_batches_recorded(self, small_pairs):
        tel = SweepTelemetry()
        SweepExecutor(1, telemetry=tel).sweep_pairs(small_pairs)
        assert tel.n_tasks == len(small_pairs)
        assert tel.n_batches == 1
        assert tel.task_wall_s > 0.0
        assert tel.batch_wall_s > 0.0
        assert len(tel.worker_wall_s) == 1  # serial: one worker (this pid)
        text = tel.render()
        assert "worker" in text and "task(s)" in text

    def test_parallel_workers_visible(self, small_pairs):
        tel = SweepTelemetry()
        SweepExecutor(2, freq_chunk=1, telemetry=tel).sweep_pairs(small_pairs)
        # 4 frequency chunks per pair
        assert tel.n_tasks == 4 * len(small_pairs)
        assert tel.task_wall_s > 0.0

    def test_cache_delta_recorded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.experiments import artifacts

        artifacts.reset_cache_stats()
        tel = SweepTelemetry()
        exec_ = SweepExecutor(1, telemetry=tel)

        def probe(_item):
            return artifacts.cached("tel-probe", lambda: 1)

        exec_.map(probe, [0])
        exec_.map(probe, [0])
        assert (tel.cache_hits, tel.cache_misses) == (1, 1)
        assert tel.cache_hit_rate == pytest.approx(0.5)
        assert "hit rate" in tel.render()

    def test_merge(self):
        a, b = SweepTelemetry(), SweepTelemetry()
        a.record_task("1", 1.0)
        b.record_task("1", 2.0)
        b.record_task("2", 3.0)
        b.record_cache(4, 1)
        a.merge(b)
        assert a.worker_wall_s == {"1": 3.0, "2": 3.0}
        assert a.n_tasks == 3
        assert a.cache_hit_rate == pytest.approx(0.8)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4 or not os.environ.get("REPRO_PERF_TEST"),
    reason="needs >=4 cores and REPRO_PERF_TEST=1",
)
class TestSpeedup:
    def test_pair_sweep_database_build_faster_with_four_workers(self):
        """On a 4-core runner the fanned-out database build must beat
        serial (opt-in: wall-clock assertions are hardware-bound)."""
        import time

        from repro.workloads.registry import TRAINING_APPS, instances_for

        instances = instances_for(TRAINING_APPS)
        t0 = time.perf_counter()
        db_serial, _ = build_database(instances, executor=SweepExecutor(1))
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        db_parallel, _ = build_database(instances, executor=SweepExecutor(4))
        parallel_s = time.perf_counter() - t0
        assert db_serial.entries == db_parallel.entries
        assert parallel_s < serial_s
