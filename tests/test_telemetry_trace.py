"""Trace-analysis tests over real engine interval records."""

import numpy as np
import pytest

from repro.mapreduce.engine import NodeEngine
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.telemetry.trace import (
    concurrency_histogram,
    node_utilization,
    power_timeseries,
    summarize_jobs,
)
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


def _spec(code, gb=1, m=4):
    return JobSpec(
        instance=AppInstance(get_app(code), gb * GB),
        config=JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=m),
    )


@pytest.fixture(scope="module")
def pair_trace():
    engine = NodeEngine()
    a, b = _spec("st", gb=1), _spec("wc", gb=5)
    engine.submit(a)
    engine.submit(b)
    results = engine.run_to_completion()
    return engine, results


class TestJobSummaries:
    def test_every_job_summarised(self, pair_trace):
        engine, results = pair_trace
        summaries = summarize_jobs(engine.intervals)
        assert set(summaries) == {r.spec.job_id for r in results}

    def test_spans_match_results(self, pair_trace):
        engine, results = pair_trace
        summaries = summarize_jobs(engine.intervals)
        for r in results:
            s = summaries[r.spec.job_id]
            assert s.first_seen == pytest.approx(r.start_time)
            assert s.last_seen == pytest.approx(r.finish_time)

    def test_short_job_fully_shared_long_job_partially(self, pair_trace):
        engine, results = pair_trace
        summaries = summarize_jobs(engine.intervals)
        short = min(results, key=lambda r: r.finish_time)
        long = max(results, key=lambda r: r.finish_time)
        assert summaries[short.spec.job_id].shared_fraction == pytest.approx(1.0)
        assert 0.0 < summaries[long.spec.job_id].shared_fraction < 1.0
        assert summaries[long.spec.job_id].solo_seconds > 0

    def test_busy_core_seconds_positive(self, pair_trace):
        engine, _ = pair_trace
        for s in summarize_jobs(engine.intervals).values():
            assert s.busy_core_seconds > 0
            assert 0 <= s.avg_corunners <= 1.0


class TestNodeUtilization:
    def test_duty_cycle_and_idle_horizon(self, pair_trace):
        engine, results = pair_trace
        makespan = max(r.finish_time for r in results)
        u = node_utilization(
            engine.intervals, horizon=makespan + 100,
            idle_power=engine.node.power.idle_power,
        )
        assert u.busy_time == pytest.approx(makespan)
        assert u.duty_cycle < 1.0
        assert 0 < u.avg_cores_busy <= 8
        assert u.avg_power_watts >= engine.node.power.idle_power * 0.99

    def test_power_consistent_with_energy_accounting(self, pair_trace):
        engine, results = pair_trace
        makespan = max(r.finish_time for r in results)
        u = node_utilization(
            engine.intervals, horizon=makespan,
            idle_power=engine.node.power.idle_power,
        )
        assert u.avg_power_watts * makespan == pytest.approx(
            engine.energy_between(0, makespan), rel=1e-6
        )

    def test_requires_positive_horizon(self):
        with pytest.raises(ValueError):
            node_utilization([], horizon=None)


class TestPowerTimeseries:
    def test_matches_wattsup_without_noise(self, pair_trace):
        from repro.telemetry.wattsup import WattsupMeter

        engine, _ = pair_trace
        times, watts = power_timeseries(
            engine.intervals, idle_power=engine.node.power.idle_power
        )
        trace = WattsupMeter(noise_watts=0.0).trace_from_intervals(engine.intervals)
        # Interval-mean (wattsup) vs point-sample (timeseries) agree
        # everywhere except segment-boundary seconds.
        agree = np.isclose(watts[: len(trace.samples_watts)],
                           trace.samples_watts[: len(watts)], rtol=0.02)
        assert agree.mean() > 0.9

    def test_step_validation(self, pair_trace):
        engine, _ = pair_trace
        with pytest.raises(ValueError):
            power_timeseries(engine.intervals, step_s=0.0)


class TestConcurrencyHistogram:
    def test_levels_sum_to_busy_time(self, pair_trace):
        engine, results = pair_trace
        hist = concurrency_histogram(engine.intervals)
        assert set(hist) == {1, 2}
        makespan = max(r.finish_time for r in results)
        assert sum(hist.values()) == pytest.approx(makespan)


def _seg(start, end, watts, node_id=0):
    from repro.mapreduce.engine import IntervalRecord

    return IntervalRecord(
        node_id=node_id,
        start=start,
        end=end,
        power_watts=watts,
        stretch=1.0,
        job_ids=(1,),
        u_cpu_per_job=(0.5,),
        u_disk=0.2,
        u_net=0.1,
        u_mem=0.3,
        frequency_per_job=(2.4e9,),
        mappers_per_job=(4,),
    )


class TestPowerTimeseriesCoverage:
    def test_bit_identical_to_wattsup(self, pair_trace):
        from repro.telemetry.wattsup import WattsupMeter

        engine, _ = pair_trace
        idle = engine.node.power.idle_power
        _times, watts = power_timeseries(engine.intervals, idle_power=idle)
        trace = WattsupMeter(noise_watts=0.0).trace_from_intervals(
            engine.intervals
        )
        n = min(len(watts), len(trace.samples_watts))
        assert np.array_equal(watts[:n], trace.samples_watts[:n])

    def test_partial_coverage_weighted(self):
        # A segment covering half the bin no longer claims the whole
        # bin: the sample is the coverage-weighted mean with idle.
        _t, watts = power_timeseries(
            [_seg(0.0, 0.5, 40.0)], horizon=2.0, idle_power=10.0
        )
        assert watts.tolist() == [(40.0 * 0.5 + 10.0 * 0.5), 10.0]

    def test_gap_between_segments_reads_idle(self):
        _t, watts = power_timeseries(
            [_seg(0.0, 1.0, 40.0), _seg(2.0, 3.0, 60.0)],
            horizon=3.0,
            idle_power=5.0,
        )
        assert watts.tolist() == [40.0, 5.0, 60.0]

    def test_segment_straddling_horizon(self):
        # The horizon truncates the grid, not the segment: bins inside
        # the horizon read full segment power, and nothing is emitted
        # past it.
        _t, watts = power_timeseries(
            [_seg(0.0, 2.5, 40.0)], horizon=2.0, idle_power=10.0
        )
        assert watts.tolist() == [40.0, 40.0]
        _t, watts = power_timeseries(
            [_seg(0.0, 2.5, 40.0)], horizon=3.0, idle_power=10.0
        )
        assert watts.tolist() == [40.0, 40.0, 40.0 * 0.5 + 10.0 * 0.5]


class TestNodeUtilizationHorizonEdges:
    def test_segment_straddling_horizon_is_clipped(self):
        u = node_utilization([_seg(0.0, 4.0, 40.0)], horizon=2.0)
        assert u.busy_time == pytest.approx(2.0)
        assert u.duty_cycle == pytest.approx(1.0)
        assert u.avg_power_watts == pytest.approx(40.0)

    def test_gap_counts_as_idle(self):
        u = node_utilization(
            [_seg(0.0, 1.0, 40.0), _seg(3.0, 4.0, 40.0)],
            horizon=4.0,
            idle_power=10.0,
        )
        assert u.busy_time == pytest.approx(2.0)
        assert u.duty_cycle == pytest.approx(0.5)
        assert u.avg_power_watts == pytest.approx((40.0 * 2 + 10.0 * 2) / 4.0)

    def test_segment_entirely_past_horizon_ignored(self):
        u = node_utilization(
            [_seg(0.0, 1.0, 40.0), _seg(5.0, 6.0, 40.0)],
            horizon=2.0,
            idle_power=10.0,
        )
        assert u.busy_time == pytest.approx(1.0)
        assert u.avg_power_watts == pytest.approx((40.0 + 10.0) / 2.0)
