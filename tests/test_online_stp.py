"""OnlineSTP behaviour: incremental updates, relearn, controller seams.

Covers the two bugfixes this layer grew out of:

* ``ECoSTController.on_cluster_change`` used to log "re-entering
  learning period" while the model silently stayed stale — with an
  online backend the refit is real, and a post-crash pairing decision
  for a drifted pair differs from (and beats) the stale one;
* ``ECoSTController._running_descriptor`` used to index
  ``engine.running[0]`` unguarded and crash when the fault layer
  emptied the running list between the schedulability check and the
  descriptor build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.classify import NearestCentroidClassifier
from repro.analysis.features import build_feature_matrix
from repro.core.controller import ECoSTController
from repro.core.stp import MLMSTP, describe_instance
from repro.mapreduce.engine import ClusterEngine
from repro.model.costmodel import pair_metrics
from repro.model.sweep import sweep_pair
from repro.online import OnlineSTP, PairObservation
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app

pytestmark = pytest.mark.online


@pytest.fixture(scope="module")
def fitted_stp(small_dataset):
    return MLMSTP("reptree").fit(small_dataset)


@pytest.fixture(scope="module")
def classifier(small_training_instances):
    fm = build_feature_matrix(small_training_instances, seed=0)
    return NearestCentroidClassifier().fit(
        fm, [i.app_class for i in small_training_instances]
    )


def _observation(code_a, size_a, code_b, size_b, stp, *, t=10.0, edp=None, **kw):
    """A synthetic completed pairing using the STP's own predictions."""
    inst_a = AppInstance(get_app(code_a), size_a)
    inst_b = AppInstance(get_app(code_b), size_b)
    desc_a = describe_instance(inst_a)
    desc_b = describe_instance(inst_b)
    cfg_a, cfg_b = stp.predict_configs(desc_a, desc_b)
    if edp is None:
        metrics = pair_metrics(
            inst_a.profile, inst_a.data_bytes,
            [cfg_a.frequency], [cfg_a.block_size], [cfg_a.n_mappers],
            inst_b.profile, inst_b.data_bytes,
            [cfg_b.frequency], [cfg_b.block_size], [cfg_b.n_mappers],
        )
        edp = float(np.asarray(metrics.edp).reshape(-1)[0])
    return PairObservation(
        t=t, desc_a=desc_a, desc_b=desc_b, inst_a=inst_a, inst_b=inst_b,
        cfg_a=cfg_a, cfg_b=cfg_b, edp=edp, **kw,
    )


# ----------------------------------------------------------- wrapper
class TestOnlineSTPBasics:
    def test_requires_fitted_base(self):
        with pytest.raises(RuntimeError, match="fitted"):
            OnlineSTP(MLMSTP("reptree"))

    def test_rejects_per_class_scope(self, fitted_stp):
        import copy

        stale = copy.deepcopy(fitted_stp)
        stale.scope = "per-class"
        with pytest.raises(ValueError, match="global"):
            OnlineSTP(stale)

    def test_lr_mode_needs_dataset(self, small_dataset):
        lr = MLMSTP("lr").fit(small_dataset)
        with pytest.raises(ValueError, match="training dataset"):
            OnlineSTP(lr)

    def test_base_model_stays_frozen(self, fitted_stp, small_dataset):
        online = OnlineSTP(fitted_stp, dataset=small_dataset)
        assert online.stp is not fitted_stp
        assert online.stp.global_model_ is not fitted_stp.global_model_

    def test_partial_fit_folds_one_row(self, fitted_stp, small_dataset):
        online = OnlineSTP(fitted_stp, dataset=small_dataset)
        before = len(online._window)
        obs = _observation("wc", 1 * GB, "st", 1 * GB, fitted_stp)
        assert online.partial_fit(obs) is True
        assert online.telemetry.updates == 1
        assert len(online._window) == min(before + 1, online._window.capacity)

    @pytest.mark.parametrize("edp", [0.0, -3.0, float("nan"), float("inf")])
    def test_partial_fit_skips_unusable_edp(self, fitted_stp, small_dataset, edp):
        online = OnlineSTP(fitted_stp, dataset=small_dataset)
        obs = _observation("wc", 1 * GB, "st", 1 * GB, fitted_stp, edp=edp)
        assert online.partial_fit(obs) is False
        assert online.telemetry.skipped_rows == 1
        assert online.telemetry.updates == 0

    def test_unsynchronized_rows_feed_detector_only(
        self, fitted_stp, small_dataset
    ):
        online = OnlineSTP(fitted_stp, dataset=small_dataset, window=64)
        rows_before = len(online._window)
        samples_before = online.detector.samples
        obs = _observation(
            "wc", 1 * GB, "st", 1 * GB, fitted_stp, synchronized=False
        )
        assert online.partial_fit(obs) is True
        assert online.telemetry.noisy_rows == 1
        assert len(online._window) == rows_before  # not a model row
        assert online.detector.samples == samples_before + 1

    def test_rls_mode_updates_exactly(self, small_dataset):
        lr = MLMSTP("lr").fit(small_dataset)
        online = OnlineSTP(lr, dataset=small_dataset)
        assert online.mode == "rls"
        n_before = online._ridge.n_rows_
        obs = _observation("wc", 1 * GB, "st", 1 * GB, lr)
        online.partial_fit(obs)
        assert online._ridge.n_rows_ == n_before + 1
        # Wrapper predictions stay finite and grid-valid.
        cfg_a, cfg_b = online.predict_configs(obs.desc_a, obs.desc_b)
        assert cfg_a.n_mappers >= 1 and cfg_b.n_mappers >= 1


# ------------------------------------------------------------- refit
class TestRelearn:
    def test_refit_sweeps_recent_pairs_and_installs_tuned_entry(
        self, fitted_stp, small_dataset
    ):
        online = OnlineSTP(fitted_stp, dataset=small_dataset, relearn_rows=32)
        obs = _observation("km", 10 * GB, "km", 10 * GB, fitted_stp)
        online.partial_fit(obs)
        assert online.refit(t=obs.t, reason="manual") is True
        assert online.telemetry.refits == 1
        assert online.telemetry.relearn_sweeps == 1
        sweep = sweep_pair(obs.inst_a, obs.inst_b, node=fitted_stp.node)
        assert online.predict_configs(obs.desc_a, obs.desc_b) == sweep.best_configs
        assert online.telemetry.tuned_hits == 1
        # Orientation-invariant: the swapped query returns the swapped pair.
        hit = online.predict_configs(obs.desc_b, obs.desc_a)
        assert hit == (sweep.best_configs[1], sweep.best_configs[0])

    def test_first_sight_sweep_consumes_learning_budget(
        self, fitted_stp, small_dataset
    ):
        online = OnlineSTP(fitted_stp, dataset=small_dataset, relearn_rows=32)
        inst = AppInstance(get_app("nb"), 10 * GB)
        desc = describe_instance(inst)
        # No learning period open yet: first sight does nothing.
        assert not online.observe_pair(
            t=0.0, desc_a=desc, desc_b=desc, inst_a=inst, inst_b=inst
        )
        online.refit(t=1.0, reason="manual")  # opens the budget
        assert online.observe_pair(
            t=2.0, desc_a=desc, desc_b=desc, inst_a=inst, inst_b=inst
        )
        assert online.telemetry.relearn_sweeps == 1
        # Already swept: a second sight is a no-op.
        assert not online.observe_pair(
            t=3.0, desc_a=desc, desc_b=desc, inst_a=inst, inst_b=inst
        )

    def test_refit_extends_projection_manifold(self, fitted_stp, small_dataset):
        online = OnlineSTP(fitted_stp, dataset=small_dataset, relearn_rows=32)
        rows_before = online.stp.train_features_.shape[0]
        obs = _observation("km", 10 * GB, "nb", 10 * GB, fitted_stp)
        online.partial_fit(obs)
        online.refit()
        assert online.stp.train_features_.shape[0] == rows_before + 2
        assert online.stp.train_sizes_[-2:].tolist() == [
            float(obs.inst_a.data_bytes),
            float(obs.inst_b.data_bytes),
        ]


# ------------------------------------------------- controller seams
class TestControllerRelearnSeam:
    def test_post_crash_decision_differs_from_stale_model(
        self, fitted_stp, small_dataset, classifier
    ):
        """Satellite regression: on a drifted pair the stale model's
        decision used to survive ``on_cluster_change`` untouched; the
        refit one must differ and beat it on closed-form EDP."""
        inst = AppInstance(get_app("km"), 10 * GB)
        desc = describe_instance(inst)
        stale_cfgs = fitted_stp.predict_configs(desc, desc)

        online = OnlineSTP(fitted_stp, dataset=small_dataset, relearn_rows=32)
        obs = _observation("km", 10 * GB, "km", 10 * GB, fitted_stp)
        online.partial_fit(obs)

        cluster = ClusterEngine(n_nodes=2)
        ctrl = ECoSTController(cluster, online, classifier)
        ctrl.on_cluster_change(100.0, [0])

        assert ctrl.relearn_count == 1
        assert "re-entering learning period" in ctrl.decisions[-1]
        assert "(STP refit)" in ctrl.decisions[-1]
        refit_cfgs = online.predict_configs(desc, desc)
        assert refit_cfgs != stale_cfgs

        def pair_edp(cfgs):
            m = pair_metrics(
                inst.profile, inst.data_bytes,
                [cfgs[0].frequency], [cfgs[0].block_size], [cfgs[0].n_mappers],
                inst.profile, inst.data_bytes,
                [cfgs[1].frequency], [cfgs[1].block_size], [cfgs[1].n_mappers],
            )
            return float(np.asarray(m.edp).reshape(-1)[0])

        assert pair_edp(refit_cfgs) < pair_edp(stale_cfgs)

    def test_offline_backend_keeps_log_without_refit_suffix(
        self, fitted_stp, classifier
    ):
        cluster = ClusterEngine(n_nodes=2)
        ctrl = ECoSTController(cluster, fitted_stp, classifier)
        ctrl.on_cluster_change(50.0, [0, 1])
        assert ctrl.relearn_count == 1
        assert "re-entering learning period" in ctrl.decisions[-1]
        assert "(STP refit)" not in ctrl.decisions[-1]

    def test_running_descriptor_handles_emptied_node(
        self, fitted_stp, classifier
    ):
        """Satellite regression: an alive node whose running list the
        fault layer emptied must yield None, not IndexError."""
        cluster = ClusterEngine(n_nodes=1)
        ctrl = ECoSTController(cluster, fitted_stp, classifier)
        engine = cluster.nodes[0]
        assert engine.alive and not engine.running
        assert ctrl._running_descriptor(engine) is None
