"""Bit-identity of the scalar cost-kernel fast path vs the array path.

The discrete-event engine runs on :func:`standalone_metrics_scalar` /
:func:`colocation_context_scalar`; every seeded experiment output is
therefore only reproducible if the scalar mirrors are *exactly* (not
approximately) equal to the broadcastable NumPy originals.  These
tests assert ``==`` on every field over randomized draws of the full
knob/coupling space.
"""

import math

import numpy as np
import pytest

from repro.model.costmodel import (
    ScalarJobMetrics,
    _dyn_scale_scalar,
    colocation_context,
    colocation_context_scalar,
    standalone_metrics,
    standalone_metrics_scalar,
)
from repro.utils.units import GB, GHZ, MB
from repro.workloads.registry import ALL_APPS, get_app

FIELDS = ScalarJobMetrics.__slots__

FREQS = [1.2 * GHZ, 1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ]
BLOCKS = [64 * MB, 128 * MB, 256 * MB, 512 * MB, 1024 * MB]


def _assert_identical(scalar: ScalarJobMetrics, arr, label: str) -> None:
    for f in FIELDS:
        got = getattr(scalar, f)
        want = arr.scalar(f)
        assert got == want, f"{label}: field {f}: {got!r} != {want!r}"


class TestStandaloneScalar:
    def test_grid_bit_identity(self):
        """Every app × size × knob corner, neutral context."""
        for code in ALL_APPS:
            p = get_app(code).profile
            for size in (1 * GB, 5 * GB):
                for f in FREQS:
                    for b in (64 * MB, 512 * MB):
                        for m in (1, 4, 8):
                            s = standalone_metrics_scalar(p, size, f, b, m)
                            a = standalone_metrics(p, size, f, b, m)
                            _assert_identical(s, a, f"{code}/{size}/{f}/{b}/{m}")

    def test_randomized_with_couplings(self):
        """Random coupling scales (the co-location regime)."""
        rng = np.random.default_rng(7)
        for _ in range(300):
            p = get_app(ALL_APPS[int(rng.integers(len(ALL_APPS)))]).profile
            size = int(rng.integers(1, 20)) * 512 * MB
            f = FREQS[int(rng.integers(4))]
            b = BLOCKS[int(rng.integers(5))]
            m = int(rng.integers(1, 9))
            mpki = float(1.0 + rng.random() * 2.0)
            disk = float(1.0 + rng.random())
            extra = float(rng.integers(0, 9))
            rf = None if rng.random() < 0.5 else float(rng.random())
            s = standalone_metrics_scalar(
                p, size, f, b, m, mpki_scale=mpki,
                disk_traffic_scale=disk, extra_streams=extra,
                remote_fraction=rf,
            )
            a = standalone_metrics(
                p, size, f, b, m, mpki_scale=mpki,
                disk_traffic_scale=disk, extra_streams=extra,
                remote_fraction=rf,
            )
            _assert_identical(s, a, "randomized")

    def test_scalar_fields_are_plain_floats(self):
        s = standalone_metrics_scalar(get_app("wc").profile, 1 * GB, 2.4 * GHZ, 128 * MB, 4)
        for f in FIELDS:
            assert type(getattr(s, f)) is float
        assert s.scalar("edp") == s.edp

    def test_derived_invariants(self):
        s = standalone_metrics_scalar(get_app("st").profile, 5 * GB, 1.6 * GHZ, 256 * MB, 4)
        assert s.energy == pytest.approx(s.power * s.duration)
        assert s.edp == pytest.approx(s.energy * s.duration)
        assert s.n_tasks == math.ceil(5 * GB / (256 * MB))


class TestDynScaleScalar:
    def test_matches_dvfs_levels(self):
        from repro.hardware.node import ATOM_C2758

        for f in FREQS:
            point = ATOM_C2758.dvfs.point_for(f)
            assert _dyn_scale_scalar(ATOM_C2758, f) == point.dynamic_scale(
                ATOM_C2758.dvfs.max_point
            )

    def test_tolerance_matches_array_path(self):
        from repro.hardware.node import ATOM_C2758

        f = 2.4 * GHZ * (1.0 + 5e-4)  # inside the rtol=1e-3 window
        assert _dyn_scale_scalar(ATOM_C2758, f) == _dyn_scale_scalar(
            ATOM_C2758, 2.4 * GHZ
        )

    def test_rejects_non_dvfs_frequency(self):
        from repro.hardware.node import ATOM_C2758

        with pytest.raises(ValueError, match="non-DVFS"):
            _dyn_scale_scalar(ATOM_C2758, 3.1 * GHZ)


class TestColocationContextScalar:
    def test_solo_neutral(self):
        p = get_app("wc").profile
        ctx = colocation_context_scalar([p], [4.0])
        arr = colocation_context([p], [4.0])
        assert len(ctx) == 1
        mpki, disk, extra = ctx[0]
        assert mpki == float(np.asarray(arr.mpki_scale).reshape(-1)[0])
        assert disk == float(np.asarray(arr.disk_traffic_scale).reshape(-1)[0])
        assert extra == float(np.asarray(arr.extra_streams).reshape(-1)[0])

    def test_randomized_sets_bit_identity(self):
        rng = np.random.default_rng(11)
        for _ in range(500):
            k = int(rng.integers(1, 5))
            profiles, mappers = [], []
            for _ in range(k):
                profiles.append(
                    get_app(ALL_APPS[int(rng.integers(len(ALL_APPS)))]).profile
                )
                mappers.append(float(rng.integers(1, 5)))
            ctx = colocation_context_scalar(profiles, mappers)
            arr = colocation_context(profiles, mappers)
            mpki_a = np.broadcast_to(np.asarray(arr.mpki_scale, dtype=float), (k,))
            disk_a = np.broadcast_to(np.asarray(arr.disk_traffic_scale, dtype=float), (k,))
            extra_a = np.broadcast_to(np.asarray(arr.extra_streams, dtype=float), (k,))
            for i, (mpki, disk, extra) in enumerate(ctx):
                assert mpki == float(mpki_a[i])
                assert disk == float(disk_a[i])
                assert extra == float(extra_a[i])

    def test_validation_mirrors_array_path(self):
        p = get_app("wc").profile
        with pytest.raises(ValueError):
            colocation_context_scalar([], [])
        with pytest.raises(ValueError):
            colocation_context_scalar([p], [0.5])
        with pytest.raises(ValueError):
            colocation_context_scalar([p, p], [4.0])
