"""Report-object logic tests with hand-built inputs (no sweeps)."""

import pytest

from repro.baselines.mapping import PolicyOutcome
from repro.experiments.fig2_tuning import Fig2Report
from repro.experiments.fig3_colao_ilao import Fig3Report, PairRatio
from repro.experiments.fig9_scalability import POLICY_ORDER, Fig9Report
from repro.experiments.sec7_error import Sec7Report
from repro.utils.units import GB

import numpy as np


class TestFig2Report:
    def test_joint_gain_over_individual(self):
        report = Fig2Report(
            app_code="x", data_bytes=1 * GB,
            mappers=(1, 2),
            block_only=(1.1, 1.0),
            freq_only=(2.0, 1.8),
            concurrent=(2.2, 1.8),
        )
        gains = report.concurrent_gain_over_individual
        assert gains[0] == pytest.approx(10.0)
        assert gains[1] == pytest.approx(0.0)
        assert "Figure 2" in report.render()


class TestFig3Report:
    def _report(self):
        pairs = (
            PairRatio("st", "st", "I-I", ilao_edp=400.0, colao_edp=100.0),
            PairRatio("st", "nb", "I-I", ilao_edp=300.0, colao_edp=150.0),
            PairRatio("fp", "fp", "M-M", ilao_edp=100.0, colao_edp=100.0),
        )
        return Fig3Report(data_bytes=1 * GB, pairs=pairs)

    def test_max_ratio(self):
        assert self._report().max_ratio.ratio == pytest.approx(4.0)

    def test_ratios_by_class_averages(self):
        by_class = self._report().ratios_by_class()
        assert by_class["I-I"] == pytest.approx(3.0)
        assert by_class["M-M"] == pytest.approx(1.0)

    def test_render_sorted_by_gain(self):
        text = self._report().render()
        # Rows are sorted by descending gain: st-st (4x) first,
        # fp-fp (1x) last.
        assert text.index("st-st") < text.index("st-nb") < text.index("fp-fp")


class TestFig9Report:
    def _report(self):
        outcomes = {}
        for ws in ("WSa",):
            for n in (1,):
                for i, p in enumerate(POLICY_ORDER):
                    # UB last in POLICY_ORDER gets the lowest EDP.
                    energy = 10.0 * (len(POLICY_ORDER) - i)
                    outcomes[(ws, n, p)] = PolicyOutcome(
                        policy=p, n_nodes=n, makespan=10.0, energy=energy
                    )
        return Fig9Report(node_counts=(1,), scenarios=("WSa",), outcomes=outcomes)

    def test_normalized_to_ub(self):
        norm = self._report().normalized("WSa", 1)
        assert norm["UB"] == pytest.approx(1.0)
        assert norm["SM"] == pytest.approx(len(POLICY_ORDER))

    def test_ecost_gap_percent(self):
        gap = self._report().ecost_gap(1)
        assert gap == pytest.approx(100.0)  # ECoST energy = 2x UB

    def test_render(self):
        assert "Figure 9" in self._report().render()


class TestSec7Report:
    def test_means_and_render(self):
        report = Sec7Report(
            errors={
                "LkT": np.array([1.0, 3.0]),
                "LR": np.array([50.0, 70.0]),
                "REPTree": np.array([2.0, 2.0]),
                "MLP": np.array([1.0, 1.0]),
            },
            n_pairs=2,
        )
        means = report.means()
        assert means["LR"] == pytest.approx(60.0)
        text = report.render()
        assert "S7.1" in text and "LkT" in text
