"""HTTP round trips against a real asyncio server on an ephemeral port.

One server per module, run in a background thread with its own event
loop; every test talks to it through the stdlib
:class:`~repro.service.client.ServiceClient`, exactly as the CLI does.
The deterministic behaviour is pinned in the transport-free suites —
these tests cover the wire: routing, error mapping, batch submits, and
the shutdown handshake.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.service import ServiceConfig, seeded_requests
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.server import ServiceServer

pytestmark = pytest.mark.service


class ServerThread:
    """A server + event loop on a daemon thread (ephemeral port)."""

    def __init__(self, config: ServiceConfig):
        self.server = ServiceServer(config=config)
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_until_complete(self.server.serve_until_shutdown())
        self.loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        assert self._started.wait(15), "server failed to start"
        return self

    @property
    def client(self) -> ServiceClient:
        return ServiceClient(port=self.server.port)

    def stop(self):
        if self._thread.is_alive():
            try:
                self.client.shutdown()
            except (ServiceClientError, OSError):  # already stopping
                pass
            self._thread.join(10)


@pytest.fixture
def server():
    thread = ServerThread(ServiceConfig(port=0)).start()
    yield thread
    thread.stop()


def test_healthz_and_status(server):
    assert server.client.healthz() == {"ok": True}
    status = server.client.status()
    assert status["scheduler"] == "fifo"
    assert status["clock_mode"] == "virtual"
    assert status["requests"] == 0


def test_submit_roundtrip_and_metrics(server):
    client = server.client
    ack = client.submit({"code": "wc", "data_bytes": 10**9, "time": 0.0})
    assert ack["ok"] and ack["accepted"]
    acks = client.submit_batch(seeded_requests(40, seed=8))
    assert sum(1 for a in acks if a["accepted"]) == 40
    summary = client.drain()
    assert summary["completed"] == 41
    metrics = client.metrics()
    assert metrics["service"]["completed"] == 41
    assert "engine" in metrics and "tenants" in metrics


def test_advance_moves_the_engine(server):
    client = server.client
    client.submit({"code": "wc", "data_bytes": 10**9, "time": 0.0})
    out = client.advance(50_000.0)
    assert out["ok"] and out["engine_now"] <= 50_000.0
    assert client.status()["completed"] == 1
    client.drain()


def test_trace_endpoint_shape(server):
    trace = server.client.trace()
    assert trace["traceEvents"] == []  # tracer off by default


def test_malformed_submission_is_a_clean_ack(server):
    ack = server.client.submit({"code": "nope", "data_bytes": 1, "time": 0.0})
    assert ack["ok"] is False and "nope" in ack["error"]


def test_error_mapping(server):
    client = server.client
    with pytest.raises(ServiceClientError) as err:
        client.request("GET", "/nope")
    assert err.value.status == 404
    with pytest.raises(ServiceClientError) as err:
        client.request("POST", "/nope", {})
    assert err.value.status == 404
    with pytest.raises(ServiceClientError) as err:
        client.request("DELETE", "/submit", {})
    assert err.value.status == 405
    with pytest.raises(ServiceClientError) as err:
        client.request("POST", "/batch", {"not": "a list"})
    assert err.value.status == 400
    with pytest.raises(ServiceClientError) as err:
        client.request("POST", "/advance", {"time": "tea"})
    assert err.value.status == 400
    with pytest.raises(ServiceClientError) as err:
        client.request("POST", "/submit")  # no body at all
    assert err.value.status == 400


def test_http_stream_matches_direct_core_run(server):
    """The transport adds nothing: HTTP acks == direct core acks."""
    from repro.service import ClusterService

    requests = seeded_requests(60, seed=12)
    http_acks = server.client.submit_batch(requests)
    http_summary = server.client.drain()

    direct = ClusterService(ServiceConfig())
    direct_acks = [direct.submit_request(r) for r in requests]
    direct_summary = direct.drain()
    assert http_acks == direct_acks
    assert http_summary == direct_summary


def test_shutdown_stops_the_thread():
    thread = ServerThread(ServiceConfig(port=0)).start()
    out = thread.client.shutdown()
    assert out == {"ok": True, "stopping": True}
    thread._thread.join(10)
    assert not thread._thread.is_alive()


def test_wall_clock_server_pumps_in_background():
    """Wall mode: submissions complete without any explicit advance."""
    import time

    config = ServiceConfig(
        port=0, clock="wall", time_scale=1e6, pump_interval_s=0.01
    )
    thread = ServerThread(config).start()
    try:
        client = thread.client
        ack = client.submit({"code": "wc", "data_bytes": 10**9})
        assert ack["accepted"]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if client.status()["completed"] == 1:
                break
            time.sleep(0.05)
        assert client.status()["completed"] == 1
    finally:
        thread.stop()
