"""Champion/challenger shadow mode and the seeded drift scenario.

The heavyweight end-to-end properties (byte-identity with the shadow
never promoting, challenger beating the frozen champion under drift,
same-seed determinism of curves and promotion) run the full scenario
and are marked ``slow`` — CI's ``online`` lane selects them with
``-m online``.
"""

from __future__ import annotations

import pytest

from repro.core.stp import MLMSTP, describe_instance
from repro.model.sweep import sweep_pair
from repro.online import OnlineSTP, PromotionPolicy, ShadowSTP
from repro.online.shadow import PairScorer
from repro.online.scenario import run_drift_scenario
from repro.telemetry.registry import MetricsRegistry, attach_online
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app

pytestmark = pytest.mark.online

#: A policy that can never fire — the champion stays active for good.
NEVER = PromotionPolicy(min_decisions=10**9)


@pytest.fixture(scope="module")
def fitted_stp(small_dataset):
    return MLMSTP("reptree").fit(small_dataset)


# -------------------------------------------------------- pair scorer
class TestPairScorer:
    def test_optimum_matches_sweep_and_is_orientation_invariant(self):
        scorer = PairScorer()
        a = AppInstance(get_app("wc"), 1 * GB)
        b = AppInstance(get_app("st"), 1 * GB)
        sweep = sweep_pair(a, b)
        assert scorer.optimum(a, b) == pytest.approx(sweep.best_edp)
        assert scorer.optimum(b, a) == pytest.approx(sweep.best_edp)
        # Second call hits the cache (one entry for both orientations).
        assert len(scorer._optima) == 1

    def test_score_of_best_configs_equals_optimum(self):
        scorer = PairScorer()
        a = AppInstance(get_app("wc"), 1 * GB)
        b = AppInstance(get_app("st"), 1 * GB)
        sweep = sweep_pair(a, b)
        cfg_a, cfg_b = sweep.best_configs
        assert scorer.score(a, b, cfg_a, cfg_b) == pytest.approx(
            sweep.best_edp, rel=1e-9
        )


# --------------------------------------------------- promotion policy
class TestPromotionPolicy:
    def test_promotes_only_at_checkpoints_past_min_decisions(self):
        policy = PromotionPolicy(min_decisions=8, check_every=4, margin=0.9)
        assert not policy.should_promote(7, 100.0, 10.0)  # too early
        assert not policy.should_promote(9, 100.0, 10.0)  # off-checkpoint
        assert policy.should_promote(8, 100.0, 10.0)
        assert policy.should_promote(12, 100.0, 90.0)  # exactly at margin
        assert not policy.should_promote(12, 100.0, 90.1)

    def test_requires_strict_improvement_at_zero_regret(self):
        policy = PromotionPolicy(min_decisions=1, check_every=1, margin=1.0)
        assert not policy.should_promote(4, 0.0, 0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_decisions": 0},
            {"check_every": 0},
            {"margin": 0.0},
            {"margin": 1.5},
        ],
    )
    def test_parameters_validated(self, kwargs):
        with pytest.raises(ValueError):
            PromotionPolicy(**kwargs)


# --------------------------------------------------------- shadow STP
class TestShadowSTP:
    def test_active_follows_promotion(self, fitted_stp, small_dataset):
        challenger = OnlineSTP(fitted_stp, dataset=small_dataset)
        shadow = ShadowSTP(fitted_stp, challenger, policy=NEVER)
        assert shadow.active is fitted_stp
        shadow.promoted_at = 1
        assert shadow.active is challenger

    def test_predictions_come_from_the_active_contender(
        self, fitted_stp, small_dataset
    ):
        challenger = OnlineSTP(fitted_stp, dataset=small_dataset)
        shadow = ShadowSTP(fitted_stp, challenger, policy=NEVER)
        inst = AppInstance(get_app("wc"), 1 * GB)
        desc = describe_instance(inst)
        assert shadow.predict_configs(desc, desc) == fitted_stp.predict_configs(
            desc, desc
        )

    def test_refit_touches_only_the_challenger(self, fitted_stp, small_dataset):
        challenger = OnlineSTP(fitted_stp, dataset=small_dataset)
        shadow = ShadowSTP(fitted_stp, challenger, policy=NEVER)
        assert shadow.refit(t=0.0, reason="cluster-change") is True
        assert challenger.telemetry.refits == 1
        # The champion object is untouched (same fitted model instance).
        assert shadow.champion is fitted_stp


# ----------------------------------------------------- registry seam
class TestRegistrySeam:
    def test_online_namespace_registered_for_online_backend(
        self, fitted_stp, small_dataset
    ):
        class Ctrl:
            stp = OnlineSTP(fitted_stp, dataset=small_dataset)

        registry = attach_online(MetricsRegistry(), Ctrl())
        snap = registry.snapshot()
        assert "online" in snap
        assert snap["online"]["updates"] == 0

    def test_no_namespace_for_offline_backend(self, fitted_stp):
        class Ctrl:
            stp = fitted_stp

        registry = attach_online(MetricsRegistry(), Ctrl())
        assert "online" not in registry.namespaces
        assert attach_online(MetricsRegistry(), None).namespaces == []


# ------------------------------------------------- drift scenario e2e
@pytest.mark.slow
class TestDriftScenario:
    def test_never_promoting_shadow_is_byte_identical_to_offline(self):
        """With the champion active throughout, the shadow layer must
        not perturb the cluster: identical makespan, energy, and
        per-job completion order to the online-disabled run."""
        on = run_drift_scenario(n_jobs=24, seed=5, policy=NEVER)
        off = run_drift_scenario(n_jobs=24, seed=5, online=False)
        assert on.promoted_at is None
        assert on.summary["completed"] == off.summary["completed"]
        assert on.summary["makespan"] == off.summary["makespan"]
        assert on.summary["energy_joules"] == off.summary["energy_joules"]

    def test_challenger_beats_frozen_champion_under_drift(self):
        report = run_drift_scenario(n_jobs=64, seed=0)
        assert report.decisions > 0
        assert report.challenger_regret < report.champion_regret
        assert report.promoted_at is not None
        assert report.counters["online.relearn_sweeps"] > 0

    def test_page_hinkley_drives_relearn_without_cluster_faults(self):
        report = run_drift_scenario(n_jobs=64, seed=0, crash=False)
        assert report.counters["online.drift_alarms"] >= 1
        assert report.counters["online.refits"] >= 1
        assert report.challenger_regret < report.champion_regret

    def test_same_seed_runs_are_identical(self):
        r1 = run_drift_scenario(n_jobs=40, seed=3)
        r2 = run_drift_scenario(n_jobs=40, seed=3)
        assert r1.as_dict() == r2.as_dict()

    def test_report_shapes(self):
        report = run_drift_scenario(n_jobs=24, seed=5, policy=NEVER)
        payload = report.as_dict()
        assert payload["decisions"] == len(payload["champion_curve"])
        assert payload["decisions"] == len(payload["challenger_curve"])
        assert "drift scenario" in report.render()
        off = run_drift_scenario(n_jobs=24, seed=5, online=False)
        assert not any(k.startswith("online.") for k in off.counters)
        assert "online.updates" in report.counters
