"""Node power-model tests."""

import pytest

from repro.hardware.power import PowerBreakdown, PowerModel
from repro.utils.units import GHZ


@pytest.fixture
def power():
    return PowerModel()


def test_breakdown_total_and_dynamic():
    b = PowerBreakdown(idle=30.0, cores=10.0, memory=2.0, disk=1.0)
    assert b.total == pytest.approx(43.0)
    assert b.dynamic == pytest.approx(13.0)


def test_dynamic_scale_max_point_is_one(power):
    assert float(power.dynamic_scale(2.4 * GHZ)) == pytest.approx(1.0)


def test_dynamic_scale_sublinear_at_low_frequency(power):
    scale = float(power.dynamic_scale(1.2 * GHZ))
    assert scale < 0.5  # V^2 f: both V and f drop


def test_core_power_zero_when_idle(power):
    assert float(power.core_power(2.4 * GHZ, 0.0, 0.0)) == 0.0


def test_core_power_stalls_draw_less(power):
    busy = float(power.core_power(2.4 * GHZ, 1.0, 0.0))
    stalled = float(power.core_power(2.4 * GHZ, 1.0, 1.0))
    assert stalled == pytest.approx(busy * power.stall_power_fraction)


def test_core_power_validation(power):
    with pytest.raises(ValueError):
        power.core_power(2.4 * GHZ, 1.5, 0.0)
    with pytest.raises(ValueError):
        power.core_power(2.4 * GHZ, 0.5, -0.1)


def test_node_power_composition(power):
    b = power.node_power(
        [(2.4 * GHZ, 1.0, 0.0)] * 8, mem_utilization=0.5, disk_utilization=0.25
    )
    assert b.idle == power.idle_power
    assert b.cores == pytest.approx(8 * power.core_max_power)
    assert b.memory == pytest.approx(0.5 * power.mem_max_power)
    assert b.disk == pytest.approx(0.25 * power.disk_max_power)


def test_node_power_full_load_matches_tdp_scale(power):
    """Full 8-core load at max frequency lands near the 20 W SoC TDP."""
    b = power.node_power(
        [(2.4 * GHZ, 1.0, 0.0)] * 8, mem_utilization=1.0, disk_utilization=1.0
    )
    assert 15.0 < b.dynamic < 30.0


def test_node_power_invalid_utilization(power):
    with pytest.raises(ValueError):
        power.node_power([], mem_utilization=1.5, disk_utilization=0.0)
