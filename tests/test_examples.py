"""Smoke tests: every example script runs clean end to end.

The heavyweight datacenter example is exercised at reduced scale by
importing its main() against a pre-built small pipeline elsewhere;
here we subprocess the self-contained ones exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

_FAST_EXAMPLES = [
    "quickstart.py",
    "colocation_study.py",
    "characterize_app.py",
    "hdfs_job_anatomy.py",
    "iterative_analytics.py",
]


@pytest.mark.parametrize("script", _FAST_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip()


def test_quickstart_shows_tuning_win():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "tuned" in proc.stdout
    assert "EDP" in proc.stdout


def test_colocation_study_orders_classes():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "colocation_study.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    out = proc.stdout
    # I-I row shows a bigger gain than M-M.
    assert "I-I" in out and "M-M" in out
