"""Experiment-module tests: each paper artefact's shape asserts."""

import numpy as np
import pytest

from repro.experiments.fig1_pca import run_fig1
from repro.experiments.fig2_tuning import run_fig2
from repro.experiments.fig3_colao_ilao import run_fig3
from repro.experiments.fig5_priority import run_fig5
from repro.experiments.scenarios import (
    WORKLOAD_SCENARIOS,
    scenario_classes,
    scenario_instances,
)
from repro.utils.units import GB
from repro.workloads.base import AppClass


class TestFig1:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fig1(seed=0)

    def test_two_components_capture_majority_of_variance(self, report):
        assert report.pc12_variance > 0.5

    def test_scatter_separates_memory_class(self, report):
        """M instances cluster away from C instances in PC space."""
        m_pts = np.array(
            [
                s for s, inst in zip(report.pc_scores, report.matrix.instances)
                if inst.app_class is AppClass.MEMORY
            ]
        )
        c_pts = np.array(
            [
                s for s, inst in zip(report.pc_scores, report.matrix.instances)
                if inst.app_class is AppClass.COMPUTE
            ]
        )
        gap = np.linalg.norm(m_pts.mean(axis=0) - c_pts.mean(axis=0))
        spread = max(m_pts.std(), c_pts.std())
        assert gap > spread

    def test_seven_feature_clusters(self, report):
        assert len(report.feature_clusters) == 7
        names = [n for group in report.feature_clusters.values() for n in group]
        assert len(names) == 14

    def test_render_contains_scatter_and_clusters(self, report):
        text = report.render()
        assert "Figure 1" in text
        assert "PC1" in text and "cluster" in text


class TestFig2:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fig2("st", data_bytes=10 * GB)

    def test_concurrent_dominates_individual(self, report):
        for b, f, c in zip(report.block_only, report.freq_only, report.concurrent):
            assert c >= max(b, f) - 1e-9

    def test_all_improvements_at_least_one(self, report):
        assert min(report.block_only) >= 1.0 - 1e-9
        assert min(report.freq_only) >= 1.0 - 1e-9

    def test_sensitivity_decreases_with_mappers(self, report):
        assert report.concurrent[0] > report.concurrent[-1]

    def test_render(self, report):
        assert "Figure 2" in report.render()


class TestFig3:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fig3(data_bytes=10 * GB)

    def test_io_pair_has_maximum_gain(self, report):
        assert report.max_ratio.class_pair == "I-I"
        assert report.max_ratio.ratio > 1.8

    def test_memory_pairs_have_smallest_gains(self, report):
        by_class = report.ratios_by_class()
        m_pairs = [v for k, v in by_class.items() if "M" in k]
        assert max(m_pairs) < by_class["I-I"]

    def test_colocation_wins_almost_everywhere(self, report):
        ratios = [p.ratio for p in report.pairs]
        winning = sum(1 for r in ratios if r >= 0.95)
        assert winning / len(ratios) >= 0.8

    def test_render(self, report):
        assert "COLAO" in report.render()


class TestFig5:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fig5(data_bytes=10 * GB)

    def test_ii_ranks_first(self, report):
        assert report.ranking()[0][0] == "I-I"

    def test_m_pairs_rank_last(self, report):
        bottom = {name for name, _ in report.ranking()[-4:]}
        assert bottom == {"I-M", "H-M", "C-M", "M-M"}

    def test_derived_priority_matches_paper_tree(self, report):
        p = report.priority
        assert p[AppClass.IO] > p[AppClass.HYBRID]
        assert p[AppClass.HYBRID] >= p[AppClass.COMPUTE]
        assert p[AppClass.COMPUTE] > p[AppClass.MEMORY]

    def test_render(self, report):
        text = report.render()
        assert "Figure 5" in text and "I > H" in text


class TestScenarios:
    def test_eight_scenarios_of_sixteen_apps(self):
        assert len(WORKLOAD_SCENARIOS) == 8
        for name in WORKLOAD_SCENARIOS:
            tags, codes = WORKLOAD_SCENARIOS[name]
            assert len(tags) == 16 and len(codes) == 16

    def test_class_tags_match_app_classes(self):
        """Table 3's class row must equal our apps' derived classes."""
        for name in WORKLOAD_SCENARIOS:
            tags = scenario_classes(name)
            insts = scenario_instances(name)
            for tag, inst in zip(tags, insts):
                assert inst.app_class.value == tag, (name, inst.code)

    def test_instances_share_requested_size(self):
        insts = scenario_instances("WS1", data_bytes=1 * GB)
        assert all(i.data_bytes == 1 * GB for i in insts)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            scenario_instances("WS9")
