"""Repeat-run determinism of the seeded workload layer.

The seed-era audit (fault-injection PR) routed every stochastic
workload component through explicit :mod:`repro.utils.rng` generators;
these tests pin the resulting guarantee: constructing or generating the
same thing twice *in one process* yields identical values — no global
random state, no process-global counters leaking into outputs.
"""

import numpy as np

from repro.workloads.registry import get_app
from repro.workloads.streams import poisson_job_stream


def _fresh(code):
    """A newly-constructed application instance (bypasses any caching)."""
    return type(get_app(code))()


class TestModelParameterDeterminism:
    def test_hmm_parameters_identical_across_constructions(self):
        a, b = _fresh("hmm"), _fresh("hmm")
        assert np.array_equal(a.trans, b.trans)
        assert np.array_equal(a.emit, b.emit)

    def test_kmeans_centroids_identical_across_constructions(self):
        a, b = _fresh("km"), _fresh("km")
        assert np.array_equal(a.centroids, b.centroids)

    def test_explicit_seed_changes_parameters(self):
        default = type(get_app("km"))()
        other = type(get_app("km"))(seed=12345)
        assert not np.array_equal(default.centroids, other.centroids)


class TestRecordGenerationDeterminism:
    def test_generate_records_repeatable(self):
        for code in ("wc", "hmm", "km", "pr"):
            app = get_app(code)
            first = list(app.generate_records(50, seed=3))
            second = list(app.generate_records(50, seed=3))
            assert list(map(repr, first)) == list(map(repr, second))


def _spec_key(spec):
    """Everything observable about a spec, job id included."""
    return (
        spec.job_id,
        spec.submit_time,
        spec.instance.app.code,
        spec.instance.data_bytes,
        spec.config.frequency,
        spec.config.block_size,
        spec.config.n_mappers,
    )


class TestStreamDeterminism:
    def test_stream_attributes_repeatable(self):
        def draw():
            return [
                (s.submit_time, s.instance.label, s.config.label)
                for s in poisson_job_stream(40, seed=9)
            ]

        assert draw() == draw()

    def test_explicit_job_ids_make_labels_repeatable(self):
        def labels():
            return [
                s.label for s in poisson_job_stream(20, seed=9, job_ids_from=1)
            ]

        assert labels() == labels()
        assert labels()[0].startswith("job1:")

    def test_default_job_ids_advance_globally(self):
        # Without job_ids_from the process-global counter keeps ids
        # unique across streams — the safe default for one cluster.
        a = [s.job_id for s in poisson_job_stream(5, seed=9)]
        b = [s.job_id for s in poisson_job_stream(5, seed=9)]
        assert set(a).isdisjoint(b)

    def test_tuned_and_untuned_streams_are_different_workloads(self):
        # tuned=True skips the three knob draws per job, so the two
        # regimes share only the first arrival and then diverge — the
        # docstring's "not the same jobs with different knobs".
        tuned = list(poisson_job_stream(5, seed=9, tuned=True))
        untuned = list(poisson_job_stream(5, seed=9, tuned=False))
        assert tuned[0].submit_time == untuned[0].submit_time
        assert [s.submit_time for s in tuned[1:]] != [
            s.submit_time for s in untuned[1:]
        ]


class TestJobIdStability:
    """The pinned job-id contract: ids from ``job_ids_from`` are a pure
    function of the arguments — stable across processes (a fresh
    ``REPRO_WORKERS`` pool worker restarts the default counter) and
    across evaluation backends."""

    def test_pinned_ids_are_sequential_from_start(self):
        ids = [s.job_id for s in poisson_job_stream(8, seed=4, job_ids_from=10)]
        assert ids == list(range(10, 18))

    def test_pinned_ids_identical_in_a_fresh_process(self):
        import json
        import os
        import subprocess
        import sys

        code = (
            "import json, sys\n"
            "from repro.workloads.streams import poisson_job_stream\n"
            "pinned = [s.job_id for s in"
            " poisson_job_stream(6, seed=4, job_ids_from=1)]\n"
            "default = [s.job_id for s in poisson_job_stream(6, seed=4)]\n"
            "print(json.dumps({'pinned': pinned, 'default': default}))\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        child = json.loads(out.stdout)
        parent_pinned = [
            s.job_id for s in poisson_job_stream(6, seed=4, job_ids_from=1)
        ]
        parent_default = [s.job_id for s in poisson_job_stream(6, seed=4)]
        # Pinned ids agree across processes; the per-process default
        # counter does not (this parent has already consumed ids).
        assert child["pinned"] == parent_pinned == list(range(1, 7))
        assert child["default"] != parent_default

    def test_pinned_ids_unaffected_by_repro_workers(self, monkeypatch):
        # The generator never consults the pool size: the id sequence
        # is fixed before any worker fan-out happens.
        baseline = [
            _spec_key(s) for s in poisson_job_stream(6, seed=4, job_ids_from=1)
        ]
        for workers in ("1", "2", "8"):
            monkeypatch.setenv("REPRO_WORKERS", workers)
            again = [
                _spec_key(s)
                for s in poisson_job_stream(6, seed=4, job_ids_from=1)
            ]
            assert again == baseline


class TestSeededRequestsMatchPlainStream:
    """``seeded_requests`` ↔ ``poisson_job_stream`` byte-identity, under
    the *matching* keyword arguments the fixed docstring spells out."""

    def test_requests_rebuild_the_tuned_pinned_stream(self):
        from repro.service.requests import requests_to_specs, seeded_requests

        requests = seeded_requests(12, seed=3)
        offline = [
            _spec_key(s)
            for s in poisson_job_stream(
                12, seed=3, tuned=True, job_ids_from=1
            )
        ]
        rebuilt = [_spec_key(s) for s in requests_to_specs(requests)]
        assert rebuilt == offline

    def test_requests_do_not_match_the_plain_defaults(self):
        # The historical docstring claimed equality with "the plain
        # stream with the same seed"; the defaults differ (tuned,
        # pinned ids), so that read was wrong — pin the distinction.
        from repro.service.requests import requests_to_specs, seeded_requests

        rebuilt = [
            _spec_key(s) for s in requests_to_specs(seeded_requests(6, seed=3))
        ]
        plain = [_spec_key(s) for s in poisson_job_stream(6, seed=3)]
        assert rebuilt != plain

    def test_tenant_draws_leave_job_sequence_alone(self):
        from repro.service.requests import requests_to_specs, seeded_requests

        few = seeded_requests(8, seed=3, tenants=("a",))
        many = seeded_requests(8, seed=3, tenants=("a", "b", "c", "d"))
        assert [r["job_id"] for r in few] == [r["job_id"] for r in many]
        assert [_spec_key(s) for s in requests_to_specs(few)] == [
            _spec_key(s) for s in requests_to_specs(many)
        ]


class TestCrossBackendSeedMatrix:
    """One pinned seed-matrix test: the same seeded stream evaluated on
    every backend yields the same jobs, ids and results."""

    def test_stream_scenarios_agree_across_backends(self):
        from repro.batch.engine import evaluate_scenarios
        from repro.conformance.oracles import REL_TOL
        from repro.conformance.scenarios import Scenario, ScenarioJob

        for seed in (0, 3, 11):
            specs = list(
                poisson_job_stream(4, seed=seed, job_ids_from=1)
            )
            scenarios = [
                Scenario(
                    n_nodes=1,
                    jobs=(
                        ScenarioJob(
                            code=s.instance.app.code,
                            data_bytes=s.instance.data_bytes,
                            frequency=s.config.frequency,
                            block_size=s.config.block_size,
                            n_mappers=s.config.n_mappers,
                            submit_time=0.0,
                        ),
                    ),
                )
                for s in specs
            ]
            event = evaluate_scenarios(scenarios, backend="event")
            scalar = evaluate_scenarios(scenarios, backend="scalar")
            batch = evaluate_scenarios(scenarios, backend="batch")
            assert not any(o.fallback for o in scalar)
            assert not any(o.fallback for o in batch)
            for e, s, b in zip(event, scalar, batch):
                assert (s.makespan, s.total_energy) == (
                    b.makespan, b.total_energy
                )
                scale = max(abs(e.makespan), 1.0)
                assert abs(e.makespan - s.makespan) <= REL_TOL * scale
                scale = max(abs(e.total_energy), 1.0)
                assert abs(e.total_energy - s.total_energy) <= REL_TOL * scale
