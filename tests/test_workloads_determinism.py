"""Repeat-run determinism of the seeded workload layer.

The seed-era audit (fault-injection PR) routed every stochastic
workload component through explicit :mod:`repro.utils.rng` generators;
these tests pin the resulting guarantee: constructing or generating the
same thing twice *in one process* yields identical values — no global
random state, no process-global counters leaking into outputs.
"""

import numpy as np

from repro.workloads.registry import get_app
from repro.workloads.streams import poisson_job_stream


def _fresh(code):
    """A newly-constructed application instance (bypasses any caching)."""
    return type(get_app(code))()


class TestModelParameterDeterminism:
    def test_hmm_parameters_identical_across_constructions(self):
        a, b = _fresh("hmm"), _fresh("hmm")
        assert np.array_equal(a.trans, b.trans)
        assert np.array_equal(a.emit, b.emit)

    def test_kmeans_centroids_identical_across_constructions(self):
        a, b = _fresh("km"), _fresh("km")
        assert np.array_equal(a.centroids, b.centroids)

    def test_explicit_seed_changes_parameters(self):
        default = type(get_app("km"))()
        other = type(get_app("km"))(seed=12345)
        assert not np.array_equal(default.centroids, other.centroids)


class TestRecordGenerationDeterminism:
    def test_generate_records_repeatable(self):
        for code in ("wc", "hmm", "km", "pr"):
            app = get_app(code)
            first = list(app.generate_records(50, seed=3))
            second = list(app.generate_records(50, seed=3))
            assert list(map(repr, first)) == list(map(repr, second))


class TestStreamDeterminism:
    def test_stream_attributes_repeatable(self):
        def draw():
            return [
                (s.submit_time, s.instance.label, s.config.label)
                for s in poisson_job_stream(40, seed=9)
            ]

        assert draw() == draw()

    def test_explicit_job_ids_make_labels_repeatable(self):
        def labels():
            return [
                s.label for s in poisson_job_stream(20, seed=9, job_ids_from=1)
            ]

        assert labels() == labels()
        assert labels()[0].startswith("job1:")

    def test_default_job_ids_advance_globally(self):
        # Without job_ids_from the process-global counter keeps ids
        # unique across streams — the safe default for one cluster.
        a = [s.job_id for s in poisson_job_stream(5, seed=9)]
        b = [s.job_id for s in poisson_job_stream(5, seed=9)]
        assert set(a).isdisjoint(b)
