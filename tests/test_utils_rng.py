"""Deterministic RNG plumbing tests."""

import numpy as np
import pytest

from repro.utils.rng import derive_rng, rng_from, spawn_rngs, stable_hash


def test_rng_from_int_is_deterministic():
    a = rng_from(42).random(5)
    b = rng_from(42).random(5)
    assert np.array_equal(a, b)


def test_rng_from_none_defaults_to_fixed_seed():
    assert np.array_equal(rng_from(None).random(3), rng_from(0).random(3))


def test_rng_from_passes_generator_through():
    gen = np.random.default_rng(7)
    assert rng_from(gen) is gen


def test_spawn_rngs_are_independent():
    children = spawn_rngs(1, 3)
    draws = [c.random(100) for c in children]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_rngs_deterministic():
    a = [g.random(4) for g in spawn_rngs(5, 2)]
    b = [g.random(4) for g in spawn_rngs(5, 2)]
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_spawn_rngs_negative_raises():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_stable_hash_is_stable_and_distinct():
    assert stable_hash("a", 1) == stable_hash("a", 1)
    assert stable_hash("a", 1) != stable_hash("a", 2)
    assert stable_hash("ab") != stable_hash("a", "b")


def test_derive_rng_keyed_by_identity():
    a = derive_rng(0, "wc", 1).random(4)
    b = derive_rng(0, "wc", 1).random(4)
    c = derive_rng(0, "st", 1).random(4)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
