"""Hierarchical-clustering tests, cross-checked against SciPy."""

import numpy as np
import pytest

from repro.analysis.hcluster import (
    AgglomerativeClustering,
    fcluster_by_count,
    representatives,
)


@pytest.fixture
def blobs():
    rng = np.random.default_rng(1)
    return np.vstack(
        [
            rng.normal(loc=(0, 0), scale=0.2, size=(10, 2)),
            rng.normal(loc=(10, 0), scale=0.2, size=(10, 2)),
            rng.normal(loc=(0, 10), scale=0.2, size=(10, 2)),
        ]
    )


def test_recovers_three_blobs(blobs):
    labels = AgglomerativeClustering().fit(blobs).labels_for(3)
    groups = [set(np.flatnonzero(labels == l)) for l in range(3)]
    expected = [set(range(0, 10)), set(range(10, 20)), set(range(20, 30))]
    assert sorted(map(frozenset, groups)) == sorted(map(frozenset, expected))


@pytest.mark.parametrize("linkage", ["average", "single", "complete"])
def test_all_linkages_recover_blobs(blobs, linkage):
    labels = AgglomerativeClustering(linkage=linkage).fit(blobs).labels_for(3)
    assert len(set(labels.tolist())) == 3
    # Points 0..9 always land together.
    assert len(set(labels[:10].tolist())) == 1


def test_merge_distances_nondecreasing_for_average(blobs):
    cl = AgglomerativeClustering("average").fit(blobs)
    d = [m.distance for m in cl.merges_]
    # Average linkage on well-separated blobs is monotone.
    assert all(b >= a - 1e-9 for a, b in zip(d, d[1:]))


def test_matches_scipy_average_linkage(blobs):
    scipy_hier = pytest.importorskip("scipy.cluster.hierarchy")
    from scipy.spatial.distance import pdist

    Z = scipy_hier.linkage(pdist(blobs), method="average")
    ours = AgglomerativeClustering("average").fit(blobs)
    assert np.allclose(
        sorted(m.distance for m in ours.merges_), sorted(Z[:, 2]), rtol=1e-8
    )


def test_fcluster_counts(blobs):
    cl = AgglomerativeClustering().fit(blobs)
    for k in (1, 2, 5, 30):
        labels = cl.labels_for(k)
        assert len(set(labels.tolist())) == k


def test_fcluster_validation(blobs):
    cl = AgglomerativeClustering().fit(blobs)
    with pytest.raises(ValueError):
        cl.labels_for(0)
    with pytest.raises(ValueError):
        cl.labels_for(31)


def test_representatives(blobs):
    labels = AgglomerativeClustering().fit(blobs).labels_for(3)
    reps = representatives(blobs, labels)
    assert len(reps) == 3
    assert len(set(labels[reps].tolist())) == 3


def test_unfitted_raises():
    with pytest.raises(RuntimeError):
        AgglomerativeClustering().labels_for(2)


def test_invalid_linkage():
    with pytest.raises(ValueError):
        AgglomerativeClustering("ward")


def test_needs_two_samples():
    with pytest.raises(ValueError):
        AgglomerativeClustering().fit(np.zeros((1, 2)))
