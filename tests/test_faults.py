"""Fault-injection and recovery: plans, engine primitives, scenarios.

The scenario tests hand-craft single-event plans against workloads
whose healthy duration is measured first, so every recovery timing
assertion (re-execution from scratch, straggler stretch, speculative
first-finisher-wins) is checked against closed-form expectations.
"""

import pytest

from repro.analysis.classify import NearestCentroidClassifier
from repro.analysis.features import build_feature_matrix
from repro.core.controller import ECoSTController
from repro.core.stp import MLMSTP
from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultMix,
    InjectionPlan,
)
from repro.hdfs.filesystem import MiniHdfs
from repro.mapreduce.engine import ClusterEngine
from repro.mapreduce.job import JobSpec
from repro.mapreduce.tasks import TaskJobRunner
from repro.model.config import JobConfig
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app
from repro.workloads.streams import poisson_job_stream


def _spec(code="wc", size=1 * GB, submit=0.0, mappers=4):
    return JobSpec(
        instance=AppInstance(get_app(code), size),
        config=JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=mappers),
        submit_time=submit,
    )


def _duration(code="wc", size=1 * GB, mappers=4) -> float:
    """Healthy solo duration of the reference job."""
    cluster = ClusterEngine(n_nodes=1, recorder="off")
    cluster.submit(_spec(code, size, mappers=mappers))
    return cluster.run()[0].finish_time


# ---------------------------------------------------------------- plans
class TestInjectionPlan:
    def test_same_seed_same_plan(self):
        a = InjectionPlan.generate(4, 10_000.0, rate_per_1ks=5.0, seed=3)
        b = InjectionPlan.generate(4, 10_000.0, rate_per_1ks=5.0, seed=3)
        assert a.events == b.events
        assert len(a) > 0

    def test_different_seed_different_plan(self):
        a = InjectionPlan.generate(4, 50_000.0, rate_per_1ks=5.0, seed=3)
        b = InjectionPlan.generate(4, 50_000.0, rate_per_1ks=5.0, seed=4)
        assert a.events != b.events

    def test_zero_rate_is_empty(self):
        plan = InjectionPlan.generate(4, 10_000.0, rate_per_1ks=0.0, seed=0)
        assert plan.events == InjectionPlan.empty().events == ()

    def test_crashes_carry_paired_recoveries(self):
        plan = InjectionPlan.generate(4, 100_000.0, rate_per_1ks=10.0, seed=1)
        counts = plan.counts_by_kind()
        assert counts["node_crash"] == counts["node_recover"] > 0
        crashes = [e for e in plan.events if e.kind == "node_crash"]
        recovers = {e.node_id: [] for e in crashes}
        for e in plan.events:
            if e.kind == "node_recover":
                recovers[e.node_id].append(e.time)
        for c in crashes:
            assert any(t > c.time for t in recovers[c.node_id])

    def test_events_time_sorted(self):
        plan = InjectionPlan.generate(8, 100_000.0, rate_per_1ks=20.0, seed=2)
        times = [e.time for e in plan.events]
        assert times == sorted(times)

    def test_mix_rates_split_by_weight(self):
        rates = FaultMix().rates(10.0)
        assert sum(rates.values()) == pytest.approx(10.0)
        assert rates["task_fail"] == pytest.approx(5.5)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "meteor", 0)
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "task_fail", 0)
        with pytest.raises(ValueError):
            FaultEvent(1.0, "task_fail", 0, pick=1.0)
        with pytest.raises(ValueError):
            FaultEvent(1.0, "straggler", 0, severity=0.0)

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            InjectionPlan.generate(0, 100.0, rate_per_1ks=1.0)
        with pytest.raises(ValueError):
            InjectionPlan.generate(4, 100.0, rate_per_1ks=-1.0)
        with pytest.raises(ValueError):
            InjectionPlan.generate(4, 100.0, rate_per_1ks=1.0, slowdown_range=(0.5, 2.0))

    def test_kinds_registry(self):
        assert set(FAULT_KINDS) == {
            "task_fail", "node_crash", "node_recover", "straggler"
        }


# --------------------------------------------------- engine primitives
class TestEngineFaultPrimitives:
    def test_submit_to_dead_node_raises(self):
        cluster = ClusterEngine(n_nodes=2)
        cluster.nodes[0].crash()
        assert cluster.nodes[0].free_cores == 0
        assert [n.node_id for n in cluster.alive_nodes] == [1]
        with pytest.raises(RuntimeError, match="down"):
            cluster.nodes[0].submit(_spec())

    def test_crash_returns_lost_attempts_and_restore_rejoins(self):
        cluster = ClusterEngine(n_nodes=1)
        spec = _spec()
        eng = cluster.nodes[0]
        # Drive the node directly: submit at 0, crash at 1, restore at 5.
        eng.advance_to(0.0)
        eng.submit(spec)
        eng.advance_to(1.0)
        lost = eng.crash()
        assert [s.job_id for s, _ in lost] == [spec.job_id]
        assert not eng.alive and eng.running == []
        assert eng.down_seconds(0.0, 10.0) == pytest.approx(9.0)
        eng.advance_to(5.0)
        eng.restore()
        assert eng.alive
        assert eng.down_seconds(0.0, 10.0) == pytest.approx(4.0)

    def test_downtime_draws_no_idle_power(self):
        # One idle node's wattage, measured from the model itself.
        idle = ClusterEngine(n_nodes=1, recorder="off")
        idle_watts = idle.nodes[0].energy_between(0.0, 1.0)
        c1 = ClusterEngine(n_nodes=2, recorder="off")
        c2 = ClusterEngine(n_nodes=2, recorder="off")
        for c in (c1, c2):
            c.submit(_spec())
        plan = InjectionPlan(
            events=(
                FaultEvent(10.0, "node_crash", 1),
                FaultEvent(110.0, "node_recover", 1),
            )
        )
        FaultInjector(c2, plan).install()
        c1.run()
        c2.run()
        h = max(c1.makespan, 200.0)
        assert c1.total_energy(h) - c2.total_energy(h) == pytest.approx(
            100.0 * idle_watts
        )

    def test_apply_slowdown_stretches_completion(self):
        d = _duration()
        cluster = ClusterEngine(n_nodes=1)
        spec = _spec()
        cluster.submit(spec)
        plan = InjectionPlan(
            events=(FaultEvent(d / 2, "straggler", 0, severity=2.0),)
        )
        FaultInjector(cluster, plan, speculative=False).install()
        results = cluster.run()
        # Half the work done, the rest at half speed: 0.5d + 2*0.5d.
        assert results[0].finish_time == pytest.approx(1.5 * d)
        assert cluster.telemetry.stragglers == 1


# ----------------------------------------------------------- recovery
class TestRecoveryScenarios:
    def test_task_failure_reexecutes_and_completes_once(self):
        d = _duration()
        cluster = ClusterEngine(n_nodes=2)
        spec = _spec()
        cluster.submit(spec)
        plan = InjectionPlan(events=(FaultEvent(d / 2, "task_fail", 0),))
        inj = FaultInjector(cluster, plan).install()
        results = cluster.run()
        assert [r.spec.job_id for r in results] == [spec.job_id]
        # Re-execution starts from scratch at d/2.
        assert results[0].finish_time == pytest.approx(1.5 * d)
        tel = cluster.telemetry
        assert tel.task_failures == 1 and tel.tasks_retried == 1
        assert any("task failure kills" in line for line in inj.trace)
        assert any("re-executes" in line for line in inj.trace)

    def test_speculative_duplicate_first_finisher_wins(self):
        d = _duration()
        cluster = ClusterEngine(n_nodes=2)
        spec = _spec()
        cluster.submit(spec)
        plan = InjectionPlan(
            events=(FaultEvent(d / 2, "straggler", 0, severity=10.0),)
        )
        inj = FaultInjector(cluster, plan).install()
        results = cluster.run()
        assert len(results) == 1
        # The duplicate (fresh start on node 1) beats the 10x straggler.
        assert results[0].node_id == 1
        assert results[0].finish_time == pytest.approx(1.5 * d)
        tel = cluster.telemetry
        assert tel.speculative_launched == 1 and tel.speculative_wasted == 1
        assert any("speculative duplicate" in line for line in inj.trace)
        assert any("finishes first" in line for line in inj.trace)

    def test_node_crash_retries_on_survivor(self):
        d = _duration()
        cluster = ClusterEngine(n_nodes=2)
        spec = _spec()
        cluster.submit(spec)
        plan = InjectionPlan(
            events=(
                FaultEvent(d / 2, "node_crash", 0),
                FaultEvent(d / 2 + 10.0, "node_recover", 0),
            )
        )
        FaultInjector(cluster, plan).install()
        results = cluster.run()
        assert len(results) == 1
        assert results[0].node_id == 1
        assert results[0].finish_time == pytest.approx(1.5 * d)
        assert cluster.nodes[0].alive  # recovered
        tel = cluster.telemetry
        assert tel.node_crashes == 1 and tel.node_recoveries == 1

    def test_last_alive_node_never_crashes(self):
        d = _duration()
        cluster = ClusterEngine(n_nodes=1)
        cluster.submit(_spec())
        plan = InjectionPlan(events=(FaultEvent(d / 2, "node_crash", 0),))
        inj = FaultInjector(cluster, plan).install()
        results = cluster.run()
        assert len(results) == 1
        assert inj.skipped == 1
        assert cluster.telemetry.node_crashes == 0

    def test_crash_rereplicates_blocks(self):
        d = _duration()
        hdfs = MiniHdfs(n_nodes=2, replication=2)
        hdfs.write_file("in.dat", 1 * GB, 256 * MB)
        cluster = ClusterEngine(n_nodes=2)
        spec = _spec()
        cluster.submit(spec)
        plan = InjectionPlan(
            events=(
                FaultEvent(d / 2, "node_crash", 0),
                FaultEvent(d / 2 + 10.0, "node_recover", 0),
            )
        )
        FaultInjector(
            cluster, plan, hdfs=hdfs, job_files={spec.job_id: "in.dat"}
        ).install()
        cluster.run()
        # With 2 nodes and replication 2 every block survives on node 1;
        # no spare node exists, so nothing can be re-replicated and the
        # blocks stay under-replicated until node 0 rejoins.
        tel = cluster.telemetry
        assert tel.blocks_lost == 0
        for b in hdfs.splits_for("in.dat"):
            assert hdfs.namenode.locate(b.block_id) == [1]

    def test_flapping_node_blacklisted_and_controller_notified(self):
        class StubController:
            def __init__(self):
                self.blacklist_calls = []
                self.changes = []

            def on_node_blacklisted(self, node_id, t):
                self.blacklist_calls.append(node_id)

            def on_cluster_change(self, t, alive):
                self.changes.append(tuple(alive))

        cluster = ClusterEngine(n_nodes=3)
        events = []
        t = 10.0
        for _ in range(3):
            events.append(FaultEvent(t, "node_crash", 2))
            events.append(FaultEvent(t + 5.0, "node_recover", 2))
            t += 20.0
        stub = StubController()
        inj = FaultInjector(
            cluster,
            InjectionPlan(events=tuple(events)),
            controller=stub,
            blacklist_after=3,
        ).install()
        cluster.run()
        assert inj.blacklisted == {2}
        assert stub.blacklist_calls == [2]
        assert len(stub.changes) == 6
        assert cluster.telemetry.nodes_blacklisted == 1


# ------------------------------------------------- namenode recovery
class TestNameNodeFailure:
    def test_rereplication_restores_replica_count(self):
        hdfs = MiniHdfs(n_nodes=4, replication=2)
        hdfs.write_file("data", 1 * GB, 256 * MB)
        on_zero = [
            b.block_id
            for b in hdfs.splits_for("data")
            if 0 in hdfs.namenode.locate(b.block_id)
        ]
        rere, lost = hdfs.namenode.handle_node_failure(0)
        assert (rere, lost) == (len(on_zero), 0)
        assert hdfs.namenode.under_replicated() == []
        for b in hdfs.splits_for("data"):
            holders = hdfs.namenode.locate(b.block_id)
            assert 0 not in holders and len(holders) == 2
        hdfs.namenode.mark_alive(0)
        assert hdfs.namenode.n_live_nodes == 4

    def test_last_replica_lost(self):
        hdfs = MiniHdfs(n_nodes=2, replication=1)
        hdfs.write_file("data", 512 * MB, 256 * MB)
        victim = hdfs.namenode.locate(
            hdfs.splits_for("data")[0].block_id
        )[0]
        _rere, lost = hdfs.namenode.handle_node_failure(victim)
        assert lost >= 1
        lost_block = hdfs.splits_for("data")[0].block_id
        assert hdfs.namenode.locate(lost_block) == []

    def test_dead_node_rejected_as_writer(self):
        hdfs = MiniHdfs(n_nodes=3, replication=2)
        hdfs.namenode.handle_node_failure(1)
        with pytest.raises(ValueError):
            hdfs.write_file("x", 256 * MB, 256 * MB, writer_node=1)
        assert hdfs.namenode.effective_replication() == 2


# --------------------------------------------- task-level re-execution
class TestTaskRunnerFaultHook:
    def _setup(self):
        hdfs = MiniHdfs(n_nodes=4, replication=2)
        hdfs.write_file("in.dat", 1 * GB, 256 * MB)
        return hdfs, get_app("wc")

    def test_failed_attempts_retried_elsewhere(self):
        hdfs, app = self._setup()
        runner = TaskJobRunner(hdfs, n_workers=4)
        healthy, healthy_counters, _ = runner.run(app, "in.dat")

        hdfs2, _ = self._setup()
        runner2 = TaskJobRunner(hdfs2, n_workers=4)
        out, counters, attempts = runner2.run(
            app, "in.dat", fault_hook=lambda task, attempt: task == 0 and attempt == 0
        )
        assert counters.failed_map_attempts == 1
        assert counters.n_map_tasks == healthy_counters.n_map_tasks
        failed = [a for a in attempts if not a.succeeded]
        assert len(failed) == 1 and failed[0].task_id == 0
        assert failed[0].n_records_out == 0
        assert sorted(map(repr, out)) == sorted(map(repr, healthy))

    def test_exhausted_attempts_fail_the_job(self):
        hdfs, app = self._setup()
        runner = TaskJobRunner(hdfs, n_workers=4, max_attempts=2)
        with pytest.raises(RuntimeError, match="failed 2 attempts"):
            runner.run(app, "in.dat", fault_hook=lambda task, attempt: True)


# -------------------------------------------------------- determinism
class TestDeterminism:
    def _faulty_run(self):
        cluster = ClusterEngine(n_nodes=4, recorder="off")
        specs = list(poisson_job_stream(80, seed=42, tuned=True, job_ids_from=1))
        for s in specs:
            cluster.submit(s)
        plan = InjectionPlan.generate(
            4, specs[-1].submit_time + 2000.0, rate_per_1ks=8.0, seed=7
        )
        inj = FaultInjector(cluster, plan).install()
        results = cluster.run()
        return inj, results, cluster

    def test_trace_and_results_deterministic(self):
        i1, r1, c1 = self._faulty_run()
        i2, r2, c2 = self._faulty_run()
        assert i1.trace == i2.trace and len(i1.trace) > 0
        key = lambda r: (r.spec.label, r.node_id, r.start_time, r.finish_time, r.energy_joules)  # noqa: E731
        assert list(map(key, r1)) == list(map(key, r2))
        assert c1.edp() == c2.edp()
        assert len(r1) == 80  # every submitted job completed

    def test_zero_rate_injection_is_byte_identical(self):
        def run(with_injector: bool):
            cluster = ClusterEngine(n_nodes=4, recorder="off")
            for s in poisson_job_stream(60, seed=3, tuned=True, job_ids_from=1):
                cluster.submit(s)
            if with_injector:
                FaultInjector(cluster, InjectionPlan.empty()).install()
            res = cluster.run()
            rows = [
                (r.spec.label, r.node_id, r.start_time, r.finish_time, r.energy_joules)
                for r in res
            ]
            return rows, cluster.edp()

        rows_a, edp_a = run(False)
        rows_b, edp_b = run(True)
        assert rows_a == rows_b
        assert edp_a == edp_b  # exact, not approx: byte-identity


# --------------------------------------------- controller degradation
@pytest.fixture(scope="module")
def pipeline(request):
    dataset = request.getfixturevalue("small_dataset")
    instances = request.getfixturevalue("small_training_instances")
    stp = MLMSTP("reptree").fit(dataset)
    fm = build_feature_matrix(instances, seed=0)
    classifier = NearestCentroidClassifier().fit(
        fm, [i.app_class for i in instances]
    )
    return stp, classifier


class TestControllerDegradation:
    def test_survives_crash_and_relearns(self, pipeline):
        stp, classifier = pipeline
        cluster = ClusterEngine(n_nodes=2)
        ctrl = ECoSTController(cluster, stp, classifier)
        for code in ("svm", "st", "wc", "nb"):
            ctrl.submit(AppInstance(get_app(code), 1 * GB))
        plan = InjectionPlan(
            events=(
                FaultEvent(50.0, "node_crash", 0),
                FaultEvent(800.0, "node_recover", 0),
            )
        )
        FaultInjector(cluster, plan, controller=ctrl).install()
        results = ctrl.run()
        assert len(results) == 4
        assert ctrl.relearn_count == 2  # crash + recovery both shift the profile
        assert any("re-entering learning period" in d for d in ctrl.decisions)

    def test_blacklisted_node_not_scheduled(self, pipeline):
        stp, classifier = pipeline
        cluster = ClusterEngine(n_nodes=2)
        ctrl = ECoSTController(cluster, stp, classifier)
        ctrl.on_node_blacklisted(0, 0.0)
        for code in ("svm", "st"):
            ctrl.submit(AppInstance(get_app(code), 1 * GB))
        results = ctrl.run()
        assert {r.node_id for r in results} == {1}
