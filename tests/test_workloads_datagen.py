"""Synthetic data-generator tests."""

import numpy as np

from repro.workloads import datagen


def test_zipf_text_deterministic_and_skewed():
    a = list(datagen.zipf_text_lines(50, seed=1))
    b = list(datagen.zipf_text_lines(50, seed=1))
    assert a == b
    words = " ".join(a).split()
    counts = {}
    for w in words:
        counts[w] = counts.get(w, 0) + 1
    freqs = sorted(counts.values(), reverse=True)
    # Zipf skew: the most common word dominates the median one.
    assert freqs[0] >= 5 * freqs[len(freqs) // 2]


def test_terasort_record_format():
    recs = list(datagen.terasort_records(10, seed=0))
    assert len(recs) == 10
    for key, payload in recs:
        assert len(key) == 10 and len(payload) == 90
        assert all(32 <= c < 127 for c in payload)


def test_kv_records_key_space():
    recs = list(datagen.kv_records(100, key_space=10, seed=0))
    assert all(0 <= k < 10 for k, _v in recs)
    assert all(0.0 <= v < 1.0 for _k, v in recs)


def test_labeled_vectors_separable():
    recs = list(datagen.labeled_vectors(400, seed=0))
    pos = np.array([x for y, x in recs if y == 1])
    neg = np.array([x for y, x in recs if y == -1])
    assert len(pos) > 50 and len(neg) > 50
    # The class means are separated by construction.
    assert np.linalg.norm(pos.mean(axis=0) - neg.mean(axis=0)) > 1.0


def test_rating_triples_ranges():
    recs = list(datagen.rating_triples(100, n_users=5, n_items=7, seed=0))
    assert all(0 <= u < 5 for u, _ in recs)
    assert all(0 <= i < 7 and 1 <= r <= 5 for _, (i, r) in recs)


def test_transactions_sorted_unique_items():
    for _txn, basket in datagen.transactions(50, seed=0):
        assert list(basket) == sorted(set(basket))
        assert len(basket) >= 1


def test_graph_edges_no_self_loops():
    for src, dst in datagen.graph_edges(200, n_nodes=20, seed=0):
        assert src != dst
        assert 0 <= src < 20 and 0 <= dst < 20


def test_hmm_sequences_shape():
    recs = list(datagen.hmm_sequences(5, n_symbols=6, seq_len=12, seed=0))
    assert len(recs) == 5
    for _sid, obs in recs:
        assert len(obs) == 12
        assert all(0 <= o < 6 for o in obs)


def test_points_clustered():
    recs = list(datagen.points(300, n_dims=4, n_clusters=3, seed=0))
    by_cluster = {}
    for c, x in recs:
        by_cluster.setdefault(c, []).append(x)
    assert set(by_cluster) == {0, 1, 2}
    centroids = [np.mean(v, axis=0) for v in by_cluster.values()]
    # Cluster centres are far apart relative to intra-cluster spread.
    d01 = np.linalg.norm(centroids[0] - centroids[1])
    assert d01 > 2.0
