"""Task-level job runner tests: locality scheduling + correctness."""

from collections import Counter

import pytest

from repro.hdfs.filesystem import MiniHdfs
from repro.mapreduce.functional import MapReduceRuntime
from repro.mapreduce.tasks import (
    LocalityScheduler,
    TaskJobRunner,
    synthetic_record_reader,
)
from repro.utils.units import GB, MB
from repro.workloads.registry import get_app


@pytest.fixture
def hdfs():
    fs = MiniHdfs(n_nodes=4)
    fs.write_file("input", 1 * GB, 128 * MB)  # 8 blocks
    return fs


def test_output_matches_functional_runtime(hdfs):
    """The task-level path computes the same result as the in-memory
    runtime over the same records."""
    app = get_app("wc")
    runner = TaskJobRunner(hdfs, n_workers=4, n_reducers=2)
    output, counters, _ = runner.run(app, "input")

    # Rebuild the identical record multiset through the same reader.
    reader = synthetic_record_reader(app)
    records = []
    for block in hdfs.splits_for("input"):
        records.extend(reader(block, 0))
    expected = MapReduceRuntime(n_reducers=2, split_records=10**9).run(app, records)
    assert dict(output) == expected.as_dict()
    assert counters.map_input_records == len(records)


def test_one_map_task_per_block(hdfs):
    runner = TaskJobRunner(hdfs, n_workers=4)
    _out, counters, attempts = runner.run(get_app("wc"), "input")
    assert counters.n_map_tasks == 8
    assert len({a.block_id for a in attempts}) == 8


def test_high_locality_with_matching_workers(hdfs):
    """With workers on every node and replication 3, nearly all tasks
    run data-local."""
    runner = TaskJobRunner(hdfs, n_workers=4)
    _out, counters, _ = runner.run(get_app("wc"), "input")
    assert counters.locality_fraction >= 0.9


def test_remote_tasks_eventually_accepted():
    """A single worker on a node without replicas must still finish
    (delay scheduling gives up after max_skips)."""
    fs = MiniHdfs(n_nodes=8, replication=1)
    fs.write_file("input", 512 * MB, 128 * MB)
    runner = TaskJobRunner(fs, n_workers=1, max_skips=1)
    _out, counters, _ = runner.run(get_app("wc"), "input")
    assert counters.n_map_tasks == 4
    assert counters.remote_maps >= 1


def test_combiner_reduces_shuffle_volume(hdfs):
    app = get_app("wc")
    with_comb = TaskJobRunner(hdfs, use_combiner=True)
    without = TaskJobRunner(hdfs, use_combiner=False)
    out_a, counters_a, _ = with_comb.run(app, "input")
    out_b, counters_b, _ = without.run(app, "input")
    assert dict(out_a) == dict(out_b)
    assert counters_a.map_output_records < counters_b.map_output_records
    assert counters_a.shuffled_bytes_estimate < counters_b.shuffled_bytes_estimate


def test_spills_counted(hdfs):
    runner = TaskJobRunner(hdfs, buffer_records=50, use_combiner=False)
    _out, counters, attempts = runner.run(get_app("wc"), "input")
    assert counters.total_spills >= counters.n_map_tasks  # multiple spills/task
    assert all(a.n_spills >= 1 for a in attempts)


def test_scheduler_prefers_local():
    fs = MiniHdfs(n_nodes=2, replication=1)
    fs.write_file("f", 256 * MB, 128 * MB)
    sched = LocalityScheduler(fs, n_workers=2)
    pending = fs.splits_for("f")
    block, local = sched.assign(list(pending), worker=0)  # type: ignore[misc]
    assert local


def test_scheduler_empty_pending():
    fs = MiniHdfs(n_nodes=1)
    sched = LocalityScheduler(fs, n_workers=1)
    assert sched.assign([], worker=0) is None


def test_validation(hdfs):
    with pytest.raises(ValueError):
        TaskJobRunner(hdfs, n_reducers=0)
    with pytest.raises(ValueError):
        LocalityScheduler(hdfs, n_workers=0)
    with pytest.raises(ValueError):
        synthetic_record_reader(get_app("wc"), records_per_block=0)


def test_deque_and_list_assignment_orders_identical(hdfs):
    """The O(1)-head deque path must reproduce the list path exactly.

    Replays the same worker round-robin against a deque- and a
    list-backed pending queue; every (block, locality) decision —
    including delay-scheduling waits — must match, so a runner built on
    either container sees the byte-identical assignment sequence.
    """
    from collections import deque

    blocks = hdfs.splits_for("input")
    seq = {}
    for backend in (list, deque):
        sched = LocalityScheduler(hdfs=hdfs, n_workers=4, max_skips=1)
        pending = backend(blocks)
        log = []
        worker = 0
        while pending:
            got = sched.assign(pending, worker=worker)
            if got is None:
                log.append((worker, None, None))
            else:
                block, local = got
                log.append((worker, block.block_id, local))
            worker = (worker + 1) % 4
        seq[backend.__name__] = log
    assert seq["deque"] == seq["list"]


def test_counters_are_consistent_with_attempt_log(hdfs):
    runner = TaskJobRunner(hdfs, n_workers=4)
    _out, counters, attempts = runner.run(get_app("wc"), "input")
    assert counters.inconsistencies(attempts) == []


def test_counters_consistent_under_fault_hook(hdfs):
    runner = TaskJobRunner(hdfs, n_workers=4)
    _out, counters, attempts = runner.run(
        get_app("wc"), "input",
        fault_hook=lambda task_id, attempt_no: task_id == 2 and attempt_no == 0,
    )
    assert counters.failed_map_attempts == 1
    assert counters.inconsistencies(attempts) == []


def test_counters_inconsistency_is_reported(hdfs):
    from dataclasses import replace

    runner = TaskJobRunner(hdfs, n_workers=4)
    _out, counters, attempts = runner.run(get_app("wc"), "input")
    doctored = replace(counters, map_input_records=counters.map_input_records + 1)
    [message] = doctored.inconsistencies(attempts)
    assert message.startswith("map_input_records: counter says")
