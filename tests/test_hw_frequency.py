"""DVFS table tests."""

import pytest

from repro.hardware.frequency import DVFS_LEVELS, DvfsTable, OperatingPoint
from repro.utils.units import GHZ


def test_paper_frequency_levels():
    table = DvfsTable()
    assert [round(p.ghz, 1) for p in table] == [1.2, 1.6, 2.0, 2.4]


def test_voltage_increases_with_frequency():
    volts = [p.voltage for p in DVFS_LEVELS]
    assert volts == sorted(volts)
    assert len(set(volts)) == len(volts)


def test_dynamic_scale_superlinear_in_frequency():
    table = DvfsTable()
    ref = table.max_point
    scales = [p.dynamic_scale(ref) for p in table]
    assert scales[-1] == pytest.approx(1.0)
    # Power should fall faster than frequency (V drops too).
    for point, scale in zip(table, scales):
        assert scale <= point.frequency / ref.frequency + 1e-12


def test_point_for_exact_and_tolerant():
    table = DvfsTable()
    assert table.point_for(2.4 * GHZ).ghz == pytest.approx(2.4)
    assert table.point_for(2.4 * GHZ * 1.0005).ghz == pytest.approx(2.4)


def test_point_for_unknown_frequency_raises():
    table = DvfsTable()
    with pytest.raises(ValueError, match="not a DVFS level"):
        table.point_for(1.8 * GHZ)


def test_voltage_for():
    table = DvfsTable()
    assert table.voltage_for(1.2 * GHZ) == DVFS_LEVELS[0].voltage


def test_duplicate_frequencies_rejected():
    p = OperatingPoint(frequency=1.0 * GHZ, voltage=0.9)
    with pytest.raises(ValueError, match="duplicate"):
        DvfsTable((p, OperatingPoint(frequency=1.0 * GHZ, voltage=1.0)))


def test_empty_table_rejected():
    with pytest.raises(ValueError):
        DvfsTable(())


def test_operating_point_validation():
    with pytest.raises(ValueError):
        OperatingPoint(frequency=-1.0, voltage=1.0)
    with pytest.raises(ValueError):
        OperatingPoint(frequency=1.0, voltage=0.0)
