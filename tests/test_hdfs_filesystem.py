"""MiniHdfs facade tests."""

import pytest

from repro.hdfs.filesystem import MiniHdfs
from repro.utils.units import GB, MB


@pytest.fixture
def fs():
    return MiniHdfs(n_nodes=4)


def test_write_and_get(fs):
    f = fs.write_file("input", 1 * GB, 256 * MB)
    assert f.size == 1 * GB
    assert len(f.blocks) == 4
    assert fs.get_file("input") is f
    assert fs.list_files() == ["input"]


def test_duplicate_write_rejected(fs):
    fs.write_file("x", 64 * MB, 64 * MB)
    with pytest.raises(FileExistsError):
        fs.write_file("x", 64 * MB, 64 * MB)


def test_invalid_block_size_rejected(fs):
    with pytest.raises(ValueError):
        fs.write_file("x", 64 * MB, 100 * MB)


def test_missing_file(fs):
    with pytest.raises(FileNotFoundError):
        fs.get_file("nope")


def test_splits_one_per_block(fs):
    fs.write_file("input", 1 * GB, 128 * MB)
    assert len(fs.splits_for("input")) == 8


def test_blocks_spread_across_nodes(fs):
    fs.write_file("big", 4 * GB, 256 * MB)
    # Round-robin writers: each node holds a primary share.
    primaries = [fs.namenode.locate(b.block_id)[0] for b in fs.get_file("big").blocks]
    assert set(primaries) == {0, 1, 2, 3}


def test_splits_on_node_respects_replication(fs):
    fs.write_file("input", 1 * GB, 256 * MB)
    total_local = sum(len(fs.splits_on_node("input", n)) for n in range(4))
    # 4 blocks x replication 3 = 12 (node count 4 > replication).
    assert total_local == 12


def test_delete_file(fs):
    fs.write_file("tmp", 128 * MB, 64 * MB)
    fs.delete_file("tmp")
    assert fs.list_files() == []
    assert all(len(dn) == 0 for dn in fs.namenode.datanodes)


def test_drop_caches_flag(fs):
    fs.drop_caches()
    assert fs.cold_read


def test_single_node_cluster():
    fs = MiniHdfs(n_nodes=1)
    fs.write_file("x", 256 * MB, 64 * MB)
    assert len(fs.splits_on_node("x", 0)) == 4
