"""Memory-bandwidth fluid-sharing tests."""

import numpy as np
import pytest

from repro.hardware.memorybw import MemoryBandwidthModel
from repro.utils.units import GB


@pytest.fixture
def mem():
    return MemoryBandwidthModel(achievable_bw=10 * GB)


def test_no_throttle_under_capacity(mem):
    f = mem.throttle_factor([3 * GB, 4 * GB])
    assert np.all(f == 1.0)


def test_throttle_proportional_over_capacity(mem):
    f = mem.throttle_factor([8 * GB, 12 * GB])
    assert np.all(f == pytest.approx(0.5))


def test_throttle_zero_demand(mem):
    f = mem.throttle_factor([0.0, 0.0])
    assert np.all(f == 1.0)


def test_throttle_negative_rejected(mem):
    with pytest.raises(ValueError):
        mem.throttle_factor([-1.0])


def test_throttle_batched_last_axis(mem):
    demands = np.array([[4 * GB, 4 * GB], [8 * GB, 12 * GB]])
    f = mem.throttle_factor(demands)
    assert f.shape == demands.shape
    assert np.all(f[0] == 1.0)
    assert np.all(f[1] == pytest.approx(0.5))


def test_utilization_capped_at_one(mem):
    assert mem.utilization([20 * GB]) == pytest.approx(1.0)
    assert mem.utilization([5 * GB]) == pytest.approx(0.5)


def test_constructor_validation():
    with pytest.raises(ValueError):
        MemoryBandwidthModel(achievable_bw=0)
