"""LookupTable, preprocessing, metrics and timing tests."""

import numpy as np
import pytest

from repro.ml.lookup import LookupTable
from repro.ml.metrics import mae, mean_ape, mse, r2_score
from repro.ml.preprocessing import StandardScaler, train_val_split
from repro.ml.timing import time_model


class TestLookupTable:
    def test_nearest_lookup(self):
        keys = np.array([[0.0, 0.0], [10.0, 10.0]])
        table = LookupTable().fit(keys, ["low", "high"])
        assert table.lookup(np.array([1.0, 1.0])) == "low"
        assert table.lookup(np.array([9.0, 9.0])) == "high"
        assert len(table) == 2

    def test_normalization_balances_dimensions(self):
        # Dimension 0 spans 1000x dimension 1; normalised distance
        # must not be dominated by dimension 0.
        keys = np.array([[0.0, 0.0], [1000.0, 1.0]])
        table = LookupTable(normalize=True).fit(keys, ["a", "b"])
        assert table.lookup(np.array([400.0, 0.9])) == "b"

    def test_lookup_many_and_predict(self):
        keys = np.array([[0.0], [1.0], [2.0]])
        table = LookupTable().fit(keys, [10.0, 20.0, 30.0])
        assert table.lookup_many(np.array([[0.1], [1.9]])) == [10.0, 30.0]
        assert table.predict(np.array([[0.9]])).tolist() == [20.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            LookupTable().fit(np.zeros((0, 2)), [])
        with pytest.raises(ValueError):
            LookupTable().fit(np.zeros((2, 2)), ["only-one"])
        table = LookupTable().fit(np.zeros((1, 2)), ["x"])
        with pytest.raises(ValueError):
            table.lookup(np.zeros(3))
        with pytest.raises(RuntimeError):
            LookupTable().lookup(np.zeros(2))


class TestPreprocessing:
    def test_standard_scaler_roundtrip(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=3, scale=7, size=(50, 3))
        sc = StandardScaler()
        Z = sc.fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0, atol=1e-10)
        assert np.allclose(sc.inverse_transform(Z), X)

    def test_scaler_unfitted(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_split_sizes_and_disjoint(self):
        X = np.arange(40.0)[:, None]
        y = np.arange(40.0)
        Xt, yt, Xv, yv = train_val_split(X, y, val_fraction=0.25, seed=0)
        assert len(yt) == 30 and len(yv) == 10
        assert not set(yt.tolist()) & set(yv.tolist())
        assert set(yt.tolist()) | set(yv.tolist()) == set(range(40))

    def test_split_always_nonempty(self):
        X = np.arange(3.0)[:, None]
        Xt, yt, Xv, yv = train_val_split(X, np.arange(3.0), val_fraction=0.01)
        assert len(yv) >= 1 and len(yt) >= 1

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_val_split(np.zeros((1, 1)), np.zeros(1))
        with pytest.raises(ValueError):
            train_val_split(np.zeros((5, 1)), np.zeros(5), val_fraction=1.5)


class TestMetrics:
    def test_values(self):
        t = np.array([1.0, 2.0, 4.0])
        p = np.array([1.0, 3.0, 2.0])
        assert mse(t, p) == pytest.approx(5 / 3)
        assert mae(t, p) == pytest.approx(1.0)
        assert mean_ape(t, p) == pytest.approx((0 + 50 + 50) / 3)

    def test_r2_perfect_and_mean(self):
        t = np.array([1.0, 2.0, 3.0])
        assert r2_score(t, t) == pytest.approx(1.0)
        assert r2_score(t, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_errors(self):
        with pytest.raises(ValueError):
            mse(np.zeros(2), np.zeros(3))
        with pytest.raises(ValueError):
            mean_ape(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError):
            r2_score(np.ones(3), np.ones(3))
        with pytest.raises(ValueError):
            mse(np.array([]), np.array([]))


class TestTiming:
    def test_time_model_measures_both_phases(self):
        from repro.ml.linreg import LinearRegression

        model = LinearRegression()
        X = np.random.default_rng(0).normal(size=(200, 3))
        y = X @ np.ones(3)
        timing = time_model("lr", model.fit, model.predict, X, y, X)
        assert timing.train_seconds > 0
        assert timing.predict_seconds_total > 0
        assert timing.n_predictions == 200
        assert timing.predict_seconds_per_query <= timing.predict_seconds_total

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            time_model("x", lambda X, y: None, lambda X: None,
                       np.zeros((1, 1)), np.zeros(1), np.zeros((1, 1)),
                       repeat_predict=0)
