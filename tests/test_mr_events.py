"""Event-queue tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.events import EventQueue


def test_pop_in_time_order():
    q = EventQueue()
    q.schedule(3.0, "c")
    q.schedule(1.0, "a")
    q.schedule(2.0, "b")
    assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    q = EventQueue()
    q.schedule(1.0, "first")
    q.schedule(1.0, "second")
    assert q.pop()[1] == "first"
    assert q.pop()[1] == "second"


def test_clock_advances():
    q = EventQueue()
    q.schedule(5.0, "x")
    assert q.now == 0.0
    q.pop()
    assert q.now == 5.0


def test_cannot_schedule_in_the_past():
    q = EventQueue()
    q.schedule(5.0, "x")
    q.pop()
    with pytest.raises(ValueError, match="before current time"):
        q.schedule(4.0, "y")


def test_cancel_skips_event():
    q = EventQueue()
    h = q.schedule(1.0, "dead")
    q.schedule(2.0, "alive")
    q.cancel(h)
    assert q.pop()[1] == "alive"
    assert q.pop() is None


def test_len_counts_live_events():
    q = EventQueue()
    h = q.schedule(1.0, "a")
    q.schedule(2.0, "b")
    assert len(q) == 2
    q.cancel(h)
    assert len(q) == 1


def test_peek_time():
    q = EventQueue()
    assert q.peek_time() is None
    h = q.schedule(1.0, "a")
    q.schedule(2.0, "b")
    q.cancel(h)
    assert q.peek_time() == 2.0


def test_run_until():
    q = EventQueue()
    seen = []
    for t in (1.0, 2.0, 3.0):
        q.schedule(t, t)
    q.run(lambda t, p: seen.append(p), until=2.5)
    assert seen == [1.0, 2.0]
    assert q.peek_time() == 3.0


@settings(max_examples=50, deadline=None)
@given(times=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=30))
def test_pop_order_is_sorted_for_any_schedule(times):
    q = EventQueue()
    for t in times:
        q.schedule(t, t)
    popped = []
    while True:
        item = q.pop()
        if item is None:
            break
        popped.append(item[0])
    assert popped == sorted(times)
