"""Shuffle machinery tests: spill, merge, group."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.shuffle import (
    MapOutputBuffer,
    ShuffleService,
    SpillSegment,
    group_sorted,
    merge_segments,
    sort_key,
)


class TestSpillSegment:
    def test_sorted_required(self):
        with pytest.raises(ValueError, match="sorted"):
            SpillSegment(partition=0, records=(("b", 1), ("a", 2)))

    def test_bytes_estimate_positive(self):
        seg = SpillSegment(partition=0, records=(("a", 1), ("b", 2)))
        assert seg.n_bytes_estimate > 0


class TestMapOutputBuffer:
    def test_spills_when_full(self):
        buf = MapOutputBuffer(n_partitions=2, buffer_records=4)
        for i in range(4):
            buf.emit(i % 2, f"k{i}", i)
        assert buf.n_spills == 1
        assert len(buf.segments) == 2  # one run per non-empty partition

    def test_close_flushes_remainder(self):
        buf = MapOutputBuffer(n_partitions=1, buffer_records=100)
        buf.emit(0, "z", 1)
        buf.emit(0, "a", 2)
        segments = buf.close()
        assert len(segments) == 1
        assert [k for k, _v in segments[0].records] == ["a", "z"]

    def test_empty_close(self):
        assert MapOutputBuffer(n_partitions=2).close() == []

    def test_partition_range_checked(self):
        buf = MapOutputBuffer(n_partitions=2)
        with pytest.raises(IndexError):
            buf.emit(5, "k", 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            MapOutputBuffer(n_partitions=0)
        with pytest.raises(ValueError):
            MapOutputBuffer(n_partitions=1, buffer_records=0)


class TestMerge:
    def test_merges_sorted_runs(self):
        a = SpillSegment(0, (("a", 1), ("c", 2)))
        b = SpillSegment(0, (("b", 3), ("d", 4)))
        merged = [k for k, _v in merge_segments([a, b])]
        assert merged == ["a", "b", "c", "d"]

    def test_cross_partition_rejected(self):
        a = SpillSegment(0, (("a", 1),))
        b = SpillSegment(1, (("b", 2),))
        with pytest.raises(ValueError):
            list(merge_segments([a, b]))

    def test_empty(self):
        assert list(merge_segments([])) == []

    @settings(max_examples=40, deadline=None)
    @given(
        runs=st.lists(
            st.lists(st.tuples(st.text(max_size=4), st.integers()), max_size=12),
            min_size=1,
            max_size=5,
        )
    )
    def test_merge_is_globally_sorted_and_complete(self, runs):
        segments = [
            SpillSegment(0, tuple(sorted(r, key=lambda kv: sort_key(kv[0]))))
            for r in runs
        ]
        merged = list(merge_segments(segments))
        keys = [sort_key(k) for k, _v in merged]
        assert keys == sorted(keys)
        assert len(merged) == sum(len(r) for r in runs)


class TestGroupSorted:
    def test_groups_runs_of_equal_keys(self):
        stream = [("a", 1), ("a", 2), ("b", 3)]
        groups = list(group_sorted(stream))
        assert groups == [("a", [1, 2]), ("b", [3])]

    def test_empty_stream(self):
        assert list(group_sorted([])) == []


class TestShuffleService:
    def test_fetch_merges_across_tasks(self):
        svc = ShuffleService(n_partitions=1)
        svc.register([SpillSegment(0, (("a", 1), ("b", 2)))])
        svc.register([SpillSegment(0, (("a", 3),))])
        groups = dict(svc.fetch(0))
        assert groups["a"] == [1, 3]
        assert svc.total_segments == 2
        assert svc.total_bytes_estimate > 0

    def test_fetch_empty_partition(self):
        svc = ShuffleService(n_partitions=2)
        assert list(svc.fetch(1)) == []

    def test_range_checks(self):
        svc = ShuffleService(n_partitions=1)
        with pytest.raises(IndexError):
            svc.fetch(1)
        with pytest.raises(IndexError):
            svc.register([SpillSegment(0, ())] and [SpillSegment(3, ())])
