"""HDFS block-splitting tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdfs.blocks import (
    HDFS_BLOCK_SIZES,
    Block,
    n_blocks,
    split_file,
    validate_block_size,
)
from repro.utils.units import GB, MB


def test_paper_block_sizes():
    assert [b // MB for b in HDFS_BLOCK_SIZES] == [64, 128, 256, 512, 1024]


def test_split_exact_multiple():
    blocks = split_file("f", 4 * 64 * MB, 64 * MB)
    assert len(blocks) == 4
    assert all(b.length == 64 * MB for b in blocks)
    assert [b.index for b in blocks] == [0, 1, 2, 3]


def test_split_partial_tail():
    blocks = split_file("f", 100 * MB, 64 * MB)
    assert len(blocks) == 2
    assert blocks[-1].length == 36 * MB


def test_split_smaller_than_block():
    blocks = split_file("f", 10 * MB, 64 * MB)
    assert len(blocks) == 1
    assert blocks[0].length == 10 * MB


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=20 * GB),
    block=st.sampled_from(HDFS_BLOCK_SIZES),
)
def test_split_covers_file_exactly(size, block):
    blocks = split_file("f", size, block)
    assert sum(b.length for b in blocks) == size
    assert len(blocks) == n_blocks(size, block)
    # Offsets are contiguous and ordered.
    offset = 0
    for b in blocks:
        assert b.offset == offset
        offset += b.length


def test_block_ids_unique():
    ids = {b.block_id for b in split_file("f", 1 * GB, 64 * MB)}
    assert len(ids) == 16


def test_validate_block_size():
    assert validate_block_size(256 * MB) == 256 * MB
    with pytest.raises(ValueError):
        validate_block_size(100 * MB)


def test_block_validation():
    with pytest.raises(ValueError):
        Block("f", index=-1, offset=0, length=1)
    with pytest.raises(ValueError):
        Block("f", index=0, offset=0, length=0)


def test_split_invalid_inputs():
    with pytest.raises(ValueError):
        split_file("f", 0, 64 * MB)
    with pytest.raises(ValueError):
        split_file("f", 1 * GB, 0)
