"""dstat and Wattsup simulation tests."""

import numpy as np
import pytest

from repro.mapreduce.engine import NodeEngine
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.telemetry.dstat import DstatMonitor, average_rows
from repro.telemetry.wattsup import PowerTrace, WattsupMeter
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


@pytest.fixture(scope="module")
def engine_trace():
    engine = NodeEngine()
    engine.submit(
        JobSpec(
            instance=AppInstance(get_app("st"), 1 * GB),
            config=JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=4),
        )
    )
    engine.run_to_completion()
    return engine.intervals


class TestDstat:
    def test_rows_sum_to_100(self):
        rows = DstatMonitor().sample_run(
            AppInstance(get_app("wc"), 5 * GB), 2.4 * GHZ, 256 * MB, 8, seed=0
        )
        assert rows
        for r in rows:
            total = r.cpu_user + r.cpu_sys + r.cpu_idle + r.cpu_iowait
            assert total == pytest.approx(100.0, abs=0.5)

    def test_io_bound_app_shows_iowait(self):
        rows = DstatMonitor().sample_run(
            AppInstance(get_app("st"), 5 * GB), 2.4 * GHZ, 256 * MB, 8, seed=0
        )
        avg = average_rows(rows)
        assert avg["cpu_iowait"] > 25.0

    def test_compute_bound_app_shows_user(self):
        rows = DstatMonitor().sample_run(
            AppInstance(get_app("hmm"), 5 * GB), 2.4 * GHZ, 256 * MB, 8, seed=0
        )
        avg = average_rows(rows)
        assert avg["cpu_user"] > 70.0
        assert avg["cpu_iowait"] < 10.0

    def test_rows_from_engine_intervals(self, engine_trace):
        rows = DstatMonitor().rows_from_intervals(engine_trace)
        assert len(rows) >= 1
        for r in rows:
            assert 0 <= r.cpu_user <= 100

    def test_average_rows_empty_rejected(self):
        with pytest.raises(ValueError):
            average_rows([])


class TestWattsup:
    def test_trace_from_intervals_covers_horizon(self, engine_trace):
        meter = WattsupMeter(noise_watts=0.0)
        end = max(i.end for i in engine_trace)
        trace = meter.trace_from_intervals(engine_trace, until=end + 10)
        assert trace.duration_s >= end + 9
        idle = trace.samples_watts[-1]
        assert idle == pytest.approx(trace.idle_watts, abs=0.5)

    def test_busy_seconds_above_idle(self, engine_trace):
        meter = WattsupMeter(noise_watts=0.0)
        trace = meter.trace_from_intervals(engine_trace)
        assert trace.samples_watts[0] > trace.idle_watts

    def test_average_above_idle(self):
        trace = PowerTrace(samples_watts=np.array([40.0, 42.0]), idle_watts=31.0)
        assert trace.average_above_idle == pytest.approx(10.0)
        assert trace.energy_joules == pytest.approx(82.0)

    def test_window(self):
        trace = PowerTrace(samples_watts=np.arange(10.0), idle_watts=0.0)
        sub = trace.window(2, 5)
        assert sub.samples_watts.tolist() == [2.0, 3.0, 4.0]
        with pytest.raises(ValueError):
            trace.window(5, 2)

    def test_constant_trace(self):
        meter = WattsupMeter(noise_watts=0.0)
        trace = meter.constant_trace(45.0, 12.0)
        assert trace.duration_s == 12
        assert trace.average_watts == pytest.approx(45.0)
        with pytest.raises(ValueError):
            meter.constant_trace(-1.0, 5.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace(samples_watts=np.array([]), idle_watts=30.0)


def _rescan_reference(intervals, idle, n):
    """The legacy O(seconds x segments) resampling loop, verbatim."""
    samples = np.full(n, idle)
    for t in range(n):
        lo, hi = float(t), float(t + 1)
        acc = 0.0
        covered = 0.0
        for seg in intervals:
            w = max(min(seg.end, hi) - max(seg.start, lo), 0.0)
            if w > 0:
                acc += seg.power_watts * w
                covered += w
        samples[t] = acc + idle * (1.0 - covered)
    return samples


class TestWattsupCursor:
    def test_cursor_byte_identical_to_rescan(self, engine_trace):
        meter = WattsupMeter(noise_watts=0.0)
        trace = meter.trace_from_intervals(engine_trace)
        idle = meter.node.power.idle_power
        want = _rescan_reference(engine_trace, idle, len(trace.samples_watts))
        assert np.array_equal(trace.samples_watts, want)

    def test_cursor_byte_identical_on_colocated_trace(self):
        # Two co-resident jobs produce multiple segments per node with
        # boundary seconds covered by two segments each — the case the
        # cursor must accumulate in exactly the legacy order.
        engine = NodeEngine()
        for code, gb in (("st", 1), ("wc", 5)):
            engine.submit(
                JobSpec(
                    instance=AppInstance(get_app(code), gb * GB),
                    config=JobConfig(
                        frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=4
                    ),
                )
            )
        engine.run_to_completion()
        meter = WattsupMeter(noise_watts=0.0)
        trace = meter.trace_from_intervals(engine.intervals)
        want = _rescan_reference(
            engine.intervals,
            meter.node.power.idle_power,
            len(trace.samples_watts),
        )
        assert np.array_equal(trace.samples_watts, want)

    def test_unsorted_input_falls_back_to_rescan(self, engine_trace):
        meter = WattsupMeter(noise_watts=0.0)
        shuffled = list(reversed(engine_trace))
        trace = meter.trace_from_intervals(shuffled)
        want = _rescan_reference(
            shuffled, meter.node.power.idle_power, len(trace.samples_watts)
        )
        assert np.array_equal(trace.samples_watts, want)

    def test_noise_unchanged_by_cursor(self, engine_trace):
        # Seeded noise is drawn after resampling, so the metered trace
        # is the noiseless one plus the same normal draws as ever.
        noisy = WattsupMeter(noise_watts=2.0).trace_from_intervals(
            engine_trace, seed=123
        )
        clean = WattsupMeter(noise_watts=0.0).trace_from_intervals(
            engine_trace, seed=123
        )
        from repro.utils.rng import rng_from

        draws = rng_from(123).normal(0.0, 2.0, size=len(clean.samples_watts))
        want = np.maximum(clean.samples_watts + draws, 0.0)
        assert np.array_equal(noisy.samples_watts, want)
