"""NodeSpec / ClusterSpec tests."""

import pytest

from repro.hardware.cluster import ClusterSpec
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.utils.units import GB


def test_default_node_matches_paper_testbed():
    assert ATOM_C2758.n_cores == 8
    assert ATOM_C2758.memory_bytes == 8 * GB
    assert len(ATOM_C2758.frequencies) == 4


def test_available_memory_subtracts_reserved():
    assert ATOM_C2758.available_memory_bytes == (
        ATOM_C2758.memory_bytes - ATOM_C2758.reserved_memory_bytes
    )


def test_validate_mappers():
    assert ATOM_C2758.validate_mappers(8) == 8
    with pytest.raises(ValueError):
        ATOM_C2758.validate_mappers(0)
    with pytest.raises(ValueError):
        ATOM_C2758.validate_mappers(9)


def test_node_reserved_memory_validation():
    with pytest.raises(ValueError, match="reserved"):
        NodeSpec(memory_bytes=1 * GB, reserved_memory_bytes=2 * GB)


def test_node_core_count_validation():
    with pytest.raises(ValueError):
        NodeSpec(n_cores=0)


def test_cluster_total_cores():
    assert ClusterSpec(n_nodes=8).total_cores == 64


def test_cluster_subcluster_preserves_node():
    big = ClusterSpec(n_nodes=8)
    small = big.subcluster(2)
    assert small.n_nodes == 2
    assert small.node is big.node


def test_cluster_validation():
    with pytest.raises(ValueError):
        ClusterSpec(n_nodes=0)
