"""Golden equivalence: seeded drivers reproduce pre-rewrite output.

``tests/golden/`` holds byte-exact copies of the ``results/*.txt``
files the experiment drivers produced *before* the engine fast-path
rewrite (scalar kernel, recontext cache, indexed event core).  The
rewrite claims bit-identical semantics, so the deterministic drivers
must render the very same bytes.

``fig8_overhead.txt`` contains wall-clock timings and can never be
byte-stable; for it only the structure (title, technique rows, column
layout) is pinned.
"""

from pathlib import Path

import pytest

from repro.experiments.artifacts import get_classifier, get_mlm
from repro.experiments.fig5_priority import run_fig5
from repro.experiments.robustness import run_robustness
from repro.experiments.steady_state import run_steady_state

pytestmark = pytest.mark.golden

GOLDEN = Path(__file__).parent / "golden"


def _golden(name: str) -> str:
    return (GOLDEN / f"{name}.txt").read_text()


class TestGoldenByteIdentity:
    def test_fig5_priority(self):
        assert run_fig5().render() + "\n" == _golden("fig5_priority")

    def test_steady_state(self):
        report = run_steady_state(get_mlm("mlp"), get_classifier())
        assert report.render() + "\n" == _golden("steady_state")
        # The rewrite's telemetry rides along without touching the
        # rendered artifact.
        assert set(report.telemetry) == {r.label for r in report.runs}
        for tel in report.telemetry.values():
            assert tel.events > 0

    def test_robustness(self):
        report = run_robustness(get_mlm("reptree"))
        assert report.render() + "\n" == _golden("robustness")

    def test_fault_tolerance(self):
        from repro.experiments.fault_tolerance import run_fault_tolerance

        report = run_fault_tolerance()
        assert report.render() + "\n" == _golden("fault_tolerance")
        # The rate-0 rows ran with an *empty* injection plan — nothing
        # injected, nothing recovered — which is how the faults package
        # guarantees byte-identity with a healthy run.
        for (_policy, rate), trace in report.traces.items():
            if rate == 0.0:
                assert trace == ()
            else:
                assert trace


class TestFig8Structure:
    """fig8 reports wall-clock timings — structure-only equivalence."""

    @staticmethod
    def _skeleton(text: str) -> list[list[str]]:
        """Row/column layout with every numeric cell blanked."""
        rows = []
        for line in text.strip().splitlines():
            cells = [c.strip() for c in line.split("|")]
            rows.append(
                [
                    "<num>"
                    if c.replace(".", "", 1).replace("-", "", 1).isdigit()
                    else c
                    for c in cells
                ]
            )
        return rows

    def test_fig8_overhead(self):
        from repro.experiments.fig8_overhead import run_fig8

        report = run_fig8(rows_per_pair=60, predict_repeats=1)
        assert self._skeleton(report.render() + "\n") == self._skeleton(
            _golden("fig8_overhead")
        )
