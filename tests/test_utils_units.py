"""Unit-constant and formatting tests."""

import pytest

from repro.utils.units import GB, GHZ, KB, MB, MHZ, fmt_bytes, fmt_duration, fmt_freq


def test_binary_size_constants():
    assert KB == 1024
    assert MB == 1024 * KB
    assert GB == 1024 * MB


def test_frequency_constants():
    assert GHZ == 1e9
    assert MHZ == 1e6


@pytest.mark.parametrize(
    "value, expected",
    [
        (512, "512B"),
        (1536, "1.5KB"),
        (64 * MB, "64MB"),
        (10 * GB, "10GB"),
        (2.5 * GB, "2.5GB"),
    ],
)
def test_fmt_bytes(value, expected):
    assert fmt_bytes(value) == expected


@pytest.mark.parametrize(
    "value, expected",
    [
        (2.4 * GHZ, "2.4GHz"),
        (1.2 * GHZ, "1.2GHz"),
        (800 * MHZ, "800MHz"),
    ],
)
def test_fmt_freq(value, expected):
    assert fmt_freq(value) == expected


@pytest.mark.parametrize(
    "value, expected",
    [
        (5e-7, "0.5us"),
        (0.002, "2ms"),
        (1.5, "1.5s"),
        (90, "90s"),
        (600, "10min"),
        (7200, "2h"),
    ],
)
def test_fmt_duration(value, expected):
    assert fmt_duration(value) == expected


def test_fmt_duration_negative():
    assert fmt_duration(-3.0) == "-3s"
