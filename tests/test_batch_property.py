"""Property-based guarantees of the SoA batch layer.

Three properties, each over many generated cases (hypothesis when
available, seeded ``parametrize`` fallback otherwise, matching
``test_invariants_property.py``):

* ``ScenarioBatch`` pack → unpack is the identity on any scenario mix
  the fuzzer can generate (including fault plans and recorder modes);
* a batch of one lane through the SoA cost kernel is *bit-identical*
  to the scalar kernel — same floats, not just close ones;
* the ``backend="batch"`` sweep path reproduces the numpy sweep path's
  values exactly, and the scalar/batch scenario backends agree
  bit-for-bit wherever the closed forms apply.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest

from repro.batch import (
    ProfileSoA,
    ScenarioBatch,
    evaluate_scenarios,
    standalone_metrics_soa,
)
from repro.conformance.fuzzer import generate_scenario
from repro.hardware.node import ATOM_C2758
from repro.model.costmodel import standalone_metrics_scalar
from repro.model.sweep import sweep_solo
from repro.utils.units import GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import ALL_APPS, get_app

try:
    from hypothesis import given
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on bare boxes only
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.batch

_FREQUENCIES = (1.2 * GHZ, 1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ)
_BLOCKS = (64 * MB, 128 * MB, 256 * MB, 512 * MB)


def seeded_cases(n: int):
    """Hypothesis integers when available, seeded parametrize otherwise."""

    def deco(fn):
        if HAVE_HYPOTHESIS:
            return given(case_seed=st.integers(min_value=0, max_value=2**31 - 1))(fn)
        return pytest.mark.parametrize("case_seed", range(n))(fn)

    return deco


def _lane(value) -> float:
    """First lane of a (1,)-or-scalar kernel output, as a float."""
    return float(np.asarray(value).reshape(-1)[0])


# ---------------------------------------------------- pack round-trip
@seeded_cases(40)
def test_pack_unpack_identity(case_seed):
    scenario = generate_scenario(random.Random(f"pack:{case_seed}"))
    batch = ScenarioBatch.from_scenarios([scenario])
    [restored] = batch.scenarios()
    assert restored.n_nodes == scenario.n_nodes
    assert restored.jobs == scenario.jobs
    assert restored.recorder == scenario.recorder
    assert restored.fault_events == scenario.fault_events


@seeded_cases(20)
def test_pack_unpack_identity_mixed_widths(case_seed):
    rng = random.Random(f"mix:{case_seed}")
    scenarios = [
        generate_scenario(random.Random(f"mix:{case_seed}:{i}"))
        for i in range(rng.randint(2, 6))
    ]
    batch = ScenarioBatch.from_scenarios(scenarios)
    assert batch.width == max(len(s.jobs) for s in scenarios)
    for original, restored in zip(scenarios, batch.scenarios()):
        assert restored == original or (
            restored.n_nodes == original.n_nodes
            and restored.jobs == original.jobs
            and restored.fault_events == original.fault_events
        )


# ------------------------------------------- kernel batch-of-1 parity
@seeded_cases(40)
def test_soa_kernel_batch_of_one_is_bit_identical_to_scalar(case_seed):
    rng = random.Random(f"kernel:{case_seed}")
    profile = get_app(rng.choice(ALL_APPS)).profile
    data = float(rng.randint(1, 10_000)) * MB
    freq = rng.choice(_FREQUENCIES)
    block = rng.choice(_BLOCKS)
    mappers = float(rng.randint(1, ATOM_C2758.n_cores))
    mpki_scale = rng.uniform(1.0, 3.0)
    disk_scale = rng.uniform(1.0, 2.0)
    extra = float(rng.randint(0, 4))

    want = standalone_metrics_scalar(
        profile, data, freq, block, mappers,
        mpki_scale=mpki_scale, disk_traffic_scale=disk_scale,
        extra_streams=extra,
    )
    got = standalone_metrics_soa(
        ProfileSoA.from_profiles([profile]),
        np.array([data]), np.array([freq]), np.array([block]),
        np.array([mappers]),
        mpki_scale=np.array([mpki_scale]),
        disk_traffic_scale=np.array([disk_scale]),
        extra_streams=np.array([extra]),
    )
    for f in dataclasses.fields(want):
        assert _lane(getattr(got, f.name)) == getattr(want, f.name), (
            f"kernel field {f.name} not bit-identical"
        )


# -------------------------------------------------- backend agreement
@seeded_cases(15)
def test_sweep_backend_batch_matches_numpy_values(case_seed):
    rng = random.Random(f"sweep:{case_seed}")
    inst = AppInstance(
        get_app(rng.choice(ALL_APPS)),
        float(rng.randint(1, 8)) * 1024 * MB,
    )
    a = sweep_solo(inst)
    b = sweep_solo(inst, backend="batch")
    assert bool(np.all(a.edp == b.edp))

    def walk(x, y, path=""):
        for f in dataclasses.fields(x):
            xa, ya = getattr(x, f.name), getattr(y, f.name)
            if dataclasses.is_dataclass(xa):
                walk(xa, ya, path + f.name + ".")
            else:
                assert bool(np.all(np.asarray(xa) == np.asarray(ya))), (
                    f"sweep field {path + f.name} diverged"
                )

    walk(a.metrics, b.metrics)


@seeded_cases(30)
def test_scalar_and_batch_backends_bit_identical(case_seed):
    scenario = generate_scenario(random.Random(f"backend:{case_seed}"))
    [b] = evaluate_scenarios([scenario], backend="batch")
    [s] = evaluate_scenarios([scenario], backend="scalar")
    assert b.fallback == s.fallback
    if b.fallback:
        return
    assert b.makespan == s.makespan
    assert b.total_energy == s.total_energy
    assert b.edp == s.edp
    assert b.busy_seconds == s.busy_seconds
    assert b.job_energies == s.job_energies
