"""Unit coverage of the service layers below the HTTP transport.

Config/env plumbing, the two clocks, the token bucket, per-tenant
accounting, edge validation of submission payloads, and the
``ClusterService`` ack/advance/drain lifecycle in virtual mode.
"""

from __future__ import annotations

import os

import pytest

from repro.mapreduce.engine import ClusterEngine
from repro.service import (
    ClusterService,
    REJECT_QUEUE_DEPTH,
    REJECT_RATE_LIMIT,
    RequestError,
    ServiceConfig,
    TokenBucket,
    VirtualClock,
    WallClock,
    make_clock,
    parse_request,
    seeded_requests,
    spec_to_request,
)
from repro.service.admission import AdmissionController, REJECT_CAPACITY
from repro.service.tenants import TenantRegistry
from repro.telemetry.registry import service_registry
from repro.workloads.streams import poisson_job_stream

pytestmark = pytest.mark.service


# ------------------------------------------------------------------ config
class TestServiceConfig:
    def test_defaults_are_replayable(self):
        cfg = ServiceConfig()
        assert cfg.clock == "virtual"
        assert cfg.scheduler == "fifo"
        assert cfg.rate_per_s == float("inf")

    def test_env_overrides(self):
        env = {
            "REPRO_SERVICE_NODES": "4",
            "REPRO_SERVICE_SCHEDULER": "ecost",
            "REPRO_SERVICE_RATE": "2.5",
            "REPRO_SERVICE_MAX_INFLIGHT": "7",
        }
        cfg = ServiceConfig.from_env(env)
        assert cfg.n_nodes == 4
        assert cfg.scheduler == "ecost"
        assert cfg.rate_per_s == 2.5
        assert cfg.max_inflight == 7

    def test_explicit_overrides_beat_env(self):
        cfg = ServiceConfig.from_env({"REPRO_SERVICE_NODES": "4"}, n_nodes=2)
        assert cfg.n_nodes == 2

    def test_from_env_reads_process_environment(self):
        os.environ["REPRO_SERVICE_NODES"] = "3"
        assert ServiceConfig.from_env().n_nodes == 3

    def test_bad_env_value_names_the_variable(self):
        with pytest.raises(ValueError, match="REPRO_SERVICE_NODES"):
            ServiceConfig.from_env({"REPRO_SERVICE_NODES": "many"})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheduler": "lifo"},
            {"clock": "sundial"},
            {"n_nodes": 0},
            {"rate_per_s": 0.0},
            {"burst": 0.5},
            {"max_inflight": 0},
            {"max_pending": 0},
            {"time_scale": 0.0},
            {"pump_interval_s": 0.0},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

    def test_replace(self):
        assert ServiceConfig().replace(n_nodes=5).n_nodes == 5


# ------------------------------------------------------------------ clocks
class TestClocks:
    def test_virtual_clock_is_monotone_fold(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        assert clock.observe(5.0) == 5.0
        assert clock.observe(3.0) == 5.0  # stale timestamps don't rewind
        assert clock.advance_to(9.0) == 9.0
        assert clock.deterministic

    def test_wall_clock_advances_and_scales(self):
        clock = WallClock(time_scale=1000.0)
        a = clock.now()
        b = clock.now()
        assert b >= a >= 0.0
        assert not clock.deterministic
        # observe() ignores external timestamps entirely
        assert clock.observe(10**9) == clock._floor

    def test_factory(self):
        assert isinstance(make_clock("virtual"), VirtualClock)
        assert isinstance(make_clock("wall"), WallClock)
        with pytest.raises(ValueError, match="sundial"):
            make_clock("sundial")


# ---------------------------------------------------------------- admission
class TestTokenBucket:
    def test_starts_full_and_refills(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst exhausted
        assert bucket.try_take(1.0)  # one token back after 1 s
        assert not bucket.try_take(1.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=3.0)
        for _ in range(3):
            assert bucket.try_take(1000.0)
        assert not bucket.try_take(1000.0)

    def test_time_regress_raises(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0)
        bucket.try_take(5.0)
        with pytest.raises(ValueError, match="backwards"):
            bucket.try_take(4.0)

    def test_infinite_rate_never_rejects(self):
        bucket = TokenBucket(rate_per_s=float("inf"), burst=1.0)
        assert all(bucket.try_take(0.0) for _ in range(100))


class TestAdmissionOrder:
    def _controller(self, **kw):
        defaults = dict(
            rate_per_s=float("inf"), burst=64.0, max_inflight=10**6,
            max_pending=10**6,
        )
        defaults.update(kw)
        return AdmissionController(**defaults)

    def test_capacity_checked_first(self):
        admission = self._controller(max_pending=1, max_inflight=1)
        tenants = TenantRegistry(admission)
        tenant = tenants.get("a")
        tenant.on_accept(0.0)
        decision = admission.decide(tenant, 0.0, total_inflight=1)
        assert decision.reason == REJECT_CAPACITY

    def test_queue_depth_before_rate(self):
        admission = self._controller(rate_per_s=0.001, burst=1.0, max_inflight=1)
        tenants = TenantRegistry(admission)
        tenant = tenants.get("a")
        assert admission.decide(tenant, 0.0, total_inflight=0).accepted
        tenant.on_accept(0.0)
        decision = admission.decide(tenant, 0.0, total_inflight=1)
        assert decision.reason == REJECT_QUEUE_DEPTH

    def test_rejection_does_not_burn_tokens(self):
        admission = self._controller(burst=1.0, rate_per_s=0.001, max_inflight=1)
        tenants = TenantRegistry(admission)
        tenant = tenants.get("a")
        tenant.on_accept(0.0)  # depth cap now binding; bucket still full
        for _ in range(5):
            assert (
                admission.decide(tenant, 0.0, total_inflight=0).reason
                == REJECT_QUEUE_DEPTH
            )
        tenant.on_complete()
        # The bucket was never consulted, so its single token survives.
        assert admission.decide(tenant, 0.0, total_inflight=0).accepted


# ------------------------------------------------------------------ tenants
class TestTenants:
    def test_accounting_roundtrip(self):
        registry = TenantRegistry(
            AdmissionController(
                rate_per_s=float("inf"), burst=64.0,
                max_inflight=10, max_pending=10,
            )
        )
        t = registry.get("alice")
        t.on_accept(1.0)
        t.on_accept(2.0)
        t.on_reject(REJECT_RATE_LIMIT, 3.0)
        t.on_complete()
        stats = registry.as_dict()["alice"]
        assert stats["accepted"] == 2
        assert stats["rejected"] == 1
        assert stats["inflight"] == 1
        assert stats["inflight_highwater"] == 2
        assert stats["rejections_by_reason"][REJECT_RATE_LIMIT] == 1
        assert registry.total_inflight == 1

    def test_complete_without_accept_raises(self):
        registry = TenantRegistry(
            AdmissionController(
                rate_per_s=float("inf"), burst=64.0,
                max_inflight=1, max_pending=1,
            )
        )
        with pytest.raises(RuntimeError):
            registry.get("a").on_complete()


# ----------------------------------------------------------------- requests
class TestParseRequest:
    def test_minimal_payload_gets_tuned_knobs(self):
        req = parse_request(
            {"code": "wc", "data_bytes": 10**9}, default_time=4.0
        )
        assert req.tenant == "default"
        assert req.time == 4.0
        spec = req.build_spec()
        assert spec.instance.app.code == "wc"
        assert spec.config.n_mappers >= 1

    @pytest.mark.parametrize(
        "payload, match",
        [
            ("not a dict", "JSON object"),
            ({"data_bytes": 1}, "'code'"),
            ({"code": "nope", "data_bytes": 1}, "nope"),
            ({"code": "wc"}, "data_bytes"),
            ({"code": "wc", "data_bytes": 0}, "data_bytes"),
            ({"code": "wc", "data_bytes": 1, "time": -1.0}, "time"),
            ({"code": "wc", "data_bytes": 1, "time": "soon"}, "time"),
            ({"code": "wc", "data_bytes": 1, "tenant": ""}, "tenant"),
            ({"code": "wc", "data_bytes": 1, "job_id": 1.5}, "job_id"),
            ({"code": "wc", "data_bytes": 1, "n_mappers": 99}, "n_mappers"),
        ],
    )
    def test_malformed_payloads(self, payload, match):
        with pytest.raises(RequestError, match=match):
            parse_request(payload, default_time=0.0)

    def test_time_required_without_default(self):
        with pytest.raises(RequestError, match="'time'"):
            parse_request({"code": "wc", "data_bytes": 1}, default_time=None)

    def test_spec_roundtrip(self):
        spec = next(iter(poisson_job_stream(1, seed=3, job_ids_from=7)))
        payload = spec_to_request(spec, "bob")
        req = parse_request(payload, default_time=None)
        rebuilt = req.build_spec()
        assert rebuilt.job_id == spec.job_id == 7
        assert rebuilt.submit_time == spec.submit_time
        assert rebuilt.config == spec.config
        assert rebuilt.instance.app.code == spec.instance.app.code
        assert rebuilt.instance.data_bytes == spec.instance.data_bytes

    def test_seeded_requests_cover_all_tenants(self):
        reqs = seeded_requests(60, seed=1, tenants=("a", "b", "c"))
        assert {r["tenant"] for r in reqs} == {"a", "b", "c"}
        assert [r["job_id"] for r in reqs] == list(range(1, 61))
        with pytest.raises(ValueError):
            seeded_requests(1, tenants=())


# ------------------------------------------------------------------- service
class TestClusterService:
    def test_ack_shapes(self):
        service = ClusterService(ServiceConfig(n_nodes=2))
        ok = service.submit_request(
            {"code": "wc", "data_bytes": 10**9, "time": 0.0}
        )
        assert ok == {
            "ok": True, "accepted": True, "job_id": ok["job_id"],
            "tenant": "default", "time": 0.0,
        }
        bad = service.submit_request(
            {"code": "nope", "data_bytes": 1, "time": 1.0}
        )
        assert bad["ok"] is False and "nope" in bad["error"]
        assert service.telemetry.malformed == 1
        service.drain()

    def test_virtual_mode_requires_monotone_time(self):
        service = ClusterService(ServiceConfig())
        service.submit_request({"code": "wc", "data_bytes": 10**9, "time": 10.0})
        ack = service.submit_request({"code": "wc", "data_bytes": 10**9, "time": 5.0})
        assert ack["ok"] is False and "monotone" in ack["error"]
        service.drain()

    def test_virtual_mode_requires_explicit_time(self):
        service = ClusterService(ServiceConfig())
        ack = service.submit_request({"code": "wc", "data_bytes": 10**9})
        assert ack["ok"] is False and "time" in ack["error"]

    def test_drain_conservation_and_reuse(self):
        service = ClusterService(ServiceConfig(n_nodes=2))
        for req in seeded_requests(20, seed=2):
            assert service.submit_request(req)["accepted"]
        summary = service.drain()
        assert summary["completed"] == summary["accepted"] == 20
        assert summary["inflight"] == 0
        # The service stays usable: later arrivals continue the run.
        later = service.cluster.now + 1.0
        assert service.submit_request(
            {"code": "km", "data_bytes": 10**9, "time": later}
        )["accepted"]
        assert service.drain()["completed"] == 21

    def test_advance_reflects_completions_in_admission(self):
        # One job, then a request far in the future: by then the first
        # completed, so a max_inflight=1 tenant is admitted again.
        service = ClusterService(ServiceConfig(n_nodes=1, max_inflight=1))
        assert service.submit_request(
            {"code": "wc", "data_bytes": 10**9, "time": 0.0}
        )["accepted"]
        rejected = service.submit_request(
            {"code": "wc", "data_bytes": 10**9, "time": 0.5}
        )
        assert rejected["accepted"] is False
        assert rejected["reason"] == REJECT_QUEUE_DEPTH
        accepted = service.submit_request(
            {"code": "wc", "data_bytes": 10**9, "time": 10_000.0}
        )
        assert accepted["accepted"] is True
        service.drain()

    def test_advance_to_only_in_virtual_mode(self):
        service = ClusterService(ServiceConfig(clock="wall"))
        with pytest.raises(RuntimeError, match="virtual"):
            service.advance_to(1.0)

    def test_wall_mode_pump_dispatches(self):
        service = ClusterService(ServiceConfig(clock="wall", time_scale=1e6))
        ack = service.submit_request({"code": "wc", "data_bytes": 10**9})
        assert ack["accepted"]
        assert len(service._ingest) == 1
        assert service.pump() == 1
        assert service.pump() == 0
        summary = service.drain()
        assert summary["completed"] == 1

    def test_injected_cluster_is_used(self):
        cluster = ClusterEngine(3)
        service = ClusterService(ServiceConfig(n_nodes=8), cluster=cluster)
        assert service.cluster is cluster
        assert len(service.cluster.nodes) == 3

    def test_metrics_snapshot_namespaces(self):
        service = ClusterService(ServiceConfig(n_nodes=2))
        for req in seeded_requests(10, seed=9):
            service.submit_request(req)
        service.drain()
        snap = service.metrics_snapshot()
        assert set(snap) == {"engine", "service", "tenants"}
        assert snap["service"]["completed"] == 10
        assert snap["service"]["accept_rate"] == 1.0
        tenant_keys = set(snap["tenants"])
        assert any(key.endswith("_accepted") for key in tenant_keys)
        # The registry is re-polled live, not a frozen copy.
        registry = service_registry(service)
        flat = registry.flatten(registry.snapshot())
        assert flat["service.completed"] == 10

    def test_trace_payload_empty_when_tracer_off(self):
        service = ClusterService(ServiceConfig())
        assert service.trace_payload() == {
            "traceEvents": [], "displayTimeUnit": "ms"
        }
