"""Property suite for the placement indexes on mixed-capacity rosters.

The scale-out PR proved :class:`FreeCoreIndex` and
:class:`PendingQueue` equivalent to the naive structures they replaced
on homogeneous clusters; the heterogeneous PR adds per-class subtree
views and class-tagged queries.  This suite drives both structures
through randomised crash → restore → crash sequences on rosters mixing
atom (8-core) and xeon (16-core) capacities and checks every
observable against the legacy linear-scan model after every single
operation.  Hypothesis generates the op sequences when available, a
seeded ``parametrize`` fallback otherwise (matching
``test_invariants_property.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import pytest

from repro.mapreduce.indexes import FreeCoreIndex, PendingQueue

try:
    from hypothesis import given
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on bare boxes only
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.hetero

#: Per-class core capacities of the studied rosters.
_CAPACITY = {0: 8, 1: 16}


def seeded_cases(n: int):
    """Hypothesis integers when available, seeded parametrize otherwise."""

    def deco(fn):
        if HAVE_HYPOTHESIS:
            return given(
                case_seed=st.integers(min_value=0, max_value=2**31 - 1)
            )(fn)
        return pytest.mark.parametrize("case_seed", range(n))(fn)

    return deco


# --------------------------------------------------- legacy scan models
def legacy_first_at_least(values, k, tags=None, node_class=None):
    """The O(n) scan ``fifo_first_fit`` paid before the segment tree."""
    for i, v in enumerate(values):
        if node_class is not None and tags[i] != node_class:
            continue
        if v >= k:
            return i
    return None


def assert_index_matches_scan(index, values, tags):
    """Differentially check every query the index answers."""
    for i, v in enumerate(values):
        assert index.get(i) == v
    ks = range(0, max(_CAPACITY.values()) + 2)
    for k in ks:
        if k <= 0:
            # The classless fast path returns slot 0 unconditionally.
            assert index.first_at_least(k) == 0
        else:
            assert index.first_at_least(k) == legacy_first_at_least(values, k)
        if tags is not None:
            for cls in sorted(set(tags)):
                want = (
                    legacy_first_at_least(values, k, tags, cls)
                    if k > 0
                    else tags.index(cls)
                )
                assert index.first_at_least(k, node_class=cls) == want


# ------------------------------------------------- FreeCoreIndex suite
@seeded_cases(40)
def test_free_core_index_crash_restore_differential(case_seed):
    """Random capacity churn on a mixed roster, checked step by step.

    The op mix is the engine's: allocations and releases (partial
    capacity changes), crashes (capacity → 0) and restores (capacity →
    the class's full core count), interleaved so nodes crash and
    recover repeatedly within one sequence.
    """
    rng = random.Random(case_seed)
    n = rng.randint(1, 12)
    tags = [rng.randint(0, 1) for _ in range(n)]
    values = [_CAPACITY[t] for t in tags]
    index = FreeCoreIndex(values, classes=tags)
    assert index.class_tags == tuple(tags)
    assert_index_matches_scan(index, values, tags)

    crashed = set()
    for _ in range(rng.randint(5, 40)):
        i = rng.randrange(n)
        op = rng.choice(("alloc", "crash", "restore"))
        if op == "crash":
            values[i] = 0
            crashed.add(i)
        elif op == "restore":
            values[i] = _CAPACITY[tags[i]]
            crashed.discard(i)
        else:
            values[i] = rng.randint(0, _CAPACITY[tags[i]])
        index.set(i, values[i])
        assert_index_matches_scan(index, values, tags)


@seeded_cases(25)
def test_free_core_index_classless_matches_classed_global_view(case_seed):
    """Class tags must not perturb the *global* first-fit answer: the
    classed index answers every untagged query exactly as the classless
    index over the same values (the homogeneous byte-identity path)."""
    rng = random.Random(case_seed)
    n = rng.randint(1, 10)
    tags = [rng.randint(0, 1) for _ in range(n)]
    values = [rng.randint(0, _CAPACITY[t]) for t in tags]
    classed = FreeCoreIndex(values, classes=tags)
    classless = FreeCoreIndex(values)
    for _ in range(20):
        i = rng.randrange(n)
        v = rng.randint(0, _CAPACITY[tags[i]])
        values[i] = v
        classed.set(i, v)
        classless.set(i, v)
        for k in range(0, max(_CAPACITY.values()) + 2):
            assert classed.first_at_least(k) == classless.first_at_least(k)


def test_free_core_index_double_crash_sequence():
    # One deterministic crash → restore → crash walk on a 2-class
    # roster, pinning the per-class views through both transitions.
    tags = [0, 1, 0, 1]
    values = [_CAPACITY[t] for t in tags]
    index = FreeCoreIndex(values, classes=tags)
    assert index.first_at_least(16, node_class=1) == 1

    index.set(1, 0)  # crash the first xeon
    assert index.first_at_least(16, node_class=1) == 3
    assert index.first_at_least(16) == 3
    index.set(3, 0)  # crash the second xeon too
    assert index.first_at_least(16, node_class=1) is None
    assert index.first_at_least(16) is None
    assert index.first_at_least(8, node_class=0) == 0

    index.set(1, _CAPACITY[1])  # restore
    assert index.first_at_least(16) == 1
    index.set(1, 0)  # and crash again
    assert index.first_at_least(16) is None
    assert index.first_at_least(0, node_class=1) == 1  # slots still exist


def test_free_core_index_validation():
    with pytest.raises(ValueError, match="at least one slot"):
        FreeCoreIndex([])
    with pytest.raises(ValueError, match="one tag per slot"):
        FreeCoreIndex([8, 8], classes=[0])
    index = FreeCoreIndex([8, 16])
    assert index.class_tags is None
    with pytest.raises(ValueError, match="without class tags"):
        index.first_at_least(1, node_class=0)
    with pytest.raises(IndexError):
        index.get(2)
    with pytest.raises(IndexError):
        index.set(-1, 3)
    classed = FreeCoreIndex([8, 16], classes=[0, 1])
    assert classed.first_at_least(1, node_class=7) is None


# --------------------------------------------------- PendingQueue suite
@dataclass(frozen=True)
class _Job:
    """Value-equal stand-in for a JobSpec (ids may deliberately clash)."""

    job_id: int
    tag: int = field(default=0, compare=False)


class _ListModel:
    """The legacy structure: a plain list with list.remove semantics."""

    def __init__(self):
        self.items = []

    def append(self, item):
        self.items.append(item)

    def remove(self, item):
        self.items.remove(item)


def _assert_queue_matches(queue: PendingQueue, model: _ListModel):
    assert len(queue) == len(model.items)
    assert bool(queue) == bool(model.items)
    assert list(queue) == model.items
    if model.items:
        assert queue[0] is model.items[0]
    for probe in model.items[:3]:
        assert probe in queue
    assert _Job(-1) not in queue


@seeded_cases(40)
def test_pending_queue_differential_with_requeue(case_seed):
    """Random append/remove/re-queue churn against the list model.

    Re-queueing an object the injector previously removed (the
    crash-recovery path: place → crash → re-queue → place → crash) is
    drawn as its own op so tombstone resolution is hit constantly.
    """
    rng = random.Random(case_seed)
    queue, model = PendingQueue(), _ListModel()
    removed: list[_Job] = []
    next_id = 0
    for _ in range(rng.randint(10, 80)):
        op = rng.choice(("append", "append", "remove_head", "remove_any",
                         "requeue"))
        if op == "append":
            job = _Job(next_id)
            next_id += 1
            queue.append(job)
            model.append(job)
        elif op == "remove_head" and model.items:
            job = model.items[0]
            queue.remove(job)
            model.remove(job)
            removed.append(job)
        elif op == "remove_any" and model.items:
            job = rng.choice(model.items)
            queue.remove(job)
            model.remove(job)
            removed.append(job)
        elif op == "requeue" and removed:
            # The same object comes back — crash recovery re-queues the
            # spec it already placed once.
            job = removed.pop(rng.randrange(len(removed)))
            queue.append(job)
            model.append(job)
        _assert_queue_matches(queue, model)


def test_pending_queue_crash_restore_crash_same_object():
    queue = PendingQueue()
    job = _Job(1)
    for _round in range(3):  # place → crash → re-queue, thrice
        queue.append(job)
        assert job in queue and len(queue) == 1
        queue.remove(job)
        assert job not in queue and len(queue) == 0
    queue.append(job)
    assert list(queue) == [job]


def test_pending_queue_equal_but_distinct_uses_first_equal():
    # Two distinct objects that compare equal: removal by a *third*
    # equal object must drop the first-queued one, as list.remove does.
    first, second, probe = _Job(7, tag=1), _Job(7, tag=2), _Job(7, tag=3)
    queue, model = PendingQueue(), _ListModel()
    for item in (first, second):
        queue.append(item)
        model.append(item)
    queue.remove(probe)
    model.remove(probe)
    assert list(queue) == model.items == [second]
    assert queue[0] is second


def test_pending_queue_rejects_double_append_and_ghost_remove():
    queue = PendingQueue()
    job = _Job(1)
    queue.append(job)
    with pytest.raises(ValueError, match="already pending"):
        queue.append(job)
    with pytest.raises(ValueError, match="not pending"):
        queue.remove(_Job(99))
    with pytest.raises(IndexError):
        PendingQueue()[0]


def test_pending_queue_compaction_under_deep_churn():
    # Enough removals to trip both the head compaction threshold and
    # the tombstone-count compaction, preserving FIFO order throughout.
    queue = PendingQueue()
    jobs = [_Job(i) for i in range(1500)]
    for job in jobs:
        queue.append(job)
    for job in jobs[:1200]:
        queue.remove(job)
    assert list(queue) == jobs[1200:]
    assert queue[0] is jobs[1200]
    queue.clear()
    assert len(queue) == 0 and not queue
