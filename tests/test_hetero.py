"""Heterogeneous clusters: node classes, rosters, and acceptance.

The oracle-first contract of the heterogeneity PR, as tests:

* the acceptance matrix — every two-class scenario in
  :func:`hetero_matrix` agrees with its closed-form oracle within the
  conformance tolerance, with **zero** scalar/batch dispatcher
  fallbacks and the two backends bit-identical to each other;
* homogeneous byte-identity — an explicit all-default roster changes
  nothing, byte for byte, against the roster-free path;
* the ``ignore-node-class`` mutant is observable exactly where the
  design says it must be (any non-default roster) and invisible
  exactly where it cannot be (the homogeneous default);
* the supporting plumbing: the class registry, roster resolution,
  scenario roster fields, SoA node constants, batch packing metadata
  and the fuzzer's roster annotations.
"""

from __future__ import annotations

import random
from dataclasses import replace

import numpy as np
import pytest

from repro.batch.engine import evaluate_scenarios
from repro.batch.kernel import NODE_FIELDS, NodeSoA, hetero_total_energy
from repro.batch.pack import ScenarioBatch
from repro.conformance.fuzzer import fuzz, generate_scenario
from repro.conformance.mutants import ignore_node_class
from repro.conformance.oracles import check_oracle
from repro.conformance.relations import check_relations
from repro.conformance.scenarios import (
    Scenario,
    ScenarioJob,
    hetero_matrix,
    run_scenario,
)
from repro.hardware.classes import (
    ATOM,
    NODE_CLASSES,
    XEON,
    XEON_E5,
    NodeClass,
    class_name_of,
    get_node_class,
    roster_from_classes,
)
from repro.hardware.node import ATOM_C2758
from repro.mapreduce.engine import ClusterEngine
from repro.utils.units import GB, GHZ, MB

pytestmark = pytest.mark.hetero


def _job(code="wc", size=1 * GB, mappers=2, t=0.0):
    return ScenarioJob(
        code=code, data_bytes=size, frequency=1.2 * GHZ,
        block_size=128 * MB, n_mappers=mappers, submit_time=t,
    )


# ------------------------------------------------------------ acceptance
class TestAcceptanceMatrix:
    def test_matrix_agrees_with_oracles_without_fallbacks(self):
        scenarios = hetero_matrix()
        assert len(scenarios) >= 100
        assert sum(1 for s in scenarios if s.heterogeneous) >= 50

        failures = [m for s in scenarios for m in check_oracle(s)]
        assert not failures, failures[:5]

        scalar = evaluate_scenarios(scenarios, backend="scalar")
        batch = evaluate_scenarios(scenarios, backend="batch")
        assert not any(o.fallback for o in scalar)
        assert not any(o.fallback for o in batch)
        for a, b in zip(scalar, batch):
            assert (a.makespan, a.total_energy, a.edp) == (
                b.makespan, b.total_energy, b.edp
            )

    def test_new_relations_hold_and_apply(self):
        scenario = Scenario(2, (_job(),))
        names = ["swap-equal-classes", "upgrade-node-class", "skew-zero-uniform"]
        results = check_relations(scenario, names)
        for result in results:
            assert result.applicable, result.describe()
            assert not result.failures, result.describe()

    def test_hetero_fuzz_smoke_is_clean(self):
        report = fuzz(budget=30, seed=5, roster_prob=1.0)
        assert report.ok, report.describe()


# --------------------------------------------------- homogeneous identity
class TestHomogeneousByteIdentity:
    def test_explicit_atom_roster_is_byte_identical(self):
        plain = Scenario(3, (_job(), _job("st", t=40.0)))
        annotated = replace(plain, node_classes=("atom",) * 3)
        a, b = run_scenario(plain), run_scenario(annotated)
        assert (a.makespan, a.total_energy, a.edp) == (
            b.makespan, b.total_energy, b.edp
        )
        assert a.rows == b.rows
        assert not b.cluster.heterogeneous
        assert set(b.cluster.node_class_tags) == {0}

    def test_all_xeon_roster_is_homogeneous_but_not_default(self):
        scenario = Scenario(2, (_job(),), node_classes=("xeon", "xeon"))
        run = run_scenario(scenario)
        assert not run.cluster.heterogeneous
        assert run.cluster.roster[0].n_cores == 16
        default = run_scenario(Scenario(2, (_job(),)))
        assert run.makespan != default.makespan


# ----------------------------------------------------------- the mutant
class TestIgnoreNodeClassMutant:
    def test_visible_on_any_non_default_roster(self):
        scenario = Scenario(1, (_job(),), node_classes=("xeon",))
        healthy = run_scenario(scenario)
        default = run_scenario(scenario.homogenised())
        assert healthy.makespan != default.makespan
        with ignore_node_class():
            mutated = run_scenario(scenario)
        assert mutated.makespan == default.makespan
        assert mutated.total_energy == default.total_energy

    def test_invisible_on_the_homogeneous_default(self):
        scenario = Scenario(2, (_job(), _job("st")))
        healthy = run_scenario(scenario)
        with ignore_node_class():
            mutated = run_scenario(scenario)
        assert (mutated.makespan, mutated.total_energy) == (
            healthy.makespan, healthy.total_energy
        )


# ------------------------------------------------------- class registry
class TestNodeClasses:
    def test_presets_and_registry(self):
        assert NODE_CLASSES == {"atom": ATOM, "xeon": XEON}
        assert ATOM.spec is ATOM_C2758
        assert XEON.spec is XEON_E5
        assert XEON_E5.n_cores == 16
        # Shared DVFS frequency ladder: any JobConfig validates anywhere.
        assert [p.frequency for p in ATOM_C2758.dvfs.levels] == [
            p.frequency for p in XEON_E5.dvfs.levels
        ]

    def test_lookup_and_reverse_lookup(self):
        assert get_node_class("xeon") is XEON
        with pytest.raises(KeyError, match="valid: atom, xeon"):
            get_node_class("gpu")
        assert class_name_of(ATOM_C2758) == "atom"
        assert class_name_of(replace(XEON_E5)) == "xeon"  # by equality
        other = replace(XEON_E5, name="mystery", n_cores=12)
        assert class_name_of(other) == "mystery"

    def test_roster_resolution_and_validation(self):
        roster = roster_from_classes(("atom", "xeon", "atom"))
        assert roster == (ATOM_C2758, XEON_E5, ATOM_C2758)
        with pytest.raises(ValueError, match="non-empty"):
            NodeClass(name="", spec=ATOM_C2758)


# --------------------------------------------------------- scenario API
class TestScenarioRosterFields:
    def test_roster_and_heterogeneous_property(self):
        plain = Scenario(2, (_job(),))
        assert plain.roster() is None and not plain.heterogeneous
        mixed = replace(plain, node_classes=("atom", "xeon"))
        assert mixed.roster() == (ATOM_C2758, XEON_E5)
        assert mixed.heterogeneous
        assert not replace(plain, node_classes=("xeon", "xeon")).heterogeneous

    def test_with_nodes_trims_and_pads_the_roster(self):
        mixed = Scenario(3, (_job(),), node_classes=("atom", "xeon", "atom"))
        assert mixed.with_nodes(2).node_classes == ("atom", "xeon")
        grown = mixed.with_nodes(5)
        assert grown.node_classes == ("atom", "xeon", "atom", "atom", "atom")
        assert mixed.homogenised().node_classes == ()

    def test_to_source_round_trips_the_roster(self):
        mixed = Scenario(2, (_job(),), node_classes=("atom", "xeon"))
        source = mixed.to_source()
        assert "node_classes" in source
        assert "node_classes" not in Scenario(2, (_job(),)).to_source()
        rebuilt = eval(  # noqa: S307 - our own emitted source
            source, {"Scenario": Scenario, "ScenarioJob": ScenarioJob}
        )
        assert rebuilt == mixed


# ----------------------------------------------------------- SoA layer
class TestNodeSoA:
    def test_from_specs_mirrors_the_spec_fields(self):
        specs = (ATOM_C2758, XEON_E5)
        soa = NodeSoA.from_specs(specs)
        assert len(soa) == 2
        want = {
            "n_cores": [n.n_cores for n in specs],
            "idle_power": [n.power.idle_power for n in specs],
            "core_max_power": [n.power.core_max_power for n in specs],
            "mem_max_power": [n.power.mem_max_power for n in specs],
            "disk_max_power": [n.power.disk_max_power for n in specs],
            "membw": [n.membw.achievable_bw for n in specs],
            "nic_bw": [n.nic_bw for n in specs],
        }
        assert set(NODE_FIELDS) == set(want)
        for name, values in want.items():
            np.testing.assert_array_equal(getattr(soa, name), values)
        taken = soa.take(np.array([1, 0, 1]))
        np.testing.assert_array_equal(
            taken.idle_power,
            [XEON_E5.power.idle_power, ATOM_C2758.power.idle_power,
             XEON_E5.power.idle_power],
        )

    def test_hetero_total_energy_scalar_array_lockstep(self):
        nodes = NodeSoA.from_specs((ATOM_C2758, XEON_E5))
        busy_by_node = {0: 12.5, 1: 3.25}
        scalar = hetero_total_energy(100.0, 20.0, nodes, busy_by_node)
        vector = hetero_total_energy(
            np.array([100.0]), np.array([20.0]), nodes,
            {k: np.array([v]) for k, v in busy_by_node.items()},
        )
        assert float(vector[0]) == scalar  # bit-identical, not approx

    def test_pack_round_trips_node_classes(self):
        scenarios = [
            Scenario(2, (_job(),), node_classes=("atom", "xeon")),
            Scenario(1, (_job("st"),)),
        ]
        batch = ScenarioBatch.from_scenarios(scenarios)
        assert batch.node_classes == (("atom", "xeon"), ())
        assert batch.scenarios() == scenarios


# -------------------------------------------------------------- fuzzer
class TestFuzzerRosters:
    def test_roster_prob_one_annotates_every_oracle_shape(self):
        annotated = 0
        for i in range(60):
            scenario = generate_scenario(
                random.Random(f"7:{i}"), roster_prob=1.0
            )
            annotated += bool(scenario.node_classes)
        assert annotated >= 30  # every non-"general" draw

    def test_roster_draw_never_perturbs_the_other_fields(self):
        for i in range(40):
            plain = generate_scenario(random.Random(f"7:{i}"), roster_prob=0.0)
            forced = generate_scenario(random.Random(f"7:{i}"), roster_prob=1.0)
            assert plain.node_classes == ()
            assert forced.homogenised() == plain.homogenised()


# ------------------------------------------------------- engine plumbing
class TestEngineRoster:
    def test_mixed_roster_tags_and_dispatch(self):
        roster = roster_from_classes(("atom", "xeon", "atom"))
        cluster = ClusterEngine(roster=roster)
        assert len(cluster.nodes) == 3
        assert cluster.heterogeneous
        assert cluster.node_class_tags == (0, 1, 0)
        assert cluster.roster == roster
        assert cluster.roster[0] is ATOM_C2758
        assert [n.node for n in cluster.nodes] == list(roster)
        assert [n.class_tag for n in cluster.nodes] == [0, 1, 0]

    def test_empty_roster_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterEngine(roster=())

    def test_fifo_completes_a_stream_on_a_mixed_roster(self):
        from repro.mapreduce.job import JobSpec
        from repro.model.config import JobConfig
        from repro.workloads.base import AppInstance
        from repro.workloads.registry import get_app

        cluster = ClusterEngine(roster=roster_from_classes(("atom", "xeon")))
        for i, code in enumerate(("wc", "st", "ts", "gp")):
            cluster.submit(
                JobSpec(
                    instance=AppInstance(get_app(code), 1 * GB),
                    config=JobConfig(
                        frequency=2.0 * GHZ, block_size=128 * MB, n_mappers=2
                    ),
                    submit_time=float(i),
                )
            )
        cluster.run()
        assert len(cluster.results) == 4
        assert cluster.makespan > 0.0
