"""Functional correctness of the four micro-benchmarks."""

from collections import Counter

from repro.mapreduce.functional import MapReduceRuntime
from repro.workloads import datagen
from repro.workloads.micro import Grep, Sort, TeraSort, WordCount


def runtime(**kw):
    return MapReduceRuntime(n_reducers=3, split_records=50, **kw)


class TestWordCount:
    def test_counts_match_brute_force(self):
        app = WordCount()
        lines = list(datagen.zipf_text_lines(200, seed=3))
        expected = Counter(w for line in lines for w in line.split())
        out = runtime().run(app, enumerate(lines))
        assert out.as_dict() == dict(expected)

    def test_combiner_reduces_intermediate_volume(self):
        app = WordCount()
        records = list(app.generate_records(300, seed=1))
        with_comb = runtime(use_combiner=True).run(app, records)
        without = runtime(use_combiner=False).run(app, records)
        assert with_comb.as_dict() == without.as_dict()
        assert with_comb.n_intermediate_records < without.n_intermediate_records


class TestSort:
    def test_output_sorted_within_partitions(self):
        app = Sort()
        out = runtime().run(app, app.generate_records(500, seed=2))
        for part in out.partitions:
            keys = [k for k, _v in part]
            assert keys == sorted(keys, key=lambda k: (type(k).__name__, k, repr(k)))

    def test_multiset_preserved(self):
        app = Sort()
        records = list(app.generate_records(300, seed=5))
        out = runtime().run(app, records)
        assert Counter(out.records) == Counter(records)

    def test_no_combiner(self):
        assert not Sort().has_combiner


class TestGrep:
    def test_counts_pattern_occurrences(self):
        app = Grep(pattern="ab")
        lines = ["abab x", "no match", "ab"]
        out = runtime().run(app, enumerate(lines))
        assert out.as_dict() == {"ab": 3}

    def test_no_match_empty_output(self):
        app = Grep(pattern="zzzzzz")
        out = runtime().run(app, enumerate(["aaa", "bbb"]))
        assert out.records == []

    def test_empty_pattern_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Grep(pattern="")


class TestTeraSort:
    def test_globally_recoverable_order(self):
        app = TeraSort()
        records = list(app.generate_records(200, seed=7))
        out = runtime().run(app, records)
        assert Counter(k for k, _ in out.records) == Counter(k for k, _ in records)
        for part in out.partitions:
            keys = [k for k, _v in part]
            assert keys == sorted(keys, key=lambda k: (type(k).__name__, k, repr(k)))

    def test_payloads_preserved(self):
        app = TeraSort()
        records = list(app.generate_records(50, seed=9))
        out = runtime().run(app, records)
        assert Counter(v for _k, v in out.records) == Counter(v for _k, v in records)
