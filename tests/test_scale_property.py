"""Property suite at big-cluster scale (>= 256 nodes).

The scale-out PR replaced the engine's O(pending x nodes) placement
scan with a free-core segment tree + tombstone FIFO, and added a
bounded streaming recorder.  This suite pins the invariants those
structures must preserve, checked over generated workloads on
clusters of 256-512 nodes:

* every submitted job completes exactly once;
* no node is busy longer than the horizon;
* the O(1) prefix-sum energy path agrees with the windowed scan path;
* the indexed ``fifo_first_fit`` is placement-identical to a naive
  reference scan (differential test — same results, byte for byte);
* the streaming recorder answers every query a full recorder answers
  bit-identically while retention holds, keeps head-anchored windows
  exact after dropping, and refuses windows inside the dropped span;
* ``FreeCoreIndex`` and ``PendingQueue`` match list-based references
  under random operation sequences.

Cases come from hypothesis when available, else a seeded-parametrize
fallback (same scheme as ``tests/test_invariants_property.py``).
"""

from __future__ import annotations

import pytest

from repro.mapreduce.engine import (
    ClusterEngine,
    FullIntervalRecorder,
    StreamingIntervalRecorder,
)
from repro.mapreduce.indexes import FreeCoreIndex, PendingQueue
from repro.utils.rng import rng_from
from repro.workloads.streams import poisson_job_stream

try:
    from hypothesis import given
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on bare boxes only
    HAVE_HYPOTHESIS = False


def seeded_cases(n: int):
    """Hypothesis integer cases, or a fixed seed sweep without it."""

    def deco(fn):
        if HAVE_HYPOTHESIS:
            return given(case_seed=st.integers(min_value=0, max_value=2**31 - 1))(fn)
        return pytest.mark.parametrize("case_seed", range(n))(fn)

    return deco


# -------------------------------------------------------- generators
def _big_case(case_seed: int):
    """One big-cluster workload: 256-512 nodes, bursty arrivals."""
    rng = rng_from(case_seed)
    n_nodes = int(rng.choice([256, 384, 512]))
    n_jobs = int(rng.integers(50, 300))
    specs = list(
        poisson_job_stream(
            n_jobs,
            mean_interarrival_s=float(rng.uniform(0.05, 2.0)),
            seed=int(rng.integers(2**31)),
            tuned=bool(rng.integers(2)),
            job_ids_from=1,
        )
    )
    return n_nodes, specs


def _run(n_nodes, specs, *, recorder="off", scheduler=None):
    cluster = ClusterEngine(n_nodes, recorder=recorder, scheduler=scheduler)
    for s in specs:
        cluster.submit(s)
    results = cluster.run()
    return cluster, results


def _rows(results):
    return [
        (r.spec.label, r.node_id, r.start_time, r.finish_time, r.energy_joules)
        for r in results
    ]


# ---------------------------------------------- big-cluster invariants
@seeded_cases(12)
def test_big_cluster_completes_exactly_once(case_seed):
    n_nodes, specs = _big_case(case_seed)
    _cluster, results = _run(n_nodes, specs)
    assert sorted(r.spec.job_id for r in results) == sorted(
        s.job_id for s in specs
    )


@seeded_cases(10)
def test_big_cluster_busy_within_horizon(case_seed):
    n_nodes, specs = _big_case(case_seed)
    cluster, _results = _run(n_nodes, specs)
    horizon = cluster.now
    assert cluster.makespan <= horizon + 1e-6
    for node in cluster.nodes:
        node.advance_to(horizon)
        assert 0.0 <= node.busy_seconds <= horizon + 1e-6


@seeded_cases(8)
def test_big_cluster_prefix_sum_equals_scan(case_seed):
    n_nodes, specs = _big_case(case_seed)
    cluster, _results = _run(n_nodes, specs, recorder="full")
    horizon = max(cluster.now, 1.0)
    rng = rng_from(case_seed + 1)
    mid = float(rng.uniform(0.0, horizon))
    for node in cluster.nodes:
        node.advance_to(horizon)
        full = node.energy_between(0.0, horizon)  # O(1) prefix-sum path
        split = node.energy_between(0.0, mid) + node.energy_between(mid, horizon)
        assert split == pytest.approx(full, rel=1e-9, abs=1e-6)
        assert full >= 0.0


# -------------------------------------------- scheduler differential
def _reference_fifo_first_fit(cluster, t):
    """The pre-index scheduler: linear scan over nodes per placement."""
    while cluster.pending:
        spec = cluster.pending[0]
        for node in cluster.nodes:
            if node.can_fit(spec):
                cluster.place(spec, node.node_id)
                break
        else:
            return


@seeded_cases(10)
def test_first_fit_index_matches_reference_scan(case_seed):
    """Indexed placement == naive scan, byte for byte, at 256+ nodes."""
    n_nodes, specs = _big_case(case_seed)
    _c1, fast = _run(n_nodes, specs)
    _c2, naive = _run(n_nodes, specs, scheduler=_reference_fifo_first_fit)
    assert _rows(fast) == _rows(naive)
    assert _c1.edp() == _c2.edp()


# ----------------------------------------------- streaming recorder
@seeded_cases(10)
def test_streaming_recorder_matches_full_within_bound(case_seed):
    """With retention never exceeded, streaming == full on any window."""
    n_nodes, specs = _big_case(case_seed)
    c_full, r_full = _run(n_nodes, specs, recorder="full")
    c_str, r_str = _run(n_nodes, specs, recorder="streaming")
    assert _rows(r_full) == _rows(r_str)
    horizon = max(c_full.now, 1.0)
    rng = rng_from(case_seed + 2)
    windows = sorted(float(rng.uniform(0.0, horizon)) for _ in range(4))
    for nf, ns in zip(c_full.nodes, c_str.nodes):
        nf.advance_to(horizon)
        ns.advance_to(horizon)
        assert ns.energy_between(0.0, horizon) == nf.energy_between(0.0, horizon)
        for t0, t1 in zip(windows, windows[1:]):
            assert ns.energy_between(t0, t1) == nf.energy_between(t0, t1)


class _StubEngine:
    """Minimal NodeEngine stand-in for driving recorders directly."""

    node_id = 0
    running = ()

    class telemetry:  # noqa: N801 - attribute stand-in, not a real class
        @staticmethod
        def record_segment(node_id):
            pass

        @staticmethod
        def record_segments_dropped(node_id, n=1):
            pass


@seeded_cases(8)
def test_streaming_recorder_drops_keep_head_windows_exact(case_seed):
    """Past the bound: totals stay exact, interior pre-drop windows raise."""
    rng = rng_from(case_seed)
    eng = _StubEngine()
    full = FullIntervalRecorder()
    stream = StreamingIntervalRecorder(bound=8)
    t = 0.0
    segs = []
    for _ in range(int(rng.integers(30, 80))):
        t += float(rng.uniform(0.0, 2.0))
        dur = float(rng.uniform(0.1, 3.0))
        watts = float(rng.uniform(1.0, 40.0))
        full.record(eng, t, t + dur, watts, 1.0, 0.0, 0.0, 0.0)
        stream.record(eng, t, t + dur, watts, 1.0, 0.0, 0.0, 0.0)
        segs.append((t, t + dur))
        t += dur
    assert stream.dropped > 0
    assert stream.retained <= stream.bound
    horizon = t + 1.0
    # Head-anchored windows covering the dropped span: bit-identical.
    assert stream.busy_between(0.0, horizon) == full.busy_between(0.0, horizon)
    drop_end = stream._drop_end
    for t1 in (drop_end, drop_end + 0.5, horizon):
        assert stream.busy_between(0.0, t1) == full.busy_between(0.0, t1)
    # Windows entirely before the first segment are trivially empty.
    assert stream.busy_between(-5.0, segs[0][0]) == (0.0, 0.0)
    # Windows inside the retained suffix: bit-identical to full.
    lo = stream._lo
    t0 = stream.starts[lo]
    assert stream.busy_between(t0, horizon) == full.busy_between(t0, horizon)
    # Interior windows that reach into the dropped prefix must refuse.
    with pytest.raises(RuntimeError, match="retention bound"):
        stream.busy_between(segs[1][0], horizon)


def test_streaming_recorder_rejects_out_of_order():
    eng = _StubEngine()
    rec = StreamingIntervalRecorder(bound=4)
    rec.record(eng, 0.0, 1.0, 10.0, 1.0, 0.0, 0.0, 0.0)
    with pytest.raises(RuntimeError, match="time-ordered"):
        rec.record(eng, 0.5, 2.0, 10.0, 1.0, 0.0, 0.0, 0.0)


# ------------------------------------------------- index structures
@seeded_cases(25)
def test_free_core_index_matches_linear_scan(case_seed):
    rng = rng_from(case_seed)
    n = int(rng.integers(1, 600))
    cores = [int(rng.integers(0, 9)) for _ in range(n)]
    index = FreeCoreIndex(cores)
    for _ in range(200):
        if rng.integers(2):
            i = int(rng.integers(n))
            cores[i] = int(rng.integers(0, 9))
            index.set(i, cores[i])
        k = int(rng.integers(1, 10))
        expect = next((i for i, c in enumerate(cores) if c >= k), None)
        assert index.first_at_least(k) == expect


@seeded_cases(25)
def test_pending_queue_matches_list(case_seed):
    """Random append/remove/head/iter sequences == plain list FIFO."""
    rng = rng_from(case_seed)
    queue = PendingQueue()
    ref: list[object] = []
    pool = [object() for _ in range(40)]
    for _ in range(300):
        op = int(rng.integers(3))
        if op == 0:
            item = pool[int(rng.integers(len(pool)))]
            if item in ref:
                with pytest.raises(ValueError):
                    queue.append(item)
            else:
                queue.append(item)
                ref.append(item)
        elif op == 1 and ref:
            item = ref[int(rng.integers(len(ref)))]
            queue.remove(item)
            ref.remove(item)
        elif op == 1:
            with pytest.raises(ValueError):
                queue.remove(pool[0])
        assert len(queue) == len(ref)
        assert bool(queue) == bool(ref)
        assert list(queue) == ref
        if ref:
            assert queue[0] is ref[0]
