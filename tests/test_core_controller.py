"""End-to-end ECoST controller tests (small fixture pipeline)."""

import pytest

from repro.analysis.classify import NearestCentroidClassifier
from repro.analysis.features import build_feature_matrix
from repro.core.controller import ECoSTController
from repro.core.stp import MLMSTP
from repro.mapreduce.engine import ClusterEngine
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import get_app


@pytest.fixture(scope="module")
def pipeline(small_dataset, small_training_instances):
    stp = MLMSTP("reptree").fit(small_dataset)
    fm = build_feature_matrix(small_training_instances, seed=0)
    classifier = NearestCentroidClassifier().fit(
        fm, [i.app_class for i in small_training_instances]
    )
    return stp, classifier


# Make the session-scoped fixtures visible at module scope.
@pytest.fixture(scope="module")
def small_dataset(request):
    return request.getfixturevalue("small_dataset")


def _controller(pipeline, n_nodes=2):
    stp, classifier = pipeline
    cluster = ClusterEngine(n_nodes=n_nodes)
    return ClusterEngine, ECoSTController(cluster, stp, classifier), cluster


def test_runs_all_jobs_to_completion(pipeline):
    _, ctrl, cluster = _controller(pipeline)
    for code in ("svm", "st", "wc", "nb", "cf", "km"):
        ctrl.submit(AppInstance(get_app(code), 1 * GB))
    results = ctrl.run()
    assert len(results) == 6
    assert cluster.makespan > 0
    assert not ctrl.queue


def test_two_jobs_share_each_node_initially(pipeline):
    _, ctrl, cluster = _controller(pipeline, n_nodes=2)
    for code in ("svm", "st", "wc", "nb"):
        ctrl.submit(AppInstance(get_app(code), 1 * GB))
    ctrl.run()
    starts_at_zero = [r for r in cluster.results if r.start_time == 0.0]
    assert len(starts_at_zero) == 4  # 2 nodes × 2 co-located jobs


def test_memory_apps_scheduled_last(pipeline):
    """The decision tree gives M the lowest priority: with one node and
    a mixed queue, the M application must not leap ahead."""
    _, ctrl, cluster = _controller(pipeline, n_nodes=1)
    ctrl.submit(AppInstance(get_app("svm"), 1 * GB))  # head: reserved
    ctrl.submit(AppInstance(get_app("cf"), 1 * GB))   # M
    ctrl.submit(AppInstance(get_app("st"), 1 * GB))   # I
    ctrl.run()
    order = [r.spec.instance.code for r in sorted(cluster.results, key=lambda r: r.start_time)]
    assert order.index("st") < order.index("cf")


def test_decisions_logged(pipeline):
    _, ctrl, cluster = _controller(pipeline)
    ctrl.submit(AppInstance(get_app("wc"), 1 * GB))
    ctrl.submit(AppInstance(get_app("st"), 1 * GB))
    ctrl.run()
    assert len(ctrl.decisions) == 2
    assert all("start" in d for d in ctrl.decisions)


def test_staggered_arrivals(pipeline):
    _, ctrl, cluster = _controller(pipeline, n_nodes=1)
    ctrl.submit(AppInstance(get_app("wc"), 1 * GB), arrival_time=0.0)
    ctrl.submit(AppInstance(get_app("st"), 1 * GB), arrival_time=30.0)
    ctrl.run()
    st = next(r for r in cluster.results if r.spec.instance.code == "st")
    assert st.start_time >= 30.0


def test_negative_arrival_rejected(pipeline):
    _, ctrl, _ = _controller(pipeline)
    with pytest.raises(ValueError):
        ctrl.submit(AppInstance(get_app("wc"), 1 * GB), arrival_time=-1.0)


def test_cluster_edp_positive(pipeline):
    _, ctrl, cluster = _controller(pipeline)
    for code in ("st", "st", "wc", "wc"):
        ctrl.submit(AppInstance(get_app(code), 1 * GB))
    ctrl.run()
    assert cluster.edp() > 0
    assert cluster.total_energy() > 0


@pytest.mark.hetero
def test_hetero_roster_ranks_empty_nodes_by_class_edp(pipeline):
    from repro.hardware import roster_from_classes

    stp, classifier = pipeline
    cluster = ClusterEngine(roster=roster_from_classes(("xeon", "atom")))
    ctrl = ECoSTController(cluster, stp, classifier)
    ctrl.submit(AppInstance(get_app("wc"), 1 * GB))
    order = ctrl._empty_node_order(cluster)
    assert sorted(e.node_id for e in order) == [0, 1]
    # On a homogeneous cluster the order is the untouched id-order list.
    homo = ClusterEngine(n_nodes=2)
    ctrl_homo = ECoSTController(homo, stp, classifier)
    ctrl_homo.submit(AppInstance(get_app("wc"), 1 * GB))
    assert ctrl_homo._empty_node_order(homo) is homo.nodes


@pytest.mark.hetero
def test_hetero_roster_runs_all_jobs_to_completion(pipeline):
    from repro.hardware import roster_from_classes

    stp, classifier = pipeline
    cluster = ClusterEngine(roster=roster_from_classes(("atom", "xeon")))
    ctrl = ECoSTController(cluster, stp, classifier)
    for code in ("svm", "st", "wc", "nb"):
        ctrl.submit(AppInstance(get_app(code), 1 * GB))
    results = ctrl.run()
    assert len(results) == 4
    assert cluster.makespan > 0
    assert not ctrl.queue
