"""Property-based guarantees of the streaming service's admission layer.

Mirrors ``test_invariants_property.py``: every test is a property over
many generated cases (hypothesis when available, a seeded
``parametrize`` sweep otherwise).  The properties the service must
hold under any seeded multi-tenant request stream:

* **conservation** — every accepted job completes exactly once after a
  drain; no accepted job is ever dropped, no job completes unaccepted;
* **rate limits are never exceeded** — per tenant, a reference
  token-bucket replay over the acks matches the service's decisions,
  and every ``(t, t + w]`` window holds at most ``burst + rate * w``
  accepted jobs;
* **queue-depth bound** — a tenant's in-flight count never exceeds
  ``max_inflight`` (checked via the high-water mark);
* **determinism** — re-running the same stream against a fresh service
  yields the identical accept/reject/reason sequence and identical
  engine results;
* **admission isolation (fairness)** — a tenant's decisions are a
  function of its own traffic only: mixing in a greedy second tenant
  does not change the first tenant's accept/reject pattern.
"""

from __future__ import annotations

import pytest

from repro.service import ClusterService, ServiceConfig, seeded_requests
from repro.service.admission import (
    REJECT_CAPACITY,
    REJECT_QUEUE_DEPTH,
    REJECT_RATE_LIMIT,
    TokenBucket,
)
from repro.utils.rng import rng_from

try:
    from hypothesis import given
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on bare boxes only
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.service


def seeded_cases(n: int):
    """Hypothesis integers (profile depth) or a fixed seed sweep."""

    def deco(fn):
        if HAVE_HYPOTHESIS:
            return given(case_seed=st.integers(min_value=0, max_value=2**31 - 1))(fn)
        return pytest.mark.parametrize("case_seed", range(n))(fn)

    return deco


# -------------------------------------------------------- generators
def _case(case_seed: int):
    """One (config, requests) service scenario derived from a seed."""
    rng = rng_from(case_seed)
    n_jobs = int(rng.integers(10, 60))
    n_tenants = int(rng.integers(1, 4))
    # Mean interarrival spans saturated (0.5 s) to idle (30 s) regimes.
    mean_ia = float(rng.uniform(0.5, 30.0))
    config = ServiceConfig(
        n_nodes=int(rng.integers(1, 5)),
        rate_per_s=float(rng.choice([0.05, 0.2, 1.0, float("inf")])),
        burst=float(rng.choice([1.0, 2.0, 8.0, 64.0])),
        max_inflight=int(rng.choice([1, 3, 10, 1_000_000])),
        max_pending=int(rng.choice([2, 8, 10_000_000])),
    )
    requests = seeded_requests(
        n_jobs,
        seed=int(rng.integers(2**31)),
        tenants=tuple(f"t{i}" for i in range(n_tenants)),
        mean_interarrival_s=mean_ia,
    )
    return config, requests


def _run(config: ServiceConfig, requests: list[dict]):
    service = ClusterService(config)
    acks = [service.submit_request(req) for req in requests]
    summary = service.drain()
    return service, acks, summary


# -------------------------------------------------------- properties
@seeded_cases(40)
def test_no_accepted_job_is_dropped(case_seed):
    config, requests = _case(case_seed)
    service, acks, summary = _run(config, requests)
    accepted_ids = [a["job_id"] for a in acks if a.get("accepted")]
    completed_ids = [r.spec.job_id for r in service.results]
    # Exactly once, and nothing completes that was not accepted.
    assert sorted(completed_ids) == sorted(accepted_ids)
    assert summary["accepted"] == len(accepted_ids)
    assert summary["completed"] == len(accepted_ids)
    assert summary["inflight"] == 0


@seeded_cases(40)
def test_rate_limit_never_exceeded(case_seed):
    config, requests = _case(case_seed)
    _service, acks, _summary = _run(config, requests)
    rate, burst = config.rate_per_s, config.burst
    # Reference replay: an independent bucket fed only this tenant's
    # *accepted* times must have had a token at each accept.
    per_tenant: dict[str, list[float]] = {}
    for req, ack in zip(requests, acks):
        if ack.get("accepted"):
            per_tenant.setdefault(req["tenant"], []).append(ack["time"])
    for times in per_tenant.values():
        if rate != float("inf"):
            reference = TokenBucket(rate, burst)
            for t in times:
                assert reference.try_take(t), (
                    "service accepted a job its own rate limit forbids"
                )
        # Window bound: any (t, t+w] window holds <= burst + rate * w.
        for i, t0 in enumerate(times):
            in_window = [t for t in times[i:] if t <= t0 + 10.0]
            bound = burst + (0 if rate == float("inf") else rate * 10.0)
            if rate != float("inf"):
                assert len(in_window) <= bound + 1e-9


@seeded_cases(30)
def test_queue_depth_bound_holds(case_seed):
    config, requests = _case(case_seed)
    service, _acks, _summary = _run(config, requests)
    for tenant in service.tenants:
        assert tenant.inflight_highwater <= config.max_inflight
        assert tenant.inflight == 0
        assert tenant.submitted == tenant.accepted + tenant.rejected
        assert sum(tenant.rejections_by_reason.values()) == tenant.rejected
        assert set(tenant.rejections_by_reason) <= {
            REJECT_CAPACITY, REJECT_QUEUE_DEPTH, REJECT_RATE_LIMIT,
        }


@seeded_cases(25)
def test_rejection_is_deterministic_per_seed(case_seed):
    config, requests = _case(case_seed)
    _service1, acks1, summary1 = _run(config, requests)
    _service2, acks2, summary2 = _run(config, requests)
    assert acks1 == acks2
    assert summary1 == summary2


@seeded_cases(25)
def test_admission_isolation_across_tenants(case_seed):
    """Tenant "solo"'s decisions don't change when "greedy" joins.

    Holds for the *rate limiter*: a tenant's bucket is a function of
    its own accept history only.  The depth caps are deliberately left
    slack — ``max_pending`` is a shared resource by design, and
    ``max_inflight`` couples tenants indirectly through cluster
    contention (a co-running tenant shifts completion times, hence
    in-flight counts) — so the property is stated for the admission
    layer that promises isolation.
    """
    rng = rng_from(case_seed)
    config = ServiceConfig(
        n_nodes=2,
        rate_per_s=float(rng.choice([0.05, 0.5, 2.0])),
        burst=float(rng.choice([1.0, 4.0])),
    )
    solo = seeded_requests(
        int(rng.integers(5, 30)),
        seed=int(rng.integers(2**31)),
        tenants=("solo",),
        mean_interarrival_s=float(rng.uniform(0.5, 10.0)),
    )
    greedy = seeded_requests(
        int(rng.integers(5, 30)),
        seed=int(rng.integers(2**31)),
        tenants=("greedy",),
        mean_interarrival_s=0.2,
        job_ids_from=10_000,
    )
    merged = sorted(solo + greedy, key=lambda r: r["time"])

    _svc_a, acks_alone, _ = _run(config, solo)
    _svc_b, acks_mixed, _ = _run(config, merged)
    mixed_solo = [
        (ack.get("accepted"), ack.get("reason"))
        for req, ack in zip(merged, acks_mixed)
        if req["tenant"] == "solo"
    ]
    alone = [(a.get("accepted"), a.get("reason")) for a in acks_alone]
    assert mixed_solo == alone


# ------------------------------------------------- long-horizon drift
def _few_examples(fn):
    """Cap hypothesis depth: each example simulates >= 1e6 seconds."""
    if HAVE_HYPOTHESIS:
        from hypothesis import settings

        return settings(max_examples=8, deadline=None)(fn)
    return fn


@seeded_cases(8)
@_few_examples
def test_token_bucket_no_float_drift_over_long_horizons(case_seed):
    """Over >= 1e6 simulated seconds of nominally admissible traffic
    (every gap is an exact multiple of the refill period, so a token
    is always due), accumulated float error in the incremental refill
    must never cause a rejection — the ``_TOKEN_EPS`` guard — and the
    bucket must never hold more than ``burst`` tokens."""
    rng = rng_from(case_seed)
    rate = float(rng.uniform(0.05, 0.3))
    burst = float(rng.choice([1.0, 4.0, 64.0]))
    bucket = TokenBucket(rate, burst)
    period = 1.0 / rate
    t = 0.0
    horizon = 1e6
    while t < horizon:
        # Gaps of k full refill periods, k >= 1: always admissible.
        t += float(rng.integers(1, 4)) * period
        assert bucket.try_take(t), (
            f"admissible request rejected at t={t:.3f} "
            f"(rate={rate}, tokens={bucket.tokens!r})"
        )
        assert bucket.tokens <= burst + 1e-9
    assert t >= horizon


@seeded_cases(8)
def test_token_bucket_burst_cap_after_long_idle(case_seed):
    """An arbitrarily long idle stretch refills to exactly ``burst``:
    the cap cannot creep and the (burst+1)-th immediate take fails."""
    rng = rng_from(case_seed)
    rate = float(rng.uniform(0.05, 0.3))
    burst = float(rng.integers(1, 6))
    bucket = TokenBucket(rate, burst)
    t = float(rng.uniform(1.0, 10.0))
    bucket.try_take(t)  # disturb the full-bucket initial state
    t += 5e6  # idle far past the refill horizon
    for _ in range(int(burst)):
        assert bucket.try_take(t)
        assert bucket.tokens <= burst
    assert not bucket.try_take(t)
