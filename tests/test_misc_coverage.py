"""Edge-case coverage for small APIs not exercised elsewhere."""

import numpy as np
import pytest

from repro.core.stp import MLMSTP, describe_instance
from repro.mapreduce.job import JobResult, JobSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.costmodel import serial_pair_edp, standalone_metrics
from repro.baselines.mapping import PolicyOutcome
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance, AppProfile
from repro.workloads.registry import get_app


class TestSimConstants:
    def test_with_creates_modified_copy(self):
        c = DEFAULT_CONSTANTS.with_(task_overhead_s=2.0)
        assert c.task_overhead_s == 2.0
        assert c is not DEFAULT_CONSTANTS
        assert DEFAULT_CONSTANTS.task_overhead_s != 2.0

    def test_validation_on_copy(self):
        with pytest.raises(ValueError):
            DEFAULT_CONSTANTS.with_(task_overhead_s=-1.0)

    def test_fraction_fields_validated(self):
        with pytest.raises(ValueError):
            SimConstants(shuffle_reread_fraction=1.5)
        with pytest.raises(ValueError):
            SimConstants(remote_shuffle_fraction=-0.1)


class TestJobRecords:
    def test_wait_time_and_duration(self):
        spec = JobSpec(
            instance=AppInstance(get_app("wc"), 1 * GB),
            config=JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=4),
            submit_time=10.0,
        )
        result = JobResult(
            spec=spec, node_id=0, start_time=25.0, finish_time=125.0,
            energy_joules=4000.0,
        )
        assert result.wait_time == 15.0
        assert result.duration == 100.0

    def test_job_ids_unique_and_increasing(self):
        cfg = JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=1)
        inst = AppInstance(get_app("wc"), 1 * GB)
        a = JobSpec(instance=inst, config=cfg)
        b = JobSpec(instance=inst, config=cfg)
        assert b.job_id > a.job_id

    def test_label_mentions_app_and_config(self):
        cfg = JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=1)
        spec = JobSpec(instance=AppInstance(get_app("st"), 5 * GB), config=cfg)
        assert "st@5GB" in spec.label and "2.4GHz" in spec.label


class TestAppProfile:
    def test_disk_bytes_accounting(self):
        p = AppProfile(
            instructions_per_byte=100, ipc0=1.0, llc_mpki0=1.0,
            icache_mpki=1.0, branch_mpki=1.0,
            read_factor=1.0, spill_factor=0.5, shuffle_factor=0.25,
            output_factor=0.25,
        )
        assert p.disk_bytes_per_input_byte == pytest.approx(2.0)
        assert p.cpi0 == pytest.approx(1.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            AppProfile(
                instructions_per_byte=0, ipc0=1.0, llc_mpki0=1.0,
                icache_mpki=1.0, branch_mpki=1.0,
            )
        with pytest.raises(ValueError):
            AppProfile(
                instructions_per_byte=1, ipc0=1.0, llc_mpki0=1.0,
                icache_mpki=1.0, branch_mpki=1.0, io_overlap=1.5,
            )


class TestPolicyOutcome:
    def test_edp_property(self):
        out = PolicyOutcome(policy="X", n_nodes=2, makespan=10.0, energy=100.0)
        assert out.edp == 1000.0
        assert out.details == ()


class TestSerialPairEdp:
    def test_matches_manual_composition(self):
        wc = get_app("wc").profile
        st = get_app("st").profile
        a = standalone_metrics(wc, 1 * GB, 2.4 * GHZ, 256 * MB, 4)
        b = standalone_metrics(st, 1 * GB, 2.4 * GHZ, 256 * MB, 4)
        expected = (float(a.energy) + float(b.energy)) * (
            float(a.duration) + float(b.duration)
        )
        assert float(serial_pair_edp(a, b)) == pytest.approx(expected)


class TestMlmOptions:
    def test_projection_can_be_disabled(self, small_dataset):
        stp = MLMSTP("lr", project_features=False).fit(small_dataset)
        a = describe_instance(AppInstance(get_app("nb"), 1 * GB))
        feat = a.reduced()
        assert np.allclose(stp._project(feat, a.data_bytes), feat)

    def test_projection_snaps_to_training_rows(self, small_dataset):
        stp = MLMSTP("lr").fit(small_dataset)
        a = describe_instance(AppInstance(get_app("nb"), 1 * GB))
        projected = stp._project(a.reduced(), a.data_bytes)
        found = any(
            np.allclose(projected, row) for row in stp.train_features_
        )
        assert found

    def test_custom_factory_callable(self, small_dataset):
        from repro.ml.linreg import LinearRegression

        def my_factory():
            return LinearRegression(ridge=1.0)

        stp = MLMSTP(my_factory).fit(small_dataset)
        assert stp.model_kind == "my_factory"
        a = describe_instance(AppInstance(get_app("nb"), 1 * GB))
        cfg_a, cfg_b = stp.predict_configs(a, a)
        assert cfg_a.n_mappers + cfg_b.n_mappers == 8


class TestJobMetricsScalar:
    def test_scalar_accessor(self):
        jm = standalone_metrics(
            get_app("wc").profile, 1 * GB, 2.4 * GHZ, 256 * MB, 4
        )
        assert jm.scalar("duration") == float(np.asarray(jm.duration))
        assert jm.scalar("power") > 0
