"""Simulated-perf tests."""

import numpy as np
import pytest

from repro.telemetry.perf import PMU_EVENTS, PerfSampler
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


@pytest.fixture(scope="module")
def inst():
    return AppInstance(get_app("wc"), 5 * GB)


def _sample(inst, seed=0, noise=0.15, duration=None):
    return PerfSampler(noise_sigma=noise).sample(
        inst, 2.4 * GHZ, 256 * MB, 8, seed=seed, duration_s=duration
    )


def test_all_events_reported(inst):
    report = _sample(inst)
    for group in PMU_EVENTS:
        for event in group:
            assert event in report.counts
            assert report.counts[event] >= 0


def test_multiplexing_fraction(inst):
    report = _sample(inst)
    assert report.enabled_fraction == pytest.approx(1 / len(PMU_EVENTS))


def test_ipc_close_to_model_truth(inst):
    report = _sample(inst, noise=0.0)
    # Noise-free sampling recovers the cost model's effective IPC.
    assert 0.5 < report.ipc < 1.1


def test_mpki_matches_profile_without_noise(inst):
    report = _sample(inst, noise=0.0)
    assert report.mpki("LLC-load-misses") == pytest.approx(
        inst.profile.llc_mpki0, rel=0.05
    )
    assert report.mpki("branch-misses") == pytest.approx(
        inst.profile.branch_mpki, rel=0.05
    )


def test_noise_shrinks_with_longer_windows(inst):
    short = [
        _sample(inst, seed=s, duration=4.0).mpki("LLC-load-misses") for s in range(25)
    ]
    long = [
        _sample(inst, seed=s, duration=64.0).mpki("LLC-load-misses") for s in range(25)
    ]
    assert np.std(long) < np.std(short)


def test_deterministic_by_seed(inst):
    a = _sample(inst, seed=3).counts
    b = _sample(inst, seed=3).counts
    assert a == b


def test_invalid_window(inst):
    with pytest.raises(ValueError):
        _sample(inst, duration=0.0)


def test_negative_noise_rejected():
    with pytest.raises(ValueError):
        PerfSampler(noise_sigma=-0.1)
