"""Self-tuning prediction tests (on the small fixture pipeline)."""

import numpy as np
import pytest

from repro.core.stp import (
    AppDescriptor,
    LkTSTP,
    MLMSTP,
    SoloSTP,
    basin_select,
    describe_instance,
    pair_code,
)
from repro.hardware.node import ATOM_C2758
from repro.model.costmodel import pair_metrics
from repro.model.sweep import sweep_pair, sweep_solo
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import get_app


def test_pair_code_canonical():
    assert pair_code(AppClass.MEMORY, AppClass.COMPUTE) == "C-M"
    assert pair_code(AppClass.IO, AppClass.IO) == "I-I"


def test_describe_instance_defaults_to_true_class():
    d = describe_instance(AppInstance(get_app("st"), 5 * GB))
    assert d.app_class is AppClass.IO
    assert d.data_bytes == 5 * GB
    assert d.reduced().shape == (7,)


def test_describe_instance_accepts_classifier_output():
    d = describe_instance(AppInstance(get_app("st"), 5 * GB), AppClass.HYBRID)
    assert d.app_class is AppClass.HYBRID


class TestBasinSelect:
    def test_picks_central_point_of_flat_basin(self):
        pred = np.array([1.0, 0.0, 0.0, 0.0, 1.0])
        knobs = np.arange(5.0)[:, None]
        assert basin_select(pred, knobs) == 2

    def test_unique_minimum_selected(self):
        pred = np.array([3.0, 1.0, 2.0])
        knobs = np.arange(3.0)[:, None]
        assert basin_select(pred, knobs) == 1

    def test_eps_widens_basin(self):
        pred = np.array([0.0, 0.01, 0.02, 5.0])
        knobs = np.arange(4.0)[:, None]
        assert basin_select(pred, knobs, eps=0.001) == 0
        assert basin_select(pred, knobs, eps=0.05) == 1  # median of {0,1,2}


class TestLkT:
    def test_predicts_valid_configs(self, small_database):
        stp = LkTSTP(small_database)
        a = describe_instance(AppInstance(get_app("nb"), 5 * GB))
        b = describe_instance(AppInstance(get_app("km"), 5 * GB))
        cfg_a, cfg_b = stp.predict_configs(a, b)
        cfg_a.validate_for(ATOM_C2758)
        cfg_b.validate_for(ATOM_C2758)
        assert cfg_a.n_mappers + cfg_b.n_mappers <= ATOM_C2758.n_cores

    def test_known_pair_recovers_oracle_config(self, small_database):
        """Looking up a pair that is literally in the database returns
        its stored optimum (sizes and classes match exactly and the
        class pair has a unique app combo)."""
        stp = LkTSTP(small_database)
        a = describe_instance(AppInstance(get_app("wc"), 5 * GB))
        b = describe_instance(AppInstance(get_app("fp"), 5 * GB))
        cfg_a, cfg_b = stp.predict_configs(a, b)
        sweep = sweep_pair(
            AppInstance(get_app("wc"), 5 * GB), AppInstance(get_app("fp"), 5 * GB)
        )
        oa, ob = sweep.best_configs
        assert (cfg_a, cfg_b) == (oa, ob)

    def test_orientation_consistency(self, small_database):
        stp = LkTSTP(small_database)
        a = describe_instance(AppInstance(get_app("wc"), 1 * GB))
        b = describe_instance(AppInstance(get_app("fp"), 5 * GB))
        ab = stp.predict_configs(a, b)
        ba = stp.predict_configs(b, a)
        assert ab == (ba[1], ba[0])


class TestMLM:
    @pytest.fixture(scope="class")
    def fitted(self, small_dataset):
        return MLMSTP("reptree").fit(small_dataset)

    def test_predicts_valid_partition(self, fitted):
        a = describe_instance(AppInstance(get_app("nb"), 5 * GB))
        b = describe_instance(AppInstance(get_app("cf"), 5 * GB))
        cfg_a, cfg_b = fitted.predict_configs(a, b)
        assert cfg_a.n_mappers + cfg_b.n_mappers == ATOM_C2758.n_cores

    def test_orientation_consistency(self, fitted):
        a = describe_instance(AppInstance(get_app("nb"), 1 * GB))
        b = describe_instance(AppInstance(get_app("cf"), 5 * GB))
        ab = fitted.predict_configs(a, b)
        ba = fitted.predict_configs(b, a)
        assert ab == (ba[1], ba[0])

    def test_selection_close_to_oracle_for_known_pair(self, fitted):
        a_inst = AppInstance(get_app("st"), 5 * GB)
        b_inst = AppInstance(get_app("wc"), 5 * GB)
        sweep = sweep_pair(a_inst, b_inst)
        cfg_a, cfg_b = fitted.predict_configs(
            describe_instance(a_inst), describe_instance(b_inst)
        )
        pm = pair_metrics(
            a_inst.profile, a_inst.data_bytes,
            cfg_a.frequency, cfg_a.block_size, cfg_a.n_mappers,
            b_inst.profile, b_inst.data_bytes,
            cfg_b.frequency, cfg_b.block_size, cfg_b.n_mappers,
        )
        err = (float(pm.edp) - sweep.best_edp) / sweep.best_edp
        assert err < 0.35

    def test_unfitted_raises(self):
        stp = MLMSTP("lr")
        a = describe_instance(AppInstance(get_app("nb"), 1 * GB))
        with pytest.raises(RuntimeError):
            stp.predict_configs(a, a)

    def test_unknown_model_kind(self):
        with pytest.raises(ValueError, match="unknown model kind"):
            MLMSTP("forest")

    def test_invalid_scope(self):
        with pytest.raises(ValueError, match="scope"):
            MLMSTP("lr", scope="everything")

    def test_per_class_scope_trains_submodels(self, small_dataset):
        stp = MLMSTP("lr", scope="per-class").fit(small_dataset)
        assert stp.models_
        assert set(stp.models_) == set(small_dataset.class_pairs)


class TestSoloSTP:
    def test_predicts_reasonable_solo_config(self, small_training_instances):
        stp = SoloSTP("reptree").fit(small_training_instances)
        inst = AppInstance(get_app("wc"), 5 * GB)
        cfg = stp.predict_config(describe_instance(inst))
        cfg.validate_for(ATOM_C2758)
        sweep = sweep_solo(inst)
        from repro.model.costmodel import standalone_metrics

        jm = standalone_metrics(
            inst.profile, inst.data_bytes, cfg.frequency, cfg.block_size, cfg.n_mappers
        )
        err = (float(jm.edp) - sweep.best_edp) / sweep.best_edp
        assert err < 0.5

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SoloSTP("lr").predict_config(
                describe_instance(AppInstance(get_app("wc"), 1 * GB))
            )
