"""Edge-case backfill for :mod:`repro.analysis` and :mod:`repro.utils`.

The coverage audit for the heterogeneity PR flagged these two packages
as the weakest: the happy paths are exercised end to end by the
pipeline tests, but the validation branches, unfitted-use errors and
formatting corner cases were not.  This file covers exactly those
branches (and funds the 85 → 87 coverage-gate raise in CI).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.correlation import CorrelationReport, pearson_matrix
from repro.analysis.hcluster import (
    AgglomerativeClustering,
    fcluster_by_count,
    representatives,
)
from repro.analysis.pca import PCA
from repro.utils.rng import (
    derive_rng,
    iter_seeds,
    rng_from,
    spawn_rngs,
    stable_hash,
)
from repro.utils.tables import render_series, render_table
from repro.utils.units import GB, KB, MB, fmt_bytes, fmt_duration, fmt_freq
from repro.utils.validation import (
    check_fraction_sum,
    check_in,
    check_positive,
    check_probability,
)

# Two well-separated planar blobs plus one distant outlier — every
# linkage agrees on the 2- and 3-cluster cuts, so correctness checks
# are linkage-independent while still exercising each update rule.
_BLOBS = np.array(
    [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1],
     [5.0, 5.0], [5.1, 5.0],
     [20.0, -20.0]]
)


# -------------------------------------------------------------- hcluster
class TestAgglomerativeClustering:
    def test_invalid_linkage_rejected(self):
        with pytest.raises(ValueError, match="linkage must be one of"):
            AgglomerativeClustering(linkage="ward")

    def test_fit_input_validation(self):
        model = AgglomerativeClustering()
        with pytest.raises(ValueError, match="2-D"):
            model.fit(np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError, match="at least 2 samples"):
            model.fit(np.array([[1.0, 2.0]]))

    def test_labels_for_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            AgglomerativeClustering().labels_for(2)

    @pytest.mark.parametrize("linkage", ["average", "single", "complete"])
    def test_every_linkage_recovers_the_blobs(self, linkage):
        model = AgglomerativeClustering(linkage=linkage).fit(_BLOBS)
        assert len(model.merges_) == len(_BLOBS) - 1
        labels = model.labels_for(3)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert len({labels[0], labels[3], labels[5]}) == 3
        # The two-cluster cut isolates the outlier from everything else.
        two = model.labels_for(2)
        assert two[5] != two[0] and len(set(two[:5].tolist())) == 1

    def test_extreme_cuts(self):
        model = AgglomerativeClustering().fit(_BLOBS)
        assert len(set(model.labels_for(1).tolist())) == 1
        assert sorted(model.labels_for(len(_BLOBS)).tolist()) == list(range(6))

    def test_fcluster_bounds(self):
        model = AgglomerativeClustering().fit(_BLOBS)
        for bad in (0, 7):
            with pytest.raises(ValueError, match=r"n_clusters must be in"):
                fcluster_by_count(model.merges_, len(_BLOBS), bad)

    def test_representatives_one_per_cluster(self):
        labels = np.array([0, 0, 0, 1, 1, 2])
        reps = representatives(_BLOBS, labels)
        assert len(reps) == 3
        assert [labels[r] for r in reps] == [0, 1, 2]
        assert reps[2] == 5  # singleton cluster represents itself


# ------------------------------------------------------------------- pca
class TestPCA:
    def test_ctor_and_fit_validation(self):
        with pytest.raises(ValueError, match="n_components must be >= 1"):
            PCA(n_components=0)
        with pytest.raises(ValueError, match="2-D"):
            PCA().fit(np.ones(5))
        with pytest.raises(ValueError, match="at least 2 samples"):
            PCA().fit(np.ones((1, 3)))
        with pytest.raises(ValueError, match="exceeds min"):
            PCA(n_components=4).fit(rng_from(0).normal(size=(3, 5)))
        with pytest.raises(ValueError, match="zero variance"):
            PCA().fit(np.ones((4, 3)))

    def test_unfitted_use_rejected(self):
        pca = PCA()
        for call in (
            lambda: pca.transform(np.ones((2, 2))),
            lambda: pca.inverse_transform(np.ones((2, 2))),
            lambda: pca.feature_loadings(0),
        ):
            with pytest.raises(RuntimeError, match="not fitted"):
                call()

    def test_full_rank_inverse_round_trips(self):
        X = rng_from(7).normal(size=(20, 4))
        pca = PCA().fit(X)
        np.testing.assert_allclose(
            pca.inverse_transform(pca.transform(X)), X, atol=1e-10
        )
        assert pca.explained_variance_ratio_.sum() == pytest.approx(1.0)

    def test_truncated_fit_keeps_k_components(self):
        X = rng_from(7).normal(size=(20, 4))
        pca = PCA(n_components=2).fit(X)
        assert pca.components_.shape == (2, 4)
        assert pca.transform(X).shape == (20, 2)
        # Lossy reconstruction still lands back in feature space.
        assert pca.inverse_transform(pca.transform(X)).shape == X.shape

    def test_feature_loadings_bounds(self):
        pca = PCA(n_components=2).fit(rng_from(7).normal(size=(10, 3)))
        assert pca.feature_loadings(1).shape == (3,)
        for bad in (-1, 2):
            with pytest.raises(IndexError, match="out of range"):
                pca.feature_loadings(bad)


# ----------------------------------------------------------- correlation
class TestCorrelation:
    def test_pearson_matrix_validation(self):
        with pytest.raises(ValueError, match="2-D with at least 2 rows"):
            pearson_matrix(np.ones(4))
        with pytest.raises(ValueError, match="2-D with at least 2 rows"):
            pearson_matrix(np.ones((1, 4)))

    def test_constant_columns_zeroed_with_unit_diagonal(self):
        x = np.linspace(0.0, 1.0, 8)
        X = np.column_stack([x, -2.0 * x, np.full(8, 3.0)])
        corr = pearson_matrix(X)
        assert corr[0, 1] == pytest.approx(-1.0)
        assert corr[0, 2] == corr[2, 1] == 0.0
        np.testing.assert_array_equal(np.diag(corr), np.ones(3))

    def _report(self):
        return CorrelationReport(
            feature_names=("ipc", "llc_miss", "mem_bw"),
            outcome_names=("runtime", "power"),
            outcome_corr=np.array([[-0.9, 0.2], [0.95, 0.1], [0.3, 0.8]]),
            feature_corr=np.array(
                [[1.0, -0.92, 0.1], [-0.92, 1.0, 0.2], [0.1, 0.2, 1.0]]
            ),
            redundancy_threshold=0.9,
        )

    def test_redundant_pairs_sorted_by_strength(self):
        report = self._report()
        assert report.redundant_pairs() == [("ipc", "llc_miss", -0.92)]
        none = CorrelationReport(
            feature_names=report.feature_names,
            outcome_names=report.outcome_names,
            outcome_corr=report.outcome_corr,
            feature_corr=np.eye(3),
            redundancy_threshold=0.9,
        )
        assert none.redundant_pairs() == []

    def test_best_single_indicator_uses_absolute_value(self):
        report = self._report()
        assert report.best_single_indicator("runtime") == ("llc_miss", 0.95)
        assert report.best_single_indicator("power") == ("mem_bw", 0.8)
        with pytest.raises(ValueError):
            report.best_single_indicator("edp")

    def test_render_covers_both_tables(self):
        text = self._report().render()
        assert "Feature ↔ outcome" in text
        assert "Redundant counter pairs" in text
        assert "llc_miss" in text
        empty = text.replace("llc_miss", "x")
        assert empty  # render is pure text; no exceptions either way


# ------------------------------------------------------------------- rng
class TestRngHelpers:
    def test_rng_from_passthrough_and_default(self):
        gen = np.random.default_rng(5)
        assert rng_from(gen) is gen
        assert rng_from(None).integers(100) == rng_from(0).integers(100)

    def test_spawn_rngs_validation_and_independence(self):
        with pytest.raises(ValueError, match="cannot spawn"):
            spawn_rngs(0, -1)
        assert spawn_rngs(0, 0) == []
        a, b = spawn_rngs(3, 2)
        assert a.integers(2**30) != b.integers(2**30)
        # Spawning from a Generator reads its seed sequence, not state.
        kids = spawn_rngs(np.random.default_rng(3), 2)
        assert len(kids) == 2

    def test_stable_hash_is_stable_and_separates(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)
        assert stable_hash("a", "b") != stable_hash("ab")
        assert 0 <= stable_hash("x") < 2**63

    def test_derive_rng_keyed_streams(self):
        assert derive_rng(0, "a").integers(2**30) == derive_rng(
            0, "a"
        ).integers(2**30)
        assert derive_rng(0, "a").integers(2**30) != derive_rng(
            0, "b"
        ).integers(2**30)
        # Generator base: one draw from the base keys the child.
        child = derive_rng(np.random.default_rng(1), "a")
        assert child.integers(2**30) >= 0

    def test_iter_seeds_orders_and_keys_by_label(self):
        seeds = iter_seeds(0, ["x", "y"])
        assert list(seeds) == ["x", "y"]
        assert seeds["x"].integers(2**30) == derive_rng(0, "x").integers(2**30)


# ---------------------------------------------------------------- tables
class TestTables:
    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="row 1 has 1 cells, expected 2"):
            render_table(["a", "b"], [[1, 2], [3]])

    def test_table_formats_floats_bools_and_title(self):
        text = render_table(
            ["name", "ok", "v"],
            [["x", True, 1.25]],
            title="T",
            floatfmt=".1f",
        )
        lines = text.splitlines()
        assert lines[0] == "T" and set(lines[1]) == {"="}
        assert "True" in text and "1.2" in text

    def test_render_series_validation(self):
        with pytest.raises(ValueError, match="no series to render"):
            render_series({})
        with pytest.raises(ValueError, match="length differs"):
            render_series({"a": [1.0, 2.0], "b": [1.0]})
        with pytest.raises(ValueError, match="x_labels length"):
            render_series({"a": [1.0, 2.0]}, x_labels=["only-one"])

    def test_render_series_default_x_labels(self):
        text = render_series({"a": [1.0, 2.0]}, x_name="step")
        assert text.splitlines()[0].startswith("step")
        assert "\n0" in text and "\n1" in text


# ------------------------------------------------------------ validation
class TestValidation:
    def test_check_positive_strict_and_lax(self):
        assert check_positive("x", 2.0) == 2.0
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError, match=r"p must be in \[0, 1\]"):
                check_probability("p", bad)

    def test_check_in(self):
        assert check_in("mode", "fast", {"fast", "slow"}) == "fast"
        with pytest.raises(ValueError, match="mode must be one of"):
            check_in("mode", "warp", {"fast", "slow"})

    def test_check_fraction_sum(self):
        check_fraction_sum("w", [0.25, 0.75])
        check_fraction_sum("w", [0.5, 0.5, 1.0], total=2.0)
        with pytest.raises(ValueError, match="w must sum to 1.0"):
            check_fraction_sum("w", [0.5, 0.6])


# ----------------------------------------------------------------- units
class TestUnits:
    def test_fmt_bytes_every_suffix(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(1536) == "1.5KB"
        assert fmt_bytes(256 * MB) == "256MB"
        assert fmt_bytes(3 * GB) == "3GB"
        assert fmt_bytes(-2 * KB) == "-2KB"

    def test_fmt_freq_both_bands(self):
        assert fmt_freq(2.4e9) == "2.4GHz"
        assert fmt_freq(800e6) == "800MHz"

    def test_fmt_duration_every_band(self):
        assert fmt_duration(5e-6) == "5us"
        assert fmt_duration(0.25) == "250ms"
        assert fmt_duration(90.0) == "90s"
        assert fmt_duration(600.0) == "10min"
        assert fmt_duration(10800.0) == "3h"
        assert fmt_duration(-90.0) == "-90s"
