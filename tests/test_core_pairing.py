"""Pairing decision-tree tests."""

import pytest

from repro.core.pairing import CLASS_PRIORITY, PairingPolicy, derive_priority, priority_of
from repro.core.wait_queue import QueuedApp, WaitQueue
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import get_app


def qa(code, cls):
    return QueuedApp(
        instance=AppInstance(get_app(code), 1 * GB), app_class=cls, arrival_time=0.0
    )


def test_paper_priority_order():
    """§5 Step 2: I first, then H/C, M last."""
    assert CLASS_PRIORITY[AppClass.IO] > CLASS_PRIORITY[AppClass.HYBRID]
    assert CLASS_PRIORITY[AppClass.HYBRID] >= CLASS_PRIORITY[AppClass.COMPUTE]
    assert CLASS_PRIORITY[AppClass.COMPUTE] > CLASS_PRIORITY[AppClass.MEMORY]


def test_priority_of_defaults():
    assert priority_of(AppClass.IO) == CLASS_PRIORITY[AppClass.IO]


def test_choose_partner_prefers_io():
    policy = PairingPolicy()
    q = WaitQueue()
    m = qa("fp", AppClass.MEMORY)
    i = qa("st", AppClass.IO)
    q.push(m)
    q.push(i)
    got = policy.choose_partner(q, AppClass.COMPUTE)
    assert got is i


def test_choose_partner_empty_node_takes_head():
    policy = PairingPolicy()
    q = WaitQueue()
    m = qa("fp", AppClass.MEMORY)
    i = qa("st", AppClass.IO)
    q.push(m)
    q.push(i)
    got = policy.choose_partner(q, None)
    assert got is m  # reservation: head starts first


def test_choose_partner_empty_queue():
    assert PairingPolicy().choose_partner(WaitQueue(), AppClass.IO) is None
    assert PairingPolicy().choose_partner(WaitQueue(), None) is None


def test_rank_classes():
    order = PairingPolicy().rank_classes()
    assert order[0] is AppClass.IO
    assert order[-1] is AppClass.MEMORY


def test_derive_priority_from_fig5_data():
    """Feed a synthetic Fig. 5 table shaped like the paper's and check
    the derived decision tree ranks I > H > C > M."""
    C, H, I, M = AppClass.COMPUTE, AppClass.HYBRID, AppClass.IO, AppClass.MEMORY
    table = {
        (I, I): 1.0, (H, I): 2.0, (C, I): 3.0,
        (H, H): 4.0, (C, H): 5.0, (C, C): 6.0,
        (I, M): 7.0, (H, M): 8.0, (C, M): 9.0, (M, M): 10.0,
    }
    prio = derive_priority(table)
    assert prio[I] > prio[H] > prio[C] > prio[M]


def test_derive_priority_missing_pair():
    with pytest.raises(KeyError):
        derive_priority({(AppClass.IO, AppClass.IO): 1.0,
                         (AppClass.MEMORY, AppClass.MEMORY): 2.0})


def test_derive_priority_empty():
    with pytest.raises(ValueError):
        derive_priority({})


def test_reproduction_fig5_derives_paper_tree():
    """End-to-end: our own Fig. 5 sweep data yields the paper's tree."""
    from repro.experiments.fig5_priority import run_fig5

    report = run_fig5()
    C, H, I, M = AppClass.COMPUTE, AppClass.HYBRID, AppClass.IO, AppClass.MEMORY
    assert report.priority[I] > report.priority[H]
    assert report.priority[H] >= report.priority[C]
    assert report.priority[C] > report.priority[M]
