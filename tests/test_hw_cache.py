"""Shared-cache contention model tests."""

import numpy as np
import pytest

from repro.hardware.cache import SharedCacheModel


@pytest.fixture
def cache():
    return SharedCacheModel()


def test_partition_proportional(cache):
    shares = cache.partition([1.0, 3.0])
    assert shares[0] == pytest.approx(0.25)
    assert shares[1] == pytest.approx(0.75)
    assert sum(shares) == pytest.approx(1.0)


def test_partition_zero_pressure_gets_floor(cache):
    shares = cache.partition([0.0, 1.0])
    assert shares[0] > 0
    assert sum(shares) == pytest.approx(1.0)


def test_partition_all_zero_splits_evenly(cache):
    shares = cache.partition([0.0, 0.0, 0.0])
    assert shares == pytest.approx([1 / 3] * 3)


def test_partition_empty(cache):
    assert cache.partition([]) == []


def test_partition_negative_rejected(cache):
    with pytest.raises(ValueError):
        cache.partition([-0.1, 1.0])


def test_mpki_inflation_full_share_is_one(cache):
    assert float(cache.mpki_inflation(1.0, 0.5)) == pytest.approx(1.0)


def test_mpki_inflation_monotone_in_lost_capacity(cache):
    shares = np.array([0.8, 0.5, 0.2, 0.1])
    infl = cache.mpki_inflation(shares, 0.5)
    assert np.all(np.diff(infl) > 0)


def test_mpki_inflation_clamped(cache):
    assert float(cache.mpki_inflation(0.01, 2.0)) == pytest.approx(cache.max_inflation)


def test_mpki_inflation_zero_alpha_insensitive(cache):
    assert float(cache.mpki_inflation(0.1, 0.0)) == pytest.approx(1.0)


def test_mpki_inflation_invalid_share(cache):
    with pytest.raises(ValueError):
        cache.mpki_inflation(0.0, 0.5)
    with pytest.raises(ValueError):
        cache.mpki_inflation(1.5, 0.5)


def test_allocate_end_to_end(cache):
    allocs = cache.allocate([2.0, 2.0], [0.3, 0.6])
    assert len(allocs) == 2
    assert allocs[0].share_fraction == pytest.approx(0.5)
    # Same share, higher alpha -> more inflation.
    assert allocs[1].mpki_scale > allocs[0].mpki_scale
    assert allocs[0].share_bytes == pytest.approx(cache.capacity_bytes / 2)


def test_allocate_length_mismatch(cache):
    with pytest.raises(ValueError):
        cache.allocate([1.0], [0.2, 0.3])


def test_constructor_validation():
    with pytest.raises(ValueError):
        SharedCacheModel(capacity_bytes=0)
    with pytest.raises(ValueError):
        SharedCacheModel(max_inflation=0.5)
