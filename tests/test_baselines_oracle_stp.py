"""OraclePairSTP tests."""

import pytest

from repro.baselines.oracle_stp import OraclePairSTP
from repro.core.stp import describe_instance
from repro.model.sweep import sweep_pair
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


@pytest.fixture(scope="module")
def oracle():
    instances = [
        AppInstance(get_app(code), 1 * GB) for code in ("st", "wc", "fp")
    ]
    return (
        OraclePairSTP().register_workload(instances, describe_instance),
        instances,
    )


def test_returns_true_oracle_configs(oracle):
    stp, instances = oracle
    a, b = instances[0], instances[1]
    cfg_a, cfg_b = stp.predict_configs(
        describe_instance(a), describe_instance(b)
    )
    expected = sweep_pair(a, b).best_configs
    assert (cfg_a, cfg_b) == expected


def test_orientation_preserved_when_swapped(oracle):
    stp, instances = oracle
    a, b = instances[0], instances[2]
    ab = stp.predict_configs(describe_instance(a), describe_instance(b))
    ba = stp.predict_configs(describe_instance(b), describe_instance(a))
    assert ab == (ba[1], ba[0])


def test_caches_sweeps(oracle):
    stp, instances = oracle
    a, b = instances[0], instances[1]
    stp.predict_configs(describe_instance(a), describe_instance(b))
    n = len(stp._cache)
    stp.predict_configs(describe_instance(b), describe_instance(a))
    assert len(stp._cache) == n  # same unordered pair, no new sweep


def test_unregistered_raises():
    stp = OraclePairSTP()
    d = describe_instance(AppInstance(get_app("wc"), 1 * GB))
    with pytest.raises(RuntimeError):
        stp.predict_configs(d, d)
