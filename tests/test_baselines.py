"""ILAO / COLAO / mapping-policy tests."""

import numpy as np
import pytest

from repro.baselines.colao import colao_best
from repro.baselines.ilao import ilao_best, ilao_pair_edp
from repro.baselines.mapping import (
    DEFAULT_UNTUNED_CONFIG,
    POLICIES,
    _min_cost_matching,
    evaluate_policy,
)
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


@pytest.fixture(scope="module")
def small_workload():
    codes = ["wc", "st", "ts", "fp", "wc", "st", "gp", "st"]
    return [AppInstance(get_app(c), 1 * GB) for c in codes]


class TestOracles:
    def test_ilao_best_is_minimum_of_sweep(self):
        r = ilao_best(AppInstance(get_app("st"), 5 * GB))
        assert r.edp == pytest.approx(r.sweep.best_edp)
        assert r.power == pytest.approx(r.energy / r.duration)

    def test_ilao_pair_is_serial_composition(self):
        a = ilao_best(AppInstance(get_app("st"), 1 * GB))
        b = ilao_best(AppInstance(get_app("wc"), 1 * GB))
        assert ilao_pair_edp(a, b) == pytest.approx(
            (a.energy + b.energy) * (a.duration + b.duration)
        )

    def test_colao_best_partitions_cores(self):
        r = colao_best(
            AppInstance(get_app("st"), 1 * GB), AppInstance(get_app("wc"), 1 * GB)
        )
        m1, m2 = r.partition()
        assert m1 + m2 == 8
        assert r.edp == pytest.approx(r.sweep.best_edp)


class TestMatching:
    def test_exact_on_hand_computable_instance(self):
        cost = np.array(
            [
                [0, 1, 10, 10],
                [1, 0, 10, 10],
                [10, 10, 0, 2],
                [10, 10, 2, 0],
            ],
            dtype=float,
        )
        pairs = {frozenset(p) for p in _min_cost_matching(cost)}
        assert pairs == {frozenset({0, 1}), frozenset({2, 3})}

    def test_matches_brute_force_on_random_instances(self):
        from itertools import permutations

        rng = np.random.default_rng(0)
        for _ in range(5):
            n = 6
            cost = rng.uniform(1, 10, size=(n, n))
            cost = (cost + cost.T) / 2
            np.fill_diagonal(cost, 0)
            pairs = _min_cost_matching(cost)
            got = sum(cost[i, j] for i, j in pairs)
            best = np.inf
            for perm in permutations(range(n)):
                if any(perm[i] > perm[i + 1] for i in range(0, n, 2)):
                    continue
                total = sum(cost[perm[i], perm[i + 1]] for i in range(0, n, 2))
                best = min(best, total)
            assert got == pytest.approx(best)

    def test_odd_count_rejected(self):
        with pytest.raises(ValueError):
            _min_cost_matching(np.zeros((3, 3)))


class TestPolicies:
    def test_untuned_defaults_are_stock(self):
        assert DEFAULT_UNTUNED_CONFIG["frequency"] == 1.2 * GHZ
        assert DEFAULT_UNTUNED_CONFIG["block_size"] == 64 * MB

    @pytest.mark.parametrize("policy", ["SM", "MNM1", "MNM2", "SNM", "CBM", "UB"])
    def test_untrained_policies_run(self, small_workload, policy):
        out = evaluate_policy(policy, small_workload, 2)
        assert out.policy == policy
        assert out.makespan > 0
        assert out.energy > 0
        assert out.edp == pytest.approx(out.energy * out.makespan)

    def test_tuned_policies_require_components(self, small_workload):
        with pytest.raises(ValueError, match="components"):
            evaluate_policy("PTM", small_workload, 2)
        with pytest.raises(ValueError, match="components"):
            evaluate_policy("ECoST", small_workload, 2)

    def test_unknown_policy(self, small_workload):
        with pytest.raises(ValueError, match="unknown policy"):
            evaluate_policy("RANDOM", small_workload, 2)

    def test_empty_workload(self):
        with pytest.raises(ValueError):
            evaluate_policy("SM", [], 2)

    def test_ub_not_worse_than_untuned(self, small_workload):
        ub = evaluate_policy("UB", small_workload, 2)
        for policy in ("SM", "SNM", "CBM"):
            other = evaluate_policy(policy, small_workload, 2)
            assert ub.edp <= other.edp * 1.01

    def test_mnm_degenerates_on_single_node(self, small_workload):
        sm = evaluate_policy("SM", small_workload, 1)
        mnm = evaluate_policy("MNM1", small_workload, 1)
        assert mnm.edp == pytest.approx(sm.edp)

    def test_more_nodes_cut_makespan(self, small_workload):
        one = evaluate_policy("SNM", small_workload, 1)
        four = evaluate_policy("SNM", small_workload, 4)
        assert four.makespan < one.makespan

    def test_policy_registry_order(self):
        assert list(POLICIES) == [
            "SM", "MNM1", "MNM2", "SNM", "CBM", "PTM", "ECoST", "UB",
        ]
