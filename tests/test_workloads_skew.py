"""Deterministic data-skew knob: seeded Zipf split sizes.

Pins the module's three contracts: ``skew=0`` is the identity by
construction (exact uniform weights, no RNG draw, byte-identical
pass-through), skewed apportionment preserves grand totals exactly
with every split floored above the degeneracy threshold, and the whole
law is a pure function of ``(total, n, skew, seed)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.units import GB, MB
from repro.workloads.skew import (
    MIN_SPLIT_FRACTION,
    skew_data_bytes,
    skewed_split_sizes,
    zipf_split_weights,
)

pytestmark = pytest.mark.hetero


class TestZipfWeights:
    def test_skew_zero_is_exactly_uniform(self):
        w = zipf_split_weights(8, skew=0.0)
        assert np.array_equal(w, np.full(8, 1.0 / 8))

    def test_skew_zero_consumes_no_rng(self):
        # Identical for every seed — no RNG state is touched.
        assert np.array_equal(
            zipf_split_weights(5, skew=0.0, seed=0),
            zipf_split_weights(5, skew=0.0, seed=12345),
        )

    def test_weights_normalised_and_seed_deterministic(self):
        a = zipf_split_weights(16, skew=1.2, seed=3)
        b = zipf_split_weights(16, skew=1.2, seed=3)
        assert np.array_equal(a, b)
        assert a.sum() == pytest.approx(1.0)
        assert (a > 0).all()

    def test_seed_moves_the_heavy_split(self):
        positions = {
            int(np.argmax(zipf_split_weights(16, skew=2.0, seed=s)))
            for s in range(12)
        }
        assert len(positions) > 1

    def test_higher_skew_concentrates_mass(self):
        mild = zipf_split_weights(16, skew=0.5, seed=0).max()
        harsh = zipf_split_weights(16, skew=2.5, seed=0).max()
        assert harsh > mild

    def test_validation(self):
        with pytest.raises(ValueError, match="n_splits"):
            zipf_split_weights(0, skew=1.0)
        with pytest.raises(ValueError, match="skew must be >= 0"):
            zipf_split_weights(4, skew=-0.1)


class TestSkewedSplitSizes:
    def test_grand_total_preserved_exactly(self):
        for skew in (0.0, 0.7, 1.2, 3.0):
            sizes = skewed_split_sizes(5 * GB + 17, 13, skew=skew, seed=4)
            assert len(sizes) == 13
            assert sum(sizes) == 5 * GB + 17
            assert min(sizes) >= 1

    def test_floor_keeps_splits_non_degenerate(self):
        sizes = skewed_split_sizes(1 * GB, 10, skew=6.0, seed=0)
        uniform = 1 * GB / 10
        # The floored-then-renormalised weight can land just under the
        # nominal floor; it stays within a factor of two of it.
        assert min(sizes) >= MIN_SPLIT_FRACTION * uniform / 2

    def test_deterministic_in_all_arguments(self):
        a = skewed_split_sizes(256 * MB, 7, skew=1.5, seed=9)
        assert a == skewed_split_sizes(256 * MB, 7, skew=1.5, seed=9)
        assert a != skewed_split_sizes(256 * MB, 7, skew=1.5, seed=10)

    def test_too_few_bytes_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            skewed_split_sizes(3, 4)


class TestSkewDataBytes:
    def test_skew_zero_is_byte_identical_passthrough(self):
        sizes = (1 * GB, 2 * GB, 3 * GB)
        assert skew_data_bytes(sizes, skew=0.0) == sizes
        assert skew_data_bytes(list(sizes), skew=0.0, seed=99) == sizes

    def test_skewed_redistribution_preserves_total(self):
        sizes = (1 * GB, 2 * GB, 3 * GB, 4 * GB)
        out = skew_data_bytes(sizes, skew=1.2, seed=11)
        assert sum(out) == sum(sizes)
        assert out != sizes

    def test_empty_and_invalid_inputs(self):
        assert skew_data_bytes(()) == ()
        with pytest.raises(ValueError, match="positive"):
            skew_data_bytes((1 * GB, 0), skew=1.0)
