"""Argument-validation helper tests."""

import pytest

from repro.utils.validation import (
    check_fraction_sum,
    check_in,
    check_positive,
    check_probability,
)


def test_check_positive_strict():
    assert check_positive("x", 1.0) == 1.0
    with pytest.raises(ValueError, match="x must be > 0"):
        check_positive("x", 0.0)


def test_check_positive_non_strict_allows_zero():
    assert check_positive("x", 0.0, strict=False) == 0.0
    with pytest.raises(ValueError):
        check_positive("x", -1.0, strict=False)


def test_check_probability_bounds():
    assert check_probability("p", 0.0) == 0.0
    assert check_probability("p", 1.0) == 1.0
    with pytest.raises(ValueError):
        check_probability("p", 1.01)
    with pytest.raises(ValueError):
        check_probability("p", -0.01)


def test_check_in():
    assert check_in("k", 2, (1, 2, 3)) == 2
    with pytest.raises(ValueError, match="k must be one of"):
        check_in("k", 4, (1, 2, 3))


def test_check_fraction_sum():
    check_fraction_sum("f", [0.5, 0.5])
    with pytest.raises(ValueError, match="must sum to"):
        check_fraction_sum("f", [0.5, 0.6])
    check_fraction_sum("f", [1.0, 1.0], total=2.0)
