"""Shared fixtures: small, fast artifacts reused across test modules.

Heavyweight pipeline pieces (databases, training datasets, fitted
models) are built once per session from a *reduced* instance set so
the unit suite stays fast; the full-scale variants live behind the
benchmarks.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

try:
    from hypothesis import HealthCheck, settings as _hyp_settings

    # Explicit, derandomized profiles so property-test depth is a lane
    # decision (REPRO_HYPOTHESIS_PROFILE=dev|ci), never a library
    # default: ``dev`` keeps the local/PR suite fast, ``ci`` is the
    # full-matrix depth.  Both are fully deterministic — no flaky
    # random seeds, shrinking still works on failure.
    _COMMON = dict(
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    _hyp_settings.register_profile("dev", max_examples=30, **_COMMON)
    _hyp_settings.register_profile("ci", max_examples=120, **_COMMON)
    _hyp_settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - property tests parametrize instead
    pass

from repro.core.database import build_database
from repro.core.stp import build_training_dataset
from repro.hardware.node import ATOM_C2758
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


@pytest.fixture(scope="session", autouse=True)
def isolated_cache_dir(tmp_path_factory):
    """Point the artifact cache at a throwaway directory for the whole
    suite, so tests never read or write the repo-level ``.repro_cache``
    (a stale or corrupt file there must not be able to flake a test).

    An explicitly pre-set ``REPRO_CACHE_DIR`` is honoured — CI's
    cache-reuse job uses that to run the suite twice against one
    persistent directory.
    """
    preset = os.environ.get("REPRO_CACHE_DIR")
    if preset:
        yield Path(preset)
        return
    path = tmp_path_factory.mktemp("repro-cache")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    os.environ.pop("REPRO_CACHE_DIR", None)


@pytest.fixture(scope="session", autouse=True)
def isolated_workers():
    """Strip ``REPRO_WORKERS`` for the whole suite.

    A developer's exported env must never flip the parallel-path
    selection inside the byte-identity suites (serial vs pool is a
    *test parameter* there, not an inherited setting).  CI's
    worker-pool lane opts back in by setting
    ``REPRO_TEST_KEEP_WORKERS=1`` alongside ``REPRO_WORKERS``.
    """
    if os.environ.get("REPRO_TEST_KEEP_WORKERS"):
        yield
        return
    saved = os.environ.pop("REPRO_WORKERS", None)
    yield
    if saved is not None:
        os.environ["REPRO_WORKERS"] = saved


@pytest.fixture(scope="session", autouse=True)
def isolated_service_env():
    """Strip pre-set ``REPRO_SERVICE_*`` knobs for the whole suite.

    Same rationale as ``isolated_workers``: a developer's exported
    admission limits or scheduler choice must never reshape
    ``ServiceConfig.from_env()`` inside the service suites.  Restored
    on exit so the shell is left as found.
    """
    from repro.service.config import ENV_PREFIX

    saved = {
        key: os.environ.pop(key)
        for key in list(os.environ)
        if key.startswith(ENV_PREFIX)
    }
    yield
    for key, value in saved.items():
        os.environ[key] = value


@pytest.fixture(autouse=True)
def service_env_guard():
    """Snapshot/restore ``REPRO_SERVICE_*`` around every single test.

    Tests that exercise the env-knob path set variables directly; this
    guard guarantees they cannot leak into a later test even on
    assertion failure mid-test.
    """
    from repro.service.config import ENV_PREFIX

    before = {
        key: value for key, value in os.environ.items()
        if key.startswith(ENV_PREFIX)
    }
    yield
    for key in [k for k in os.environ if k.startswith(ENV_PREFIX)]:
        if key not in before:
            del os.environ[key]
    os.environ.update(before)


@pytest.fixture(scope="session")
def node():
    return ATOM_C2758


@pytest.fixture(scope="session")
def small_training_instances():
    """A reduced training set: 4 classes × 2 sizes = 8 instances."""
    return [
        AppInstance(get_app(code), size)
        for code in ("wc", "st", "ts", "fp")
        for size in (1 * GB, 5 * GB)
    ]


@pytest.fixture(scope="session")
def small_database(small_training_instances):
    db, _sweeps = build_database(small_training_instances)
    return db


@pytest.fixture(scope="session")
def small_database_with_sweeps(small_training_instances):
    return build_database(small_training_instances, keep_sweeps=True)


@pytest.fixture(scope="session")
def small_dataset(small_database_with_sweeps, small_training_instances):
    _db, sweeps = small_database_with_sweeps
    return build_training_dataset(
        small_training_instances, sweeps=sweeps, rows_per_pair=200, seed=0
    )
