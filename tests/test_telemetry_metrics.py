"""EDP / energy metric tests."""

import numpy as np
import pytest

from repro.telemetry.metrics import (
    absolute_percentage_error,
    edp,
    edp_from_energy,
    edp_improvement,
    energy_joules,
    relative_error,
)


def test_energy_and_edp_algebra():
    assert float(energy_joules(40.0, 10.0)) == 400.0
    assert float(edp(40.0, 10.0)) == 4000.0
    assert float(edp_from_energy(400.0, 10.0)) == 4000.0


def test_edp_broadcasts():
    out = edp(np.array([10.0, 20.0]), np.array([1.0, 2.0]))
    assert out.tolist() == [10.0, 80.0]


def test_negative_rejected():
    with pytest.raises(ValueError):
        energy_joules(-1.0, 1.0)
    with pytest.raises(ValueError):
        edp_from_energy(1.0, -1.0)


def test_edp_improvement():
    assert float(edp_improvement(200.0, 100.0)) == 2.0
    with pytest.raises(ValueError):
        edp_improvement(1.0, 0.0)


def test_relative_error_percent():
    assert float(relative_error(110.0, 100.0)) == pytest.approx(10.0)
    assert float(relative_error(100.0, 100.0)) == 0.0
    with pytest.raises(ValueError):
        relative_error(1.0, 0.0)


def test_ape():
    assert float(absolute_percentage_error(90.0, 100.0)) == pytest.approx(10.0)
    assert float(absolute_percentage_error(110.0, 100.0)) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        absolute_percentage_error(1.0, 0.0)
