"""Analytic-oracle conformance: engine vs closed forms, to 1e-9.

Every scenario in the degenerate matrix has a closed-form makespan /
energy / EDP computed *independently* of the engine (different code
path, different arithmetic order); the engine must agree within
:data:`repro.conformance.oracles.REL_TOL`.  This file also pins the
dispatcher's refusals — a scenario outside the solvable classes must
return ``None``, never a wrong expectation — and the engine's
conformance snapshot hooks the oracle compares against.
"""

from __future__ import annotations

import pytest

from repro.conformance import (
    Scenario,
    ScenarioJob,
    check_oracle,
    oracle_expectation,
    oracle_matrix,
    run_scenario,
)
from repro.faults.plan import FaultEvent
from repro.hardware.node import ATOM_C2758
from repro.utils.units import GB, GHZ, MB

_MATRIX = oracle_matrix()


def _job(code="wc", t=0.0, *, mappers=2, freq=1.2 * GHZ, size=1 * GB):
    return ScenarioJob(
        code=code, data_bytes=size, frequency=freq,
        block_size=128 * MB, n_mappers=mappers, submit_time=t,
    )


def _ids(scenario: Scenario) -> str:
    jobs = "+".join(
        f"{j.code}{j.data_bytes // GB}g@{j.submit_time:g}" for j in scenario.jobs
    )
    return f"{scenario.n_nodes}n-{jobs}-{scenario.jobs[0].n_mappers}m"


@pytest.mark.parametrize("scenario", _MATRIX, ids=_ids)
def test_matrix_scenario_matches_oracle(scenario):
    expected = oracle_expectation(scenario)
    assert expected is not None, "matrix scenario must be oracle-solvable"
    assert check_oracle(scenario) == []


def test_matrix_exercises_every_solver():
    cases = {oracle_expectation(s).case for s in _MATRIX}
    assert cases == {
        "single", "chain", "pair", "symmetric", "queued-chain", "parallel"
    }


# ------------------------------------------------------------- dispatch
class TestDispatchRefusals:
    """Out-of-class scenarios must yield None, never a wrong closed form."""

    def test_fault_scenario_is_unsolvable(self):
        scenario = Scenario(
            1,
            (_job(),),
            fault_events=(FaultEvent(5.0, "node_crash", 0, severity=1.0, pick=0.5),),
        )
        assert oracle_expectation(scenario) is None
        # And check_oracle treats that as "no oracle", not a failure.
        assert check_oracle(scenario) == []

    def test_three_distinct_simultaneous_jobs_unsolvable(self):
        scenario = Scenario(1, (_job("wc"), _job("st"), _job("km")))
        assert oracle_expectation(scenario) is None

    def test_symmetric_triple_over_cores_unsolvable(self):
        # 3 identical jobs × 3 mappers = 9 > 8 cores: not symmetric-solvable.
        scenario = Scenario(1, tuple(_job(mappers=3) for _ in range(3)))
        assert oracle_expectation(scenario) is None

    def test_overlapping_staggered_submits_unsolvable(self):
        # Second job arrives 1 s in — mid-flight, so no chain closed form.
        scenario = Scenario(1, (_job("wc"), _job("st", t=1.0)))
        assert oracle_expectation(scenario) is None

    def test_spaced_chain_is_solvable(self):
        scenario = Scenario(1, (_job("wc"), _job("st", t=5000.0)))
        expected = oracle_expectation(scenario)
        assert expected is not None and expected.case == "chain"


# ----------------------------------------------------- expectation shape
class TestExpectationFields:
    def test_idle_node_adds_exactly_idle_power(self):
        solo = oracle_expectation(Scenario(1, (_job(),)))
        watched = oracle_expectation(Scenario(2, (_job(),)))
        assert watched.makespan == pytest.approx(solo.makespan, rel=1e-12)
        extra = watched.total_energy - solo.total_energy
        assert extra == pytest.approx(
            ATOM_C2758.power.idle_power * solo.makespan, rel=1e-9
        )

    def test_deferred_arrival_charges_idle_leadin(self):
        now = oracle_expectation(Scenario(1, (_job(),)))
        later = oracle_expectation(Scenario(1, (_job(t=120.0),)))
        assert later.makespan == pytest.approx(now.makespan + 120.0, rel=1e-12)
        assert later.busy_seconds == pytest.approx(now.busy_seconds, rel=1e-12)
        assert later.total_energy - now.total_energy == pytest.approx(
            ATOM_C2758.power.idle_power * 120.0, rel=1e-9
        )

    def test_job_energies_sum_under_total(self):
        expected = oracle_expectation(Scenario(2, (_job("wc"), _job("st")),))
        attributed = sum(expected.job_energies.values())
        assert 0.0 < attributed <= expected.total_energy
        assert expected.edp == pytest.approx(
            expected.total_energy * expected.makespan, rel=1e-12
        )

    def test_symmetric_jobs_share_energy_equally(self):
        expected = oracle_expectation(
            Scenario(1, tuple(_job(mappers=1) for _ in range(3)))
        )
        assert expected.case == "symmetric"
        energies = list(expected.job_energies.values())
        assert len(energies) == 3
        assert max(energies) == pytest.approx(min(energies), rel=1e-12)


# ------------------------------------------------------- snapshot hooks
class TestConformanceSnapshots:
    def test_cluster_snapshot_shape(self):
        run = run_scenario(Scenario(2, (_job(),)))
        snap = run.cluster.conformance_snapshot()
        assert snap["n_results"] == 1
        assert snap["pending"] == []
        assert snap["makespan"] == run.makespan
        assert [n["node_id"] for n in snap["nodes"]] == [0, 1]

    def test_idle_node_snapshot_is_empty(self):
        run = run_scenario(Scenario(2, (_job(),)))
        busy_node, idle_node = run.cluster.conformance_snapshot()["nodes"]
        assert busy_node["busy_seconds"] > 0.0
        assert busy_node["completed"] == 1
        assert idle_node["busy_seconds"] == 0.0
        assert idle_node["busy_energy"] == 0.0
        assert idle_node["completed"] == 0
        assert idle_node["running_labels"] == []

    def test_snapshot_tracks_generation_and_liveness(self):
        run = run_scenario(Scenario(1, (_job(),)))
        node = run.cluster.conformance_snapshot()["nodes"][0]
        assert node["alive"] is True
        assert node["down_intervals"] == []
        # One submit and one completion: two membership changes.
        assert node["generation"] == 2


def test_oracle_detects_an_injected_disagreement():
    """A knowingly-wrong expectation must produce named failure messages."""
    scenario = Scenario(1, (_job(),))
    messages = check_oracle(scenario, rel_tol=1e-15)
    # At 1e-15 the rounding-order difference between oracle and engine
    # arithmetic may or may not surface; loosening to the contract
    # tolerance must always be clean.
    assert check_oracle(scenario) == []
    assert all(m.startswith("oracle:") for m in messages)
