"""Sweep-harness tests."""

import numpy as np
import pytest

from repro.model.sweep import sweep_pair, sweep_solo
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


@pytest.fixture(scope="module")
def solo():
    return sweep_solo(AppInstance(get_app("st"), 5 * GB))


@pytest.fixture(scope="module")
def pair():
    return sweep_pair(
        AppInstance(get_app("st"), 5 * GB), AppInstance(get_app("wc"), 5 * GB)
    )


class TestSolo:
    def test_covers_160_configs(self, solo):
        assert len(solo.edp) == 160

    def test_best_is_minimum(self, solo):
        assert solo.best_edp == pytest.approx(float(solo.edp.min()))
        assert solo.edp[solo.best_index] == solo.best_edp

    def test_best_config_consistent_with_index(self, solo):
        cfg = solo.best_config
        i = solo.best_index
        assert cfg.frequency == solo.freq[i]
        assert cfg.block_size == int(solo.block[i])
        assert cfg.n_mappers == int(solo.mappers[i])

    def test_config_at_arbitrary_index(self, solo):
        cfg = solo.config_at(0)
        cfg.validate_for(__import__("repro.hardware.node", fromlist=["ATOM_C2758"]).ATOM_C2758)


class TestPair:
    def test_covers_2800_configs(self, pair):
        assert len(pair.edp) == 2800

    def test_best_configs_partition_cores(self, pair):
        ca, cb = pair.best_configs
        assert ca.n_mappers + cb.n_mappers == 8

    def test_best_for_partition(self, pair):
        idx, edp = pair.best_for_partition(4, 4)
        assert pair.mappers_a[idx] == 4 and pair.mappers_b[idx] == 4
        assert edp >= pair.best_edp

    def test_best_for_partition_unknown(self, pair):
        with pytest.raises(ValueError):
            pair.best_for_partition(7, 7)

    def test_custom_partitions(self):
        sw = sweep_pair(
            AppInstance(get_app("st"), 1 * GB),
            AppInstance(get_app("wc"), 1 * GB),
            partitions=[(2, 6), (6, 2)],
        )
        assert len(sw.edp) == 800
        assert set(np.unique(sw.mappers_a)) == {2.0, 6.0}
