"""Mutant self-verification: the checks are themselves under test.

Each deliberately broken engine variant must be (a) behaviourally
different from the healthy engine, (b) caught by the fuzzer within a
small budget, (c) shrunk to at most two jobs with a runnable pytest
repro, and (d) fully reverted on context exit.  Plus the top-level
``run_conformance`` report and the ``python -m repro`` wiring.
"""

from __future__ import annotations

import pytest

from repro.conformance import MUTANTS, Scenario, ScenarioJob, run_conformance
from repro.conformance.mutants import (
    dropped_idle_energy,
    off_by_one_waves,
    stale_cache_reuse,
)
from repro.conformance.runner import MAX_SHRUNK_JOBS, self_verify
from repro.conformance.scenarios import run_scenario
from repro.utils.units import GB, GHZ, MB


def _job(code="wc", t=0.0):
    return ScenarioJob(
        code=code, data_bytes=1 * GB, frequency=1.2 * GHZ,
        block_size=128 * MB, n_mappers=2, submit_time=t,
    )


# -------------------------------------------- mutants change behaviour
class TestMutantsAreObservable:
    def test_off_by_one_waves_inflates_makespan(self):
        scenario = Scenario(1, (_job(),))
        healthy = run_scenario(scenario).makespan
        with off_by_one_waves():
            mutated = run_scenario(scenario).makespan
        assert mutated > healthy

    def test_dropped_idle_energy_needs_idle_time_to_show(self):
        # Fully-packed single node: no idle second exists, the defect is
        # invisible — exactly the blind spot documented in the module.
        packed = Scenario(1, (_job(),))
        healthy_packed = run_scenario(packed).total_energy
        idle = Scenario(2, (_job(),))
        healthy_idle = run_scenario(idle).total_energy
        with dropped_idle_energy():
            assert run_scenario(packed).total_energy == pytest.approx(
                healthy_packed, rel=1e-12
            )
            assert run_scenario(idle).total_energy < healthy_idle

    def test_stale_cache_reuse_corrupts_colocated_runs(self):
        pair = Scenario(1, (_job("wc"), _job("st")))
        healthy = run_scenario(pair).makespan
        with stale_cache_reuse():
            mutated = run_scenario(pair).makespan
        assert mutated != healthy

    def test_stale_cache_invisible_to_a_cold_single_job(self):
        solo = Scenario(1, (_job(),))
        healthy = run_scenario(solo).makespan
        with stale_cache_reuse():
            assert run_scenario(solo).makespan == healthy


def test_mutants_restore_bindings_on_exit():
    from repro.mapreduce import engine as engine_mod

    before = (
        engine_mod.standalone_metrics_scalar,
        engine_mod.NodeEngine.energy_between,
        engine_mod.RecontextCache.get,
    )
    for factory in MUTANTS.values():
        with factory():
            pass
    after = (
        engine_mod.standalone_metrics_scalar,
        engine_mod.NodeEngine.energy_between,
        engine_mod.RecontextCache.get,
    )
    assert after == before


def test_mutants_restore_even_on_exception():
    from repro.mapreduce import engine as engine_mod

    original = engine_mod.standalone_metrics_scalar
    with pytest.raises(RuntimeError, match="boom"):
        with off_by_one_waves():
            raise RuntimeError("boom")
    assert engine_mod.standalone_metrics_scalar is original


# ------------------------------------------------------- self-verify
def test_self_verify_catches_every_mutant():
    verdicts = self_verify(budget=60, seed=7)
    assert [v.mutant for v in verdicts] == list(MUTANTS)
    for v in verdicts:
        assert v.ok, v.describe()
        assert v.detected
        assert 1 <= v.shrunk_jobs <= MAX_SHRUNK_JOBS
        assert "def test_fuzz_regression" in v.pytest_source
        assert v.healthy_passes
        assert "ok" in v.describe()


def test_stale_cache_minimal_repro_needs_two_jobs():
    verdicts = {v.mutant: v for v in self_verify(budget=60, seed=7)}
    assert verdicts["off-by-one-waves"].shrunk_jobs == 1
    assert verdicts["stale-cache-reuse"].shrunk_jobs == 2


# --------------------------------------------------- run_conformance
def test_run_conformance_full_battery():
    report = run_conformance(with_self_verify=True, self_verify_budget=60, seed=7)
    assert report.ok, report.describe()
    assert report.oracle_scenarios > 100
    assert not report.oracle_failures
    assert not report.relation_failures
    # Every registered relation applied somewhere on the registry.
    assert all(count > 0 for count in report.relation_applicable.values())
    assert len(report.verdicts) == len(MUTANTS)
    text = report.describe()
    assert "conformance: PASS" in text
    assert f"self-verify: {len(MUTANTS)} mutant(s)" in text


def test_run_conformance_reports_a_live_defect():
    with off_by_one_waves():
        report = run_conformance(codes=("wc",))
    assert not report.ok
    assert report.oracle_failures
    assert "conformance: FAIL" in report.describe()


def test_run_conformance_subset_of_codes_is_fast_and_green():
    report = run_conformance(codes=("wc", "st", "km"))
    assert report.ok, report.describe()


# ----------------------------------------------------------------- CLI
class TestCli:
    def test_conform_command(self, capsys):
        from repro.__main__ import main

        assert main(["conform"]) == 0
        out = capsys.readouterr().out
        assert "conformance: PASS" in out

    def test_fuzz_command(self, capsys):
        from repro.__main__ import main

        assert main(["fuzz", "--budget", "20", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "20/20 scenarios clean" in out
