"""Wait-queue tests: FIFO order, reservation, leap-forward."""

import pytest

from repro.core.wait_queue import QueuedApp, WaitQueue
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import get_app


def qa(code="wc", cls=AppClass.COMPUTE, t=0.0):
    return QueuedApp(
        instance=AppInstance(get_app(code), 1 * GB), app_class=cls, arrival_time=t
    )


def test_fifo_order():
    q = WaitQueue()
    first, second = qa("wc"), qa("st", AppClass.IO)
    q.push(first)
    q.push(second)
    assert q.head is first
    assert q.pop_head() is first
    assert q.pop_head() is second


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        WaitQueue().pop_head()


def test_select_without_leap_takes_head():
    q = WaitQueue()
    head = qa("fp", AppClass.MEMORY)
    better = qa("st", AppClass.IO)
    q.push(head)
    q.push(better)
    got = q.select(lambda item: 1.0 if item.app_class is AppClass.IO else 0.0,
                   allow_leap=False)
    assert got is head  # reservation: FIFO wins without leap permission


def test_select_with_leap_prefers_score():
    q = WaitQueue()
    head = qa("fp", AppClass.MEMORY)
    better = qa("st", AppClass.IO)
    q.push(head)
    q.push(better)
    got = q.select(lambda item: 1.0 if item.app_class is AppClass.IO else 0.0,
                   allow_leap=True)
    assert got is better
    assert q.head is head  # head still queued, reservation intact


def test_select_tie_goes_fifo():
    q = WaitQueue()
    a, b = qa("wc"), qa("wc")
    q.push(a)
    q.push(b)
    assert q.select(lambda _: 1.0, allow_leap=True) is a


def test_select_empty_returns_none():
    assert WaitQueue().select(lambda _: 0.0, allow_leap=True) is None


def test_peek_best_does_not_remove():
    q = WaitQueue()
    a = qa("st", AppClass.IO)
    q.push(qa("wc"))
    q.push(a)
    got = q.peek_best(lambda item: 1.0 if item.app_class is AppClass.IO else 0.0)
    assert got is a
    assert len(q) == 2


def test_iteration_and_len():
    q = WaitQueue()
    items = [qa(), qa(), qa()]
    for item in items:
        q.push(item)
    assert list(q) == items
    assert len(q) == 3
