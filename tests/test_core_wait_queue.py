"""Wait-queue tests: FIFO order, reservation, leap-forward."""

import pytest

from repro.core.wait_queue import QueuedApp, WaitQueue
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import get_app


def qa(code="wc", cls=AppClass.COMPUTE, t=0.0):
    return QueuedApp(
        instance=AppInstance(get_app(code), 1 * GB), app_class=cls, arrival_time=t
    )


def test_fifo_order():
    q = WaitQueue()
    first, second = qa("wc"), qa("st", AppClass.IO)
    q.push(first)
    q.push(second)
    assert q.head is first
    assert q.pop_head() is first
    assert q.pop_head() is second


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        WaitQueue().pop_head()


def test_select_without_leap_takes_head():
    q = WaitQueue()
    head = qa("fp", AppClass.MEMORY)
    better = qa("st", AppClass.IO)
    q.push(head)
    q.push(better)
    got = q.select(lambda item: 1.0 if item.app_class is AppClass.IO else 0.0,
                   allow_leap=False)
    assert got is head  # reservation: FIFO wins without leap permission


def test_select_with_leap_prefers_score():
    q = WaitQueue()
    head = qa("fp", AppClass.MEMORY)
    better = qa("st", AppClass.IO)
    q.push(head)
    q.push(better)
    got = q.select(lambda item: 1.0 if item.app_class is AppClass.IO else 0.0,
                   allow_leap=True)
    assert got is better
    assert q.head is head  # head still queued, reservation intact


def test_select_tie_goes_fifo():
    q = WaitQueue()
    a, b = qa("wc"), qa("wc")
    q.push(a)
    q.push(b)
    assert q.select(lambda _: 1.0, allow_leap=True) is a


def test_select_empty_returns_none():
    assert WaitQueue().select(lambda _: 0.0, allow_leap=True) is None


def test_peek_best_does_not_remove():
    q = WaitQueue()
    a = qa("st", AppClass.IO)
    q.push(qa("wc"))
    q.push(a)
    got = q.peek_best(lambda item: 1.0 if item.app_class is AppClass.IO else 0.0)
    assert got is a
    assert len(q) == 2


def test_iteration_and_len():
    q = WaitQueue()
    items = [qa(), qa(), qa()]
    for item in items:
        q.push(item)
    assert list(q) == items
    assert len(q) == 3


def test_peek_best_respects_allow_leap():
    q = WaitQueue()
    head = qa("wc", AppClass.COMPUTE)
    best = qa("st", AppClass.IO)
    q.push(head)
    q.push(best)
    pref = lambda item: 1.0 if item.app_class is AppClass.IO else 0.0
    # Without leaping the head reservation holds: peek must show the
    # head, exactly as select would pop it.
    assert q.peek_best(pref, allow_leap=False) is head
    assert q.peek_best(pref, allow_leap=True) is best
    assert len(q) == 2  # peeking never removes


def test_peek_best_agrees_with_select():
    for allow_leap in (False, True):
        q = WaitQueue()
        q.push(qa("wc", AppClass.COMPUTE, t=0.0))
        q.push(qa("km", AppClass.MEMORY, t=1.0))
        q.push(qa("st", AppClass.IO, t=2.0))
        pref = lambda item: {"C": 0.0, "M": 2.0, "I": 1.0}[item.app_class.value]
        peeked = q.peek_best(pref, allow_leap=allow_leap)
        popped = q.select(pref, allow_leap=allow_leap)
        assert peeked is popped


def test_peek_best_empty_returns_none():
    q = WaitQueue()
    assert q.peek_best(lambda item: 0.0, allow_leap=False) is None
    assert q.peek_best(lambda item: 0.0, allow_leap=True) is None


def test_deque_backend_preserves_fifo_under_mixed_ops():
    # Interleave pushes, head pops, and leap removals; the surviving
    # order must be exactly the FIFO order minus the removed items.
    q = WaitQueue()
    items = [qa("wc", AppClass.COMPUTE, t=float(i)) for i in range(8)]
    for item in items[:5]:
        q.push(item)
    assert q.pop_head() is items[0]
    taken = q.select(lambda it: it.arrival_time, allow_leap=True)
    assert taken is items[4]  # highest arrival_time wins the leap
    for item in items[5:]:
        q.push(item)
    assert list(q) == [items[1], items[2], items[3], items[5], items[6], items[7]]
