"""Counter-correlation analysis tests."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    CorrelationReport,
    correlate_with_outcomes,
    pearson_matrix,
)
from repro.analysis.features import build_feature_matrix
from repro.utils.units import GB
from repro.workloads.registry import ALL_APPS, instances_for


class TestPearsonMatrix:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        X = np.column_stack([x, 2 * x + 1, -x])
        corr = pearson_matrix(X)
        assert corr[0, 1] == pytest.approx(1.0)
        assert corr[0, 2] == pytest.approx(-1.0)
        assert np.allclose(np.diag(corr), 1.0)

    def test_independent_columns_near_zero(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 2))
        corr = pearson_matrix(X)
        assert abs(corr[0, 1]) < 0.15

    def test_constant_column_zeroed(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        corr = pearson_matrix(X)
        assert corr[0, 1] == 0.0
        assert corr[0, 0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson_matrix(np.zeros(5))
        with pytest.raises(ValueError):
            pearson_matrix(np.zeros((1, 3)))


class TestCorrelationReport:
    @pytest.fixture(scope="class")
    def report(self) -> CorrelationReport:
        fm = build_feature_matrix(instances_for(ALL_APPS, sizes=(5 * GB,)), seed=0)
        return correlate_with_outcomes(fm)

    def test_shapes(self, report):
        assert report.outcome_corr.shape == (14, 3)
        assert report.feature_corr.shape == (14, 14)

    def test_known_physical_correlations(self, report):
        """LLC MPKI must correlate positively with tuned runtime — the
        memory wall — and CPUuser with power draw."""
        names = list(report.feature_names)
        runtime = list(report.outcome_names).index("runtime")
        power = list(report.outcome_names).index("power")
        assert report.outcome_corr[names.index("llc_mpki"), runtime] > 0.3
        assert report.outcome_corr[names.index("cpu_user"), power] > 0.3

    def test_redundant_pairs_found(self, report):
        """The counters the paper's clustering merges show up as
        redundant here too (e.g. dcache vs llc MPKI)."""
        pairs = {frozenset((a, b)) for a, b, _r in report.redundant_pairs()}
        assert frozenset(("dcache_mpki", "llc_mpki")) in pairs

    def test_best_single_indicator(self, report):
        name, r = report.best_single_indicator("log_edp")
        assert name in report.feature_names
        assert abs(r) <= 1.0

    def test_render(self, report):
        text = report.render()
        assert "Pearson" in text and "Redundant" in text
