"""ASCII table/series rendering tests."""

import pytest

from repro.utils.tables import render_series, render_table


def test_render_table_alignment_and_title():
    out = render_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert set(lines[1]) == {"="}
    assert "a" in lines[2] and "bb" in lines[2]
    assert "2.500" in out  # default float format


def test_render_table_ragged_row_rejected():
    with pytest.raises(ValueError, match="row 0"):
        render_table(["a", "b"], [[1]])


def test_render_table_custom_floatfmt():
    out = render_table(["x"], [[3.14159]], floatfmt=".1f")
    assert "3.1" in out and "3.14" not in out


def test_render_series_basic():
    out = render_series({"s1": [1.0, 2.0], "s2": [3.0, 4.0]}, x_labels=["a", "b"])
    assert "s1" in out and "s2" in out and "a" in out


def test_render_series_length_mismatch():
    with pytest.raises(ValueError, match="length differs"):
        render_series({"s1": [1.0], "s2": [1.0, 2.0]})


def test_render_series_empty_rejected():
    with pytest.raises(ValueError, match="no series"):
        render_series({})


def test_render_series_xlabel_mismatch():
    with pytest.raises(ValueError, match="x_labels"):
        render_series({"s": [1.0, 2.0]}, x_labels=["only-one"])
