"""DVFS governor tests."""

import pytest

from repro.hardware.governor import DvfsGovernor
from repro.utils.units import GHZ


def test_powersave_pins_lowest():
    gov = DvfsGovernor(kind="powersave")
    assert gov.frequency == pytest.approx(1.2 * GHZ)
    gov.observe(1.0)
    assert gov.frequency == pytest.approx(1.2 * GHZ)


def test_performance_pins_highest():
    gov = DvfsGovernor(kind="performance")
    assert gov.frequency == pytest.approx(2.4 * GHZ)
    gov.observe(0.0)
    assert gov.frequency == pytest.approx(2.4 * GHZ)


class TestOndemand:
    def test_jumps_to_max_on_load(self):
        gov = DvfsGovernor(kind="ondemand")
        assert gov.frequency == pytest.approx(1.2 * GHZ)
        gov.observe(0.95)
        assert gov.frequency == pytest.approx(2.4 * GHZ)

    def test_steps_down_when_idle(self):
        gov = DvfsGovernor(kind="ondemand")
        gov.observe(1.0)
        gov.observe(0.05)
        assert gov.frequency == pytest.approx(2.0 * GHZ)
        gov.observe(0.05)
        assert gov.frequency == pytest.approx(1.6 * GHZ)

    def test_holds_in_the_middle_band(self):
        gov = DvfsGovernor(kind="ondemand")
        gov.observe(1.0)
        gov.observe(0.5)  # between thresholds: no change
        assert gov.frequency == pytest.approx(2.4 * GHZ)

    def test_settle_busy_app_reaches_max(self):
        gov = DvfsGovernor(kind="ondemand")
        assert gov.settle(0.9) == pytest.approx(2.4 * GHZ)

    def test_settle_light_app_stays_low(self):
        gov = DvfsGovernor(kind="ondemand")
        # 10% demand at max frequency = 20% at 1.2 GHz: stays put.
        assert gov.settle(0.10) == pytest.approx(1.2 * GHZ)

    def test_settle_feedback_accounts_for_clock(self):
        """35% demand at 2.4 GHz reads as 70% at 1.2 GHz — below the
        up-threshold, so ondemand idles at the bottom; this is why a
        mostly-I/O microserver ships at low clocks (the [NT] baseline)."""
        gov = DvfsGovernor(kind="ondemand")
        assert gov.settle(0.35) == pytest.approx(1.2 * GHZ)


def test_validation():
    with pytest.raises(ValueError):
        DvfsGovernor(kind="turbo")
    with pytest.raises(ValueError):
        DvfsGovernor(up_threshold=0.2, down_threshold=0.5)
    gov = DvfsGovernor()
    with pytest.raises(ValueError):
        gov.observe(1.5)
