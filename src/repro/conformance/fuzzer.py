"""Seeded scenario fuzzer with greedy shrinking and pytest emission.

A random walk over (workload, data size, block size, mappers,
frequency, arrival times, fault plan) space.  Every generated scenario
is executed under the full conformance check battery
(:func:`run_checks`: analytic oracle where solvable, every registered
metamorphic relation, and "the engine must not raise"); the first
failing scenario is greedily shrunk — fewer jobs, fewer nodes, fewer
fault events, simpler knobs — while preserving the *same named check
failure*, and the minimal scenario is rendered as a paste-ready pytest
case so a fuzzer catch becomes a committed regression test in one
copy-paste (see ``docs/TESTING.md``).

Everything is derived from the seed: ``fuzz(budget=N, seed=S)`` is a
pure function of (N, S, engine behaviour) — re-running a reported seed
reproduces the walk exactly.
"""

from __future__ import annotations

import random
import traceback
from dataclasses import dataclass, field, replace

from repro.conformance.oracles import check_oracle
from repro.conformance.relations import RELATIONS, check_relations
from repro.conformance.scenarios import Scenario, ScenarioJob
from repro.faults.plan import FAULT_KINDS, FaultEvent
from repro.utils.units import GB, GHZ, MB
from repro.workloads.registry import ALL_APPS

_FREQUENCIES = (1.2 * GHZ, 1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ)
_BLOCKS = (64 * MB, 128 * MB, 256 * MB, 512 * MB)
_NODE_CLASS_NAMES = ("atom", "xeon")
#: Fraction of oracle-shaped draws annotated with an explicit roster.
_ROSTER_PROB = 0.25
_MAX_SHRINK_ROUNDS = 64


@dataclass(frozen=True)
class Failure:
    """One named check failure on one scenario."""

    check: str  # e.g. "oracle:makespan", "relation:permute-job-ids"
    message: str


@dataclass
class FuzzReport:
    """Outcome of one fuzzing run."""

    seed: int
    budget: int
    executed: int = 0
    #: First failure found (None: the whole budget ran clean).
    failure: Failure | None = None
    #: The scenario that first triggered :attr:`failure`.
    scenario: Scenario | None = None
    #: Greedily minimised scenario still triggering the same check.
    shrunk: Scenario | None = None
    #: Paste-ready pytest regression test for :attr:`shrunk`.
    pytest_source: str | None = None
    #: Shrink steps accepted, for the log.
    shrink_log: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.failure is None

    def describe(self) -> str:
        if self.ok:
            return (
                f"fuzz: {self.executed}/{self.budget} scenarios clean "
                f"(seed={self.seed})"
            )
        assert self.failure and self.scenario and self.shrunk
        lines = [
            f"fuzz: FAILURE after {self.executed} scenarios (seed={self.seed})",
            f"  check: {self.failure.check}",
            f"  {self.failure.message}",
            f"  shrunk {len(self.scenario.jobs)} job(s)/"
            f"{self.scenario.n_nodes} node(s)/"
            f"{len(self.scenario.fault_events)} fault(s) -> "
            f"{len(self.shrunk.jobs)}/{self.shrunk.n_nodes}/"
            f"{len(self.shrunk.fault_events)}",
            "",
            "paste-ready regression test:",
            "",
            self.pytest_source or "",
        ]
        return "\n".join(lines)


# ------------------------------------------------------------ generation
def _random_job(rng: random.Random, *, submit_time: float = 0.0) -> ScenarioJob:
    return ScenarioJob(
        code=rng.choice(ALL_APPS),
        data_bytes=rng.randint(1, 6) * GB,
        frequency=rng.choice(_FREQUENCIES),
        block_size=rng.choice(_BLOCKS),
        n_mappers=rng.randint(1, 8),
        submit_time=submit_time,
    )


def _random_faults(
    rng: random.Random, n_nodes: int, horizon: float
) -> tuple[FaultEvent, ...]:
    events = []
    for _ in range(rng.randint(1, 4)):
        kind = rng.choice(FAULT_KINDS)
        node_id = rng.randrange(n_nodes)
        t = round(rng.uniform(0.0, horizon), 3)
        severity = round(rng.uniform(1.5, 4.0), 3) if kind == "straggler" else 1.0
        events.append(
            FaultEvent(
                time=t, kind=kind, node_id=node_id,
                severity=severity, pick=rng.random(),
            )
        )
    events.sort(key=lambda e: e.time)
    return tuple(events)


def _maybe_roster(
    rng: random.Random, scenario: Scenario, *, prob: float = _ROSTER_PROB
) -> Scenario:
    """Annotate ~``prob`` of oracle-shaped draws with a class roster.

    Drawn strictly *after* every other field of the scenario, so
    scenarios that existed before heterogeneity keep byte-identical
    job and fault draws for every historical seed.  (The coin is
    tossed even at ``prob=1.0`` so the downstream draw sequence is
    the same at every probability.)
    """
    if rng.random() >= prob:
        return scenario
    classes = tuple(
        rng.choice(_NODE_CLASS_NAMES) for _ in range(scenario.n_nodes)
    )
    return replace(scenario, node_classes=classes)


def generate_scenario(
    rng: random.Random, *, roster_prob: float = _ROSTER_PROB
) -> Scenario:
    """One random scenario, biased toward oracle-solvable shapes.

    Roughly half the draws land in a class the analytic oracles solve
    (single / simultaneous pair / symmetric / spaced chain), so the
    strongest check — engine vs closed form — fires often; the rest are
    general multi-job, multi-node scenarios (some with fault plans)
    exercised by the metamorphic relations.  Oracle-shaped draws are
    annotated with an explicit class roster with probability
    ``roster_prob`` (the oracles stay exact on mixed two-class
    clusters); ``roster_prob=1.0`` forces a roster onto every
    oracle-shaped draw — the CI heterogeneous smoke — without changing
    any other draw in the sequence.
    """
    shape = rng.choices(
        ("single", "pair", "symmetric", "chain", "general"),
        weights=(20, 15, 10, 10, 45),
    )[0]
    if shape == "single":
        n_nodes = rng.choice((1, 1, 2))
        submit = round(rng.uniform(0.0, 200.0), 3) if rng.random() < 0.4 else 0.0
        return _maybe_roster(
            rng,
            Scenario(n_nodes, (_random_job(rng, submit_time=submit),)),
            prob=roster_prob,
        )
    if shape == "pair":
        a = _random_job(rng)
        b = _random_job(rng)
        return _maybe_roster(
            rng, Scenario(rng.choice((1, 1, 2)), (a, b)), prob=roster_prob
        )
    if shape == "symmetric":
        k = rng.randint(2, 4)
        proto = replace(_random_job(rng), n_mappers=rng.randint(1, 8 // k))
        return _maybe_roster(
            rng, Scenario(1, tuple(proto for _ in range(k))), prob=roster_prob
        )
    if shape == "chain":
        # Arrival gaps sized generously past any plausible completion;
        # the oracle itself verifies the jobs truly never overlap.
        jobs = []
        t = 0.0
        for _ in range(rng.randint(2, 3)):
            jobs.append(_random_job(rng, submit_time=round(t, 3)))
            t += rng.uniform(3000.0, 6000.0)
        return _maybe_roster(rng, Scenario(1, tuple(jobs)), prob=roster_prob)
    n_nodes = rng.randint(1, 4)
    jobs = tuple(
        _random_job(rng, submit_time=round(rng.uniform(0.0, 300.0), 3))
        for _ in range(rng.randint(1, 5))
    )
    scenario = Scenario(n_nodes, jobs)
    if rng.random() < 0.35:
        scenario = replace(
            scenario,
            fault_events=_random_faults(rng, n_nodes, scenario.horizon_hint),
        )
    return scenario


# -------------------------------------------------------------- checking
def _check_backends(
    scenario: Scenario, backends: tuple[str, ...]
) -> list[Failure]:
    """Differential check: alternate backends vs the event engine.

    For each requested backend (``"scalar"``/``"batch"``), evaluate the
    scenario through :func:`repro.batch.engine.evaluate_scenarios` and
    compare makespan, total energy, EDP, node-0 busy time and every
    per-job energy against the reference event run at the conformance
    tolerance.  A backend outcome that *fell back* to the event engine
    is skipped — it is the reference, there is nothing to diff.
    """
    # Imported lazily: repro.batch.engine itself imports the scenario
    # layer of this package, so a module-level import would cycle.
    from repro.batch.engine import evaluate_scenarios
    from repro.conformance.oracles import REL_TOL, _rel_err

    failures: list[Failure] = []
    names = [b for b in backends if b != "event"]
    if not names:
        return failures
    reference = None
    for name in names:
        [outcome] = evaluate_scenarios([scenario], backend=name)
        if outcome.fallback:
            continue
        if reference is None:
            [reference] = evaluate_scenarios([scenario], backend="event")
        quantities = (
            ("makespan", reference.makespan, outcome.makespan),
            ("total_energy", reference.total_energy, outcome.total_energy),
            ("edp", reference.edp, outcome.edp),
            ("busy_seconds", reference.busy_seconds, outcome.busy_seconds),
        )
        for qty, want, got in quantities:
            err = _rel_err(want, got)
            if err > REL_TOL:
                failures.append(
                    Failure(
                        check=f"backend:{name}:{qty}",
                        message=(
                            f"backend:{name}:{qty}: {name}={got!r} "
                            f"event={want!r} rel_err={err:.3e} "
                            f"(case={outcome.case})"
                        ),
                    )
                )
        for j, (want, got) in enumerate(
            zip(reference.job_energies, outcome.job_energies)
        ):
            err = _rel_err(want, got)
            if err > REL_TOL:
                failures.append(
                    Failure(
                        check=f"backend:{name}:job_energy[{j}]",
                        message=(
                            f"backend:{name}:job_energy[{j}]: {name}={got!r} "
                            f"event={want!r} rel_err={err:.3e} "
                            f"(case={outcome.case})"
                        ),
                    )
                )
    return failures


def run_checks(
    scenario: Scenario,
    *,
    relations: list[str] | None = None,
    backends: tuple[str, ...] = (),
) -> list[Failure]:
    """The full conformance battery on one scenario.

    Order: analytic oracle (when solvable), then the differential
    backend checks (when ``backends`` requests any), then every
    requested metamorphic relation.  An exception anywhere is itself a
    failure (check name ``crash:<ExceptionType>``) — the engine must
    not raise on any valid scenario.
    """
    failures: list[Failure] = []
    try:
        for message in check_oracle(scenario):
            check, _, _detail = message.partition(": ")
            failures.append(Failure(check=check, message=message))
    except Exception as exc:  # noqa: BLE001 - crashes are findings
        failures.append(
            Failure(
                check=f"crash:{type(exc).__name__}",
                message=traceback.format_exc(limit=3).strip(),
            )
        )
    if backends:
        try:
            failures.extend(_check_backends(scenario, tuple(backends)))
        except Exception as exc:  # noqa: BLE001
            failures.append(
                Failure(
                    check=f"crash:{type(exc).__name__}",
                    message=traceback.format_exc(limit=3).strip(),
                )
            )
    names = list(RELATIONS) if relations is None else relations
    for name in names:
        try:
            result = check_relations(scenario, [name])[0]
            if result.applicable and result.failures:
                failures.append(
                    Failure(check=f"relation:{name}", message=result.describe())
                )
        except Exception as exc:  # noqa: BLE001
            failures.append(
                Failure(
                    check=f"crash:{type(exc).__name__}",
                    message=traceback.format_exc(limit=3).strip(),
                )
            )
    return failures


def _still_fails(
    scenario: Scenario, check: str, *, backends: tuple[str, ...] = ()
) -> bool:
    try:
        return any(
            f.check == check for f in run_checks(scenario, backends=backends)
        )
    except Exception:  # pragma: no cover - run_checks catches internally
        return False


# ------------------------------------------------------------- shrinking
def shrink(
    scenario: Scenario,
    check: str,
    *,
    log: list[str] | None = None,
    backends: tuple[str, ...] = (),
) -> Scenario:
    """Greedily minimise ``scenario`` while check ``check`` still fails.

    Passes, largest wins first: drop whole jobs, collapse the cluster,
    collapse an explicit node-class roster, drop fault events, then
    simplify per-job knobs (zero the arrival time, shrink the input,
    fewest mappers).  Each candidate is
    accepted only if the *same named check* still fails, so shrinking
    cannot wander onto a different defect.  Deterministic; bounded by
    ``_MAX_SHRINK_ROUNDS`` fixpoint rounds.  ``backends`` must match
    the :func:`run_checks` call that caught the failure, or a
    ``backend:*`` check can never reproduce.
    """
    log = log if log is not None else []

    def attempt(candidate: Scenario, note: str) -> bool:
        nonlocal scenario
        if _still_fails(candidate, check, backends=backends):
            scenario = candidate
            log.append(note)
            return True
        return False

    for _round in range(_MAX_SHRINK_ROUNDS):
        changed = False
        # 1. Fewer jobs.
        i = 0
        while len(scenario.jobs) > 1 and i < len(scenario.jobs):
            if attempt(scenario.without_job(i), f"dropped job {i}"):
                changed = True
            else:
                i += 1
        # 2. Fewer nodes.
        while scenario.n_nodes > 1 and attempt(
            scenario.with_nodes(scenario.n_nodes - 1), "removed a node"
        ):
            changed = True
        # 3. Collapse an explicit roster to default hardware (rejected
        # automatically when the failure needs the mixed classes).
        if scenario.node_classes and attempt(
            scenario.homogenised(), "collapsed roster"
        ):
            changed = True
        # 4. Fewer fault events.
        i = 0
        while i < len(scenario.fault_events):
            fewer = replace(
                scenario,
                fault_events=scenario.fault_events[:i]
                + scenario.fault_events[i + 1 :],
            )
            if attempt(fewer, f"dropped fault event {i}"):
                changed = True
            else:
                i += 1
        # 5. Simpler job knobs — always derived from the *current* job
        # so an accepted simplification is never reverted by the next.
        simplifications = (
            ("submit_time", 0.0, "submit_time -> 0"),
            ("data_bytes", 1 * GB, "data -> 1 GB"),
            ("n_mappers", 1, "mappers -> 1"),
            ("frequency", _FREQUENCIES[0], "slowest clock"),
            ("block_size", _BLOCKS[-1], "largest block"),
        )
        for i in range(len(scenario.jobs)):
            for field_name, value, note in simplifications:
                current = scenario.jobs[i]
                if getattr(current, field_name) == value:
                    continue
                jobs = list(scenario.jobs)
                jobs[i] = replace(current, **{field_name: value})
                if attempt(scenario.with_jobs(jobs), f"job {i}: {note}"):
                    changed = True
        if not changed:
            break
    return scenario


# -------------------------------------------------------------- emission
def emit_pytest(scenario: Scenario, failure: Failure, seed: int) -> str:
    """A runnable pytest regression test reproducing ``failure``.

    The scenario is reconstructed from exact float reprs, so the test
    exercises bit-for-bit the same inputs the fuzzer minimised.
    """
    needs_faults = bool(scenario.fault_events)
    imports = ["from repro.conformance import run_checks, Scenario, ScenarioJob"]
    if needs_faults:
        imports.append("from repro.faults.plan import FaultEvent")
    # Indent the expression's continuation lines to function-body depth.
    first, *rest = scenario.to_source().splitlines()
    body = "\n".join([first] + ["    " + line for line in rest])
    slug = failure.check.replace(":", "_").replace("-", "_")
    return "\n".join(
        imports
        + [
            "",
            "",
            f"def test_fuzz_regression_{slug}():",
            f'    """Minimised by `python -m repro fuzz --seed {seed}`.',
            "",
            f"    Failed check: {failure.check}",
            '    """',
            f"    scenario = {body}",
            "    failures = run_checks(scenario)",
            "    assert not failures, [f.message for f in failures]",
            "",
        ]
    )


# ------------------------------------------------------------ the fuzzer
def fuzz(
    *,
    budget: int,
    seed: int,
    relations: list[str] | None = None,
    backends: tuple[str, ...] = (),
    stop_on_failure: bool = True,
    roster_prob: float = _ROSTER_PROB,
) -> FuzzReport:
    """Run up to ``budget`` random scenarios through the check battery.

    Stops at the first failure (after shrinking it and rendering the
    regression test), or reports a clean run.  Fully determined by
    ``seed``: scenario ``i`` is generated from ``Random(f"{seed}:{i}")``
    independently of the preceding scenarios.  ``backends`` adds the
    differential backend checks (e.g. ``("batch",)``) to the battery
    on every scenario.  ``roster_prob`` overrides the fraction of
    oracle-shaped draws carrying an explicit node-class roster
    (``1.0`` = the heterogeneous smoke; other draws are unchanged).
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    report = FuzzReport(seed=seed, budget=budget)
    for i in range(budget):
        rng = random.Random(f"{seed}:{i}")
        scenario = generate_scenario(rng, roster_prob=roster_prob)
        report.executed = i + 1
        failures = run_checks(scenario, relations=relations, backends=backends)
        if not failures:
            continue
        failure = failures[0]
        report.failure = failure
        report.scenario = scenario
        log: list[str] = []
        report.shrunk = shrink(scenario, failure.check, log=log, backends=backends)
        report.shrink_log = log
        shrunk_failures = [
            f
            for f in run_checks(
                report.shrunk, relations=relations, backends=backends
            )
            if f.check == failure.check
        ]
        report.failure = shrunk_failures[0] if shrunk_failures else failure
        report.pytest_source = emit_pytest(report.shrunk, report.failure, seed)
        if stop_on_failure:
            break
    return report
