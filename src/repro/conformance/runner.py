"""Top-level conformance entry points: the matrix run and self-verify.

:func:`run_conformance` is what ``python -m repro conform`` and the CI
conformance lane execute: the full degenerate-scenario oracle matrix,
every metamorphic relation over the standard per-application scenario
registry, and (optionally) harness self-verification against the
deliberately broken engines of :mod:`repro.conformance.mutants`.

Self-verification holds the checks themselves to account: under each
mutant the fuzzer must (a) find a failure within its budget, (b) shrink
it to at most :data:`MAX_SHRUNK_JOBS` jobs, (c) emit a runnable pytest
repro, and (d) the shrunk scenario must pass on the *healthy* engine —
proving the defect lives in the engine variant, not in the checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.conformance.fuzzer import fuzz, run_checks
from repro.conformance.mutants import MUTANTS
from repro.conformance.oracles import check_oracle, oracle_expectation
from repro.conformance.relations import RELATIONS, check_relations
from repro.conformance.scenarios import oracle_matrix, registry_scenarios
from repro.workloads.registry import ALL_APPS

#: A mutant's minimal repro may need a co-location (the stale-cache
#: defect is invisible to any single job) but never more than a pair.
MAX_SHRUNK_JOBS = 2


@dataclass
class MutantVerdict:
    """Self-verify outcome for one engine mutant."""

    mutant: str
    detected: bool
    scenarios_executed: int = 0
    check: str = ""
    shrunk_jobs: int = 0
    pytest_source: str | None = None
    healthy_passes: bool = False

    @property
    def ok(self) -> bool:
        return (
            self.detected
            and self.shrunk_jobs <= MAX_SHRUNK_JOBS
            and bool(self.pytest_source)
            and self.healthy_passes
        )

    def describe(self) -> str:
        if not self.detected:
            return f"{self.mutant}: NOT DETECTED in {self.scenarios_executed} scenarios"
        status = "ok" if self.ok else "DEFECTIVE"
        return (
            f"{self.mutant}: {status} — caught by {self.check} at scenario "
            f"{self.scenarios_executed}, shrunk to {self.shrunk_jobs} job(s), "
            f"healthy engine {'passes' if self.healthy_passes else 'FAILS'} the repro"
        )


@dataclass
class ConformanceReport:
    """Everything one conformance run established."""

    oracle_scenarios: int = 0
    oracle_failures: list[str] = field(default_factory=list)
    relation_checks: int = 0
    relation_applicable: dict[str, int] = field(default_factory=dict)
    relation_failures: list[str] = field(default_factory=list)
    verdicts: list[MutantVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.oracle_failures
            and not self.relation_failures
            and all(v.ok for v in self.verdicts)
        )

    def describe(self) -> str:
        lines = [
            f"oracle matrix: {self.oracle_scenarios} scenarios, "
            f"{len(self.oracle_failures)} failure(s)",
            *(f"  {msg}" for msg in self.oracle_failures[:20]),
            f"relations: {self.relation_checks} checks over "
            f"{len(self.relation_applicable)} relations, "
            f"{len(self.relation_failures)} failure(s)",
            *(
                f"  {name}: applicable to {count} scenario(s)"
                for name, count in sorted(self.relation_applicable.items())
            ),
            *(f"  {msg}" for msg in self.relation_failures[:20]),
        ]
        if self.verdicts:
            lines.append(f"self-verify: {len(self.verdicts)} mutant(s)")
            lines.extend(f"  {v.describe()}" for v in self.verdicts)
        lines.append(f"conformance: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def self_verify(*, budget: int = 60, seed: int = 7) -> list[MutantVerdict]:
    """Prove the harness catches each registered engine mutant."""
    verdicts = []
    for name, factory in MUTANTS.items():
        with factory():
            report = fuzz(budget=budget, seed=seed)
        if report.ok:
            verdicts.append(
                MutantVerdict(
                    mutant=name, detected=False,
                    scenarios_executed=report.executed,
                )
            )
            continue
        assert report.shrunk is not None and report.failure is not None
        verdicts.append(
            MutantVerdict(
                mutant=name,
                detected=True,
                scenarios_executed=report.executed,
                check=report.failure.check,
                shrunk_jobs=len(report.shrunk.jobs),
                pytest_source=report.pytest_source,
                healthy_passes=not run_checks(report.shrunk),
            )
        )
    return verdicts


def run_conformance(
    *,
    codes=ALL_APPS,
    with_self_verify: bool = False,
    self_verify_budget: int = 60,
    seed: int = 7,
) -> ConformanceReport:
    """The full conformance battery (CI's conformance lane).

    1. Every scenario of the degenerate oracle matrix must agree with
       its closed form within 1e-9 (and every one must *have* a closed
       form — a matrix entry the dispatcher cannot solve is a bug in
       the matrix, reported rather than skipped).
    2. Every registered relation runs against every standard registry
       scenario; each relation must be applicable to at least one
       scenario (a permanently-gated relation is dead coverage).
    3. Optionally, harness self-verification against all mutants.
    """
    report = ConformanceReport()

    matrix = oracle_matrix(codes)
    report.oracle_scenarios = len(matrix)
    for scenario in matrix:
        if oracle_expectation(scenario) is None:
            report.oracle_failures.append(
                f"matrix scenario not oracle-solvable: {scenario!r}"
            )
            continue
        report.oracle_failures.extend(check_oracle(scenario))

    report.relation_applicable = {name: 0 for name in RELATIONS}
    for scenario in registry_scenarios(codes):
        for result in check_relations(scenario):
            report.relation_checks += 1
            if result.applicable:
                report.relation_applicable[result.name] += 1
                if result.failures:
                    report.relation_failures.append(result.describe())
    for name, count in report.relation_applicable.items():
        if count == 0:
            report.relation_failures.append(
                f"{name}: never applicable on the standard registry"
            )

    if with_self_verify:
        report.verdicts = self_verify(budget=self_verify_budget, seed=seed)
    return report
