"""Declarative engine scenarios: the unit every conformance check runs on.

A :class:`Scenario` is a frozen, fully-serialisable description of one
cluster run — node count, jobs (application, input size, the three
tuning knobs, arrival time) and an explicit fault-event schedule.  It
is deliberately *data, not objects*: the fuzzer mutates it, the
shrinker minimises it, and :meth:`Scenario.to_source` renders it back
into paste-ready Python so a minimised failure becomes a committed
regression test verbatim.

:func:`run_scenario` is the one funnel through which every check (and
every mutant self-verification run) executes a scenario, so patching
the engine in one place mutates every consumer consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, InjectionPlan
from repro.hardware.classes import NODE_CLASSES, roster_from_classes
from repro.hardware.node import NodeSpec
from repro.mapreduce.engine import ClusterEngine
from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import ALL_APPS, get_app

#: Fallback horizon padding when a scenario carries fault events that
#: outlive its arrivals (mirrors the property suite's convention).
_HORIZON_PAD_S = 4000.0


@dataclass(frozen=True)
class ScenarioJob:
    """One job of a scenario, as plain knobs (no engine objects)."""

    code: str
    data_bytes: int
    frequency: float
    block_size: int
    n_mappers: int
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if self.code not in ALL_APPS:
            raise ValueError(
                f"unknown application {self.code!r}; valid: {', '.join(ALL_APPS)}"
            )
        if self.data_bytes <= 0:
            raise ValueError("data_bytes must be positive")
        if self.submit_time < 0:
            raise ValueError("submit_time must be >= 0")
        # Knob validity (DVFS level, studied block size, mapper range)
        # is enforced at placement time by JobConfig.validate_for.
        JobConfig(
            frequency=self.frequency,
            block_size=self.block_size,
            n_mappers=self.n_mappers,
        )

    @property
    def config(self) -> JobConfig:
        return JobConfig(
            frequency=self.frequency,
            block_size=self.block_size,
            n_mappers=self.n_mappers,
        )

    @property
    def instance(self) -> AppInstance:
        return AppInstance(get_app(self.code), self.data_bytes)

    def identity(self) -> tuple:
        """What makes two jobs *the same work* (submit time excluded)."""
        return (
            self.code,
            self.data_bytes,
            self.frequency,
            self.block_size,
            self.n_mappers,
        )

    def to_source(self) -> str:
        parts = [
            f"code={self.code!r}",
            f"data_bytes={self.data_bytes}",
            f"frequency={self.frequency!r}",
            f"block_size={self.block_size}",
            f"n_mappers={self.n_mappers}",
        ]
        if self.submit_time:
            parts.append(f"submit_time={self.submit_time!r}")
        return f"ScenarioJob({', '.join(parts)})"


@dataclass(frozen=True)
class Scenario:
    """A complete, reproducible engine run description.

    ``node_classes`` — empty by default — names each node's hardware
    class (see :data:`repro.hardware.classes.NODE_CLASSES`) in
    placement order.  An empty tuple means "homogeneous default
    hardware", which is byte-identical to the pre-heterogeneity
    scenario format: every serialised scenario from before this field
    existed still round-trips exactly, and :meth:`to_source` only
    emits the field when it is set.
    """

    n_nodes: int
    jobs: tuple[ScenarioJob, ...]
    fault_events: tuple[FaultEvent, ...] = ()
    recorder: str = "full"
    node_classes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not self.jobs:
            raise ValueError("a scenario needs at least one job")
        if self.node_classes:
            object.__setattr__(self, "node_classes", tuple(self.node_classes))
            if len(self.node_classes) != self.n_nodes:
                raise ValueError(
                    f"node_classes names {len(self.node_classes)} node(s) "
                    f"but n_nodes={self.n_nodes}"
                )
            for name in self.node_classes:
                if name not in NODE_CLASSES:
                    raise ValueError(
                        f"unknown node class {name!r}; valid: "
                        f"{', '.join(sorted(NODE_CLASSES))}"
                    )
        for ev in self.fault_events:
            if ev.node_id >= self.n_nodes:
                raise ValueError(
                    f"fault event targets node {ev.node_id} of {self.n_nodes}"
                )

    # ---------------------------------------------------------- hardware
    def roster(self) -> tuple[NodeSpec, ...] | None:
        """Per-node specs, or ``None`` for default homogeneous hardware."""
        if not self.node_classes:
            return None
        return roster_from_classes(self.node_classes)

    @property
    def heterogeneous(self) -> bool:
        """True when the named classes actually mix hardware."""
        return len(set(self.node_classes)) > 1

    # ---------------------------------------------------------- engine I/O
    def specs(
        self,
        *,
        job_ids_from: int = 1,
        job_ids: Sequence[int] | None = None,
    ) -> list[JobSpec]:
        """Engine job specs with deterministic sequential ids.

        ``job_ids`` overrides the sequential assignment (same length as
        :attr:`jobs`) — the id-permutation relation uses this to submit
        identical work under relabelled ids.
        """
        if job_ids is None:
            job_ids = range(job_ids_from, job_ids_from + len(self.jobs))
        elif len(job_ids) != len(self.jobs):
            raise ValueError("job_ids must match the number of jobs")
        return [
            JobSpec(
                instance=job.instance,
                config=job.config,
                job_id=jid,
                submit_time=job.submit_time,
            )
            for jid, job in zip(job_ids, self.jobs)
        ]

    def plan(self) -> InjectionPlan:
        return InjectionPlan(events=self.fault_events)

    @property
    def horizon_hint(self) -> float:
        """A horizon safely past all arrivals (used for plan generation)."""
        return max(j.submit_time for j in self.jobs) + _HORIZON_PAD_S

    # ---------------------------------------------------------- transforms
    def with_jobs(self, jobs: Iterable[ScenarioJob]) -> "Scenario":
        return replace(self, jobs=tuple(jobs))

    def without_job(self, index: int) -> "Scenario":
        jobs = self.jobs[:index] + self.jobs[index + 1 :]
        return replace(self, jobs=jobs)

    def with_nodes(self, n_nodes: int) -> "Scenario":
        events = tuple(e for e in self.fault_events if e.node_id < n_nodes)
        classes = self.node_classes[:n_nodes] if self.node_classes else ()
        if classes and len(classes) < n_nodes:
            # Growing an annotated cluster: new nodes repeat the last
            # named class so the roster stays fully specified.
            classes += (self.node_classes[-1],) * (n_nodes - len(classes))
        return replace(
            self, n_nodes=n_nodes, fault_events=events, node_classes=classes
        )

    def without_faults(self) -> "Scenario":
        return replace(self, fault_events=())

    def homogenised(self) -> "Scenario":
        """This scenario on default homogeneous hardware.

        The shrinker's heterogeneity-collapse step: if a failure still
        reproduces without the mixed roster, the roster was irrelevant
        and the minimised repro should not carry it.
        """
        return replace(self, node_classes=())

    # ------------------------------------------------------- serialisation
    def to_source(self, *, indent: str = "    ") -> str:
        """A Python expression that reconstructs this scenario exactly.

        Floats are rendered with :func:`repr`, which round-trips
        bit-for-bit, so the reconstructed scenario is byte-identical.
        """
        lines = [f"Scenario("]
        lines.append(f"{indent}n_nodes={self.n_nodes},")
        lines.append(f"{indent}jobs=(")
        for job in self.jobs:
            lines.append(f"{indent}{indent}{job.to_source()},")
        lines.append(f"{indent}),")
        if self.fault_events:
            lines.append(f"{indent}fault_events=(")
            for ev in self.fault_events:
                lines.append(
                    f"{indent}{indent}FaultEvent({ev.time!r}, {ev.kind!r}, "
                    f"{ev.node_id}, severity={ev.severity!r}, pick={ev.pick!r}),"
                )
            lines.append(f"{indent}),")
        if self.recorder != "full":
            lines.append(f"{indent}recorder={self.recorder!r},")
        if self.node_classes:
            rendered = ", ".join(repr(c) for c in self.node_classes)
            trailing = "," if len(self.node_classes) == 1 else ""
            lines.append(f"{indent}node_classes=({rendered}{trailing}),")
        lines.append(")")
        return "\n".join(lines)


@dataclass
class ScenarioRun:
    """What one engine execution of a scenario produced."""

    scenario: Scenario
    cluster: ClusterEngine
    makespan: float
    total_energy: float
    edp: float
    #: (label, node_id, start, finish, energy) per completion, in order.
    rows: list[tuple[str, int, float, float, float]] = field(default_factory=list)

    @property
    def job_energies(self) -> dict[str, float]:
        return {label: energy for label, _n, _s, _f, energy in self.rows}


def run_scenario(
    scenario: Scenario,
    *,
    install_injector: bool | None = None,
    job_ids: Sequence[int] | None = None,
) -> ScenarioRun:
    """Execute a scenario on a fresh cluster and summarise it.

    ``install_injector`` defaults to "only when the scenario carries
    fault events"; pass ``True`` to force an (empty-plan) injector —
    the zero-rate transparency relation compares exactly that against
    the uninstrumented run.  ``job_ids`` relabels the jobs without
    changing submission order (see :meth:`Scenario.specs`).
    """
    cluster = ClusterEngine(
        scenario.n_nodes,
        recorder=scenario.recorder,
        roster=scenario.roster(),
    )
    for spec in scenario.specs(job_ids=job_ids):
        cluster.submit(spec)
    if install_injector is None:
        install_injector = bool(scenario.fault_events)
    if install_injector:
        FaultInjector(cluster, scenario.plan()).install()
    results = cluster.run()
    makespan = cluster.makespan
    return ScenarioRun(
        scenario=scenario,
        cluster=cluster,
        makespan=makespan,
        total_energy=cluster.total_energy(makespan),
        edp=cluster.edp(),
        rows=[
            (r.spec.label, r.node_id, r.start_time, r.finish_time, r.energy_joules)
            for r in results
        ],
    )


# -------------------------------------------------------- standard matrices
#: One representative mid-grid configuration per application class —
#: enough knob diversity to exercise waves, disk extents and DVFS.
_MATRIX_CONFIGS: tuple[tuple[float, int, int], ...] = (
    (1.2 * GHZ, 128 * MB, 2),
    (2.0 * GHZ, 256 * MB, 3),
    (2.4 * GHZ, 512 * MB, 4),
)


def _job(code: str, size: int, knobs: tuple[float, int, int], t: float = 0.0) -> ScenarioJob:
    f, b, m = knobs
    return ScenarioJob(
        code=code, data_bytes=size, frequency=f, block_size=b,
        n_mappers=m, submit_time=t,
    )


def oracle_matrix(codes: Sequence[str] = ALL_APPS) -> list[Scenario]:
    """The degenerate-scenario matrix every oracle check must pass.

    Per application: single-job runs across the knob grid (on one node
    and with an idle second node), a symmetric co-located pair, a
    two-job fluid-share pair against a rotated partner, and a
    two-job sequential chain.  Every scenario here is analytically
    solvable by :mod:`repro.conformance.oracles`.
    """
    from repro.conformance.oracles import oracle_expectation

    scenarios: list[Scenario] = []
    codes = tuple(codes)
    for i, code in enumerate(codes):
        partner = codes[(i + 1) % len(codes)]
        for knobs in _MATRIX_CONFIGS:
            # Single job, one node; and the same job with an idle node
            # watching (pins the idle-power term of cluster energy).
            scenarios.append(Scenario(1, (_job(code, 1 * GB, knobs),)))
            scenarios.append(Scenario(2, (_job(code, 5 * GB, knobs),)))
        # Deferred single arrival: idle lead-in energy.
        scenarios.append(
            Scenario(1, (_job(code, 1 * GB, _MATRIX_CONFIGS[0], t=120.0),))
        )
        # Symmetric co-location: two identical jobs sharing the node
        # (solved as a fluid pair with a zero-length tail), and three
        # identical jobs (the k-way symmetric closed form).
        scenarios.append(
            Scenario(
                1,
                (
                    _job(code, 1 * GB, _MATRIX_CONFIGS[0]),
                    _job(code, 1 * GB, _MATRIX_CONFIGS[0]),
                ),
            )
        )
        scenarios.append(
            Scenario(1, tuple(_job(code, 1 * GB, _MATRIX_CONFIGS[0]) for _ in range(3)))
        )
        # Two-job fluid share: different apps, different knobs.
        scenarios.append(
            Scenario(
                1,
                (
                    _job(code, 5 * GB, _MATRIX_CONFIGS[1]),
                    _job(partner, 1 * GB, _MATRIX_CONFIGS[0]),
                ),
            )
        )
    # Over-committed simultaneous pairs: FIFO queueing on one node,
    # independent placement with two.
    big = (2.0 * GHZ, 256 * MB, 5)
    for n_nodes in (1, 2):
        scenarios.append(
            Scenario(
                n_nodes,
                (
                    _job(codes[0], 1 * GB, big),
                    _job(codes[1 % len(codes)], 1 * GB, big),
                ),
            )
        )
    # Sequential chains (submit gaps sized by the oracle itself).
    for i in range(0, len(codes), 3):
        code = codes[i]
        partner = codes[(i + 1) % len(codes)]
        first = _job(code, 1 * GB, _MATRIX_CONFIGS[0])
        solo = oracle_expectation(Scenario(1, (first,)))
        assert solo is not None
        second = _job(partner, 1 * GB, _MATRIX_CONFIGS[2], t=solo.makespan + 30.0)
        scenarios.append(Scenario(1, (first, second)))
    return scenarios


#: The two-class roster shapes of the heterogeneous oracle matrix.
_HETERO_ROSTERS: tuple[tuple[str, ...], ...] = (
    ("atom", "xeon"),
    ("xeon", "atom"),
    ("xeon", "xeon"),
)


def hetero_matrix(codes: Sequence[str] = ALL_APPS) -> list[Scenario]:
    """The heterogeneous oracle matrix: ≥100 solvable two-class scenarios.

    Per application and per roster shape (atom+xeon, xeon+atom, and the
    non-default homogeneous xeon+xeon control): a single job landing on
    node 0, a co-located fluid-share pair on node 0, and — on the mixed
    rosters — an over-committed simultaneous pair whose second job
    spills onto node 1's hardware.  Every scenario is analytically
    solvable by :mod:`repro.conformance.oracles` with the roster's own
    specs, so the acceptance gate can demand zero dispatcher fallbacks.
    """
    scenarios: list[Scenario] = []
    codes = tuple(codes)
    for i, code in enumerate(codes):
        partner = codes[(i + 1) % len(codes)]
        for roster in _HETERO_ROSTERS:
            # Single job on node 0 (its hardware class varies by roster).
            for knobs in (_MATRIX_CONFIGS[0], _MATRIX_CONFIGS[2]):
                scenarios.append(
                    Scenario(2, (_job(code, 1 * GB, knobs),),
                             node_classes=roster)
                )
            # Fluid-share pair co-located on node 0.
            scenarios.append(
                Scenario(
                    2,
                    (
                        _job(code, 2 * GB, _MATRIX_CONFIGS[1]),
                        _job(partner, 1 * GB, _MATRIX_CONFIGS[0]),
                    ),
                    node_classes=roster,
                )
            )
        # Over-committed simultaneous pair: job 1 cannot co-fit next to
        # job 0 on node 0 (atom, 8 cores), so first-fit spills it onto
        # node 1 — the one case where node 1's class shows up in the
        # physics rather than only in the idle-power term.
        big = (2.0 * GHZ, 256 * MB, 5)
        scenarios.append(
            Scenario(
                2,
                (_job(code, 1 * GB, big), _job(partner, 1 * GB, big)),
                node_classes=("atom", "xeon"),
            )
        )
        # Deferred single arrival on a mixed roster: idle lead-in energy
        # now sums two different idle powers.
        scenarios.append(
            Scenario(
                2,
                (_job(code, 1 * GB, _MATRIX_CONFIGS[0], t=90.0),),
                node_classes=("xeon", "atom"),
            )
        )
    return scenarios


def registry_scenarios(codes: Sequence[str] = ALL_APPS) -> list[Scenario]:
    """The standard per-application scenarios the relation registry runs on.

    For each of the 11 studied applications: a solo run, a co-located
    mixed pair, and a small multi-node arrival burst — enough shape
    diversity that every registered relation applies to at least one
    scenario per application.
    """
    scenarios: list[Scenario] = []
    codes = tuple(codes)
    for i, code in enumerate(codes):
        partner = codes[(i + 2) % len(codes)]
        scenarios.append(Scenario(1, (_job(code, 5 * GB, _MATRIX_CONFIGS[0]),)))
        scenarios.append(
            Scenario(
                1,
                (
                    _job(code, 1 * GB, _MATRIX_CONFIGS[1]),
                    _job(partner, 1 * GB, _MATRIX_CONFIGS[0]),
                ),
            )
        )
        scenarios.append(
            Scenario(
                2,
                (
                    _job(code, 1 * GB, _MATRIX_CONFIGS[0], t=0.0),
                    _job(partner, 1 * GB, _MATRIX_CONFIGS[1], t=15.0),
                    _job(code, 1 * GB, _MATRIX_CONFIGS[2], t=40.0),
                ),
            )
        )
    return scenarios
