"""Metamorphic relation registry: named invariants under transformation.

Where the oracles of :mod:`repro.conformance.oracles` only cover
exactly-solvable scenario shapes, metamorphic relations constrain the
engine on *arbitrary* scenarios: transform the input in a way whose
effect on the output is known (relabel ids, add capacity, halve the
clock...) and assert the known effect — no closed form required.

Each relation is registered by name in :data:`RELATIONS` and reports a
:class:`RelationResult` that distinguishes "held", "violated" and "not
applicable to this scenario" (a gated relation that never applies is a
coverage bug, so results carry applicability explicitly rather than
silently passing).

The registered relations:

``permute-job-ids``
    Relabelling jobs (same work, same arrival order, different ids)
    leaves makespan, aggregate energy and the per-job energy multiset
    byte-identical.  Catches any id-dependent behaviour leaking into
    physics — hash ordering, cache keys, tie-breaks.
``zero-rate-fault-plan``
    Installing a fault injector with an *empty* plan is byte-identical
    to not installing one, down to per-node busy-time/energy internals.
``add-idle-node``
    Adding a node to a fault-free cluster never increases makespan
    under FIFO first-fit (capacity monotonicity).
``halve-block-size``
    Halving the HDFS block size exactly doubles the split count (when
    the input divides the block) and never decreases per-wave
    scheduling overhead.
``double-frequency-pipeline``
    Doubling the clock at fixed work halves the core-pipeline compute
    seconds (:attr:`~repro.model.costmodel.ScalarJobMetrics.pipeline_seconds`)
    — the memory-stall share must not shrink with it.  Gated on the
    doubled frequency existing in the DVFS table and the job staying
    off the memory wall at both clocks.
``recorder-equivalence``
    The interval recorder is observability, not physics: ``full``,
    ``columnar`` and ``off`` recorders produce byte-identical results.
``swap-equal-classes``
    Naming every node's class explicitly — when the classes are all the
    default hardware — is byte-identical to not naming them, and equal
    node specs always collapse to one class tag regardless of object
    identity or roster position.  Pins the homogeneous fast path: a
    roster of equal nodes must take today's untagged cache keys.
``upgrade-node-class``
    Upgrading node 0 from ``atom`` to ``xeon`` on a fault-free
    single-job scenario never increases makespan (the Xeon is strictly
    faster on every resource axis), and the *sign* of the EDP change
    must match the closed-form oracle's sign — EDP itself is not
    monotone (the Xeon draws far more power), so the relation pins
    direction agreement, not direction.
``skew-zero-uniform``
    Re-apportioning every job's input through the data-skew knob at
    ``skew = 0`` is the identity: same integer byte vector, equal
    scenario, byte-identical engine run.  At ``skew > 0`` the grand
    total is still preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Mapping

from repro.conformance.scenarios import Scenario, run_scenario
from repro.hardware.node import ATOM_C2758
from repro.mapreduce.engine import ClusterEngine
from repro.model.costmodel import standalone_metrics_scalar
from repro.utils.units import GHZ, MB
from repro.workloads.registry import get_app
from repro.workloads.skew import skew_data_bytes

#: Tolerance for relations that compare two *different* evaluation
#: orders of the same arithmetic (exact relations compare with ==).
_PIPELINE_REL_TOL = 1e-12

#: Makespan slack for the capacity-monotonicity relation: placement on
#: the larger cluster is a different event trajectory, so equality is
#: only up to accumulated ulps.
_MONOTONE_REL_TOL = 1e-9

#: Block sizes the studied HDFS configurations allow (bytes).
_VALID_BLOCKS = frozenset(int(b * MB) for b in (64, 128, 256, 512, 1024))


@dataclass(frozen=True)
class RelationResult:
    """Outcome of one relation check on one scenario."""

    name: str
    applicable: bool
    failures: tuple[str, ...] = ()

    @property
    def held(self) -> bool:
        return self.applicable and not self.failures

    def describe(self) -> str:
        if not self.applicable:
            return f"{self.name}: not applicable"
        if self.failures:
            return f"{self.name}: VIOLATED ({'; '.join(self.failures)})"
        return f"{self.name}: held"


def _not_applicable(name: str) -> RelationResult:
    return RelationResult(name=name, applicable=False)


def _result(name: str, failures: list[str]) -> RelationResult:
    return RelationResult(name=name, applicable=True, failures=tuple(failures))


# ------------------------------------------------------------- relations
def _rel_permute_job_ids(scenario: Scenario) -> RelationResult:
    name = "permute-job-ids"
    base = run_scenario(scenario)
    n = len(scenario.jobs)
    # Reverse the id assignment (and shift it, so every id changes even
    # for n=1 and the palindromic middle of odd n).
    permuted_ids = [100 + n - i for i in range(n)]
    permuted = run_scenario(scenario, job_ids=permuted_ids)
    failures = []
    if permuted.makespan != base.makespan:
        failures.append(
            f"makespan {base.makespan!r} -> {permuted.makespan!r} under id relabelling"
        )
    if permuted.total_energy != base.total_energy:
        failures.append(
            f"total_energy {base.total_energy!r} -> {permuted.total_energy!r}"
        )
    if permuted.edp != base.edp:
        failures.append(f"edp {base.edp!r} -> {permuted.edp!r}")
    base_e = sorted(e for _l, _n2, _s, _f, e in base.rows)
    perm_e = sorted(e for _l, _n2, _s, _f, e in permuted.rows)
    if base_e != perm_e:
        failures.append("per-job energy multiset changed under id relabelling")
    return _result(name, failures)


def _rel_zero_rate_fault_plan(scenario: Scenario) -> RelationResult:
    name = "zero-rate-fault-plan"
    healthy = scenario.without_faults()
    bare = run_scenario(healthy, install_injector=False)
    instrumented = run_scenario(healthy, install_injector=True)
    failures = []
    if instrumented.makespan != bare.makespan:
        failures.append(
            f"makespan {bare.makespan!r} != {instrumented.makespan!r} with empty injector"
        )
    if instrumented.total_energy != bare.total_energy:
        failures.append(
            f"total_energy {bare.total_energy!r} != {instrumented.total_energy!r}"
        )
    if instrumented.rows != bare.rows:
        failures.append("completion rows differ with an empty injector installed")
    bare_nodes = bare.cluster.conformance_snapshot()["nodes"]
    inst_nodes = instrumented.cluster.conformance_snapshot()["nodes"]
    for b, i in zip(bare_nodes, inst_nodes):
        for key in ("busy_seconds", "busy_energy"):
            if b[key] != i[key]:
                failures.append(
                    f"node {b['node_id']} {key} {b[key]!r} != {i[key]!r}"
                )
    return _result(name, failures)


def _rel_add_idle_node(scenario: Scenario) -> RelationResult:
    name = "add-idle-node"
    if scenario.fault_events:
        # Fault plans address nodes by id; growing the cluster changes
        # which nodes the schedule hits, so the comparison is invalid.
        return _not_applicable(name)
    if scenario.heterogeneous:
        # Class-oblivious first-fit can move a job from "queue behind a
        # fast node" to "run now on a slow node", which legitimately
        # lengthens the makespan — capacity monotonicity only holds
        # when the added capacity is not slower than what exists.
        return _not_applicable(name)
    base = run_scenario(scenario)
    grown = run_scenario(scenario.with_nodes(scenario.n_nodes + 1))
    failures = []
    slack = _MONOTONE_REL_TOL * max(abs(base.makespan), 1.0)
    if grown.makespan > base.makespan + slack:
        failures.append(
            f"makespan grew {base.makespan!r} -> {grown.makespan!r} "
            f"after adding an idle node"
        )
    return _result(name, failures)


def _rel_halve_block_size(scenario: Scenario) -> RelationResult:
    name = "halve-block-size"
    failures = []
    applicable = False
    for job in scenario.jobs:
        half = job.block_size // 2
        if half not in _VALID_BLOCKS or job.data_bytes % job.block_size:
            continue
        applicable = True
        profile = get_app(job.code).profile
        coarse = standalone_metrics_scalar(
            profile, job.data_bytes, job.frequency, job.block_size, job.n_mappers
        )
        fine = standalone_metrics_scalar(
            profile, job.data_bytes, job.frequency, half, job.n_mappers
        )
        if fine.n_tasks != 2.0 * coarse.n_tasks:
            failures.append(
                f"{job.code}: splits {coarse.n_tasks:g} -> {fine.n_tasks:g} "
                f"when halving block {job.block_size} (expected exact doubling)"
            )
        if fine.t_overhead < coarse.t_overhead:
            failures.append(
                f"{job.code}: scheduling overhead shrank {coarse.t_overhead!r} -> "
                f"{fine.t_overhead!r} with more splits"
            )
        if fine.waves < coarse.waves:
            failures.append(
                f"{job.code}: wave count shrank {coarse.waves:g} -> {fine.waves:g}"
            )
    if not applicable:
        return _not_applicable(name)
    return _result(name, failures)


def _rel_double_frequency_pipeline(scenario: Scenario) -> RelationResult:
    name = "double-frequency-pipeline"
    node = ATOM_C2758
    membw = node.membw.achievable_bw
    valid_freqs = set(node.frequencies)
    failures = []
    applicable = False
    for job in scenario.jobs:
        doubled = 2.0 * job.frequency
        if doubled not in valid_freqs:
            continue
        profile = get_app(job.code).profile
        slow = standalone_metrics_scalar(
            profile, job.data_bytes, job.frequency, job.block_size, job.n_mappers
        )
        fast = standalone_metrics_scalar(
            profile, job.data_bytes, doubled, job.block_size, job.n_mappers
        )
        # Off the memory wall at both clocks: the fixed-point CPU
        # inflation is exactly 1 iff demanded DRAM bandwidth stays
        # under capacity, and only then is the pipeline term pure 1/f.
        if slow.mem_demand >= membw or fast.mem_demand >= membw:
            continue
        applicable = True
        want = slow.pipeline_seconds / 2.0
        got = fast.pipeline_seconds
        err = abs(want - got) / max(abs(want), 1e-300)
        if err > _PIPELINE_REL_TOL:
            failures.append(
                f"{job.code}: pipeline seconds {slow.pipeline_seconds!r} at "
                f"{job.frequency / GHZ:g} GHz -> {got!r} at {doubled / GHZ:g} GHz "
                f"(expected half, rel_err={err:.3e})"
            )
    if not applicable:
        return _not_applicable(name)
    return _result(name, failures)


def _rel_recorder_equivalence(scenario: Scenario) -> RelationResult:
    name = "recorder-equivalence"
    base = run_scenario(replace(scenario, recorder="full"))
    failures = []
    for mode in ("columnar", "off"):
        other = run_scenario(replace(scenario, recorder=mode))
        if other.makespan != base.makespan:
            failures.append(f"recorder={mode}: makespan {other.makespan!r} differs")
        if other.total_energy != base.total_energy:
            failures.append(
                f"recorder={mode}: total_energy {other.total_energy!r} differs"
            )
        if other.rows != base.rows:
            failures.append(f"recorder={mode}: completion rows differ")
    return _result(name, failures)


def _rel_swap_equal_classes(scenario: Scenario) -> RelationResult:
    name = "swap-equal-classes"
    if scenario.node_classes:
        # Already annotated: the explicit-vs-implicit comparison below
        # needs the unannotated scenario as its baseline.
        return _not_applicable(name)
    base = run_scenario(scenario)
    annotated = run_scenario(
        replace(scenario, node_classes=("atom",) * scenario.n_nodes)
    )
    failures = []
    if annotated.makespan != base.makespan:
        failures.append(
            f"makespan {base.makespan!r} -> {annotated.makespan!r} "
            f"under explicit default-class annotation"
        )
    if annotated.total_energy != base.total_energy:
        failures.append(
            f"total_energy {base.total_energy!r} -> {annotated.total_energy!r}"
        )
    if annotated.rows != base.rows:
        failures.append("completion rows differ under default-class annotation")
    if annotated.cluster.heterogeneous or any(annotated.cluster.node_class_tags):
        failures.append(
            f"equal classes tagged {annotated.cluster.node_class_tags!r} "
            f"(expected all zero)"
        )
    # Equality, not identity: a roster of *distinct but equal* spec
    # objects in any position order must still collapse to one class.
    twin = replace(ATOM_C2758)
    assert twin is not ATOM_C2758
    swapped = ClusterEngine(
        roster=tuple(
            (twin, ATOM_C2758)[i % 2] for i in range(scenario.n_nodes)
        )
    )
    if swapped.heterogeneous or any(swapped.node_class_tags):
        failures.append(
            f"equal-but-distinct specs tagged {swapped.node_class_tags!r} "
            f"(expected all zero)"
        )
    return _result(name, failures)


def _rel_upgrade_node_class(scenario: Scenario) -> RelationResult:
    name = "upgrade-node-class"
    if len(scenario.jobs) != 1 or scenario.fault_events or scenario.node_classes:
        return _not_applicable(name)
    from repro.conformance.oracles import oracle_expectation

    base_s = replace(scenario, node_classes=("atom",) * scenario.n_nodes)
    up_s = replace(
        scenario, node_classes=("xeon",) + ("atom",) * (scenario.n_nodes - 1)
    )
    base = run_scenario(base_s)
    up = run_scenario(up_s)
    failures = []
    slack = _MONOTONE_REL_TOL * max(abs(base.makespan), 1.0)
    if up.makespan > base.makespan + slack:
        failures.append(
            f"makespan grew {base.makespan!r} -> {up.makespan!r} "
            f"after upgrading node 0 atom -> xeon"
        )
    want_base = oracle_expectation(base_s)
    want_up = oracle_expectation(up_s)
    if want_base is not None and want_up is not None:
        tol = _MONOTONE_REL_TOL * max(abs(base.edp), abs(up.edp), 1.0)

        def sign(delta: float) -> int:
            return 0 if abs(delta) <= tol else (1 if delta > 0 else -1)

        got = sign(up.edp - base.edp)
        want = sign(want_up.edp - want_base.edp)
        if got != want:
            failures.append(
                f"EDP moved {'up' if got > 0 else 'down' if got < 0 else 'flat'} "
                f"({base.edp!r} -> {up.edp!r}) but the oracle says "
                f"{'up' if want > 0 else 'down' if want < 0 else 'flat'} "
                f"({want_base.edp!r} -> {want_up.edp!r})"
            )
    return _result(name, failures)


def _rel_skew_zero_uniform(scenario: Scenario) -> RelationResult:
    name = "skew-zero-uniform"
    sizes = tuple(j.data_bytes for j in scenario.jobs)
    failures = []
    rebuilt_sizes = skew_data_bytes(sizes, skew=0.0)
    if rebuilt_sizes != sizes:
        failures.append(
            f"skew=0 re-apportionment changed bytes {sizes!r} -> {rebuilt_sizes!r}"
        )
    rebuilt = scenario.with_jobs(
        replace(job, data_bytes=s) for job, s in zip(scenario.jobs, rebuilt_sizes)
    )
    if rebuilt != scenario:
        failures.append("scenario not equal after skew=0 round-trip")
    base = run_scenario(scenario)
    other = run_scenario(rebuilt)
    if other.makespan != base.makespan:
        failures.append(
            f"makespan {base.makespan!r} != {other.makespan!r} after skew=0 round-trip"
        )
    if other.total_energy != base.total_energy:
        failures.append(
            f"total_energy {base.total_energy!r} != {other.total_energy!r}"
        )
    if other.rows != base.rows:
        failures.append("completion rows differ after skew=0 round-trip")
    # The skewed counterpoint: redistribution conserves the grand total.
    skewed = skew_data_bytes(sizes, skew=1.2, seed=11)
    if sum(skewed) != sum(sizes):
        failures.append(
            f"skew=1.2 lost bytes: {sum(sizes)} -> {sum(skewed)}"
        )
    return _result(name, failures)


#: The registry: relation name -> check callable.
RELATIONS: Mapping[str, Callable[[Scenario], RelationResult]] = {
    "permute-job-ids": _rel_permute_job_ids,
    "zero-rate-fault-plan": _rel_zero_rate_fault_plan,
    "add-idle-node": _rel_add_idle_node,
    "halve-block-size": _rel_halve_block_size,
    "double-frequency-pipeline": _rel_double_frequency_pipeline,
    "recorder-equivalence": _rel_recorder_equivalence,
    "swap-equal-classes": _rel_swap_equal_classes,
    "upgrade-node-class": _rel_upgrade_node_class,
    "skew-zero-uniform": _rel_skew_zero_uniform,
}


def get_relation(name: str) -> Callable[[Scenario], RelationResult]:
    """Look up a registered relation by name."""
    try:
        return RELATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown relation {name!r}; registered: {', '.join(sorted(RELATIONS))}"
        ) from None


def check_relations(
    scenario: Scenario, names: Iterable[str] | None = None
) -> list[RelationResult]:
    """Run the named relations (default: all) against one scenario."""
    selected = list(RELATIONS) if names is None else list(names)
    return [get_relation(n)(scenario) for n in selected]
