"""Analytic oracles: closed-form truth for degenerate scenarios.

The discrete-event engine is trusted because (a) golden files pin its
bytes and (b) property tests pin its conservation laws — but both
compare the engine against itself.  This module computes makespan,
energy and EDP for exactly-solvable scenario classes *from the model
specification alone* (hardware spec + application profile + the
documented job model of ``docs/DESIGN.md``), sharing no code with
:mod:`repro.mapreduce.engine` or the kernels in
:mod:`repro.model.costmodel`.  A conforming engine must agree with
these numbers to within one part in 10⁹ (:data:`REL_TOL`).

Solvable classes (dispatch in :func:`oracle_expectation`):

``single``
    One job; map waves are ``ceil(splits / slots)``, the three resource
    times compose through the profile's I/O overlap, and energy is the
    power integral over the one constant-power phase.
``chain``
    Jobs that run back to back (either because arrivals are spaced past
    the predecessor's completion, or because a two-job scenario on one
    node cannot co-fit and FIFO queues the second): a sum of single-job
    phases plus idle gaps.
``pair``
    Two jobs started together on one node: piecewise-linear fluid-rate
    integration — an overlap segment at the co-location stretch, then a
    context re-evaluation carrying the survivor's remaining *work
    fraction* into a solo tail segment.
``parallel``
    Two simultaneous jobs that cannot co-fit but have a node each.
``symmetric``
    ``k`` identical simultaneous jobs on one node: one shared phase in
    which all jobs finish together.

All scenarios must be fault-free (a fault plan brings in recovery
semantics the closed forms do not model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.conformance.scenarios import Scenario, ScenarioJob, run_scenario
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.workloads.base import AppProfile
from repro.workloads.registry import get_app

#: Engine-vs-oracle agreement bound: one part in 10⁹.  The oracle's
#: arithmetic is written independently (different evaluation order,
#: libm ``pow`` instead of ``np.power``), so agreement is only up to
#: accumulated ulps — orders of magnitude below this bound — while any
#: *semantic* divergence lands far above it.
REL_TOL = 1e-9

#: Minimum arrival gap (seconds) past the predecessor's completion for
#: the chain solver to consider two jobs non-overlapping.
_CHAIN_MARGIN_S = 1e-6

_CACHE_LINE_BYTES = 64.0


@dataclass(frozen=True)
class _OracleJob:
    """The per-job quantities the node-level fluid model consumes."""

    duration: float  # standalone seconds under the evaluated context
    u_disk: float
    u_net: float
    mem_demand: float  # DRAM bytes/s demanded
    core_power: float  # watts above idle from this job's cores


@dataclass(frozen=True)
class OracleExpectation:
    """Closed-form truth for one scenario."""

    case: str
    makespan: float
    total_energy: float
    edp: float
    #: Seconds node 0 spends with >= 1 job running.
    busy_seconds: float
    #: Per-job whole-run energy, keyed by scenario job index.
    job_energies: dict[int, float]


def _profile_of(job: ScenarioJob) -> AppProfile:
    return get_app(job.code).profile


def _oracle_job(
    profile: AppProfile,
    data_bytes: float,
    frequency: float,
    block_size: float,
    n_mappers: float,
    *,
    mpki_scale: float,
    disk_traffic_scale: float,
    extra_streams: float,
    node: NodeSpec,
    constants: SimConstants,
) -> _OracleJob:
    """One job's fluid quantities, from the model spec (not the kernel).

    Mirrors the documented job model: CPU seconds from the additive
    in-order SPI with last-wave imbalance, disk seconds from staged
    traffic over the extent/stream-degraded bandwidth, network seconds
    from the remote shuffle share, per-wave scheduling overhead, all
    composed through the profile's I/O overlap, with one memory-wall
    fixed-point pass.
    """
    D = float(data_bytes)
    n_tasks = math.ceil(D / float(block_size))
    m_eff = n_tasks if n_tasks < n_mappers else float(n_mappers)
    waves = math.ceil(n_tasks / m_eff)
    imbalance = (waves / n_tasks) * m_eff

    # CPU: pipeline term scales with the clock, the memory-stall term
    # does not (the memory wall).
    stall_s_per_miss = node.core.mem_latency_s * (1.0 - node.core.mlp_overlap)
    mpki = profile.llc_mpki0 * mpki_scale
    miss_stall = (mpki / 1000.0) * stall_s_per_miss
    spi = (1.0 / profile.ipc0) / frequency + miss_stall
    instructions = D * (
        profile.instructions_per_byte
        + profile.shuffle_factor * profile.reduce_instr_per_byte
    )
    t_cpu = (instructions / m_eff) * imbalance * spi

    # Disk: staged traffic over degraded aggregate bandwidth.
    staged = (
        profile.read_factor
        + profile.spill_factor
        + profile.shuffle_factor * (1.0 + constants.shuffle_reread_fraction)
        + profile.output_factor
    )
    disk_bytes = D * staged * disk_traffic_scale
    streams = m_eff + extra_streams
    extent_eff = block_size / (block_size + node.disk.half_extent)
    interleave = 1.0 + node.disk.seek_penalty * (streams - 1.0 if streams > 1.0 else 0.0)
    agg_bw = node.disk.peak_bw * extent_eff / interleave
    t_disk = disk_bytes / agg_bw

    t_net = D * profile.shuffle_factor * constants.remote_shuffle_fraction / node.nic_bw
    t_overhead = waves * constants.task_overhead_s

    overlap = profile.io_overlap

    def total(cpu: float) -> float:
        bound = max(cpu, t_disk, t_net)
        return t_overhead + overlap * bound + (1.0 - overlap) * (cpu + t_disk + t_net)

    membw = node.membw.achievable_bw
    dram_bytes = instructions * (mpki / 1000.0) * _CACHE_LINE_BYTES * profile.mem_stream_factor
    first_pass = total(t_cpu)
    oversub = (dram_bytes / first_pass) / membw
    if oversub > 1.0:
        t_cpu = t_cpu * oversub
    duration = total(t_cpu)

    u_cpu = t_cpu / duration
    mem_demand = dram_bytes / duration
    u_mem = min(mem_demand / membw, 1.0)
    u_disk = t_disk / duration

    stall_fraction = miss_stall / spi
    pm = node.power
    activity = u_cpu * (1.0 - stall_fraction * (1.0 - pm.stall_power_fraction))
    dyn = node.dvfs.point_for(frequency).dynamic_scale(node.dvfs.max_point)
    core_power = pm.core_max_power * dyn * activity * m_eff
    del u_mem  # whole-node memory power is a node-level quantity

    return _OracleJob(
        duration=duration,
        u_disk=u_disk,
        u_net=t_net / duration,
        mem_demand=mem_demand,
        core_power=core_power,
    )


def _oracle_context(
    jobs: list[ScenarioJob], node: NodeSpec, constants: SimConstants
) -> list[tuple[float, float, float]]:
    """Per-job (mpki_scale, disk_traffic_scale, extra_streams) couplings.

    Module-aware LLC partitioning (pressure-proportional power-law miss
    inflation on the shared module fraction), footprint overcommit into
    shared extra disk traffic, and co-runner stream interleaving.
    """
    k = len(jobs)
    mappers = [float(j.n_mappers) for j in jobs]
    profiles = [_profile_of(j) for j in jobs]

    total_mappers = math.fsum(mappers) if k >= 8 else sum(mappers)
    footprint = sum(m * p.footprint_per_task for m, p in zip(mappers, profiles))
    overcommit = footprint / node.available_memory_bytes - 1.0
    disk_scale = 1.0 + constants.swap_penalty * (overcommit if overcommit > 0.0 else 0.0)

    if k == 1:
        return [(1.0, disk_scale, 0.0)]

    modules = [math.ceil(m / 2.0) for m in mappers]
    shared_modules = sum(modules) - node.n_cores / 2.0
    if shared_modules < 0.0:
        shared_modules = 0.0

    pressures = [p.cache_pressure * m for p, m in zip(profiles, mappers)]
    pressure_total = sum(pressures)
    floor = constants.cache_share_floor
    out = []
    for i in range(k):
        share = pressures[i] / pressure_total
        share = min(max(share, floor), 1.0 - floor)
        inflation = min(share, 1.0) ** (-profiles[i].cache_alpha)
        inflation = min(max(inflation, 1.0), node.cache.max_inflation)
        shared_frac = min(shared_modules / modules[i], 1.0)
        mpki_scale = 1.0 + shared_frac * (inflation - 1.0)
        out.append((mpki_scale, disk_scale, total_mappers - mappers[i]))
    return out


def _evaluate(
    jobs: list[ScenarioJob], node: NodeSpec, constants: SimConstants
) -> list[_OracleJob]:
    """Evaluate a co-resident set: context couplings, then each job."""
    ctx = _oracle_context(jobs, node, constants)
    return [
        _oracle_job(
            _profile_of(j),
            j.data_bytes,
            j.frequency,
            j.block_size,
            j.n_mappers,
            mpki_scale=mpki,
            disk_traffic_scale=disk,
            extra_streams=extra,
            node=node,
            constants=constants,
        )
        for j, (mpki, disk, extra) in zip(jobs, ctx)
    ]


def _node_state(jobs: list[_OracleJob], node: NodeSpec) -> tuple[float, float]:
    """(fluid stretch, node watts) of a constant co-residency segment."""
    membw = node.membw.achievable_bw
    disk_demand = sum(j.u_disk for j in jobs)
    net_demand = sum(j.u_net for j in jobs)
    mem_demand = sum(j.mem_demand for j in jobs)
    stretch = max(1.0, disk_demand, net_demand, mem_demand / membw)
    pm = node.power
    watts = (
        pm.idle_power
        + sum(j.core_power for j in jobs) / stretch
        + pm.mem_max_power * min(mem_demand / stretch / membw, 1.0)
        + pm.disk_max_power * min(disk_demand / stretch, 1.0)
    )
    return stretch, watts


# ------------------------------------------------------------- solvers
def _expectation_from_segments(
    scenario: Scenario,
    segments_per_node: dict[int, list[tuple[float, float, float]]],
    job_energies: dict[int, float],
    case: str,
    node: NodeSpec,
    roster: tuple[NodeSpec, ...] | None = None,
) -> OracleExpectation:
    """Fold per-node ``(start, end, watts)`` segments into totals.

    Idle draw fills every second of ``[0, makespan]`` not covered by a
    busy segment, on every node — the wall-meter accounting the engine
    implements with prefix sums.  On a mixed roster each node idles at
    *its own* floor, so the hetero branch folds idle energy node by
    node; the homogeneous expression is kept verbatim.
    """
    makespan = max(
        end for segs in segments_per_node.values() for (_s, end, _w) in segs
    )
    busy_energy = 0.0
    busy_time_all = 0.0
    for segs in segments_per_node.values():
        for start, end, watts in segs:
            busy_energy += watts * (end - start)
            busy_time_all += end - start
    if roster is not None:
        idle_energy = 0.0
        for node_id, spec in enumerate(roster):
            busy_here = sum(
                end - start
                for (start, end, _w) in segments_per_node.get(node_id, [])
            )
            idle_energy += spec.power.idle_power * (makespan - busy_here)
        total_energy = busy_energy + idle_energy
    else:
        idle_power = node.power.idle_power
        total_energy = busy_energy + idle_power * (scenario.n_nodes * makespan - busy_time_all)
    node0 = segments_per_node.get(0, [])
    return OracleExpectation(
        case=case,
        makespan=makespan,
        total_energy=total_energy,
        edp=total_energy * makespan,
        busy_seconds=sum(end - start for (start, end, _w) in node0),
        job_energies=job_energies,
    )


def _solve_chain(
    scenario: Scenario,
    order: list[int],
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> OracleExpectation | None:
    """Back-to-back jobs on node 0; None if any pair overlaps in time."""
    segments: list[tuple[float, float, float]] = []
    job_energies: dict[int, float] = {}
    clock = 0.0
    for idx in order:
        job = scenario.jobs[idx]
        if segments and job.submit_time < clock + _CHAIN_MARGIN_S:
            return None
        start = max(job.submit_time, clock)
        [metrics] = _evaluate([job], node, constants)
        stretch, watts = _node_state([metrics], node)
        wall = metrics.duration * stretch
        segments.append((start, start + wall, watts))
        job_energies[idx] = watts * wall
        clock = start + wall
    return _expectation_from_segments(
        scenario, {0: segments}, job_energies, "chain" if len(order) > 1 else "single",
        node, roster,
    )


def _solve_queued_chain(
    scenario: Scenario,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> OracleExpectation:
    """Two simultaneous jobs on one node that cannot co-fit: FIFO queues
    the second behind the first, so it starts exactly at the first's
    completion (no idle gap between them)."""
    a, b = scenario.jobs
    t0 = a.submit_time
    [ma] = _evaluate([a], node, constants)
    sa, wa = _node_state([ma], node)
    [mb] = _evaluate([b], node, constants)
    sb, wb = _node_state([mb], node)
    finish_a = t0 + ma.duration * sa
    finish_b = finish_a + mb.duration * sb
    segments = [(t0, finish_a, wa), (finish_a, finish_b, wb)]
    energies = {0: wa * (finish_a - t0), 1: wb * (finish_b - finish_a)}
    return _expectation_from_segments(
        scenario, {0: segments}, energies, "queued-chain", node, roster
    )


def _solve_parallel(
    scenario: Scenario,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> OracleExpectation:
    """Two simultaneous jobs that cannot co-fit, one node each.

    On a mixed roster job ``i`` runs on node ``i``'s own spec — the
    first-fit rule walks left to right, so the second job lands on
    node 1 and is evaluated against node 1's hardware.
    """
    t0 = scenario.jobs[0].submit_time
    segments_per_node: dict[int, list[tuple[float, float, float]]] = {}
    energies: dict[int, float] = {}
    for idx, job in enumerate(scenario.jobs):
        here = roster[idx] if roster is not None else node
        [m] = _evaluate([job], here, constants)
        s, w = _node_state([m], here)
        wall = m.duration * s
        segments_per_node[idx] = [(t0, t0 + wall, w)]
        energies[idx] = w * wall
    return _expectation_from_segments(
        scenario, segments_per_node, energies, "parallel", node, roster
    )


def _solve_pair(
    scenario: Scenario,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> OracleExpectation:
    """Two simultaneous co-fitting jobs: overlap segment at the pair
    stretch, then the survivor's remaining work *fraction* re-based onto
    its solo standalone duration (the engine's recontext rule) for the
    tail segment."""
    a, b = scenario.jobs
    t0 = a.submit_time
    pair = _evaluate([a, b], node, constants)
    s_pair, w_pair = _node_state(pair, node)
    d = [pair[0].duration, pair[1].duration]

    short, long_ = (0, 1) if d[0] <= d[1] else (1, 0)
    t_overlap = d[short] * s_pair
    first_done = t0 + t_overlap
    energies = {
        short: w_pair * t_overlap / 2.0,
        long_: w_pair * t_overlap / 2.0,
    }
    segments = [(t0, first_done, w_pair)]
    if d[long_] > d[short]:
        fraction_left = (d[long_] - d[short]) / d[long_]
        [solo] = _evaluate([scenario.jobs[long_]], node, constants)
        s_solo, w_solo = _node_state([solo], node)
        t_tail = fraction_left * solo.duration * s_solo
        segments.append((first_done, first_done + t_tail, w_solo))
        energies[long_] += w_solo * t_tail
    return _expectation_from_segments(
        scenario, {0: segments}, energies, "pair", node, roster
    )


def _solve_symmetric(
    scenario: Scenario,
    node: NodeSpec,
    constants: SimConstants,
    roster: tuple[NodeSpec, ...] | None = None,
) -> OracleExpectation:
    """k identical simultaneous jobs: one phase, all finish together."""
    t0 = scenario.jobs[0].submit_time
    metrics = _evaluate(list(scenario.jobs), node, constants)
    stretch, watts = _node_state(metrics, node)
    wall = metrics[0].duration * stretch
    k = len(scenario.jobs)
    energies = {i: watts * wall / k for i in range(k)}
    return _expectation_from_segments(
        scenario, {0: [(t0, t0 + wall, watts)]}, energies, "symmetric", node, roster
    )


# ------------------------------------------------------------ dispatch
def oracle_expectation(
    scenario: Scenario,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
) -> OracleExpectation | None:
    """Closed-form truth for ``scenario``, or None when it is not in an
    exactly-solvable class (the caller should then skip the oracle
    check, not treat it as a pass).

    Heterogeneous scenarios (``scenario.node_classes`` set) override
    the ``node`` argument with the scenario's own roster: jobs run on
    node 0's hardware except the parallel case, whose second job lands
    on node 1.  First-fit placement is class-oblivious-leftmost, so
    co-fit decisions key on *node 0's* core count.
    """
    if scenario.fault_events:
        return None
    roster = scenario.roster()
    if roster is not None:
        node = roster[0]
    jobs = scenario.jobs
    if len(jobs) == 1:
        return _solve_chain(scenario, [0], node, constants, roster)

    submits = {j.submit_time for j in jobs}
    if len(submits) == 1:
        total_mappers = sum(j.n_mappers for j in jobs)
        if len(jobs) == 2:
            if total_mappers <= node.n_cores:
                return _solve_pair(scenario, node, constants, roster)
            if scenario.n_nodes == 1:
                return _solve_queued_chain(scenario, node, constants, roster)
            if roster is not None and jobs[1].n_mappers > roster[1].n_cores:
                return None  # second job cannot land on node 1 either
            return _solve_parallel(scenario, node, constants, roster)
        if total_mappers <= node.n_cores and len({j.identity() for j in jobs}) == 1:
            return _solve_symmetric(scenario, node, constants, roster)
        return None

    order = sorted(range(len(jobs)), key=lambda i: (jobs[i].submit_time, i))
    return _solve_chain(scenario, order, node, constants, roster)


def _rel_err(expected: float, actual: float) -> float:
    scale = max(abs(expected), abs(actual), 1e-12)
    return abs(expected - actual) / scale


def check_oracle(
    scenario: Scenario,
    *,
    rel_tol: float = REL_TOL,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
) -> list[str]:
    """Run the engine and compare against the oracle.

    Returns a (possibly empty) list of human-readable failure messages,
    one per disagreeing quantity — empty also when the scenario is not
    oracle-solvable.  Covers the cluster aggregates (makespan, energy,
    EDP), node 0's busy-time accounting (via the engine's conformance
    snapshot hook) and every per-job energy attribution.
    """
    expected = oracle_expectation(scenario, node=node, constants=constants)
    if expected is None:
        return []
    run = run_scenario(scenario)
    failures = []
    for name, want, got in (
        ("makespan", expected.makespan, run.makespan),
        ("total_energy", expected.total_energy, run.total_energy),
        ("edp", expected.edp, run.edp),
    ):
        err = _rel_err(want, got)
        if err > rel_tol:
            failures.append(
                f"oracle:{name}: engine={got!r} oracle={want!r} "
                f"rel_err={err:.3e} (case={expected.case})"
            )
    snapshot = run.cluster.conformance_snapshot()
    busy = snapshot["nodes"][0]["busy_seconds"]
    if _rel_err(expected.busy_seconds, busy) > rel_tol:
        failures.append(
            f"oracle:busy_seconds: engine={busy!r} "
            f"oracle={expected.busy_seconds!r} (case={expected.case})"
        )
    specs = scenario.specs()
    by_label = run.job_energies
    for idx, want in expected.job_energies.items():
        label = specs[idx].label
        got = by_label.get(label)
        if got is None:
            failures.append(f"oracle:job_energy[{label}]: job never completed")
        elif _rel_err(want, got) > rel_tol:
            failures.append(
                f"oracle:job_energy[{label}]: engine={got!r} oracle={want!r} "
                f"rel_err={_rel_err(want, got):.3e} (case={expected.case})"
            )
    return failures
