"""Conformance subsystem: oracles, metamorphic relations, fuzzing.

Every prior safety net in this repository pins the engine against
*itself* — golden byte-identity files pin yesterday's output, and the
property suite asserts conservation laws the engine maintains by
construction.  This package adds the missing third leg: checks against
*independently computed truth*.

Three layers, composable and individually importable:

:mod:`repro.conformance.oracles`
    Closed-form makespan/energy/EDP for degenerate-but-exactly-solvable
    scenario classes (single job, symmetric co-location, two-job fluid
    share, sequential chains), derived from the hardware spec and
    application profiles with arithmetic written independently of both
    the discrete-event engine and the shared cost kernel.  Engine and
    oracle must agree within one part in 10⁹.

:mod:`repro.conformance.relations`
    A registry of named metamorphic invariants the engine must satisfy
    under input transformations — double the clock and the pipeline
    compute time halves, add an idle node and the makespan cannot grow,
    permute job ids and aggregate energy is unchanged, and so on.

:mod:`repro.conformance.fuzzer`
    A seeded random walk over scenario space executing the oracle and
    relation checks, with greedy shrinking to a minimal failing
    scenario and paste-ready pytest emission.  The harness self-verifies
    against the deliberately broken engines of
    :mod:`repro.conformance.mutants`.

``python -m repro conform`` runs the full matrix; ``python -m repro
fuzz`` runs the fuzzer.  See ``docs/TESTING.md`` for where this sits in
the four-layer verification stack.
"""

from repro.conformance.fuzzer import (
    Failure,
    FuzzReport,
    fuzz,
    generate_scenario,
    run_checks,
    shrink,
)
from repro.conformance.mutants import MUTANTS
from repro.conformance.oracles import (
    OracleExpectation,
    check_oracle,
    oracle_expectation,
)
from repro.conformance.relations import (
    RELATIONS,
    RelationResult,
    check_relations,
    get_relation,
)
from repro.conformance.runner import ConformanceReport, run_conformance, self_verify
from repro.conformance.scenarios import (
    Scenario,
    ScenarioJob,
    ScenarioRun,
    oracle_matrix,
    registry_scenarios,
    run_scenario,
)

__all__ = [
    "Failure",
    "FuzzReport",
    "MUTANTS",
    "OracleExpectation",
    "RELATIONS",
    "RelationResult",
    "ConformanceReport",
    "Scenario",
    "ScenarioJob",
    "ScenarioRun",
    "check_oracle",
    "check_relations",
    "fuzz",
    "generate_scenario",
    "get_relation",
    "oracle_expectation",
    "oracle_matrix",
    "registry_scenarios",
    "run_checks",
    "run_conformance",
    "run_scenario",
    "self_verify",
    "shrink",
]
