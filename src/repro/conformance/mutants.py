"""Deliberately broken engine variants for harness self-verification.

A conformance suite that has never caught a bug proves nothing — maybe
the engine is right, maybe the checks are vacuous.  Each mutant here
installs one *plausible* engine defect (the kind a real refactor could
introduce) behind a context manager; the self-verify lane asserts that
the fuzzer detects every one of them and shrinks the failure to a
minimal scenario.  If a future edit to the oracles or relations stops
catching a mutant, CI fails — the checks themselves are under test.

The defects mirror the risk profile of past hot-path rewrites:

``off-by-one-waves``
    The scalar cost kernel schedules one map wave too many (a classic
    ``ceil`` boundary slip), adding one wave of task overhead to every
    job.  Caught by the analytic makespan oracle on a single job.
``dropped-idle-energy``
    Node energy accounting forgets idle draw — only busy segments are
    metered.  Invisible on a fully-packed single-node run (there is no
    idle time to drop), caught the moment any idle second exists.
``stale-cache-reuse``
    The recontext cache returns the most recently stored value of the
    right shape regardless of key — the bug its key-echo mechanism
    exists to catch.  A cold single-job run never hits the cache, so
    the minimal repro needs two jobs.
``ignore-node-class``
    Cluster construction silently drops the node-class roster, so
    every node runs default hardware regardless of what the scenario
    names — the exact regression a placement refactor that forgets to
    thread the roster through would introduce.  Invisible on every
    homogeneous-default scenario (the byte-identity guarantee makes
    that unavoidable), caught by the roster-aware oracle the moment a
    fuzzed scenario names a non-default class.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Callable, ContextManager, Iterator, Mapping

from repro.mapreduce import engine as engine_mod
from repro.model.calibration import DEFAULT_CONSTANTS
from repro.model.costmodel import standalone_metrics_scalar as _real_kernel


@contextmanager
def off_by_one_waves() -> Iterator[None]:
    """Engine whose cost kernel runs one extra map wave per job."""

    def mutated(profile, data_bytes, frequency, block_size, n_mappers, **kw):
        m = _real_kernel(
            profile, data_bytes, frequency, block_size, n_mappers, **kw
        )
        constants = kw.get("constants", DEFAULT_CONSTANTS)
        extra = constants.task_overhead_s
        duration = m.duration + extra
        return dataclasses.replace(
            m,
            waves=m.waves + 1.0,
            t_overhead=m.t_overhead + extra,
            duration=duration,
            energy=m.power * duration,
            edp=m.power * duration * duration,
        )

    original = engine_mod.standalone_metrics_scalar
    engine_mod.standalone_metrics_scalar = mutated
    try:
        yield
    finally:
        engine_mod.standalone_metrics_scalar = original


@contextmanager
def dropped_idle_energy() -> Iterator[None]:
    """Engine whose node energy meter omits idle power entirely."""

    def mutated(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t0 <= self._first_busy_start and t1 >= self._last_busy_end:
            busy, _covered = self._busy_energy, self._busy_time
        else:
            busy, _covered = self._recorder.busy_between(t0, t1)
        return busy

    original = engine_mod.NodeEngine.energy_between
    engine_mod.NodeEngine.energy_between = mutated
    try:
        yield
    finally:
        engine_mod.NodeEngine.energy_between = original


@contextmanager
def stale_cache_reuse() -> Iterator[None]:
    """Recontext cache that ignores the lookup key.

    Returns the most recently touched entry whose key has the same
    kind and arity (so the value has a plausible type) — the silent
    wrong-hit failure mode the cache's key echo is designed to refuse.
    """

    def mutated(self, key):
        for stored in reversed(self._data):
            if stored[0] == key[0] and len(stored) == len(key):
                return self._data[stored][1]
        return None

    original = engine_mod.RecontextCache.get
    engine_mod.RecontextCache.get = mutated
    try:
        yield
    finally:
        engine_mod.RecontextCache.get = original


@contextmanager
def ignore_node_class() -> Iterator[None]:
    """Cluster construction that silently discards the roster."""

    original = engine_mod.ClusterEngine.__init__

    def mutated(self, *args, roster=None, **kwargs):
        # The tell-tale slip: ``roster`` is accepted and dropped, so
        # node count and default hardware come from the other args.
        original(self, *args, **kwargs)

    engine_mod.ClusterEngine.__init__ = mutated
    try:
        yield
    finally:
        engine_mod.ClusterEngine.__init__ = original


#: Registry: mutant name -> context-manager factory.  The self-verify
#: lane iterates this mapping; adding a mutant here automatically adds
#: it to ``python -m repro conform --self-verify`` and to CI.
MUTANTS: Mapping[str, Callable[[], ContextManager[None]]] = {
    "off-by-one-waves": off_by_one_waves,
    "dropped-idle-energy": dropped_idle_energy,
    "stale-cache-reuse": stale_cache_reuse,
    "ignore-node-class": ignore_node_class,
}
