"""Seeded workload-mix drift: the change the online tuner must chase.

Node crashes (:mod:`repro.faults.plan`) change the *cluster*; this
module changes the *workload*.  A :class:`DriftSchedule` is a
piecewise-constant workload mix — each segment names the application
codes and input sizes arrivals draw from — and
:func:`drifted_arrivals` materialises a deterministic Poisson arrival
stream through it.  The canonical scenario is a single
:meth:`DriftSchedule.workload_shift`: training-like applications
before the shift, unseen applications (or unseen input sizes) after
it, so an offline-trained STP starts mispredicting at a known time.

Everything derives from one seed via :func:`~repro.utils.rng.
derive_rng`; the stream is independent of any other seeded draw in a
run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.utils.rng import SeedLike, derive_rng
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app


@dataclass(frozen=True)
class MixSegment:
    """One constant-mix stretch of the arrival stream."""

    start_time: float
    codes: tuple[str, ...]
    sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError("segment start_time must be >= 0")
        if not self.codes or not self.sizes:
            raise ValueError("a mix segment needs at least one code and size")
        for code in self.codes:
            get_app(code)  # validate eagerly — raises KeyError on typos


@dataclass(frozen=True)
class DriftSchedule:
    """A piecewise-constant workload mix over time."""

    segments: tuple[MixSegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("schedule needs at least one segment")
        if self.segments[0].start_time != 0.0:
            raise ValueError("the first segment must start at t=0")
        starts = [s.start_time for s in self.segments]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("segment start times must strictly increase")

    def segment_at(self, t: float) -> MixSegment:
        """The mix in force at time ``t``."""
        current = self.segments[0]
        for segment in self.segments[1:]:
            if t < segment.start_time:
                break
            current = segment
        return current

    @classmethod
    def workload_shift(
        cls,
        shift_time: float,
        *,
        before_codes: Sequence[str],
        before_sizes: Sequence[int],
        after_codes: Sequence[str],
        after_sizes: Sequence[int],
    ) -> "DriftSchedule":
        """The canonical two-segment drift: one mix shift at a known time."""
        return cls(
            segments=(
                MixSegment(0.0, tuple(before_codes), tuple(before_sizes)),
                MixSegment(shift_time, tuple(after_codes), tuple(after_sizes)),
            )
        )


def drifted_arrivals(
    n_jobs: int,
    schedule: DriftSchedule,
    *,
    seed: SeedLike = 0,
    mean_interarrival_s: float = 6.0,
) -> list[tuple[float, AppInstance]]:
    """A deterministic Poisson arrival stream through the schedule.

    Returns ``(arrival_time, instance)`` pairs; each arrival draws its
    application and input size from the mix segment in force at its
    arrival time.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if mean_interarrival_s <= 0:
        raise ValueError("mean_interarrival_s must be > 0")
    rng = derive_rng(seed, "drifted-arrivals")
    t = 0.0
    out: list[tuple[float, AppInstance]] = []
    for _ in range(n_jobs):
        t += float(rng.exponential(mean_interarrival_s))
        segment = schedule.segment_at(t)
        code = segment.codes[int(rng.integers(len(segment.codes)))]
        size = segment.sizes[int(rng.integers(len(segment.sizes)))]
        out.append((t, AppInstance(get_app(code), int(size))))
    return out
