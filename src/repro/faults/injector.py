"""Threads an :class:`InjectionPlan` through a cluster and recovers.

The injector owns the Hadoop-style failure-recovery semantics the
engine itself stays agnostic of:

* **Task re-execution** — a killed attempt (task failure or node
  crash) re-executes from scratch on a surviving node, preferring the
  node holding the most of the job's HDFS blocks (when an
  :class:`~repro.hdfs.filesystem.MiniHdfs` is attached), queueing
  until capacity frees otherwise.
* **Speculative execution** — a straggler triggers a duplicate attempt
  on another node; the first finisher wins and the loser is killed,
  its elapsed work counted as speculative waste.
* **Re-replication** — a crashed node's blocks are reported to the
  namenode, which re-replicates them across the survivors.
* **Blacklisting** — a node that crashes ``blacklist_after`` times is
  flapping: the injector stops placing recovery work on it and tells
  the ECoST controller (if attached) to stop scheduling onto it and to
  re-enter its learning period, since the surviving-node profile
  shifted.

Everything the injector does is driven by the plan plus the engine's
deterministic event order, so a fixed ``(workload, plan)`` pair yields
a bit-identical :attr:`FaultInjector.trace` on every run.  Installing
an injector with an empty plan leaves the run byte-identical to a
healthy one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import FaultEvent, InjectionPlan
from repro.mapreduce.engine import ClusterEngine, NodeEngine
from repro.mapreduce.job import JobSpec
from repro.telemetry.tracing import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.controller import ECoSTController
    from repro.hdfs.filesystem import MiniHdfs


class FaultInjector:
    """Replays a fault plan against a :class:`ClusterEngine`.

    Create the injector *after* any controller has installed its
    scheduler (the injector wraps ``cluster.scheduler``), then call
    :meth:`install` before ``cluster.run()``.
    """

    def __init__(
        self,
        cluster: ClusterEngine,
        plan: InjectionPlan,
        *,
        hdfs: "MiniHdfs | None" = None,
        job_files: dict[int, str] | None = None,
        controller: "ECoSTController | None" = None,
        speculative: bool = True,
        blacklist_after: int = 3,
    ) -> None:
        if blacklist_after < 1:
            raise ValueError("blacklist_after must be >= 1")
        self.cluster = cluster
        self.plan = plan
        self.hdfs = hdfs
        self.job_files = dict(job_files) if job_files else {}
        self.controller = controller
        self.speculative = speculative
        self.blacklist_after = blacklist_after
        self.telemetry = cluster.telemetry
        self.tracer = getattr(cluster, "tracer", NULL_TRACER)
        self.trace: list[str] = []
        self.skipped = 0  # plan events that found nothing to break
        self.crash_counts: dict[int, int] = {}
        self.blacklisted: set[int] = set()
        #: job_id -> (node of original attempt, node of duplicate).
        self._dups: dict[int, tuple[int, int]] = {}
        #: job_ids in cluster.pending awaiting injector re-execution.
        self._retrying: set[int] = set()
        #: job_id -> fault time, for the recovery-episode trace span.
        self._retry_since: dict[int, float] = {}
        self._seen_results = 0
        self._inner_scheduler = None
        self._installed = False

    # ------------------------------------------------------------ set-up
    def install(self) -> "FaultInjector":
        """Schedule the plan's events and wrap the cluster scheduler."""
        if self._installed:
            raise RuntimeError("injector is already installed")
        self._installed = True
        self._inner_scheduler = self.cluster.scheduler
        self.cluster.scheduler = self._scheduler
        for ev in self.plan.events:
            self.cluster.call_at(
                ev.time, lambda _c, t, ev=ev: self._on_fault(ev, t)
            )
        return self

    # ------------------------------------------------------- scheduling
    def _scheduler(self, cluster: ClusterEngine, t: float) -> None:
        self._absorb_completions(t)
        self._drain_retries(t)
        self._inner_scheduler(cluster, t)

    def _log(self, t: float, text: str) -> None:
        self.trace.append(f"t={t:9.1f}s {text}")

    def _usable(self, exclude: int | None = None) -> list[NodeEngine]:
        return [
            n
            for n in self.cluster.nodes
            if n.alive
            and n.node_id not in self.blacklisted
            and n.node_id != exclude
        ]

    def _locality(self, spec: JobSpec, node_id: int) -> float:
        """Fraction of the job's input blocks local to ``node_id``."""
        if self.hdfs is None:
            return 0.0
        file_name = self.job_files.get(spec.job_id)
        if file_name is None:
            return 0.0
        blocks = [b.block_id for b in self.hdfs.splits_for(file_name)]
        return self.hdfs.namenode.locality_fraction(blocks, node_id)

    def _place_direct(self, spec: JobSpec, node_id: int) -> None:
        if spec not in self.cluster.pending:
            self.cluster.pending.append(spec)
        self.cluster.place(spec, node_id)

    def _retry_target(self, spec: JobSpec, exclude: int | None) -> int | None:
        """Surviving node for a re-execution: most-local first."""
        fitting = [n for n in self._usable(exclude) if n.can_fit(spec)]
        if not fitting:
            return None
        best = max(
            fitting,
            key=lambda n: (self._locality(spec, n.node_id), -n.node_id),
        )
        return best.node_id

    def _queue_retry(self, spec: JobSpec, t: float) -> None:
        self.telemetry.record_retry()
        self._retrying.add(spec.job_id)
        self._retry_since.setdefault(spec.job_id, t)
        if spec not in self.cluster.pending:
            self.cluster.pending.append(spec)
        self._drain_retries(t)

    def _drain_retries(self, t: float) -> None:
        if not self._retrying:
            return
        for spec in [
            s for s in self.cluster.pending if s.job_id in self._retrying
        ]:
            target = self._retry_target(spec, exclude=None)
            if target is None:
                continue
            self._retrying.discard(spec.job_id)
            self._place_direct(spec, target)
            self._log(
                t,
                f"node{target}: re-executes {spec.label} "
                f"(locality {self._locality(spec, target):.0%})",
            )
            if self.tracer.enabled:
                since = self._retry_since.pop(spec.job_id, t)
                self.tracer.span(
                    f"recovery {spec.label}",
                    "recovery",
                    since,
                    t,
                    tid=spec.job_id,
                    args={
                        "job": spec.label,
                        "target_node": target,
                        "locality": self._locality(spec, target),
                    },
                )
            else:
                self._retry_since.pop(spec.job_id, None)

    def _absorb_completions(self, t: float) -> None:
        """First-finisher-wins: kill the losing speculative attempt."""
        results = self.cluster.results
        new = results[self._seen_results:]
        self._seen_results = len(results)
        for res in new:
            jid = res.spec.job_id
            self._retrying.discard(jid)
            self._retry_since.pop(jid, None)
            pair = self._dups.pop(jid, None)
            if pair is None:
                continue
            other = pair[0] if res.node_id == pair[1] else pair[1]
            engine = self.cluster.nodes[other]
            if any(r.spec.job_id == jid for r in engine.running):
                engine.advance_to(t)
                _spec, elapsed = engine.evict(jid)
                self.cluster._arm(engine)
                self.telemetry.record_speculative(wasted=True)
                self._log(
                    t,
                    f"node{res.node_id}: {res.spec.label} finishes first; "
                    f"cancel duplicate on node{other} ({elapsed:.1f}s wasted)",
                )
                if self.tracer.enabled:
                    self.tracer.instant(
                        "speculative waste",
                        "fault",
                        t,
                        tid=jid,
                        args={
                            "job": res.spec.label,
                            "loser_node": other,
                            "wasted_s": elapsed,
                        },
                    )

    # ------------------------------------------------------ fault events
    def _on_fault(self, ev: FaultEvent, t: float) -> None:
        if ev.kind == "task_fail":
            self._task_fail(ev, t)
        elif ev.kind == "node_crash":
            self._node_crash(ev, t)
        elif ev.kind == "node_recover":
            self._node_recover(ev, t)
        elif ev.kind == "straggler":
            self._straggler(ev, t)
        else:  # pragma: no cover - plan validates kinds
            raise RuntimeError(f"unknown fault kind {ev.kind!r}")

    def _victim(self, engine: NodeEngine, pick: float):
        idx = min(int(pick * len(engine.running)), len(engine.running) - 1)
        return engine.running[idx]

    def _task_fail(self, ev: FaultEvent, t: float) -> None:
        engine = self.cluster.nodes[ev.node_id]
        if not engine.alive or not engine.running:
            self.skipped += 1
            self._log(t, f"node{ev.node_id}: task failure finds no attempt")
            return
        engine.advance_to(t)
        victim = self._victim(engine, ev.pick)
        jid = victim.spec.job_id
        spec, elapsed = engine.evict(jid)
        self.cluster._arm(engine)
        self.telemetry.record_fault("task_fail")
        self._log(
            t,
            f"node{ev.node_id}: task failure kills {spec.label} "
            f"({elapsed:.1f}s lost)",
        )
        if self._drop_duplicate(jid, ev.node_id, t):
            return
        self._queue_retry(spec, t)
        self.cluster.scheduler(self.cluster, t)

    def _drop_duplicate(self, jid: int, dead_node: int, t: float) -> bool:
        """If the killed attempt was one of a speculative pair, keep the
        surviving attempt as the sole one.  Returns True when a live
        partner exists (no re-execution needed)."""
        pair = self._dups.pop(jid, None)
        if pair is None:
            return False
        other = pair[0] if dead_node == pair[1] else pair[1]
        engine = self.cluster.nodes[other]
        alive = engine.alive and any(
            r.spec.job_id == jid for r in engine.running
        )
        if alive:
            self._log(
                t, f"node{other}: surviving attempt of job{jid} carries on"
            )
        return alive

    def _node_crash(self, ev: FaultEvent, t: float) -> None:
        engine = self.cluster.nodes[ev.node_id]
        if not engine.alive:
            self.skipped += 1
            self._log(t, f"node{ev.node_id}: crash hits a node already down")
            return
        if len(self.cluster.alive_nodes) <= 1:
            self.skipped += 1
            self._log(t, f"node{ev.node_id}: crash skipped (last alive node)")
            return
        engine.advance_to(t)
        lost = engine.crash()
        self.telemetry.record_fault("node_crash")
        self.crash_counts[ev.node_id] = self.crash_counts.get(ev.node_id, 0) + 1
        self._log(
            t,
            f"node{ev.node_id}: crash #{self.crash_counts[ev.node_id]} "
            f"kills {len(lost)} attempt(s)",
        )
        if self.hdfs is not None and ev.node_id < self.hdfs.n_nodes:
            rere, lost_blocks = self.hdfs.namenode.handle_node_failure(
                ev.node_id
            )
            self.telemetry.record_rereplication(rere, lost_blocks)
            self._log(
                t,
                f"namenode: re-replicated {rere} block(s) from "
                f"node{ev.node_id}, {lost_blocks} lost",
            )
            if self.tracer.enabled:
                self.tracer.instant(
                    "re-replication",
                    "fault",
                    t,
                    args={
                        "node": ev.node_id,
                        "blocks": rere,
                        "lost": lost_blocks,
                    },
                )
        for spec, _elapsed in lost:
            if self._drop_duplicate(spec.job_id, ev.node_id, t):
                continue
            self._queue_retry(spec, t)
        self._maybe_blacklist(ev.node_id, t)
        if self.controller is not None:
            self.controller.on_cluster_change(
                t, [n.node_id for n in self.cluster.alive_nodes]
            )
        self.cluster.scheduler(self.cluster, t)

    def _maybe_blacklist(self, node_id: int, t: float) -> None:
        if node_id in self.blacklisted:
            return
        if self.crash_counts.get(node_id, 0) < self.blacklist_after:
            return
        # Never blacklist the last schedulable node.
        if len(self.blacklisted) + 1 >= len(self.cluster.nodes):
            return
        self.blacklisted.add(node_id)
        self.telemetry.record_blacklist()
        self._log(
            t,
            f"node{node_id}: blacklisted after "
            f"{self.crash_counts[node_id]} crashes (flapping)",
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "blacklist (flapping)",
                "fault",
                t,
                args={"node": node_id, "crashes": self.crash_counts[node_id]},
            )
        if self.controller is not None:
            self.controller.on_node_blacklisted(node_id, t)

    def _node_recover(self, ev: FaultEvent, t: float) -> None:
        engine = self.cluster.nodes[ev.node_id]
        if engine.alive:
            self.skipped += 1
            self._log(t, f"node{ev.node_id}: recovery finds the node up")
            return
        engine.advance_to(t)
        engine.restore()
        self.telemetry.record_fault("node_recover")
        self._log(t, f"node{ev.node_id}: recovered (rejoins empty)")
        if self.hdfs is not None and ev.node_id < self.hdfs.n_nodes:
            self.hdfs.namenode.mark_alive(ev.node_id)
        if self.controller is not None:
            self.controller.on_cluster_change(
                t, [n.node_id for n in self.cluster.alive_nodes]
            )
        self.cluster.scheduler(self.cluster, t)

    def _straggler(self, ev: FaultEvent, t: float) -> None:
        engine = self.cluster.nodes[ev.node_id]
        if not engine.alive or not engine.running:
            self.skipped += 1
            self._log(t, f"node{ev.node_id}: straggler finds no attempt")
            return
        engine.advance_to(t)
        victim = self._victim(engine, ev.pick)
        jid = victim.spec.job_id
        engine.apply_slowdown(jid, ev.severity)
        self.cluster._arm(engine)
        self.telemetry.record_fault("straggler")
        self._log(
            t,
            f"node{ev.node_id}: {victim.spec.label} straggles "
            f"({ev.severity:.2f}x slowdown)",
        )
        if not self.speculative or jid in self._dups:
            return
        fitting = [
            n
            for n in self._usable(exclude=ev.node_id)
            if n.can_fit(victim.spec)
        ]
        if not fitting:
            return
        target = max(fitting, key=lambda n: (n.free_cores, -n.node_id))
        self._place_direct(victim.spec, target.node_id)
        self._dups[jid] = (ev.node_id, target.node_id)
        self.telemetry.record_speculative()
        self._log(
            t,
            f"node{target.node_id}: speculative duplicate of "
            f"{victim.spec.label} launched",
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "speculative launch",
                "fault",
                t,
                tid=jid,
                args={
                    "job": victim.spec.label,
                    "straggler_node": ev.node_id,
                    "duplicate_node": target.node_id,
                },
            )
