"""Seeded fault injection and Hadoop-style failure recovery.

The discrete-event engine assumes every task, node and HDFS block
survives; this package supplies the failure substrate a production
scheduler is judged against.  :class:`~repro.faults.plan.InjectionPlan`
draws a deterministic schedule of task failures, node crashes (with
paired recoveries) and straggler slowdowns from one seed, and
:class:`~repro.faults.injector.FaultInjector` replays it through a
:class:`~repro.mapreduce.engine.ClusterEngine`, implementing task
re-execution, speculative duplicates with first-finisher-wins, HDFS
re-replication, and flapping-node blacklisting.  With an empty plan a
run is byte-identical to a healthy one — the golden suites pin this.

:mod:`repro.faults.drift` adds the workload-side counterpart: seeded
piecewise workload-mix schedules whose arrival streams shift to
unseen applications or input sizes at known times — the drift
generator the online self-tuning layer (:mod:`repro.online`) is
evaluated against.
"""

from repro.faults.drift import DriftSchedule, MixSegment, drifted_arrivals
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultMix, InjectionPlan

__all__ = [
    "FAULT_KINDS",
    "DriftSchedule",
    "FaultEvent",
    "FaultInjector",
    "FaultMix",
    "InjectionPlan",
    "MixSegment",
    "drifted_arrivals",
]
