"""Deterministic fault-injection plans.

An :class:`InjectionPlan` is the *entire* randomness of a faulty run,
drawn up front from one seed: a time-ordered tuple of
:class:`FaultEvent` records saying *when* each fault strikes, *which*
node it targets, and (for stragglers) *how severe* it is.  The
:class:`~repro.faults.injector.FaultInjector` replays the plan as
engine events, so the same plan against the same workload yields a
bit-identical recovery trace — the property the golden and
property-based suites pin.

Fault kinds
-----------
``task_fail``
    One running attempt on the target node is killed and re-executed
    (Hadoop task re-execution).
``node_crash`` / ``node_recover``
    The node fails (every attempt lost, blocks under-replicated,
    zero power draw) and later rejoins empty.  Crashes always carry a
    paired recovery event after an exponential repair time.
``straggler``
    One running attempt's progress rate is divided by ``severity``
    (the paper's §7 straggler coefficient promoted from a closed-form
    fudge factor to a first-class event); speculative execution may
    race a duplicate against it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import SeedLike, rng_from

#: Valid :attr:`FaultEvent.kind` values, in plan-generation order.
FAULT_KINDS: tuple[str, ...] = (
    "task_fail",
    "node_crash",
    "node_recover",
    "straggler",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time: float
    kind: str
    node_id: int
    #: Straggler slowdown factor (>1); 1.0 for other kinds.
    severity: float = 1.0
    #: Uniform [0, 1) draw the injector uses to pick the victim attempt
    #: among the node's running set — part of the plan so victim choice
    #: is seeded, not dependent on injector internals.
    pick: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.node_id < 0:
            raise ValueError("node_id must be >= 0")
        if self.severity <= 0:
            raise ValueError("severity must be > 0")
        if not 0.0 <= self.pick < 1.0:
            raise ValueError("pick must be in [0, 1)")


@dataclass(frozen=True)
class FaultMix:
    """Relative weights of the fault kinds in a generated plan."""

    task_fail: float = 0.55
    node_crash: float = 0.15
    straggler: float = 0.30

    def __post_init__(self) -> None:
        for name in ("task_fail", "node_crash", "straggler"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} weight must be >= 0")
        if self.task_fail + self.node_crash + self.straggler <= 0:
            raise ValueError("fault mix must have positive total weight")

    def rates(self, total_rate: float) -> dict[str, float]:
        """Split a total rate into per-kind rates by weight."""
        weight = self.task_fail + self.node_crash + self.straggler
        return {
            "task_fail": total_rate * self.task_fail / weight,
            "node_crash": total_rate * self.node_crash / weight,
            "straggler": total_rate * self.straggler / weight,
        }


@dataclass(frozen=True)
class InjectionPlan:
    """A seeded, time-ordered schedule of fault events."""

    events: tuple[FaultEvent, ...]

    def __len__(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> dict[str, int]:
        """How many events of each kind the plan holds."""
        counts = {kind: 0 for kind in FAULT_KINDS}
        for ev in self.events:
            counts[ev.kind] += 1
        return counts

    @classmethod
    def empty(cls) -> "InjectionPlan":
        """The zero-rate plan: a healthy run."""
        return cls(events=())

    def without(self, index: int) -> "InjectionPlan":
        """A copy with event ``index`` removed.

        The conformance shrinker minimises fault schedules one event at
        a time; dropping a ``node_crash`` may orphan its paired
        ``node_recover``, which the injector tolerates (the recovery
        finds the node up and is counted as skipped).
        """
        if not 0 <= index < len(self.events):
            raise IndexError(f"no event at index {index}")
        return InjectionPlan(
            events=self.events[:index] + self.events[index + 1 :]
        )

    def truncated(self, n: int) -> "InjectionPlan":
        """A copy keeping only the first ``n`` events (time order)."""
        if n < 0:
            raise ValueError("n must be >= 0")
        return InjectionPlan(events=self.events[:n])

    @classmethod
    def generate(
        cls,
        n_nodes: int,
        horizon_s: float,
        *,
        rate_per_1ks: float,
        seed: SeedLike = 0,
        mix: FaultMix = FaultMix(),
        mean_repair_s: float = 300.0,
        slowdown_range: tuple[float, float] = (1.5, 4.0),
    ) -> "InjectionPlan":
        """Draw a plan from Poisson processes over ``[0, horizon_s]``.

        ``rate_per_1ks`` is the cluster-wide expected number of fault
        *injections* (crash recoveries ride along for free) per 1000
        simulated seconds, split across kinds by ``mix``.  Every draw
        comes from one generator in a fixed order, so equal seeds give
        equal plans regardless of caller state; a zero rate gives the
        empty plan, byte-identical to a healthy run.
        """
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be > 0")
        if rate_per_1ks < 0:
            raise ValueError("rate_per_1ks must be >= 0")
        if mean_repair_s <= 0:
            raise ValueError("mean_repair_s must be > 0")
        lo, hi = slowdown_range
        if not 1.0 < lo <= hi:
            raise ValueError("slowdown_range must satisfy 1 < lo <= hi")
        rng = rng_from(seed)
        events: list[FaultEvent] = []
        for kind, rate in mix.rates(rate_per_1ks).items():
            if rate <= 0:
                continue
            mean_gap = 1000.0 / rate
            t = 0.0
            while True:
                t += float(rng.exponential(mean_gap))
                if t >= horizon_s:
                    break
                node = int(rng.integers(n_nodes))
                pick = float(rng.random())
                if kind == "straggler":
                    severity = float(rng.uniform(lo, hi))
                    events.append(
                        FaultEvent(t, kind, node, severity=severity, pick=pick)
                    )
                elif kind == "node_crash":
                    repair = float(rng.exponential(mean_repair_s))
                    events.append(FaultEvent(t, kind, node, pick=pick))
                    events.append(FaultEvent(t + repair, "node_recover", node))
                else:
                    events.append(FaultEvent(t, kind, node, pick=pick))
        # Stable order: by time, generation sequence breaking ties — the
        # injector schedules events in this order, and the engine's event
        # queue preserves insertion order at equal times.
        indexed = sorted(enumerate(events), key=lambda pair: (pair[1].time, pair[0]))
        return cls(events=tuple(ev for _i, ev in indexed))
