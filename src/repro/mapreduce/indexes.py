"""Incremental placement indexes for big-cluster scheduling.

At 8 nodes the per-placement costs of the naive structures are noise;
at 256–1024 nodes with 10⁵–10⁶ queued jobs they dominate the run
(see ``tools/profile_scale.py``).  Two structures flatten them:

* :class:`FreeCoreIndex` — a max segment tree over per-node free-core
  counts.  ``first_at_least(k)`` walks down the tree and returns the
  *leftmost* node with ``free >= k`` in O(log n), which is exactly the
  first-fit rule ``fifo_first_fit`` used to pay an O(n) scan for, so
  placements are unchanged byte for byte.
* :class:`PendingQueue` — a list-compatible FIFO whose ``append`` /
  ``remove`` / ``__contains__`` are O(1) by object identity (with an
  equality-scan fallback matching ``list.remove``'s first-equal
  semantics), instead of the O(pending) membership test and removal
  ``ClusterEngine.place`` paid per placement.  Removal tombstones the
  entry; tombstones are discarded lazily at the queue head and by
  periodic compaction, so iteration order stays exactly FIFO.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class FreeCoreIndex:
    """Max segment tree answering leftmost-node-with-capacity queries.

    Heterogeneous rosters pass ``classes`` — one integer class tag per
    slot — and the index additionally maintains one *per-class segment*
    (a subtree view masking other classes to zero capacity), so
    ``first_at_least(k, node_class=tag)`` answers "leftmost node of
    this class with enough room" in the same O(log n).  Without
    ``classes`` the per-class layer does not exist and behaviour is
    exactly the homogeneous index of PR 8.
    """

    __slots__ = ("_size", "_n", "_tree", "_classes", "_class_trees")

    def __init__(
        self, values: Iterable[int], *, classes: Iterable[int] | None = None
    ) -> None:
        vals = list(values)
        n = len(vals)
        if n < 1:
            raise ValueError("FreeCoreIndex needs at least one slot")
        size = 1
        while size < n:
            size *= 2
        self._size = size
        self._n = n
        self._tree = self._build(vals)
        if classes is None:
            self._classes = None
            self._class_trees = None
        else:
            tags = list(classes)
            if len(tags) != n:
                raise ValueError("classes must provide one tag per slot")
            self._classes = tags
            self._class_trees = {
                tag: self._build(
                    [v if t == tag else 0 for v, t in zip(vals, tags)]
                )
                for tag in sorted(set(tags))
            }

    def _build(self, vals: list[int]) -> list[int]:
        size = self._size
        tree = [0] * (2 * size)
        tree[size : size + len(vals)] = vals
        for i in range(size - 1, 0, -1):
            left, right = tree[2 * i], tree[2 * i + 1]
            tree[i] = left if left >= right else right
        return tree

    def __len__(self) -> int:
        return self._n

    @property
    def class_tags(self) -> tuple[int, ...] | None:
        """The per-slot class tags, or None for a classless index."""
        return None if self._classes is None else tuple(self._classes)

    def get(self, index: int) -> int:
        if not 0 <= index < self._n:
            raise IndexError(index)
        return self._tree[self._size + index]

    @staticmethod
    def _update(tree: list[int], size: int, index: int, value: int) -> None:
        i = size + index
        if tree[i] == value:
            return
        tree[i] = value
        i //= 2
        while i:
            left, right = tree[2 * i], tree[2 * i + 1]
            best = left if left >= right else right
            if tree[i] == best:
                break
            tree[i] = best
            i //= 2

    def set(self, index: int, value: int) -> None:
        """Update one slot and refresh the O(log n) path above it."""
        if not 0 <= index < self._n:
            raise IndexError(index)
        self._update(self._tree, self._size, index, value)
        if self._classes is not None:
            tree = self._class_trees[self._classes[index]]
            self._update(tree, self._size, index, value)

    @staticmethod
    def _descend(tree: list[int], size: int, k: int) -> int | None:
        if tree[1] < k:
            return None
        i = 1
        while i < size:
            i *= 2
            if tree[i] < k:
                i += 1
        return i - size

    def first_at_least(self, k: int, *, node_class: int | None = None) -> int | None:
        """Leftmost index whose value is ≥ ``k`` (None if no slot is).

        ``node_class`` restricts the search to slots carrying that tag
        (requires the index to have been built with ``classes``).
        """
        if node_class is not None:
            if self._class_trees is None:
                raise ValueError("index was built without class tags")
            tree = self._class_trees.get(node_class)
            if tree is None:
                return None
            if k <= 0:
                # Leftmost slot of the class, regardless of capacity.
                classes = self._classes
                assert classes is not None
                for i, tag in enumerate(classes):
                    if tag == node_class:
                        return i
                return None  # pragma: no cover - tree exists => tag exists
            index = self._descend(tree, self._size, k)
            # Masked and padding slots hold 0 and k >= 1, so the walk
            # cannot land outside the class.
            assert index is None or index < self._n
            return index
        if k <= 0:
            return 0
        index = self._descend(self._tree, self._size, k)
        # Padding slots hold 0 and k >= 1, so the walk cannot land there.
        assert index is None or index < self._n
        return index


class PendingQueue:
    """FIFO job queue, list-API-compatible, with O(1) hot-path ops.

    The engine's schedulers only ever touch the head (peek, place,
    remove) plus membership tests, so the queue keeps an identity map
    of live entries and marks removals as tombstones instead of
    shifting list tails.  Equal-but-distinct entries (two ``JobSpec``
    objects that compare equal) fall back to the same first-equal
    linear scan ``list`` performs, keeping observable semantics
    identical.
    """

    __slots__ = ("_entries", "_lo", "_live", "_dead")

    def __init__(self, items: Iterable = ()) -> None:
        self._entries: list = []  # physical slots, including tombstones
        self._lo = 0  # first physical slot not yet consumed
        self._live: set[int] = set()  # id() of live entries
        self._dead: set[int] = set()  # id() of tombstoned entries
        for item in items:
            self.append(item)

    # ------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, item) -> bool:
        if id(item) in self._live:
            return True
        return any(entry == item for entry in self)

    def __iter__(self) -> Iterator:
        dead = self._dead
        for entry in self._entries[self._lo :]:
            if id(entry) not in dead:
                yield entry

    def __getitem__(self, index):
        if index == 0:
            self._compact_head()
            if self._lo < len(self._entries):
                return self._entries[self._lo]
            raise IndexError("pending queue is empty")
        items = list(self)
        return items[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PendingQueue({list(self)!r})"

    # ----------------------------------------------------------- mutation
    def append(self, item) -> None:
        key = id(item)
        if key in self._live:
            raise ValueError(
                "the same object is already pending; the queue tracks "
                "entries by identity and cannot hold one twice"
            )
        if key in self._dead:
            # The same object is being re-queued while its tombstone
            # still occupies a slot (the fault injector re-queues specs
            # it placed earlier).  Resolve tombstones physically first
            # so the two occurrences cannot be confused.
            self._compact_all()
        self._entries.append(item)
        self._live.add(key)

    def remove(self, item) -> None:
        """Remove the first entry equal to ``item`` (as ``list.remove``)."""
        key = id(item)
        if key in self._live:
            # The common case: removing the exact pending object.  With
            # unique job ids an equal-earlier entry cannot exist, so
            # first-equal and identity removal coincide.
            self._live.discard(key)
            self._dead.add(key)
        else:
            for entry in self:
                if entry == item:
                    self._live.discard(id(entry))
                    self._dead.add(id(entry))
                    break
            else:
                raise ValueError(f"{item!r} is not pending")
        self._compact_head()
        if len(self._dead) > len(self._live) + 32:
            self._compact_all()

    def clear(self) -> None:
        self._entries.clear()
        self._lo = 0
        self._live.clear()
        self._dead.clear()

    # -------------------------------------------------------- compaction
    def _compact_head(self) -> None:
        entries, dead = self._entries, self._dead
        lo, n = self._lo, len(entries)
        while lo < n and id(entries[lo]) in dead:
            dead.discard(id(entries[lo]))
            lo += 1
        self._lo = lo
        if lo > 512 and lo * 2 > n:
            del entries[:lo]
            self._lo = 0

    def _compact_all(self) -> None:
        dead = self._dead
        self._entries = [
            e for e in self._entries[self._lo :] if id(e) not in dead
        ]
        self._lo = 0
        dead.clear()
