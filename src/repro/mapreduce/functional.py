"""In-memory MapReduce runtime with real Hadoop semantics.

Executes an :class:`~repro.workloads.base.Application`'s actual
mapper/combiner/reducer over record streams with the same dataflow as
Hadoop: records are grouped into input splits, each split is mapped
independently, map output is optionally combined per split, partitioned
by key hash across reducers, each reducer processes its keys in sorted
order, and the final output is the concatenation of reducer outputs.

This layer is about *correctness* (the timing layer is
:mod:`repro.mapreduce.engine`); it is what the examples and the
functional test-suite run.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.workloads.base import Application, KeyValue


def _sort_key(key: object) -> tuple:
    """Total order over heterogeneous keys (type name, then value)."""
    return (type(key).__name__, repr(key) if isinstance(key, tuple) else key, repr(key))


@dataclass(frozen=True)
class JobOutput:
    """Result of one functional MapReduce job."""

    #: Per-reducer outputs, in reducer order; each sorted by key.
    partitions: tuple[tuple[KeyValue, ...], ...]
    n_map_tasks: int
    n_input_records: int
    n_intermediate_records: int

    @property
    def records(self) -> list[KeyValue]:
        """All output records (reducer partitions concatenated)."""
        return [kv for part in self.partitions for kv in part]

    def as_dict(self) -> dict:
        """Output as a key → value mapping (last write wins)."""
        return dict(self.records)


class MapReduceRuntime:
    """Configurable local MapReduce executor."""

    def __init__(
        self,
        *,
        n_reducers: int = 2,
        split_records: int = 1000,
        use_combiner: bool = True,
    ) -> None:
        if n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        if split_records < 1:
            raise ValueError("split_records must be >= 1")
        self.n_reducers = n_reducers
        self.split_records = split_records
        self.use_combiner = use_combiner

    # ------------------------------------------------------------- stages
    def make_splits(self, records: Iterable[KeyValue]) -> Iterator[list[KeyValue]]:
        """Group the record stream into fixed-size input splits."""
        split: list[KeyValue] = []
        for kv in records:
            split.append(kv)
            if len(split) >= self.split_records:
                yield split
                split = []
        if split:
            yield split

    def run_map_task(
        self, app: Application, split: Sequence[KeyValue]
    ) -> list[KeyValue]:
        """Map one split, applying the combiner if enabled and valid."""
        out: list[KeyValue] = []
        for key, value in split:
            out.extend(app.mapper(key, value))
        if self.use_combiner and app.has_combiner:
            grouped: dict[object, list[object]] = defaultdict(list)
            for k, v in out:
                grouped[k].append(v)
            combined: list[KeyValue] = []
            for k in grouped:
                combined.extend(app.combiner(k, grouped[k]))
            return combined
        return out

    def partition(self, key: object) -> int:
        """Hash partitioner (deterministic across runs for common keys)."""
        return hash(repr(key)) % self.n_reducers

    def run_reduce_task(
        self, app: Application, groups: dict[object, list[object]]
    ) -> list[KeyValue]:
        """Reduce one partition's groups in key-sorted order."""
        out: list[KeyValue] = []
        for key in sorted(groups, key=_sort_key):
            out.extend(app.reducer(key, groups[key]))
        return out

    # --------------------------------------------------------------- job
    def run(self, app: Application, records: Iterable[KeyValue]) -> JobOutput:
        """Execute a full job over ``records``."""
        shuffles: list[dict[object, list[object]]] = [
            defaultdict(list) for _ in range(self.n_reducers)
        ]
        n_map_tasks = 0
        n_input = 0
        n_intermediate = 0
        for split in self.make_splits(records):
            n_map_tasks += 1
            n_input += len(split)
            for k, v in self.run_map_task(app, split):
                n_intermediate += 1
                shuffles[self.partition(k)][k].append(v)
        partitions = tuple(
            tuple(self.run_reduce_task(app, groups)) for groups in shuffles
        )
        return JobOutput(
            partitions=partitions,
            n_map_tasks=n_map_tasks,
            n_input_records=n_input,
            n_intermediate_records=n_intermediate,
        )

    def run_generated(
        self, app: Application, n_records: int, *, seed: int = 0
    ) -> JobOutput:
        """Run over the application's own synthetic input generator."""
        if n_records < 1:
            raise ValueError("n_records must be >= 1")
        return self.run(app, app.generate_records(n_records, seed=seed))
