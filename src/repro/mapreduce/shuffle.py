"""Shuffle machinery: map-side spill/sort and reduce-side merge.

Hadoop's shuffle is an external sort: each map task buffers its
output, sorts and *spills* segments when the buffer fills, and each
reducer merges the sorted segments addressed to its partition.  This
module implements the same dataflow in memory — bounded sort buffers,
per-partition sorted spill segments, and a k-way heap merge — so the
functional runtime exercises the real mechanics (and the spill counts
feed the timing model's disk-traffic factors).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.workloads.base import KeyValue


def sort_key(key: object) -> tuple:
    """Total order over heterogeneous keys (shared with the runtime)."""
    return (type(key).__name__, repr(key) if isinstance(key, tuple) else key, repr(key))


@dataclass(frozen=True)
class SpillSegment:
    """One sorted run of map output for one partition."""

    partition: int
    records: tuple[KeyValue, ...]

    def __post_init__(self) -> None:
        keys = [sort_key(k) for k, _v in self.records]
        if keys != sorted(keys):
            raise ValueError("spill segment records must be key-sorted")

    @property
    def n_bytes_estimate(self) -> int:
        """Rough serialized size (for spill accounting)."""
        return sum(len(repr(k)) + len(repr(v)) for k, v in self.records)


class MapOutputBuffer:
    """Bounded map-side buffer that spills sorted partition runs.

    Mirrors ``mapreduce.task.io.sort.mb``: once ``buffer_records``
    accumulate, the buffer sorts per partition and emits one
    :class:`SpillSegment` per non-empty partition.
    """

    def __init__(self, n_partitions: int, *, buffer_records: int = 1000) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if buffer_records < 1:
            raise ValueError("buffer_records must be >= 1")
        self.n_partitions = n_partitions
        self.buffer_records = buffer_records
        self._pending: list[list[KeyValue]] = [[] for _ in range(n_partitions)]
        self._pending_count = 0
        self.segments: list[SpillSegment] = []
        self.n_spills = 0

    def emit(self, partition: int, key: object, value: object) -> None:
        if not 0 <= partition < self.n_partitions:
            raise IndexError(f"partition {partition} out of range")
        self._pending[partition].append((key, value))
        self._pending_count += 1
        if self._pending_count >= self.buffer_records:
            self.spill()

    def spill(self) -> None:
        """Sort and freeze the current buffer contents."""
        if self._pending_count == 0:
            return
        for p, records in enumerate(self._pending):
            if records:
                records.sort(key=lambda kv: sort_key(kv[0]))
                self.segments.append(
                    SpillSegment(partition=p, records=tuple(records))
                )
        self._pending = [[] for _ in range(self.n_partitions)]
        self._pending_count = 0
        self.n_spills += 1

    def close(self) -> list[SpillSegment]:
        """Final spill; returns all segments produced by this task."""
        self.spill()
        return list(self.segments)


def merge_segments(segments: Sequence[SpillSegment]) -> Iterator[KeyValue]:
    """K-way merge of sorted runs into one key-sorted stream.

    All segments must belong to the same partition.  Stable: records
    with equal keys appear in segment order then position order.
    """
    if not segments:
        return
    partitions = {s.partition for s in segments}
    if len(partitions) != 1:
        raise ValueError(f"segments span partitions {sorted(partitions)}")
    heap: list[tuple[tuple, int, int]] = []
    for si, seg in enumerate(segments):
        if seg.records:
            heap.append((sort_key(seg.records[0][0]), si, 0))
    heapq.heapify(heap)
    while heap:
        _k, si, ri = heapq.heappop(heap)
        yield segments[si].records[ri]
        ri += 1
        if ri < len(segments[si].records):
            heapq.heappush(
                heap, (sort_key(segments[si].records[ri][0]), si, ri)
            )


def group_sorted(stream: Iterable[KeyValue]) -> Iterator[tuple[object, list[object]]]:
    """Group a key-sorted record stream into (key, values) runs.

    This is the reducer's input iterator: one group per distinct key,
    in sorted order, values in arrival order.
    """
    current_key: object = None
    values: list[object] = []
    have_key = False
    for key, value in stream:
        if have_key and sort_key(key) == sort_key(current_key):
            values.append(value)
        else:
            if have_key:
                yield current_key, values
            current_key = key
            values = [value]
            have_key = True
    if have_key:
        yield current_key, values


@dataclass
class ShuffleService:
    """Collects every map task's segments and serves reducers.

    ``fetch(partition)`` merges all runs addressed to the partition —
    the reduce-side merge phase — and reports how many segments (and
    estimated bytes) crossed the shuffle, which the engine's traffic
    factors model in time.
    """

    n_partitions: int
    _segments: dict[int, list[SpillSegment]] = field(default_factory=dict)
    total_segments: int = 0
    total_bytes_estimate: int = 0

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")

    def register(self, segments: Iterable[SpillSegment]) -> None:
        for seg in segments:
            if not 0 <= seg.partition < self.n_partitions:
                raise IndexError(f"partition {seg.partition} out of range")
            self._segments.setdefault(seg.partition, []).append(seg)
            self.total_segments += 1
            self.total_bytes_estimate += seg.n_bytes_estimate

    def fetch(self, partition: int) -> Iterator[tuple[object, list[object]]]:
        """Merged, grouped input for one reducer."""
        if not 0 <= partition < self.n_partitions:
            raise IndexError(f"partition {partition} out of range")
        segments = self._segments.get(partition, [])
        return group_sorted(merge_segments(segments))
