"""Discrete-event core: a stable-order event queue.

A minimal priority queue keyed on (time, sequence) so simultaneous
events fire in insertion order — the property that keeps the simulator
deterministic regardless of callback content.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    payload: Any = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventQueue:
    """Time-ordered event queue with cancellation.

    Events are arbitrary payloads; :meth:`pop` returns ``(time,
    payload)`` in non-decreasing time order.  :meth:`schedule` returns
    a handle that :meth:`cancel` invalidates lazily (the entry is
    skipped when it surfaces), the standard heapq idiom.
    """

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the last popped event (simulation clock)."""
        return self._now

    def schedule(self, time: float, payload: Any) -> _Entry:
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        entry = _Entry(time=float(time), seq=next(self._counter), payload=payload)
        heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, handle: _Entry) -> None:
        handle.cancelled = True

    def pop(self) -> Optional[tuple[float, Any]]:
        """Next live event, or ``None`` when the queue is exhausted."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self._now = entry.time
            return entry.time, entry.payload
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def run(self, handler: Callable[[float, Any], None], *, until: float = float("inf")) -> None:
        """Drain the queue through ``handler`` until empty or ``until``."""
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > until:
                return
            time, payload = self.pop()  # type: ignore[misc]
            handler(time, payload)
