"""MapReduce engine: functional semantics plus timing simulation.

Two cooperating layers reproduce Hadoop:

* :mod:`repro.mapreduce.functional` — a real (in-memory) MapReduce
  runtime: input splits, mappers, optional combiners, hash
  partitioning, per-reducer key-sorted reduce.  It executes the
  workloads' actual kernels and is used by correctness tests and the
  examples.
* :mod:`repro.mapreduce.engine` — a discrete-event *timing* simulator
  of jobs on microserver nodes.  Jobs progress wave by wave at fluid
  rates derived from the shared cost kernel; co-located jobs slow each
  other exactly as :func:`repro.model.costmodel.pair_metrics`
  prescribes, and the engine additionally produces time-resolved
  utilisation/power traces for the telemetry samplers.
"""

from repro.mapreduce.events import EventQueue
from repro.mapreduce.functional import MapReduceRuntime, JobOutput
from repro.mapreduce.job import JobSpec, JobResult
from repro.mapreduce.engine import NodeEngine, ClusterEngine, IntervalRecord

__all__ = [
    "EventQueue",
    "MapReduceRuntime",
    "JobOutput",
    "JobSpec",
    "JobResult",
    "NodeEngine",
    "ClusterEngine",
    "IntervalRecord",
]
