"""Job specifications and results for the timing engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.model.config import JobConfig
from repro.workloads.base import AppInstance

_job_ids = itertools.count(1)


@dataclass(frozen=True)
class JobSpec:
    """One job submitted to the timing engine."""

    instance: AppInstance
    config: JobConfig
    job_id: int = field(default_factory=lambda: next(_job_ids))
    submit_time: float = 0.0
    #: Override of the shuffle's remote fraction (None → the constants'
    #: 8-node default); distributed jobs set (n−1)/n per sub-job.
    remote_fraction: float | None = None
    #: Barrier group id for multi-node jobs (all parts share one id).
    group_id: int | None = None

    @property
    def label(self) -> str:
        return f"job{self.job_id}:{self.instance.label}@{self.config.label}"


@dataclass(frozen=True)
class JobResult:
    """Completion record of one simulated job."""

    spec: JobSpec
    node_id: int
    start_time: float
    finish_time: float
    energy_joules: float  # node energy attributed over the job's lifetime

    @property
    def duration(self) -> float:
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        return self.start_time - self.spec.submit_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<JobResult {self.spec.label} node={self.node_id} "
            f"T={self.duration:.1f}s E={self.energy_joules:.0f}J>"
        )
