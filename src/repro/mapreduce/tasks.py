"""Task-level job execution over HDFS with locality-aware scheduling.

Bridges the mini-HDFS and the functional runtime the way Hadoop's
JobTracker bridges the NameNode and TaskTrackers: one map task per
input split, tasks preferentially assigned to workers holding a local
replica (with a bounded *delay-scheduling* wait before accepting a
remote assignment), spill/merge shuffle via
:mod:`repro.mapreduce.shuffle`, and per-job counters (data-local vs
remote tasks, spills, shuffled bytes) matching the counters a real job
report shows.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, MutableSequence, Sequence

from repro.hdfs.blocks import Block
from repro.hdfs.filesystem import MiniHdfs
from repro.mapreduce.shuffle import MapOutputBuffer, ShuffleService
from repro.workloads.base import Application, KeyValue


@dataclass(frozen=True)
class MapTaskAttempt:
    """One execution attempt of a map task.

    A failed attempt (``succeeded=False``) commits no output — Hadoop
    discards a failed attempt's spills — and the task re-executes as a
    fresh attempt on the next worker in round-robin order.
    """

    task_id: int
    block_id: str
    worker: int
    data_local: bool
    n_records_in: int
    n_records_out: int
    n_spills: int
    succeeded: bool = True


@dataclass(frozen=True)
class TaskJobCounters:
    """Job-report counters (the familiar Hadoop summary block)."""

    n_map_tasks: int
    n_reduce_tasks: int
    data_local_maps: int
    remote_maps: int
    map_input_records: int
    map_output_records: int
    reduce_output_records: int
    total_spills: int
    shuffled_segments: int
    shuffled_bytes_estimate: int
    failed_map_attempts: int = 0

    @property
    def locality_fraction(self) -> float:
        if self.n_map_tasks == 0:
            return 1.0
        return self.data_local_maps / self.n_map_tasks

    def inconsistencies(
        self, attempts: "Sequence[MapTaskAttempt]"
    ) -> list[str]:
        """Cross-validate these counters against the raw attempt log.

        The conservation laws a correct runner cannot break: every map
        task is either data-local or remote, successful attempts match
        the task count, failed attempts match the failure counter, and
        record/spill totals equal the sums over successful attempts
        (failed attempts commit nothing).  Returns human-readable
        violation messages — empty means the summary is faithful.
        """
        failures: list[str] = []
        succeeded = [a for a in attempts if a.succeeded]
        failed = [a for a in attempts if not a.succeeded]
        checks = (
            ("n_map_tasks", self.n_map_tasks, len(succeeded)),
            ("failed_map_attempts", self.failed_map_attempts, len(failed)),
            (
                "data_local_maps + remote_maps",
                self.data_local_maps + self.remote_maps,
                self.n_map_tasks,
            ),
            (
                "data_local_maps",
                self.data_local_maps,
                sum(1 for a in succeeded if a.data_local),
            ),
            (
                "map_input_records",
                self.map_input_records,
                sum(a.n_records_in for a in succeeded),
            ),
            (
                "map_output_records",
                self.map_output_records,
                sum(a.n_records_out for a in succeeded),
            ),
            (
                "total_spills",
                self.total_spills,
                sum(a.n_spills for a in succeeded),
            ),
        )
        for name, reported, derived in checks:
            if reported != derived:
                failures.append(
                    f"{name}: counter says {reported}, attempt log says {derived}"
                )
        return failures


RecordReader = Callable[[Block, int], Iterator[KeyValue]]


class BlockWorkQueue:
    """Pending map-task blocks indexed by replica node.

    The locality scheduler's old path scanned the whole pending list
    per assignment looking for the first block with a local replica —
    O(blocks) per task, O(blocks²) per job, which dominates large jobs
    on big clusters.  This queue keeps the global FIFO *and* one
    per-node FIFO of candidate blocks (built from the namenode's
    placement in O(blocks × replication)), so a local pick is O(1)
    amortised: the head of a node's candidate queue *is* the first
    pending block with a replica there.  Taken blocks are tombstoned
    and skipped lazily, so every queue preserves exact pending order
    and the assignment sequence matches the scan's byte for byte.

    The per-node index snapshots placement at construction; the
    scheduler re-verifies locality against the live namenode before
    honouring a candidate (a dropped replica is skipped), but blocks
    that *gain* replicas mid-job are not re-indexed — within a job run
    placement is fixed, which is the runner's actual usage.
    """

    def __init__(self, blocks: Sequence[Block], namenode) -> None:
        self.namenode = namenode
        self._fifo: deque[Block] = deque(blocks)
        self._taken: set[str] = set()
        self._by_node: dict[int, deque[Block]] = {}
        for block in blocks:
            for node_id in namenode.locate(block.block_id):
                self._by_node.setdefault(node_id, deque()).append(block)
        self._n = len(self._fifo)

    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0

    def __iter__(self) -> Iterator[Block]:
        taken = self._taken
        return (b for b in self._fifo if b.block_id not in taken)

    def _take(self, block: Block) -> Block:
        self._taken.add(block.block_id)
        self._n -= 1
        return block

    def pop_local(self, node_id: int) -> Block | None:
        """First pending block with a live replica on ``node_id``."""
        queue = self._by_node.get(node_id)
        if not queue:
            return None
        namenode = self.namenode
        while queue:
            block = queue[0]
            if block.block_id in self._taken:
                queue.popleft()
                continue
            if not namenode.is_local(block.block_id, node_id):
                # Replica dropped since indexing (node failure).
                queue.popleft()
                continue
            queue.popleft()
            return self._take(block)
        return None

    def pop_head(self) -> Block | None:
        """Oldest pending block (the remote-assignment fallback)."""
        fifo = self._fifo
        while fifo:
            block = fifo[0]
            if block.block_id in self._taken:
                fifo.popleft()
                continue
            fifo.popleft()
            return self._take(block)
        return None


def synthetic_record_reader(app: Application, records_per_block: int = 200) -> RecordReader:
    """A record reader generating each block's records from its identity.

    Real HDFS blocks hold bytes; our blocks are metadata, so the reader
    deterministically derives the block's records from the application's
    generator seeded by the block index — the same block always yields
    the same records, which is what correctness tests rely on.
    """
    if records_per_block < 1:
        raise ValueError("records_per_block must be >= 1")

    def read(block: Block, _worker: int) -> Iterator[KeyValue]:
        return app.generate_records(records_per_block, seed=block.index)

    return read


@dataclass
class LocalityScheduler:
    """Delay scheduling: prefer local assignments, accept remote late.

    Workers request tasks round-robin.  A worker receives a data-local
    task when one exists; otherwise it waits (skips its turn) up to
    ``max_skips`` times before taking a remote task — the standard
    delay-scheduling trade between locality and utilisation.

    On a heterogeneous cluster the remote fallback is class-ranked:
    ``worker_classes`` tags each worker with its node-class index and
    ``class_extra_skips`` charges slower classes extra skip rounds
    before they may steal remote work, so a remote candidate drifts
    toward the faster class whenever both are idle.  Local assignments
    are never delayed — shipping a local task elsewhere always costs
    more than running it in place.  Both knobs default to off, in
    which case scheduling is byte-identical to the homogeneous path.
    """

    hdfs: MiniHdfs
    n_workers: int
    max_skips: int = 2
    worker_classes: Sequence[int] | None = None
    class_extra_skips: Mapping[int, int] | None = None
    _skips: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.max_skips < 0:
            raise ValueError("max_skips must be >= 0")
        if self.worker_classes is not None:
            if len(self.worker_classes) != self.n_workers:
                raise ValueError(
                    "worker_classes must tag every worker: got "
                    f"{len(self.worker_classes)} tags for {self.n_workers} workers"
                )
        if self.class_extra_skips is not None:
            if self.worker_classes is None:
                raise ValueError(
                    "class_extra_skips requires worker_classes"
                )
            if any(v < 0 for v in self.class_extra_skips.values()):
                raise ValueError("class_extra_skips values must be >= 0")

    def _max_skips_for(self, worker: int) -> int:
        """Remote-work patience for ``worker`` (class-adjusted)."""
        if self.worker_classes is None or self.class_extra_skips is None:
            return self.max_skips
        tag = self.worker_classes[worker]
        return self.max_skips + self.class_extra_skips.get(tag, 0)

    @property
    def max_patience(self) -> int:
        """The largest skip budget any worker can hold (starvation bound)."""
        if self.worker_classes is None or self.class_extra_skips is None:
            return self.max_skips
        return self.max_skips + max(self.class_extra_skips.values(), default=0)

    def assign(
        self, pending: MutableSequence[Block], worker: int
    ) -> tuple[Block, bool] | None:
        """Pick a block for ``worker``; returns (block, data_local).

        Returns ``None`` when the worker should wait this round (delay
        scheduling) even though remote work exists.  ``pending`` may be
        a list or (preferably) a :class:`collections.deque` — the
        remote-work path takes the queue head, which a list removes by
        shifting every remaining element (O(n) per remote task, O(n²)
        per job) while a deque removes in O(1).  ``del pending[i]``
        keeps the same FIFO order on either container, so the
        assignment sequence is identical.
        """
        if not pending:
            return None
        node = worker % self.hdfs.n_nodes
        if isinstance(pending, BlockWorkQueue):
            # Indexed path: the first pending block with a local replica
            # is the head of the node's candidate queue — O(1) amortised
            # instead of the O(blocks) scan below, same assignment.
            block = pending.pop_local(node)
            if block is not None:
                self._skips[worker] = 0
                return block, True
            skips = self._skips.get(worker, 0)
            if skips < self._max_skips_for(worker):
                self._skips[worker] = skips + 1
                return None
            self._skips[worker] = 0
            head = pending.pop_head()
            assert head is not None  # pending was non-empty
            return head, False
        for i, block in enumerate(pending):
            if self.hdfs.namenode.is_local(block.block_id, node):
                self._skips[worker] = 0
                del pending[i]
                return block, True
        skips = self._skips.get(worker, 0)
        if skips < self._max_skips_for(worker):
            self._skips[worker] = skips + 1
            return None
        self._skips[worker] = 0
        head = pending[0]
        del pending[0]
        return head, False


class TaskJobRunner:
    """Executes one application over an HDFS file, task by task."""

    def __init__(
        self,
        hdfs: MiniHdfs,
        *,
        n_workers: int = 8,
        n_reducers: int = 2,
        buffer_records: int = 500,
        use_combiner: bool = True,
        max_skips: int = 2,
        max_attempts: int = 4,
    ) -> None:
        if n_reducers < 1:
            raise ValueError("n_reducers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.hdfs = hdfs
        self.n_workers = n_workers
        self.n_reducers = n_reducers
        self.buffer_records = buffer_records
        self.use_combiner = use_combiner
        self.max_attempts = max_attempts
        self.scheduler = LocalityScheduler(hdfs, n_workers, max_skips=max_skips)

    def _partition(self, key: object) -> int:
        return hash(repr(key)) % self.n_reducers

    def _run_map_task(
        self,
        app: Application,
        block: Block,
        worker: int,
        data_local: bool,
        task_id: int,
        reader: RecordReader,
        shuffle: ShuffleService,
    ) -> MapTaskAttempt:
        from collections import defaultdict

        buffer = MapOutputBuffer(self.n_reducers, buffer_records=self.buffer_records)
        n_in = n_out = 0
        raw: list[KeyValue] = []
        for key, value in reader(block, worker):
            n_in += 1
            raw.extend(app.mapper(key, value))
        if self.use_combiner and app.has_combiner:
            grouped: dict[object, list[object]] = defaultdict(list)
            for k, v in raw:
                grouped[k].append(v)
            combined: list[KeyValue] = []
            for k in grouped:
                combined.extend(app.combiner(k, grouped[k]))
            raw = combined
        for k, v in raw:
            n_out += 1
            buffer.emit(self._partition(k), k, v)
        segments = buffer.close()
        shuffle.register(segments)
        return MapTaskAttempt(
            task_id=task_id,
            block_id=block.block_id,
            worker=worker,
            data_local=data_local,
            n_records_in=n_in,
            n_records_out=n_out,
            n_spills=buffer.n_spills,
        )

    def run(
        self,
        app: Application,
        file_name: str,
        *,
        reader: RecordReader | None = None,
        fault_hook: Callable[[int, int], bool] | None = None,
    ) -> tuple[list[KeyValue], TaskJobCounters, list[MapTaskAttempt]]:
        """Run the job; returns (output records, counters, attempts).

        ``fault_hook(task_id, attempt_no)`` — when given — is consulted
        before each attempt commits; returning ``True`` kills it.  The
        failed attempt contributes no output and the task re-executes
        on the next worker (round-robin, Hadoop's re-schedule-elsewhere
        policy) as a fresh attempt, up to ``max_attempts`` per task;
        exhausting them fails the whole job, as Hadoop does.
        """
        if reader is None:
            reader = synthetic_record_reader(app)
        pending = BlockWorkQueue(
            self.hdfs.splits_for(file_name), self.hdfs.namenode
        )
        shuffle = ShuffleService(self.n_reducers)
        attempts: list[MapTaskAttempt] = []
        task_id = 0
        worker = 0
        idle_rounds = 0
        while pending:
            assignment = self.scheduler.assign(pending, worker)
            if assignment is not None:
                block, data_local = assignment
                attempt_worker = worker
                for attempt_no in range(self.max_attempts):
                    if fault_hook is not None and fault_hook(task_id, attempt_no):
                        attempts.append(
                            MapTaskAttempt(
                                task_id=task_id,
                                block_id=block.block_id,
                                worker=attempt_worker,
                                data_local=data_local,
                                n_records_in=0,
                                n_records_out=0,
                                n_spills=0,
                                succeeded=False,
                            )
                        )
                        attempt_worker = (attempt_worker + 1) % self.n_workers
                        data_local = self.hdfs.namenode.is_local(
                            block.block_id, attempt_worker % self.hdfs.n_nodes
                        )
                        continue
                    attempts.append(
                        self._run_map_task(
                            app, block, attempt_worker, data_local,
                            task_id, reader, shuffle,
                        )
                    )
                    break
                else:
                    raise RuntimeError(
                        f"task {task_id} failed {self.max_attempts} attempts"
                    )
                task_id += 1
                idle_rounds = 0
            else:
                idle_rounds += 1
                if idle_rounds > self.n_workers * (self.scheduler.max_patience + 1):
                    raise RuntimeError("scheduler starved with pending tasks")
            worker = (worker + 1) % self.n_workers

        output: list[KeyValue] = []
        reduce_out = 0
        for partition in range(self.n_reducers):
            for key, values in shuffle.fetch(partition):
                for kv in app.reducer(key, values):
                    output.append(kv)
                    reduce_out += 1
        ok = [a for a in attempts if a.succeeded]
        counters = TaskJobCounters(
            n_map_tasks=len(ok),
            n_reduce_tasks=self.n_reducers,
            data_local_maps=sum(1 for a in ok if a.data_local),
            remote_maps=sum(1 for a in ok if not a.data_local),
            map_input_records=sum(a.n_records_in for a in ok),
            map_output_records=sum(a.n_records_out for a in ok),
            reduce_output_records=reduce_out,
            total_spills=sum(a.n_spills for a in ok),
            shuffled_segments=shuffle.total_segments,
            shuffled_bytes_estimate=shuffle.total_bytes_estimate,
            failed_map_attempts=len(attempts) - len(ok),
        )
        return output, counters, attempts
