"""Discrete-event timing engine for MapReduce jobs on microservers.

Execution model
---------------
Each running job is a *fluid activity*: the shared cost kernel
(:func:`repro.model.costmodel.standalone_metrics_scalar`) gives its
standalone duration and resource-demand profile under the current
co-location context (LLC module sharing, footprint overcommit, disk
stream count).  Co-resident jobs all progress at rate ``1/stretch``
where ``stretch`` is the fluid oversubscription factor of
:func:`repro.model.costmodel.fluid_stretch`.

Whenever the running set of a node changes (submit/finish), every
affected job's context is re-evaluated and its remaining work is
carried over as a *fraction* of the new standalone duration — work is
conserved exactly across context switches.  Between events the node is
in a fixed configuration, and the engine records one
:class:`IntervalRecord` per such segment: the time-resolved power and
utilisation trace the telemetry samplers (perf/dstat/Wattsup) consume.

The closed-form :func:`~repro.model.costmodel.pair_metrics` is this
engine's two-job special case, up to one documented approximation (the
closed form keeps the co-location context during the tail segment; the
engine re-evaluates it) — the consistency test-suite bounds the gap.

Hot path
--------
Three structures keep the per-event cost flat (see
``docs/ARCHITECTURE.md`` §"The indexed event core"):

* the **scalar cost kernel** — per-job metrics are plain floats,
  bit-identical to the broadcastable NumPy path but with zero array
  allocations;
* the **recontext cache** (:class:`RecontextCache`) — identical
  ``(profile, config, co-runner context)`` running sets share one
  memoized metric evaluation, with hit/miss counters surfaced through
  :class:`repro.telemetry.profiling.EngineTelemetry`;
* the **indexed event core** — nodes advance lazily (only when their
  own membership changes), and the cluster keeps at most one live
  completion entry per node in its event heap, invalidated by a
  per-node generation counter instead of speculative re-arming.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.events import EventQueue
from repro.mapreduce.indexes import FreeCoreIndex, PendingQueue
from repro.mapreduce.job import JobResult, JobSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.costmodel import (
    JobMetrics,
    ScalarJobMetrics,
    colocation_context_scalar,
    fluid_stretch,
    standalone_metrics_scalar,
)
from repro.telemetry.tracing import NULL_TRACER

def _new_telemetry():
    # Imported lazily: repro.telemetry.dstat consumes IntervalRecord
    # from this module, so a module-level import would be circular.
    from repro.telemetry.profiling import EngineTelemetry

    return EngineTelemetry()


@dataclass(frozen=True)
class IntervalRecord:
    """One constant-configuration segment of a node's execution."""

    node_id: int
    start: float
    end: float
    power_watts: float
    stretch: float
    job_ids: tuple[int, ...]
    u_cpu_per_job: tuple[float, ...]  # per-core busy fraction of each job
    u_disk: float  # node disk utilisation in the segment
    u_net: float
    u_mem: float
    frequency_per_job: tuple[float, ...]
    mappers_per_job: tuple[int, ...]

    @property
    def duration(self) -> float:
        return self.end - self.start


# ------------------------------------------------------------- recorders
class _WindowIndex:
    """Indexed (busy energy, busy seconds) window queries over segments.

    Segments arrive in time order and never overlap, so a window query
    needs only the overlapping run ``[i, j)`` — found by bisection —
    instead of the full linear scan the recorders used to pay per
    query (O(segments) each, O(samples × segments) for a 1 Hz
    resampling pass).  Two paths, both bit-identical to the scan:

    * **head-anchored prefix sums** — a window covering the trace head
      reads the running prefix sums directly (they were accumulated in
      the same left-to-right order the scan adds in, so the floats
      match bit for bit) plus one partial tail segment: O(log n);
    * **bounded scan** — an interior window scans only ``[i, j)``; the
      skipped segments contributed nothing to the old scan, so the
      additions performed are exactly the same: O(log n + overlap).

    Interior windows cannot use prefix-sum *differences*: subtracting
    two rounded partial sums re-associates the float additions and
    drifts from the scan by an ulp — enough to break the byte-identity
    the golden suite pins.
    """

    def __init__(self) -> None:
        self.starts: list[float] = []
        self.ends: list[float] = []
        self.watts: list[float] = []
        self._cum_energy: list[float] = []
        self._cum_time: list[float] = []
        self._ordered = True

    def add(self, start: float, end: float, watts: float) -> None:
        if self.ends and start < self.ends[-1]:
            self._ordered = False
        prev_e = self._cum_energy[-1] if self._cum_energy else 0.0
        prev_t = self._cum_time[-1] if self._cum_time else 0.0
        self.starts.append(start)
        self.ends.append(end)
        self.watts.append(watts)
        self._cum_energy.append(prev_e + watts * (end - start))
        self._cum_time.append(prev_t + (end - start))

    def _scan(self, lo_i: int, hi_i: int, t0: float, t1: float) -> tuple[float, float]:
        busy = 0.0
        covered = 0.0
        for k in range(lo_i, hi_i):
            lo, hi = max(self.starts[k], t0), min(self.ends[k], t1)
            if hi > lo:
                busy += self.watts[k] * (hi - lo)
                covered += hi - lo
        return busy, covered

    def query(self, t0: float, t1: float) -> tuple[float, float]:
        n = len(self.starts)
        if n == 0:
            return 0.0, 0.0
        if not self._ordered:
            return self._scan(0, n, t0, t1)
        i = bisect_right(self.ends, t0)  # first segment with end > t0
        j = bisect_left(self.starts, t1)  # first segment with start >= t1
        if i >= j:
            return 0.0, 0.0
        if i == 0 and t0 <= self.starts[0]:
            # Head-anchored: segments [0, j-1) lie fully inside the
            # window, so their contribution is the running prefix sum;
            # only the last overlapping segment can be cut by t1.
            busy = self._cum_energy[j - 2] if j >= 2 else 0.0
            covered = self._cum_time[j - 2] if j >= 2 else 0.0
            lo = max(self.starts[j - 1], t0)
            hi = min(self.ends[j - 1], t1)
            if hi > lo:
                busy += self.watts[j - 1] * (hi - lo)
                covered += hi - lo
            return busy, covered
        return self._scan(i, j, t0, t1)


class FullIntervalRecorder:
    """Default recorder: one :class:`IntervalRecord` per segment."""

    mode = "full"

    def __init__(self) -> None:
        self.intervals: list[IntervalRecord] = []
        self._index = _WindowIndex()

    def record(
        self,
        engine: "NodeEngine",
        start: float,
        end: float,
        watts: float,
        stretch: float,
        u_disk: float,
        u_net: float,
        u_mem: float,
    ) -> None:
        self.intervals.append(
            IntervalRecord(
                node_id=engine.node_id,
                start=start,
                end=end,
                power_watts=watts,
                stretch=stretch,
                job_ids=tuple(r.spec.job_id for r in engine.running),
                u_cpu_per_job=tuple(
                    r.metrics.u_cpu / stretch for r in engine.running
                ),
                u_disk=u_disk,
                u_net=u_net,
                u_mem=u_mem,
                frequency_per_job=tuple(
                    r.spec.config.frequency for r in engine.running
                ),
                mappers_per_job=tuple(
                    r.spec.config.n_mappers for r in engine.running
                ),
            )
        )
        self._index.add(start, end, watts)
        engine.telemetry.record_segment(engine.node_id)

    def busy_between(self, t0: float, t1: float) -> tuple[float, float]:
        """(busy energy, busy seconds) overlapping ``[t0, t1]``."""
        return self._index.query(t0, t1)


class ColumnarIntervalRecorder:
    """Memory-lean recorder: parallel scalar columns, no per-job tuples.

    Long streaming runs accumulate one Python float per column per
    segment instead of an :class:`IntervalRecord` with three tuples —
    windowed energy queries still work, job-level trace reconstruction
    does not.
    """

    mode = "columnar"

    def __init__(self) -> None:
        self._index = _WindowIndex()
        self.stretch: list[float] = []
        self.u_disk: list[float] = []
        self.u_net: list[float] = []
        self.u_mem: list[float] = []
        self.n_jobs: list[int] = []

    @property
    def starts(self) -> list[float]:
        return self._index.starts

    @property
    def ends(self) -> list[float]:
        return self._index.ends

    @property
    def power_watts(self) -> list[float]:
        return self._index.watts

    def record(self, engine, start, end, watts, stretch, u_disk, u_net, u_mem):
        self._index.add(start, end, watts)
        self.stretch.append(stretch)
        self.u_disk.append(u_disk)
        self.u_net.append(u_net)
        self.u_mem.append(u_mem)
        self.n_jobs.append(len(engine.running))
        engine.telemetry.record_segment(engine.node_id)

    def busy_between(self, t0: float, t1: float) -> tuple[float, float]:
        return self._index.query(t0, t1)


class NullIntervalRecorder:
    """No per-segment storage at all (prefix-sum accounting only)."""

    mode = "off"

    def record(self, engine, start, end, watts, stretch, u_disk, u_net, u_mem):
        pass

    def busy_between(self, t0: float, t1: float) -> tuple[float, float]:
        raise RuntimeError(
            "windowed energy queries need an interval recorder; this engine "
            "runs with recorder='off' (only full-horizon energy is available)"
        )


#: Default retained-segment bound of the streaming recorder.
STREAMING_RECORDER_BOUND = 4096


class StreamingIntervalRecorder:
    """Bounded recorder: a sliding window of recent segments.

    Long steady-state runs at 256+ nodes accumulate millions of
    segments under the full/columnar recorders — unbounded memory for
    traces nothing reads.  This recorder retains only the newest
    ``bound`` segments per node; older ones collapse into running
    (energy, seconds) totals accumulated left-to-right, in exactly the
    addition order the full recorder's prefix sums use, so every query
    it *can* answer is bit-identical to the full recorder's answer:

    * head-anchored windows whose right edge is past the dropped
      region read ``dropped totals + retained prefix``, which is the
      same float sequence as the full recorder's running prefix sum;
    * interior windows entirely over retained segments use the same
      bounded scan.

    A window whose edge falls *inside* the dropped region cannot be
    reconstructed and raises ``RuntimeError`` — the caller asked for
    history the bound discarded, and a silently-wrong answer would be
    worse.  Full-horizon ``energy_between`` never reaches a recorder
    (node prefix sums answer it), so bounded retention is invisible to
    the standard energy accounting.
    """

    mode = "streaming"

    def __init__(self, bound: int = STREAMING_RECORDER_BOUND) -> None:
        if bound < 1:
            raise ValueError("streaming recorder bound must be >= 1")
        self.bound = bound
        self.starts: list[float] = []
        self.ends: list[float] = []
        self.watts: list[float] = []
        self._cum_energy: list[float] = []  # global prefix incl. drops
        self._cum_time: list[float] = []
        self._lo = 0  # first retained physical slot
        self.dropped = 0
        self._dropped_energy = 0.0
        self._dropped_time = 0.0
        self._drop_end = float("-inf")  # end of the last dropped segment
        self._first_start: float | None = None

    @property
    def retained(self) -> int:
        return len(self.starts) - self._lo

    def record(self, engine, start, end, watts, stretch, u_disk, u_net, u_mem):
        if self.starts and start < self.ends[-1]:
            raise RuntimeError(
                "streaming recorder requires time-ordered segments"
            )
        if self._first_start is None:
            self._first_start = start
        prev_e = self._cum_energy[-1] if self._cum_energy else 0.0
        prev_t = self._cum_time[-1] if self._cum_time else 0.0
        self.starts.append(start)
        self.ends.append(end)
        self.watts.append(watts)
        self._cum_energy.append(prev_e + watts * (end - start))
        self._cum_time.append(prev_t + (end - start))
        engine.telemetry.record_segment(engine.node_id)
        if self.retained > self.bound:
            lo = self._lo
            # The global prefix sums *are* the dropped totals: same
            # additions, same order as the full recorder performed.
            self._dropped_energy = self._cum_energy[lo]
            self._dropped_time = self._cum_time[lo]
            self._drop_end = self.ends[lo]
            self.dropped += 1
            self._lo = lo + 1
            engine.telemetry.record_segments_dropped(engine.node_id)
            if self._lo > 2 * self.bound:
                del self.starts[: self._lo]
                del self.ends[: self._lo]
                del self.watts[: self._lo]
                del self._cum_energy[: self._lo]
                del self._cum_time[: self._lo]
                self._lo = 0

    def busy_between(self, t0: float, t1: float) -> tuple[float, float]:
        lo, n = self._lo, len(self.starts)
        if self._first_start is None:
            return 0.0, 0.0
        head = False
        if self.dropped:
            if t1 <= self._first_start:
                return 0.0, 0.0
            if t0 <= self._first_start and t1 >= self._drop_end:
                head = True  # every dropped segment lies inside the window
            elif t0 < self._drop_end:
                raise RuntimeError(
                    "window predates the streaming recorder's retention "
                    f"bound ({self.bound} segments); use recorder='full'"
                )
        i = bisect_right(self.ends, t0, lo, n)  # first retained end > t0
        j = bisect_left(self.starts, t1, lo, n)  # first retained start >= t1
        if head:
            if j <= lo:
                # Covers all dropped segments, overlaps no retained one.
                return self._dropped_energy, self._dropped_time
            # Head-anchored: dropped segments plus retained [lo, j-1)
            # lie fully inside; read the global prefix sum directly
            # (bit-identical to the full recorder's prefix path, whose
            # running sums were accumulated in the same order).
            if j - 1 > lo:
                busy = self._cum_energy[j - 2]
                covered = self._cum_time[j - 2]
            else:
                busy = self._dropped_energy
                covered = self._dropped_time
            s0 = max(self.starts[j - 1], t0)
            s1 = min(self.ends[j - 1], t1)
            if s1 > s0:
                busy += self.watts[j - 1] * (s1 - s0)
                covered += s1 - s0
            return busy, covered
        if i >= j:
            return 0.0, 0.0
        if not self.dropped and i == lo and t0 <= self.starts[lo]:
            # Nothing dropped yet (so lo == 0 and the global prefix
            # sums cover exactly the retained run): the full recorder's
            # head-anchored path, unchanged.
            busy = self._cum_energy[j - 2] if j - 1 > lo else 0.0
            covered = self._cum_time[j - 2] if j - 1 > lo else 0.0
            s0 = max(self.starts[j - 1], t0)
            s1 = min(self.ends[j - 1], t1)
            if s1 > s0:
                busy += self.watts[j - 1] * (s1 - s0)
                covered += s1 - s0
            return busy, covered
        busy = 0.0
        covered = 0.0
        for k in range(i, j):
            s0, s1 = max(self.starts[k], t0), min(self.ends[k], t1)
            if s1 > s0:
                busy += self.watts[k] * (s1 - s0)
                covered += s1 - s0
        return busy, covered


_RECORDERS: dict[str, Callable[[], object]] = {
    "full": FullIntervalRecorder,
    "columnar": ColumnarIntervalRecorder,
    "off": NullIntervalRecorder,
    "streaming": StreamingIntervalRecorder,
}


def make_recorder(mode: str):
    """Instantiate an interval recorder by mode name.

    ``"streaming"`` accepts an optional retained-segment bound as
    ``"streaming:<N>"`` (default :data:`STREAMING_RECORDER_BOUND`).
    """
    base, _, arg = mode.partition(":")
    if base == "streaming" and arg:
        try:
            bound = int(arg)
        except ValueError:
            raise ValueError(
                f"bad streaming recorder bound {arg!r} in mode {mode!r}"
            ) from None
        return StreamingIntervalRecorder(bound)
    try:
        return _RECORDERS[mode]()
    except KeyError:
        raise ValueError(
            f"unknown recorder mode {mode!r}; valid: {', '.join(_RECORDERS)}"
        ) from None


# --------------------------------------------------------- metrics cache
#: One running job's identity inside a recontext key.
_JobKey = tuple

#: A cache key: ("set", *identities) or ("job", identity, context).
RecontextKey = tuple


class RecontextCache:
    """Bounded LRU over memoized recontext evaluations.

    A steady-state run re-creates identical co-location situations
    thousands of times, and the cost-kernel output is a pure function
    of its inputs, so one evaluation serves them all.  Two key shapes
    share the store:

    * ``("set", identity, ...)`` — a whole running set (ordered job
      identities) mapped to its tuple of metrics.  One lookup
      short-circuits the entire recontext.
    * ``("job", identity, (mpki_scale, disk_scale, extra_streams))`` —
      one job under one co-runner context, mapped to its metrics.  The
      fallback when the exact set is new: most of a *new* set's
      members have still been seen under the same context before
      (this is the ``(profile, config, co-runner context)`` key).

    Entries store an *echo* of their key next to the value: a slot
    whose echo disagrees with the lookup key (a poisoned or corrupted
    entry) is discarded and recomputed rather than trusted, and the
    rejection is counted on the telemetry object.  Hit/miss accounting
    is the caller's job (the engine counts per-job metric requests).
    """

    def __init__(self, maxsize: int = 8192, *, telemetry=None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.telemetry = telemetry if telemetry is not None else _new_telemetry()
        self._data: OrderedDict[RecontextKey, tuple[RecontextKey, object]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    def get(self, key: RecontextKey):
        """Cached value for ``key``, or None."""
        slot = self._data.get(key)
        if slot is None:
            return None
        echo, value = slot
        if echo != key:
            # Poisoned entry: its stored key echo disagrees with the
            # slot it sits in.  Drop it and report a miss.
            del self._data[key]
            self.telemetry.record_reject()
            return None
        self._data.move_to_end(key)
        return value

    def put(self, key: RecontextKey, value) -> None:
        self._data[key] = (key, value)
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)


def _running_key(r: "_Running") -> _JobKey:
    spec = r.spec
    cfg = spec.config
    return (
        spec.instance.profile,
        spec.instance.data_bytes,
        cfg.frequency,
        cfg.block_size,
        cfg.n_mappers,
        spec.remote_fraction,
    )


@dataclass
class _Running:
    spec: JobSpec
    start_time: float
    metrics: ScalarJobMetrics | None  # under the current context
    remaining: float  # remaining standalone seconds under current context
    energy: float = 0.0
    #: Straggler multiplier on this job's progress rate (1.0 = healthy).
    #: A straggling job burns remaining work at ``1/(stretch*slowdown)``.
    slowdown: float = 1.0

    @property
    def fraction_left(self) -> float:
        assert self.metrics is not None
        return self.remaining / self.metrics.duration


class NodeEngine:
    """Event-driven simulation of one node.

    ``generation`` increments on every membership change (submit or
    completion); the cluster tags its completion-heap entries with it
    so stale entries are skipped in O(1) instead of re-armed.
    """

    def __init__(
        self,
        node: NodeSpec = ATOM_C2758,
        *,
        node_id: int = 0,
        constants: SimConstants = DEFAULT_CONSTANTS,
        cache: RecontextCache | None = None,
        recorder: str = "full",
        tracer=NULL_TRACER,
        class_tag: int = 0,
    ) -> None:
        self.node = node
        self.node_id = node_id
        #: Integer node-class tag mixed into recontext cache keys when a
        #: shared cache serves engines with *different* node specs (the
        #: kernel output depends on the spec, so a xeon engine must not
        #: reuse an atom engine's entry).  Tag 0 — every homogeneous
        #: cluster — keeps today's untagged key shape exactly.
        self.class_tag = class_tag
        self.constants = constants
        self.tracer = tracer
        if tracer.enabled:
            tracer.name_process(1 + node_id, f"node {node_id}")
        self.running: list[_Running] = []
        self.finished: list[JobResult] = []
        self.cache = cache if cache is not None else RecontextCache()
        self.telemetry = self.cache.telemetry
        self._recorder = make_recorder(recorder)
        self.telemetry.record_recorder(node_id, self._recorder.mode)
        self.generation = 0
        self.alive = True
        #: Called with this engine after every free-core change; the
        #: cluster uses it to keep its placement index current.
        self.capacity_listener: Callable[["NodeEngine"], None] | None = None
        self._used_cores = 0
        self._seg: tuple[float, float, float, float, float] | None = None
        self._clock = 0.0
        self._busy_energy = 0.0  # energy while >=1 job runs (above nothing)
        self._busy_time = 0.0  # seconds with >=1 job running
        self._first_busy_start = float("inf")
        self._last_busy_end = float("-inf")
        #: Closed [start, end] outages; end is +inf while still down.
        self._down_intervals: list[list[float]] = []

    # ----------------------------------------------------------- queries
    @property
    def now(self) -> float:
        return self._clock

    @property
    def intervals(self) -> list[IntervalRecord]:
        if self._recorder.mode != "full":
            raise RuntimeError(
                "per-segment IntervalRecords require recorder='full' "
                f"(this engine uses recorder={self._recorder.mode!r})"
            )
        return self._recorder.intervals

    @property
    def recorder(self):
        return self._recorder

    @property
    def used_cores(self) -> int:
        # Maintained incrementally by _recontext: recomputing the sum
        # here per can_fit call was 93% of a 256-node run's wall time.
        return self._used_cores

    @property
    def free_cores(self) -> int:
        if not self.alive:
            return 0
        return self.node.n_cores - self.used_cores

    @property
    def busy_seconds(self) -> float:
        """Total seconds this node spent with ≥1 job running."""
        return self._busy_time

    def can_fit(self, spec: JobSpec) -> bool:
        return spec.config.n_mappers <= self.free_cores

    def oracle_snapshot(self) -> dict:
        """Internal accounting state, exposed for conformance checks.

        The analytic oracles of :mod:`repro.conformance` assert against
        these sums directly (not just against derived metrics), so an
        accounting bug cannot hide behind a compensating error in a
        downstream formula.  Read-only: the dict is a copy.
        """
        return {
            "node_id": self.node_id,
            "clock": self._clock,
            "alive": self.alive,
            "generation": self.generation,
            "running_labels": [r.spec.label for r in self.running],
            "busy_seconds": self._busy_time,
            "busy_energy": self._busy_energy,
            "first_busy_start": self._first_busy_start,
            "last_busy_end": self._last_busy_end,
            "down_intervals": [tuple(iv) for iv in self._down_intervals],
            "completed": len(self.finished),
        }

    def _segment_state(self) -> tuple[float, float, float, float, float]:
        """(stretch, watts, u_disk, u_net, u_mem), cached per generation."""
        seg = self._seg
        if seg is None:
            pm = self.node.power
            if not self.running:
                seg = (1.0, pm.idle_power, 0.0, 0.0, 0.0)
            else:
                bw = self.node.membw.achievable_bw
                sum_disk = 0.0
                sum_net = 0.0
                sum_mem = 0.0
                sum_core = 0.0
                for r in self.running:
                    m = r.metrics
                    sum_disk += m.u_disk
                    sum_net += m.u_net
                    sum_mem += m.mem_demand
                    sum_core += m.core_power
                s = max(1.0, sum_disk, sum_net, sum_mem / bw)
                core = sum_core / s
                u_disk = min(sum_disk / s, 1.0)
                u_net = min(sum_net / s, 1.0)
                u_mem = min(sum_mem / s / bw, 1.0)
                watts = (
                    pm.idle_power
                    + core
                    + pm.mem_max_power * u_mem
                    + pm.disk_max_power * u_disk
                )
                seg = (s, watts, u_disk, u_net, u_mem)
            self._seg = seg
        return seg

    @property
    def stretch(self) -> float:
        return self._segment_state()[0]

    def next_completion(self) -> Optional[tuple[float, JobSpec]]:
        """(absolute time, spec) of the earliest-finishing running job."""
        if not self.running:
            return None
        s = self._segment_state()[0]
        best = min(self.running, key=lambda r: r.remaining * r.slowdown)
        return self._clock + best.remaining * best.slowdown * s, best.spec

    # ---------------------------------------------------------- dynamics
    def _recontext(self) -> None:
        """Re-evaluate every running job under the current running set.

        Evaluation is memoized: the per-job metrics are a pure function
        of the ordered ``(profile, data, config, remote)`` identities of
        the running set, so identical sets share one kernel evaluation.
        """
        self.generation += 1
        self._seg = None
        running = self.running
        self._used_cores = sum(r.spec.config.n_mappers for r in running)
        listener = self.capacity_listener
        if listener is not None:
            listener(self)
        if not running:
            return
        cache = self.cache
        telemetry = self.telemetry
        tag = self.class_tag
        ids = tuple(_running_key(r) for r in running)
        set_key = ("set",) + ids if tag == 0 else ("set", tag) + ids
        metrics = cache.get(set_key)
        if metrics is not None:
            telemetry.record_recontext(hit=True, jobs=len(running))
        else:
            ctx = colocation_context_scalar(
                [r.spec.instance.profile for r in running],
                [float(r.spec.config.n_mappers) for r in running],
                node=self.node,
                constants=self.constants,
            )
            out = []
            for r, identity, c in zip(running, ids, ctx):
                job_key = (
                    ("job", identity, c) if tag == 0 else ("job", tag, identity, c)
                )
                m = cache.get(job_key)
                if m is not None:
                    telemetry.record_recontext(hit=True)
                else:
                    telemetry.record_recontext(hit=False)
                    mpki, disk, extra = c
                    m = standalone_metrics_scalar(
                        r.spec.instance.profile,
                        r.spec.instance.data_bytes,
                        r.spec.config.frequency,
                        r.spec.config.block_size,
                        r.spec.config.n_mappers,
                        node=self.node,
                        constants=self.constants,
                        mpki_scale=mpki,
                        disk_traffic_scale=disk,
                        extra_streams=extra,
                        remote_fraction=r.spec.remote_fraction,
                    )
                    cache.put(job_key, m)
                out.append(m)
            metrics = tuple(out)
            cache.put(set_key, metrics)
        for r, m in zip(running, metrics):
            frac_left = 1.0 if r.metrics is None else r.fraction_left
            r.metrics = m
            r.remaining = frac_left * m.duration

    def _segment_power(self) -> tuple[float, float, float, float]:
        """(node watts, u_disk, u_net, u_mem) for the current segment."""
        _s, watts, u_disk, u_net, u_mem = self._segment_state()
        return watts, u_disk, u_net, u_mem

    def advance_to(self, t: float) -> None:
        """Progress all running jobs to absolute time ``t``.

        ``t`` must not cross a completion (the caller — :meth:`step` or
        :class:`ClusterEngine` — always advances event to event).
        Nodes advance *lazily*: the cluster only calls this when this
        node's own membership is about to change, so one segment may
        span many cluster-wide events.
        """
        if t < self._clock - 1e-9:
            raise ValueError(f"time moves backwards: {t} < {self._clock}")
        dt = t - self._clock
        if dt <= 0:
            self._clock = max(self._clock, t)
            return
        if self.running:
            s, watts, u_disk, u_net, u_mem = self._segment_state()
            self._recorder.record(
                self, self._clock, t, watts, s, u_disk, u_net, u_mem
            )
            progress = dt / s
            share = watts * dt / len(self.running)
            for r in self.running:
                r.remaining -= progress / r.slowdown
                if r.remaining < -1e-6 * max(1.0, progress):
                    raise RuntimeError(
                        f"job {r.spec.label} overshot completion by {-r.remaining}s"
                    )
                r.remaining = max(r.remaining, 0.0)
                r.energy += share
            self._busy_energy += watts * dt
            self._busy_time += dt
            if self._clock < self._first_busy_start:
                self._first_busy_start = self._clock
            self._last_busy_end = t
        self._clock = t

    def submit(self, spec: JobSpec, *, time: float | None = None) -> None:
        """Start a job now (or at ``time`` ≥ now); it must fit."""
        t = self._clock if time is None else time
        self.advance_to(t)
        if not self.alive:
            raise RuntimeError(f"node {self.node_id} is down")
        if not self.can_fit(spec):
            raise RuntimeError(
                f"node {self.node_id} has {self.free_cores} free cores; "
                f"{spec.label} needs {spec.config.n_mappers}"
            )
        spec.config.validate_for(self.node)
        self.running.append(
            _Running(spec=spec, start_time=t, metrics=None, remaining=0.0)
        )
        self._recontext()

    def _complete(self, r: _Running) -> JobResult:
        result = JobResult(
            spec=r.spec,
            node_id=self.node_id,
            start_time=r.start_time,
            finish_time=self._clock,
            energy_joules=r.energy,
        )
        self.running.remove(r)
        self.finished.append(result)
        self._recontext()
        if self.tracer.enabled:
            self._trace_job(r, result)
        return result

    def _trace_job(self, r: _Running, result: JobResult) -> None:
        """Emit the job-lifetime span plus derived phase sub-spans.

        The fluid model has no explicit map/shuffle phases, so the
        breakdown is *derived*: the job's wall span is split into its
        ``ceil(waves)`` map waves with a shuffle/reduce tail sized by
        the network share ``t_net / duration`` of the final context.
        Purely observational — reads completed state only.
        """
        spec = result.spec
        pid = 1 + self.node_id
        tid = spec.job_id
        start, end = result.start_time, result.finish_time
        tracer = self.tracer
        tracer.name_thread(pid, tid, spec.label)
        tracer.span(
            spec.label,
            "job",
            start,
            end,
            pid=pid,
            tid=tid,
            args={
                "job_id": spec.job_id,
                "app": spec.instance.label,
                "config": spec.config.label,
                "node": self.node_id,
                "energy_joules": result.energy_joules,
                "remote_fraction": spec.remote_fraction,
            },
        )
        m = r.metrics
        wall = end - start
        if m is None or wall <= 0.0 or m.duration <= 0.0:
            return
        tail = wall * min(max(m.t_net / m.duration, 0.0), 0.9)
        n_waves = min(max(int(math.ceil(m.waves)), 1), 64)
        per = (wall - tail) / n_waves
        for w in range(n_waves):
            tracer.span(
                f"map wave {w + 1}/{n_waves}",
                "phase",
                start + w * per,
                start + (w + 1) * per,
                pid=pid,
                tid=tid,
            )
        if tail > 0.0:
            tracer.span(
                "shuffle/reduce", "phase", end - tail, end, pid=pid, tid=tid
            )

    # ------------------------------------------------------- fault path
    # These primitives are no-ops on a healthy run; repro.faults drives
    # them.  Every one advances membership through _recontext (or bumps
    # the generation directly), so any completion entry armed before the
    # fault is recognised as stale by the cluster's event core.
    def evict(self, job_id: int) -> tuple[JobSpec, float]:
        """Kill a running attempt without completing it.

        Returns ``(spec, elapsed_seconds)`` of the killed attempt; its
        partial work is lost, as with a Hadoop task re-execution.  The
        caller must have advanced the node to the eviction time.
        """
        r = next((x for x in self.running if x.spec.job_id == job_id), None)
        if r is None:
            raise KeyError(f"job {job_id} is not running on node {self.node_id}")
        elapsed = self._clock - r.start_time
        self.running.remove(r)
        self._recontext()
        if self.tracer.enabled:
            self.tracer.instant(
                "evict",
                "fault",
                self._clock,
                pid=1 + self.node_id,
                tid=job_id,
                args={"job": r.spec.label, "elapsed_s": elapsed},
            )
        return r.spec, elapsed

    def apply_slowdown(self, job_id: int, factor: float) -> None:
        """Turn a running attempt into a straggler (rate ÷ ``factor``).

        Factors compose multiplicatively.  Power and co-location context
        are unchanged — a straggler occupies its cores at full demand
        while making slow progress — so only the generation is bumped
        (the armed completion entry is now stale), not the segment
        state.  The caller must have advanced the node first.
        """
        if factor <= 0.0:
            raise ValueError("slowdown factor must be > 0")
        r = next((x for x in self.running if x.spec.job_id == job_id), None)
        if r is None:
            raise KeyError(f"job {job_id} is not running on node {self.node_id}")
        r.slowdown *= factor
        self.generation += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "straggler",
                "fault",
                self._clock,
                pid=1 + self.node_id,
                tid=job_id,
                args={"job": r.spec.label, "factor": factor},
            )

    def crash(self) -> list[tuple[JobSpec, float]]:
        """Fail the node at its current clock.

        Every running attempt is killed (returned as ``(spec, elapsed)``
        pairs), the node refuses work and draws zero power until
        :meth:`restore`.  The caller must have advanced the node first.
        """
        if not self.alive:
            raise RuntimeError(f"node {self.node_id} is already down")
        lost = [(r.spec, self._clock - r.start_time) for r in self.running]
        self.running.clear()
        self._recontext()
        self.alive = False
        if self.capacity_listener is not None:
            # _recontext fired while still alive; re-fire now that the
            # node reports zero free cores.
            self.capacity_listener(self)
        self._down_intervals.append([self._clock, float("inf")])
        if self.tracer.enabled:
            self.tracer.instant(
                "node crash",
                "fault",
                self._clock,
                pid=1 + self.node_id,
                args={"node": self.node_id, "jobs_lost": len(lost)},
            )
        return lost

    def restore(self) -> None:
        """Bring a crashed node back at its current clock."""
        if self.alive:
            raise RuntimeError(f"node {self.node_id} is not down")
        self.alive = True
        if self.capacity_listener is not None:
            self.capacity_listener(self)
        self._down_intervals[-1][1] = self._clock
        if self.tracer.enabled:
            self.tracer.span(
                "node down",
                "fault",
                self._down_intervals[-1][0],
                self._clock,
                pid=1 + self.node_id,
                args={"node": self.node_id},
            )

    def down_seconds(self, t0: float, t1: float) -> float:
        """Seconds of ``[t0, t1]`` this node spent crashed."""
        total = 0.0
        for start, end in self._down_intervals:
            lo, hi = max(start, t0), min(end, t1)
            if hi > lo:
                total += hi - lo
        return total

    def step(self) -> Optional[JobResult]:
        """Advance to the next completion and return it (None if idle)."""
        nxt = self.next_completion()
        if nxt is None:
            return None
        t, spec = nxt
        self.advance_to(t)
        r = next(
            (x for x in self.running if x.spec.job_id == spec.job_id), None
        )
        if r is None:  # pragma: no cover - defensive
            return None
        return self._complete(r)

    def run_to_completion(self) -> list[JobResult]:
        """Drain all running jobs; returns completions in time order."""
        out = []
        while self.running:
            res = self.step()
            assert res is not None
            out.append(res)
        return out

    def energy_between(self, t0: float, t1: float) -> float:
        """Whole-node energy over [t0, t1], idle power when no job ran.

        Full-horizon queries (the window covers every busy segment) are
        answered in O(1) from running prefix sums; narrower windows
        scan the recorded intervals (and require a recorder).
        """
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t0 <= self._first_busy_start and t1 >= self._last_busy_end:
            busy, covered = self._busy_energy, self._busy_time
        else:
            busy, covered = self._recorder.busy_between(t0, t1)
        idle_time = (t1 - t0) - covered
        if self._down_intervals:
            # A crashed node draws nothing; outages never overlap busy
            # segments (a crash evicts every running attempt first).
            idle_time -= self.down_seconds(t0, t1)
        return busy + self.node.power.idle_power * idle_time


SchedulerFn = Callable[["ClusterEngine", float], None]


class ClusterEngine:
    """N nodes plus an arrival queue and a pluggable scheduler.

    The scheduler callback fires after every arrival and completion;
    it inspects :attr:`pending` and places jobs with :meth:`place`.
    The default scheduler is FIFO first-fit, which is what the
    untuned mapping-policy baselines use; ECoST installs its own
    (classification + pairing + self-tuning) scheduler.

    Event core: the shared :class:`~repro.mapreduce.events.EventQueue`
    holds at most one *live* completion entry per node — each entry is
    tagged ``(node_id, generation)`` and a node's generation advances
    on every membership change, so superseded entries are recognised
    and dropped in O(1) when they surface (classic lazy heap
    invalidation, O(log n) per completion overall).  Nodes advance
    lazily: an event only advances the node it concerns, never the
    whole cluster.
    """

    def __init__(
        self,
        n_nodes: int = 8,
        node: NodeSpec = ATOM_C2758,
        *,
        constants: SimConstants = DEFAULT_CONSTANTS,
        scheduler: SchedulerFn | None = None,
        recorder: str = "full",
        metrics_cache: RecontextCache | None = None,
        tracer=NULL_TRACER,
        roster: tuple[NodeSpec, ...] | None = None,
    ) -> None:
        if roster is not None:
            roster = tuple(roster)
            if not roster:
                raise ValueError("roster must contain at least one node")
            n_nodes = len(roster)
            node = roster[0]
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        specs = roster if roster is not None else (node,) * n_nodes
        #: Per-node specs in placement order (homogeneous or mixed).
        self.roster: tuple[NodeSpec, ...] = specs
        # Class tags: index of each node's spec in first-seen dedup
        # order.  A homogeneous roster tags every node 0, which keeps
        # recontext cache keys in today's untagged shape.
        unique: list[NodeSpec] = []
        tags: list[int] = []
        for spec in specs:
            for k, seen in enumerate(unique):
                if spec is seen or spec == seen:
                    tags.append(k)
                    break
            else:
                tags.append(len(unique))
                unique.append(spec)
        self.node_class_tags: tuple[int, ...] = tuple(tags)
        self.heterogeneous: bool = len(unique) > 1
        self.metrics_cache = (
            metrics_cache if metrics_cache is not None else RecontextCache()
        )
        self.telemetry = self.metrics_cache.telemetry
        self.tracer = tracer
        if tracer.enabled:
            tracer.name_process(0, "cluster")
        self.nodes = [
            NodeEngine(
                specs[i],
                node_id=i,
                constants=constants,
                cache=self.metrics_cache,
                recorder=recorder,
                tracer=tracer,
                class_tag=tags[i],
            )
            for i in range(n_nodes)
        ]
        self.constants = constants
        self.pending: PendingQueue = PendingQueue()
        self.results: list[JobResult] = []
        self.scheduler: SchedulerFn = scheduler or fifo_first_fit
        self._events = EventQueue()
        self._clock = 0.0
        self._group_sizes: dict[int, int] = {}
        self._group_done: dict[int, int] = {}
        self._free_index = FreeCoreIndex(
            [n.free_cores for n in self.nodes],
            classes=self.node_class_tags if self.heterogeneous else None,
        )
        for nd in self.nodes:
            nd.capacity_listener = self._on_capacity_change

    @property
    def now(self) -> float:
        return self._clock

    def submit(self, spec: JobSpec) -> None:
        """Enqueue an arrival at ``spec.submit_time``."""
        self._events.schedule(spec.submit_time, ("arrival", spec))

    def submit_distributed(self, specs: list[JobSpec]) -> None:
        """Submit the parts of one multi-node job (shared group id)."""
        gids = {s.group_id for s in specs}
        if len(gids) != 1 or None in gids:
            raise ValueError("distributed parts must share a non-None group_id")
        gid = specs[0].group_id
        assert gid is not None
        self._group_sizes[gid] = len(specs)
        self._group_done[gid] = 0
        for s in specs:
            self.submit(s)

    def notify_at(self, t: float) -> None:
        """Schedule a bare scheduler wake-up (external arrival hooks)."""
        self._events.schedule(t, ("wake",))

    def call_at(self, t: float, fn: Callable[["ClusterEngine", float], None]) -> None:
        """Schedule ``fn(cluster, t)`` as a first-class event.

        The hook by which external subsystems (fault injection, load
        shedding) act at deterministic points of the event order without
        the engine knowing about them.  ``fn`` is responsible for waking
        the scheduler if it changed placement state.
        """
        self._events.schedule(t, ("call", fn))

    @property
    def alive_nodes(self) -> list[NodeEngine]:
        """The nodes currently accepting work."""
        return [n for n in self.nodes if n.alive]

    def _on_capacity_change(self, engine: NodeEngine) -> None:
        self._free_index.set(engine.node_id, engine.free_cores)

    def first_fit_node(
        self, n_mappers: int, *, node_class: int | None = None
    ) -> int | None:
        """Lowest node id with ≥ ``n_mappers`` free cores (None if none).

        O(log n) via the free-core segment tree — the same node the
        first-fit linear scan would pick (dead nodes report zero free
        cores and are skipped naturally).  ``node_class`` restricts the
        search to nodes with that class tag (heterogeneous rosters
        maintain one per-class segment per tag).
        """
        return self._free_index.first_at_least(n_mappers, node_class=node_class)

    def place(self, spec: JobSpec, node_id: int) -> None:
        """Start a pending job on a node (scheduler API)."""
        if spec not in self.pending:
            raise ValueError(f"{spec.label} is not pending")
        engine = self.nodes[node_id]
        engine.advance_to(self._clock)
        engine.submit(spec)
        self.pending.remove(spec)
        self._arm(engine)

    def _arm(self, engine: NodeEngine) -> None:
        """(Re-)schedule the node's earliest completion, tagged with its
        current generation; any older entry for the node is now stale."""
        nxt = engine.next_completion()
        if nxt is None:
            return
        self._events.schedule(nxt[0], ("check", engine.node_id, engine.generation))

    def _handle(self, t: float, payload) -> None:
        kind = payload[0]
        self._clock = t
        if kind == "check":
            node_id, gen = payload[1], payload[2]
            engine = self.nodes[node_id]
            if gen != engine.generation:
                # Superseded by a membership change since it was armed.
                self.telemetry.record_event(stale=True)
                return
            self.telemetry.record_event()
            nxt = engine.next_completion()
            if nxt is None:  # pragma: no cover - defensive
                return
            due, spec = nxt
            if due > t + 1e-9:  # pragma: no cover - defensive re-arm
                self._events.schedule(due, ("check", node_id, engine.generation))
                return
            engine.advance_to(t)
            r = next(
                (x for x in engine.running if x.spec.job_id == spec.job_id),
                None,
            )
            if r is None:
                # Completed by an earlier coincident event: skip the
                # stale check gracefully instead of raising.
                self.telemetry.record_event(stale=True)
                return
            result = engine._complete(r)
            self.results.append(result)
            gid = result.spec.group_id
            if gid is not None:
                self._group_done[gid] += 1
            self._arm(engine)
            self.scheduler(self, t)
            if self.tracer.enabled:
                self.tracer.counter(
                    "pending jobs", t, {"count": len(self.pending)}
                )
        elif kind == "arrival":
            self.telemetry.record_event()
            self.pending.append(payload[1])
            self.scheduler(self, t)
            if self.tracer.enabled:
                self.tracer.counter(
                    "pending jobs", t, {"count": len(self.pending)}
                )
        elif kind == "wake":
            self.telemetry.record_event()
            self.scheduler(self, t)
        elif kind == "call":
            self.telemetry.record_event()
            payload[1](self, t)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown event {kind!r}")

    # ------------------------------------------------- incremental advance
    # The streaming service (`repro.service`) feeds the engine one
    # arrival at a time instead of scheduling the whole workload up
    # front.  Bit-identity with the offline `run()` hinges on event
    # *order*: offline, every arrival is scheduled before any derived
    # event, so at a tied timestamp arrivals fire first (lower heap
    # sequence numbers).  The incremental API reproduces that order by
    # construction — events strictly before the arrival are drained,
    # then the arrival is handled directly, ahead of any event queued
    # at the very same timestamp.

    def advance_until(self, t: float) -> None:
        """Process every queued event with time strictly before ``t``.

        Events due exactly at ``t`` stay queued: the caller is about to
        inject an arrival at ``t``, and offline ordering puts arrivals
        ahead of same-time derived events.
        """
        events = self._events
        while True:
            nxt = events.peek_time()
            if nxt is None or nxt >= t:
                return
            time, payload = events.pop()  # type: ignore[misc]
            self._handle(time, payload)

    def inject_arrival(self, spec: JobSpec) -> None:
        """Deliver one arrival *now*, as streaming ingestion does.

        Equivalent to ``submit(spec)`` followed by processing events up
        to (and including) the arrival — with the same event order the
        offline batch run produces, including exact-timestamp ties, so
        an incrementally fed engine stays bit-identical to an offline
        engine given the same job sequence.
        """
        t = spec.submit_time
        if t < self._clock - 1e-9:
            raise ValueError(
                f"arrival at {t} is in the engine's past ({self._clock})"
            )
        self.advance_until(t)
        self._handle(t, ("arrival", spec))

    def wake_now(self, t: float) -> None:
        """Run the scheduler at ``t``, after draining events before ``t``.

        The streaming counterpart of :meth:`notify_at` for callers
        (e.g. the ECoST controller front end) that register arrival
        state out of band and only need the scheduler invoked in the
        offline tie order — ahead of derived events queued at ``t``.
        """
        if t < self._clock - 1e-9:
            raise ValueError(
                f"wake at {t} is in the engine's past ({self._clock})"
            )
        self.advance_until(t)
        self._handle(t, ("wake",))

    def drain_events(self) -> None:
        """Process every remaining queued event (no stall check)."""
        self._events.run(self._handle)

    def run(self) -> list[JobResult]:
        """Process all events; returns completions in time order."""
        self.drain_events()
        if self.pending or any(n.running for n in self.nodes):
            raise RuntimeError(
                "simulation stalled with unfinished jobs; "
                "the scheduler never placed: "
                + ", ".join(s.label for s in self.pending)
            )
        return self.results

    # --------------------------------------------------------- accounting
    @property
    def makespan(self) -> float:
        if not self.results:
            return 0.0
        return max(r.finish_time for r in self.results)

    def group_finish_time(self, gid: int) -> float:
        """Completion (barrier) time of a distributed job."""
        parts = [r for r in self.results if r.spec.group_id == gid]
        if len(parts) != self._group_sizes.get(gid):
            raise ValueError(f"group {gid} has not completed")
        return max(r.finish_time for r in parts)

    def total_energy(self, horizon: float | None = None) -> float:
        """Whole-cluster energy over [0, horizon] (default: makespan).

        Idle nodes draw idle power for the entire horizon — exactly the
        accounting a wall-power meter on every node would report.
        O(1) per node: the horizon covers every busy interval, so each
        node answers from its running prefix sums.
        """
        h = self.makespan if horizon is None else horizon
        return sum(n.energy_between(0.0, h) for n in self.nodes)

    def edp(self) -> float:
        """Cluster EDP of the completed workload: energy × makespan."""
        t = self.makespan
        return self.total_energy(t) * t

    def conformance_snapshot(self) -> dict:
        """Cluster-wide accounting state for the conformance suite.

        Aggregates every node's :meth:`NodeEngine.oracle_snapshot` plus
        the cluster-level invariant inputs (pending queue, result
        count), so oracle checks can pin the *internals* that makespan
        and energy are derived from.
        """
        return {
            "now": self.now,
            "pending": [s.label for s in self.pending],
            "n_results": len(self.results),
            "makespan": self.makespan,
            "nodes": [n.oracle_snapshot() for n in self.nodes],
        }


def fifo_first_fit(cluster: ClusterEngine, t: float) -> None:
    """Default scheduler: place pending jobs FIFO onto first fitting node.

    Places the queue head on the lowest-indexed node with enough free
    cores until the head fits nowhere — the first blocked job blocks
    the queue (head-of-line blocking is intentional: FIFO order).
    Candidate lookup is O(log nodes) through the cluster's free-core
    index, so a scheduler invocation costs O(placements · log nodes)
    instead of the O(pending · nodes) scan it replaced — with
    placements and the chosen nodes identical.
    """
    index = getattr(cluster, "first_fit_node", None)
    if index is None:
        # Duck-typed cluster without the free-core index: legacy scan.
        nodes = cluster.nodes
        n = len(nodes)
        cursor = 0  # nodes[:cursor] have zero free cores
        for spec in list(cluster.pending):
            while cursor < n and nodes[cursor].free_cores == 0:
                cursor += 1
            for i in range(cursor, n):
                if nodes[i].can_fit(spec):
                    cluster.place(spec, nodes[i].node_id)
                    break
            else:
                return
        return
    pending = cluster.pending
    while pending:
        spec = pending[0]
        node_id = index(spec.config.n_mappers)
        if node_id is None:
            return
        cluster.place(spec, node_id)
