"""Discrete-event timing engine for MapReduce jobs on microservers.

Execution model
---------------
Each running job is a *fluid activity*: the shared cost kernel
(:func:`repro.model.costmodel.standalone_metrics`) gives its standalone
duration and resource-demand profile under the current co-location
context (LLC module sharing, footprint overcommit, disk stream count).
Co-resident jobs all progress at rate ``1/stretch`` where ``stretch``
is the fluid oversubscription factor of
:func:`repro.model.costmodel.fluid_stretch`.

Whenever the running set of a node changes (submit/finish), every
affected job's context is re-evaluated and its remaining work is
carried over as a *fraction* of the new standalone duration — work is
conserved exactly across context switches.  Between events the node is
in a fixed configuration, and the engine records one
:class:`IntervalRecord` per such segment: the time-resolved power and
utilisation trace the telemetry samplers (perf/dstat/Wattsup) consume.

The closed-form :func:`~repro.model.costmodel.pair_metrics` is this
engine's two-job special case, up to one documented approximation (the
closed form keeps the co-location context during the tail segment; the
engine re-evaluates it) — the consistency test-suite bounds the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.events import EventQueue
from repro.mapreduce.job import JobResult, JobSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.costmodel import (
    JobMetrics,
    colocation_context,
    fluid_stretch,
    standalone_metrics,
)


@dataclass(frozen=True)
class IntervalRecord:
    """One constant-configuration segment of a node's execution."""

    node_id: int
    start: float
    end: float
    power_watts: float
    stretch: float
    job_ids: tuple[int, ...]
    u_cpu_per_job: tuple[float, ...]  # per-core busy fraction of each job
    u_disk: float  # node disk utilisation in the segment
    u_net: float
    u_mem: float
    frequency_per_job: tuple[float, ...]
    mappers_per_job: tuple[int, ...]

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class _Running:
    spec: JobSpec
    start_time: float
    metrics: JobMetrics  # under the current context
    remaining: float  # remaining standalone seconds under current context
    energy: float = 0.0

    @property
    def fraction_left(self) -> float:
        return self.remaining / float(np.asarray(self.metrics.duration))


class NodeEngine:
    """Event-driven simulation of one node."""

    def __init__(
        self,
        node: NodeSpec = ATOM_C2758,
        *,
        node_id: int = 0,
        constants: SimConstants = DEFAULT_CONSTANTS,
    ) -> None:
        self.node = node
        self.node_id = node_id
        self.constants = constants
        self.running: list[_Running] = []
        self.finished: list[JobResult] = []
        self.intervals: list[IntervalRecord] = []
        self._clock = 0.0
        self._busy_energy = 0.0  # energy while >=1 job runs (above nothing)

    # ----------------------------------------------------------- queries
    @property
    def now(self) -> float:
        return self._clock

    @property
    def used_cores(self) -> int:
        return sum(r.spec.config.n_mappers for r in self.running)

    @property
    def free_cores(self) -> int:
        return self.node.n_cores - self.used_cores

    def can_fit(self, spec: JobSpec) -> bool:
        return spec.config.n_mappers <= self.free_cores

    @property
    def stretch(self) -> float:
        return fluid_stretch([r.metrics for r in self.running], self.node)

    def next_completion(self) -> Optional[tuple[float, JobSpec]]:
        """(absolute time, spec) of the earliest-finishing running job."""
        if not self.running:
            return None
        s = self.stretch
        best = min(self.running, key=lambda r: r.remaining)
        return self._clock + best.remaining * s, best.spec

    # ---------------------------------------------------------- dynamics
    def _recontext(self) -> None:
        """Re-evaluate every running job under the current running set."""
        if not self.running:
            return
        ctx = colocation_context(
            [r.spec.instance.profile for r in self.running],
            [float(r.spec.config.n_mappers) for r in self.running],
            node=self.node,
            constants=self.constants,
        )
        for i, r in enumerate(self.running):
            frac_left = r.fraction_left
            cfg = r.spec.config
            metrics = standalone_metrics(
                r.spec.instance.profile,
                r.spec.instance.data_bytes,
                cfg.frequency,
                cfg.block_size,
                cfg.n_mappers,
                node=self.node,
                constants=self.constants,
                mpki_scale=float(ctx.mpki_scale[i]),
                disk_traffic_scale=float(ctx.disk_traffic_scale[i]),
                extra_streams=float(ctx.extra_streams[i]),
                remote_fraction=r.spec.remote_fraction,
            )
            r.metrics = metrics
            r.remaining = frac_left * float(np.asarray(metrics.duration))

    def _segment_power(self) -> tuple[float, float, float, float]:
        """(node watts, u_disk, u_net, u_mem) for the current segment."""
        pm = self.node.power
        s = self.stretch
        if not self.running:
            return pm.idle_power, 0.0, 0.0, 0.0
        core = sum(float(np.asarray(r.metrics.core_power)) for r in self.running) / s
        u_disk = min(
            sum(float(np.asarray(r.metrics.u_disk)) for r in self.running) / s, 1.0
        )
        u_net = min(
            sum(float(np.asarray(r.metrics.u_net)) for r in self.running) / s, 1.0
        )
        u_mem = min(
            sum(float(np.asarray(r.metrics.mem_demand)) for r in self.running)
            / s
            / self.node.membw.achievable_bw,
            1.0,
        )
        watts = (
            pm.idle_power
            + core
            + pm.mem_max_power * u_mem
            + pm.disk_max_power * u_disk
        )
        return watts, u_disk, u_net, u_mem

    def advance_to(self, t: float) -> None:
        """Progress all running jobs to absolute time ``t``.

        ``t`` must not cross a completion (the caller — :meth:`step` or
        :class:`ClusterEngine` — always advances event to event).
        """
        if t < self._clock - 1e-9:
            raise ValueError(f"time moves backwards: {t} < {self._clock}")
        dt = t - self._clock
        if dt <= 0:
            self._clock = max(self._clock, t)
            return
        watts, u_disk, u_net, u_mem = self._segment_power()
        s = self.stretch
        if self.running:
            self.intervals.append(
                IntervalRecord(
                    node_id=self.node_id,
                    start=self._clock,
                    end=t,
                    power_watts=watts,
                    stretch=s,
                    job_ids=tuple(r.spec.job_id for r in self.running),
                    u_cpu_per_job=tuple(
                        float(np.asarray(r.metrics.u_cpu)) / s for r in self.running
                    ),
                    u_disk=u_disk,
                    u_net=u_net,
                    u_mem=u_mem,
                    frequency_per_job=tuple(
                        r.spec.config.frequency for r in self.running
                    ),
                    mappers_per_job=tuple(
                        r.spec.config.n_mappers for r in self.running
                    ),
                )
            )
            progress = dt / s
            share = watts * dt / len(self.running)
            for r in self.running:
                r.remaining -= progress
                if r.remaining < -1e-6 * max(1.0, progress):
                    raise RuntimeError(
                        f"job {r.spec.label} overshot completion by {-r.remaining}s"
                    )
                r.remaining = max(r.remaining, 0.0)
                r.energy += share
            self._busy_energy += watts * dt
        self._clock = t

    def submit(self, spec: JobSpec, *, time: float | None = None) -> None:
        """Start a job now (or at ``time`` ≥ now); it must fit."""
        t = self._clock if time is None else time
        self.advance_to(t)
        if not self.can_fit(spec):
            raise RuntimeError(
                f"node {self.node_id} has {self.free_cores} free cores; "
                f"{spec.label} needs {spec.config.n_mappers}"
            )
        spec.config.validate_for(self.node)
        placeholder = standalone_metrics(
            spec.instance.profile,
            spec.instance.data_bytes,
            spec.config.frequency,
            spec.config.block_size,
            spec.config.n_mappers,
            node=self.node,
            constants=self.constants,
            remote_fraction=spec.remote_fraction,
        )
        self.running.append(
            _Running(
                spec=spec,
                start_time=t,
                metrics=placeholder,
                remaining=float(np.asarray(placeholder.duration)),
            )
        )
        self._recontext()

    def _complete(self, r: _Running) -> JobResult:
        result = JobResult(
            spec=r.spec,
            node_id=self.node_id,
            start_time=r.start_time,
            finish_time=self._clock,
            energy_joules=r.energy,
        )
        self.running.remove(r)
        self.finished.append(result)
        self._recontext()
        return result

    def step(self) -> Optional[JobResult]:
        """Advance to the next completion and return it (None if idle)."""
        nxt = self.next_completion()
        if nxt is None:
            return None
        t, spec = nxt
        self.advance_to(t)
        r = next(x for x in self.running if x.spec.job_id == spec.job_id)
        return self._complete(r)

    def run_to_completion(self) -> list[JobResult]:
        """Drain all running jobs; returns completions in time order."""
        out = []
        while self.running:
            res = self.step()
            assert res is not None
            out.append(res)
        return out

    def energy_between(self, t0: float, t1: float) -> float:
        """Whole-node energy over [t0, t1], idle power when no job ran."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        busy = 0.0
        covered = 0.0
        for seg in self.intervals:
            lo, hi = max(seg.start, t0), min(seg.end, t1)
            if hi > lo:
                busy += seg.power_watts * (hi - lo)
                covered += hi - lo
        idle_time = (t1 - t0) - covered
        return busy + self.node.power.idle_power * idle_time


SchedulerFn = Callable[["ClusterEngine", float], None]


class ClusterEngine:
    """N nodes plus an arrival queue and a pluggable scheduler.

    The scheduler callback fires after every arrival and completion;
    it inspects :attr:`pending` and places jobs with :meth:`place`.
    The default scheduler is FIFO first-fit, which is what the
    untuned mapping-policy baselines use; ECoST installs its own
    (classification + pairing + self-tuning) scheduler.
    """

    def __init__(
        self,
        n_nodes: int = 8,
        node: NodeSpec = ATOM_C2758,
        *,
        constants: SimConstants = DEFAULT_CONSTANTS,
        scheduler: SchedulerFn | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.nodes = [
            NodeEngine(node, node_id=i, constants=constants) for i in range(n_nodes)
        ]
        self.constants = constants
        self.pending: list[JobSpec] = []
        self.results: list[JobResult] = []
        self.scheduler: SchedulerFn = scheduler or fifo_first_fit
        self._events = EventQueue()
        self._clock = 0.0
        self._group_sizes: dict[int, int] = {}
        self._group_done: dict[int, int] = {}

    @property
    def now(self) -> float:
        return self._clock

    def submit(self, spec: JobSpec) -> None:
        """Enqueue an arrival at ``spec.submit_time``."""
        self._events.schedule(spec.submit_time, ("arrival", spec))

    def submit_distributed(self, specs: list[JobSpec]) -> None:
        """Submit the parts of one multi-node job (shared group id)."""
        gids = {s.group_id for s in specs}
        if len(gids) != 1 or None in gids:
            raise ValueError("distributed parts must share a non-None group_id")
        gid = specs[0].group_id
        assert gid is not None
        self._group_sizes[gid] = len(specs)
        self._group_done[gid] = 0
        for s in specs:
            self.submit(s)

    def notify_at(self, t: float) -> None:
        """Schedule a bare scheduler wake-up (external arrival hooks)."""
        self._events.schedule(t, ("wake",))

    def place(self, spec: JobSpec, node_id: int) -> None:
        """Start a pending job on a node (scheduler API)."""
        if spec not in self.pending:
            raise ValueError(f"{spec.label} is not pending")
        engine = self.nodes[node_id]
        engine.advance_to(self._clock)
        engine.submit(spec)
        self.pending.remove(spec)
        nxt = engine.next_completion()
        assert nxt is not None
        self._events.schedule(nxt[0], ("check", node_id))

    def _sync_all(self, t: float) -> None:
        for n in self.nodes:
            n.advance_to(t)

    def _handle(self, t: float, payload) -> None:
        kind = payload[0]
        self._clock = t
        if kind == "wake":
            self._sync_all(t)
            self.scheduler(self, t)
        elif kind == "arrival":
            spec = payload[1]
            self._sync_all(t)
            self.pending.append(spec)
            self.scheduler(self, t)
        elif kind == "check":
            node_id = payload[1]
            engine = self.nodes[node_id]
            nxt = engine.next_completion()
            if nxt is None:
                return
            due, spec = nxt
            if due > t + 1e-9:
                # Context changed since this check was scheduled;
                # re-arm for the new completion time.
                self._events.schedule(due, ("check", node_id))
                return
            self._sync_all(t)
            r = next(x for x in engine.running if x.spec.job_id == spec.job_id)
            result = engine._complete(r)
            self.results.append(result)
            gid = result.spec.group_id
            if gid is not None:
                self._group_done[gid] += 1
            if engine.running:
                nxt2 = engine.next_completion()
                assert nxt2 is not None
                self._events.schedule(nxt2[0], ("check", node_id))
            self.scheduler(self, t)
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"unknown event {kind!r}")

    def run(self) -> list[JobResult]:
        """Process all events; returns completions in time order."""
        self._events.run(self._handle)
        if self.pending or any(n.running for n in self.nodes):
            raise RuntimeError(
                "simulation stalled with unfinished jobs; "
                "the scheduler never placed: "
                + ", ".join(s.label for s in self.pending)
            )
        return self.results

    # --------------------------------------------------------- accounting
    @property
    def makespan(self) -> float:
        if not self.results:
            return 0.0
        return max(r.finish_time for r in self.results)

    def group_finish_time(self, gid: int) -> float:
        """Completion (barrier) time of a distributed job."""
        parts = [r for r in self.results if r.spec.group_id == gid]
        if len(parts) != self._group_sizes.get(gid):
            raise ValueError(f"group {gid} has not completed")
        return max(r.finish_time for r in parts)

    def total_energy(self, horizon: float | None = None) -> float:
        """Whole-cluster energy over [0, horizon] (default: makespan).

        Idle nodes draw idle power for the entire horizon — exactly the
        accounting a wall-power meter on every node would report.
        """
        h = self.makespan if horizon is None else horizon
        return sum(n.energy_between(0.0, h) for n in self.nodes)

    def edp(self) -> float:
        """Cluster EDP of the completed workload: energy × makespan."""
        t = self.makespan
        return self.total_energy(t) * t


def fifo_first_fit(cluster: ClusterEngine, t: float) -> None:
    """Default scheduler: place pending jobs FIFO onto first fitting node."""
    placed = True
    while placed:
        placed = False
        for spec in list(cluster.pending):
            for node in cluster.nodes:
                if node.can_fit(spec):
                    cluster.place(spec, node.node_id)
                    placed = True
                    break
            else:
                # Head-of-line blocking is intentional: FIFO order.
                return
