"""Sharded execution of independent simulation work across processes.

Three kinds of work in this repository are embarrassingly parallel at
the *batch* level (not merely the sweep-grid level PR 1 parallelised):

* **scenario batches** — :func:`repro.batch.engine.evaluate_scenarios`
  over thousands of independent scenarios;
* **Monte-Carlo fault replicas** — the same fault-tolerance sweep
  replayed under many injection seeds;
* **multi-rack sweep grids** — one steady-state cluster run per
  cluster size (the fig9 scalability / executor-knee sweep).

Each driver partitions its input into *fixed-size shards* (the
partition depends only on the input, never on the worker count), fans
the shards out through :class:`repro.parallel.executor.SweepExecutor`
(serial-inline when ``workers == 1``), and merges per-shard results in
shard order with :mod:`repro.shard.merge`.  The result is therefore
**bit-identical** to the serial path for any ``REPRO_WORKERS`` — the
property ``tests/test_shard_identity.py`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batch.engine import BatchOutcome, evaluate_scenarios
from repro.conformance.scenarios import Scenario
from repro.experiments.fault_tolerance import (
    DEFAULT_RATES,
    FaultToleranceReport,
)
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.parallel.executor import SweepExecutor
from repro.shard.merge import merge_batch_telemetry, merge_registry_snapshots
from repro.telemetry.profiling import BatchTelemetry
from repro.telemetry.registry import Snapshot

#: Scenarios per shard.  Fixed (never derived from the worker count):
#: the shard boundaries are part of the deterministic contract.
SCENARIO_SHARD_SIZE = 512


def shard_slices(n_items: int, shard_size: int) -> list[tuple[int, int]]:
    """``[start, end)`` bounds of each shard over ``n_items`` items."""
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    return [
        (lo, min(lo + shard_size, n_items))
        for lo in range(0, n_items, shard_size)
    ]


# ----------------------------------------------------- scenario batches
def _eval_chunk_task(item):
    scenarios, backend, node, constants = item
    telemetry = BatchTelemetry()
    outcomes = evaluate_scenarios(
        list(scenarios),
        backend=backend,
        node=node,
        constants=constants,
        telemetry=telemetry,
    )
    return outcomes, telemetry


def evaluate_scenarios_sharded(
    scenarios: list[Scenario],
    *,
    backend: str = "batch",
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    telemetry: BatchTelemetry | None = None,
    shard_size: int = SCENARIO_SHARD_SIZE,
    workers: int | None = None,
    executor: SweepExecutor | None = None,
) -> list[BatchOutcome]:
    """Sharded :func:`~repro.batch.engine.evaluate_scenarios`.

    Outcomes come back in input order and are bit-identical to the
    serial call (the batch solvers are lane-wise, so shard boundaries
    cannot change any lane's floats).  ``telemetry`` — when given — is
    updated with the per-shard counters folded in shard order; note a
    sharded run pays one kernel pass per (shard, class) instead of one
    per class, so ``kernel_calls`` differs from the unsharded count
    while every outcome byte matches.
    """
    if executor is None:
        executor = SweepExecutor(workers)
    tasks = [
        (tuple(scenarios[lo:hi]), backend, node, constants)
        for lo, hi in shard_slices(len(scenarios), shard_size)
    ]
    parts = executor.map(_eval_chunk_task, tasks)
    outcomes: list[BatchOutcome] = []
    for shard_outcomes, _ in parts:
        outcomes.extend(shard_outcomes)
    if telemetry is not None:
        telemetry.merge(merge_batch_telemetry([t for _, t in parts]))
    return outcomes


# ------------------------------------------------ Monte-Carlo fault MC
@dataclass(frozen=True)
class FaultMonteCarloReport:
    """Per-seed fault-tolerance replicas plus cross-replica statistics."""

    fault_seeds: tuple[int, ...]
    replicas: tuple[FaultToleranceReport, ...]  # in fault_seeds order

    def degradation_stats(self) -> list[dict[str, float | str]]:
        """Mean/min/max EDP degradation per (policy, rate) across seeds.

        Degradation is a replica's EDP relative to its own healthy
        (lowest-rate) run of the same policy.
        """
        cells: dict[tuple[str, float], list[float]] = {}
        for report in self.replicas:
            for run in report.runs:
                base = report.baseline(run.policy)
                ratio = run.edp / base.edp if base.edp else float("nan")
                cells.setdefault((run.policy, run.rate_per_1ks), []).append(ratio)
        rows: list[dict[str, float | str]] = []
        for (policy, rate), ratios in sorted(cells.items()):
            rows.append(
                {
                    "policy": policy,
                    "rate_per_1ks": rate,
                    "n_replicas": len(ratios),
                    "edp_degradation_mean": sum(ratios) / len(ratios),
                    "edp_degradation_min": min(ratios),
                    "edp_degradation_max": max(ratios),
                }
            )
        return rows


def _fault_replica_task(item):
    from repro.experiments.fault_tolerance import run_fault_tolerance

    kwargs = dict(item)
    return run_fault_tolerance(**kwargs)


def fault_mc_sharded(
    fault_seeds: tuple[int, ...] | list[int],
    *,
    rates: tuple[float, ...] = DEFAULT_RATES,
    n_jobs: int = 120,
    mean_interarrival_s: float = 8.0,
    n_nodes: int = 4,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: int = 0,
    backend: str = "event",
    workers: int | None = None,
    executor: SweepExecutor | None = None,
) -> FaultMonteCarloReport:
    """Monte-Carlo replicas of the fault-tolerance sweep, one per seed.

    Every replica replays the *same* seeded workload under a different
    injection seed; the replicas tuple is ordered by ``fault_seeds``
    and each replica is byte-identical to calling
    :func:`~repro.experiments.fault_tolerance.run_fault_tolerance`
    with that seed directly, whatever the worker count.
    """
    seeds = tuple(int(s) for s in fault_seeds)
    if not seeds:
        raise ValueError("fault_seeds must be non-empty")
    if executor is None:
        executor = SweepExecutor(workers)
    tasks = [
        (
            ("rates", tuple(rates)),
            ("n_jobs", n_jobs),
            ("mean_interarrival_s", mean_interarrival_s),
            ("n_nodes", n_nodes),
            ("node", node),
            ("constants", constants),
            ("seed", seed),
            ("fault_seed", fault_seed),
            ("backend", backend),
        )
        for fault_seed in seeds
    ]
    replicas = executor.map(_fault_replica_task, tasks)
    return FaultMonteCarloReport(fault_seeds=seeds, replicas=tuple(replicas))


# -------------------------------------------------- multi-rack sweeps
@dataclass(frozen=True)
class RackSweepRow:
    """One steady-state run at one cluster size."""

    n_nodes: int
    n_jobs: int
    makespan: float
    total_energy: float
    edp: float
    #: Per-shard MetricsRegistry snapshot (engine namespace).
    metrics: Snapshot


@dataclass(frozen=True)
class RackSweepReport:
    """Rows in ``node_counts`` order plus the merged metrics snapshot."""

    rows: tuple[RackSweepRow, ...]
    merged_metrics: Snapshot

    def knee(self, threshold: float = 0.05) -> int:
        """Smallest cluster size past the scaling knee.

        The first size whose makespan improves on the previous row by
        less than ``threshold`` (relative) — the executor-count knee
        search of the nes-spark sweep.  Falls back to the largest size
        when scaling never flattens.
        """
        rows = sorted(self.rows, key=lambda r: r.n_nodes)
        for prev, cur in zip(rows, rows[1:]):
            if prev.makespan <= 0.0:
                continue
            gain = (prev.makespan - cur.makespan) / prev.makespan
            if gain < threshold:
                return cur.n_nodes
        return rows[-1].n_nodes


def _rack_cell_task(item):
    n_nodes, n_jobs, mean_interarrival_s, seed, recorder, node, constants = item
    from repro.mapreduce.engine import ClusterEngine
    from repro.telemetry.registry import cluster_registry
    from repro.workloads.streams import poisson_job_stream

    cluster = ClusterEngine(
        n_nodes=n_nodes, node=node, constants=constants, recorder=recorder
    )
    for spec in poisson_job_stream(
        n_jobs,
        mean_interarrival_s=mean_interarrival_s,
        seed=seed,
        tuned=True,
        job_ids_from=1,
    ):
        cluster.submit(spec)
    cluster.run()
    makespan = cluster.makespan
    # cache=False: the process-wide artifact-cache counters depend on
    # what else ran in the worker process — not shard-deterministic.
    snapshot = cluster_registry(cluster, cache=False).snapshot()
    return RackSweepRow(
        n_nodes=n_nodes,
        n_jobs=n_jobs,
        makespan=makespan,
        total_energy=cluster.total_energy(makespan),
        edp=cluster.edp(),
        metrics=snapshot,
    )


def rack_sweep_sharded(
    node_counts: tuple[int, ...] | list[int],
    *,
    n_jobs: int = 400,
    mean_interarrival_s: float = 2.0,
    seed: int = 0,
    recorder: str = "off",
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    workers: int | None = None,
    executor: SweepExecutor | None = None,
) -> RackSweepReport:
    """One steady-state run per cluster size, sharded across processes.

    Every cell replays the *same* seeded tuned job stream on a fresh
    cluster of a different size — the fig9 scalability grid.  Rows come
    back in ``node_counts`` order; per-cell engine metrics are merged
    into one snapshot in the same order.
    """
    counts = tuple(int(c) for c in node_counts)
    if not counts:
        raise ValueError("node_counts must be non-empty")
    if executor is None:
        executor = SweepExecutor(workers)
    tasks = [
        (c, n_jobs, mean_interarrival_s, seed, recorder, node, constants)
        for c in counts
    ]
    rows = executor.map(_rack_cell_task, tasks)
    return RackSweepReport(
        rows=tuple(rows),
        merged_metrics=merge_registry_snapshots([r.metrics for r in rows]),
    )
