"""Sharded scenario execution with deterministic merges.

Partitions independent work — scenario batches, Monte-Carlo fault
replicas, multi-rack sweep grids — across processes on top of
:mod:`repro.parallel.executor`, and merges per-shard metrics
snapshots, batch outcomes, and trace spans bit-identically to the
serial path.  See :mod:`repro.shard.runner` for the drivers and
:mod:`repro.shard.merge` for the merge contract.
"""

from repro.shard.merge import (
    merge_batch_telemetry,
    merge_chrome_traces,
    merge_registry_snapshots,
)
from repro.shard.runner import (
    SCENARIO_SHARD_SIZE,
    FaultMonteCarloReport,
    RackSweepReport,
    RackSweepRow,
    evaluate_scenarios_sharded,
    fault_mc_sharded,
    rack_sweep_sharded,
    shard_slices,
)

__all__ = [
    "SCENARIO_SHARD_SIZE",
    "FaultMonteCarloReport",
    "RackSweepReport",
    "RackSweepRow",
    "evaluate_scenarios_sharded",
    "fault_mc_sharded",
    "merge_batch_telemetry",
    "merge_chrome_traces",
    "merge_registry_snapshots",
    "rack_sweep_sharded",
    "shard_slices",
]
