"""Deterministic merge primitives for sharded runs.

Every sharded driver in :mod:`repro.shard.runner` returns per-shard
artifacts in *shard order* (the order the work was partitioned in,
independent of which worker process ran what, courtesy of
:class:`repro.parallel.executor.SweepExecutor`'s ordered map).  These
helpers fold those artifacts into single objects by walking shards
left to right, so the merged result is a pure function of the inputs —
bit-identical across ``REPRO_WORKERS`` settings and to the serial run.
"""

from __future__ import annotations

from repro.telemetry.profiling import BatchTelemetry
from repro.telemetry.registry import Snapshot


def merge_registry_snapshots(snapshots: list[Snapshot]) -> Snapshot:
    """Sum numeric leaves across per-shard registry snapshots.

    Counters are added namespace by namespace in shard order (fixed
    float-addition order → deterministic bytes).  Metrics missing from
    a shard contribute nothing; namespaces union.
    """
    out: Snapshot = {}
    for snap in snapshots:
        for ns, metrics in snap.items():
            dst = out.setdefault(ns, {})
            for k, v in metrics.items():
                dst[k] = dst.get(k, 0) + v
    return {ns: dict(sorted(m.items())) for ns, m in sorted(out.items())}


def merge_batch_telemetry(parts: list[BatchTelemetry]) -> BatchTelemetry:
    """Fold per-shard batch telemetry in shard order."""
    merged = BatchTelemetry()
    for part in parts:
        merged.merge(part)
    return merged


def merge_chrome_traces(payloads: list[dict]) -> dict:
    """Concatenate per-shard Chrome trace payloads into one timeline.

    Shard ``i``'s events keep their relative order and move to a
    disjoint pid range (``pid + i * stride``) so per-shard process rows
    never collide; the stride is derived from the largest pid seen,
    making the merge a pure function of the inputs.
    """
    stride = 1
    for payload in payloads:
        for ev in payload.get("traceEvents", ()):
            pid = ev.get("pid")
            if isinstance(pid, int) and pid + 1 > stride:
                stride = pid + 1
    events: list[dict] = []
    for i, payload in enumerate(payloads):
        for ev in payload.get("traceEvents", ()):
            ev = dict(ev)
            pid = ev.get("pid")
            if isinstance(pid, int):
                ev["pid"] = pid + i * stride
            events.append(ev)
    out = {"traceEvents": events}
    for payload in payloads:
        unit = payload.get("displayTimeUnit")
        if unit is not None:
            out["displayTimeUnit"] = unit
            break
    return out
