"""FIG5 — class-pair priority ranking by minimum EDP (paper Figure 5).

For each class pair, takes representative training applications and
finds the minimum EDP over every knob combination and core
partitioning.  Ranking the pairs by that minimum reproduces the
paper's ordering — I-I first, then the I-X and H/C combinations, with
every M-X pair last — and :func:`repro.core.pairing.derive_priority`
turns the same data into the scheduler's decision-tree priorities.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement

from repro.baselines.colao import colao_best
from repro.core.pairing import derive_priority
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.utils.tables import render_table
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import TRAINING_APPS, get_app

#: Representative training application per class (Fig. 5's data comes
#: from the training set).
CLASS_REPRESENTATIVES: dict[AppClass, str] = {
    AppClass.COMPUTE: "wc",
    AppClass.HYBRID: "gp",
    AppClass.IO: "st",
    AppClass.MEMORY: "fp",
}


@dataclass(frozen=True)
class Fig5Report:
    data_bytes: int
    min_edp: dict[tuple[AppClass, AppClass], float]
    best_partition: dict[tuple[AppClass, AppClass], tuple[int, int]]
    priority: dict[AppClass, int]

    def ranking(self) -> list[tuple[str, float]]:
        """Class pairs from lowest to highest minimum EDP."""
        items = sorted(self.min_edp.items(), key=lambda kv: kv[1])
        return [(f"{a.value}-{b.value}", v) for (a, b), v in items]

    def render(self) -> str:
        rows = []
        for rank, ((a, b), edp) in enumerate(
            sorted(self.min_edp.items(), key=lambda kv: kv[1]), start=1
        ):
            part = self.best_partition[(a, b)]
            rows.append([rank, f"{a.value}-{b.value}", edp, f"{part[0]}+{part[1]}"])
        table = render_table(
            ["rank", "class pair", "min EDP (J*s)", "best cores"],
            rows,
            title=f"Figure 5 — class-pair ranking at {self.data_bytes // GB}GB",
            floatfmt=".3e",
        )
        order = sorted(self.priority, key=lambda c: -self.priority[c])
        tree = (
            "Derived co-runner priority (decision tree): "
            + " > ".join(c.value for c in order)
        )
        return table + "\n\n" + tree


def run_fig5(
    *,
    data_bytes: int = 10 * GB,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
) -> Fig5Report:
    """Minimum EDP per class pair over all partitions + knobs."""
    min_edp: dict[tuple[AppClass, AppClass], float] = {}
    best_partition: dict[tuple[AppClass, AppClass], tuple[int, int]] = {}
    classes = sorted(CLASS_REPRESENTATIVES, key=lambda c: c.value)
    for ca, cb in combinations_with_replacement(classes, 2):
        inst_a = AppInstance(get_app(CLASS_REPRESENTATIVES[ca]), data_bytes)
        inst_b = AppInstance(get_app(CLASS_REPRESENTATIVES[cb]), data_bytes)
        co = colao_best(inst_a, inst_b, node=node, constants=constants)
        min_edp[(ca, cb)] = co.edp
        best_partition[(ca, cb)] = co.partition()
    priority = derive_priority(min_edp)
    return Fig5Report(
        data_bytes=data_bytes,
        min_edp=min_edp,
        best_partition=best_partition,
        priority=priority,
    )
