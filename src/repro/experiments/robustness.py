"""Robustness extension: STP under measurement noise and misclassification.

The paper assumes a clean learning period; a deployed controller faces
noisy counters (PMU multiplexing on a loaded node) and occasional
misclassification.  This extension measures how each failure mode
degrades the self-tuning error:

* **counter noise** — the perf/dstat noise level is scaled up and the
  unknown applications re-profiled;
* **forced misclassification** — each application's class tag is
  replaced by an adjacent class with some probability (the classifier's
  realistic error mode: H↔C and H↔I confusions).

Reported as mean EDP error vs. the COLAO oracle per condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.analysis.features import PROFILING_CONFIG
from repro.core.stp import AppDescriptor, SelfTuningPredictor
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.costmodel import pair_metrics
from repro.model.sweep import sweep_pair
from repro.telemetry.dstat import DstatMonitor, average_rows
from repro.telemetry.perf import PerfSampler
from repro.utils.rng import rng_from
from repro.utils.tables import render_table
from repro.utils.units import MB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import TESTING_APPS, instances_for

#: Adjacent-class confusion map (the realistic error mode).
_ADJACENT = {
    AppClass.COMPUTE: AppClass.HYBRID,
    AppClass.HYBRID: AppClass.COMPUTE,
    AppClass.IO: AppClass.HYBRID,
    AppClass.MEMORY: AppClass.HYBRID,
}


def _noisy_descriptor(
    instance: AppInstance,
    noise_scale: float,
    *,
    node: NodeSpec,
    constants: SimConstants,
    seed: int,
) -> AppDescriptor:
    """Profile with scaled-up measurement noise."""
    perf = PerfSampler(node, constants=constants, noise_sigma=0.15 * noise_scale)
    dstat = DstatMonitor(node, constants=constants, noise_sigma=0.03 * noise_scale)
    cfg = PROFILING_CONFIG
    report = perf.sample(
        instance, cfg.frequency, cfg.block_size, cfg.n_mappers, seed=seed
    )
    rows = dstat.sample_run(
        instance, cfg.frequency, cfg.block_size, cfg.n_mappers, seed=seed + 1
    )
    avg = average_rows(rows)
    feats = {
        "cpu_user": avg["cpu_user"],
        "cpu_sys": avg["cpu_sys"],
        "cpu_idle": avg["cpu_idle"],
        "cpu_iowait": avg["cpu_iowait"],
        "io_read_mbps": avg["io_read_bps"] / MB,
        "io_write_mbps": avg["io_write_bps"] / MB,
        "mem_footprint_mb": avg["mem_footprint_bytes"] / MB,
        "mem_cache_mb": avg["mem_cache_bytes"] / MB,
        "ipc": report.ipc,
        "icache_mpki": report.mpki("L1-icache-load-misses"),
        "dcache_mpki": report.mpki("L1-dcache-load-misses"),
        "llc_mpki": report.mpki("LLC-load-misses"),
        "branch_mpki": report.mpki("branch-misses"),
        "ctx_switch_rate": report.counts["context-switches"] / report.duration_s,
    }
    return AppDescriptor(
        features=feats, app_class=instance.app_class, data_bytes=instance.data_bytes
    )


@dataclass(frozen=True)
class RobustnessReport:
    """Mean STP error (%) per injected condition."""

    conditions: tuple[str, ...]
    mean_error: dict[str, float]
    n_pairs: int

    def render(self) -> str:
        rows = [[c, self.mean_error[c]] for c in self.conditions]
        return render_table(
            ["condition", "mean EDP err % vs COLAO"],
            rows,
            title=(
                f"Robustness extension — STP error under injected faults "
                f"({self.n_pairs} unknown pairs)"
            ),
            floatfmt=".2f",
        )


def run_robustness(
    stp: SelfTuningPredictor,
    *,
    noise_scales: Sequence[float] = (1.0, 4.0, 10.0),
    misclassify_probs: Sequence[float] = (0.0, 0.5, 1.0),
    max_pairs: int = 30,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: int = 0,
) -> RobustnessReport:
    """Measure STP error under noise / misclassification injections."""
    rng = rng_from(seed)
    testing = instances_for(TESTING_APPS)
    pairs = list(combinations(testing, 2))
    idx = rng.choice(len(pairs), size=min(max_pairs, len(pairs)), replace=False)
    pairs = [pairs[i] for i in sorted(idx)]

    def score(make_desc) -> float:
        errors = []
        for a, b in pairs:
            sweep = sweep_pair(a, b, node=node, constants=constants)
            da, db = make_desc(a), make_desc(b)
            cfg_a, cfg_b = stp.predict_configs(da, db)
            pm = pair_metrics(
                a.profile, a.data_bytes,
                cfg_a.frequency, cfg_a.block_size, cfg_a.n_mappers,
                b.profile, b.data_bytes,
                cfg_b.frequency, cfg_b.block_size, cfg_b.n_mappers,
                node=node, constants=constants,
            )
            errors.append((float(pm.edp) - sweep.best_edp) / sweep.best_edp * 100.0)
        return float(np.mean(errors))

    conditions: list[str] = []
    mean_error: dict[str, float] = {}

    for scale in noise_scales:
        name = f"counter noise x{scale:g}"
        conditions.append(name)
        mean_error[name] = score(
            lambda inst, s=scale: _noisy_descriptor(
                inst, s, node=node, constants=constants, seed=seed
            )
        )

    for prob in misclassify_probs:
        name = f"misclassify p={prob:g}"
        conditions.append(name)
        flip_rng = rng_from(seed + 99)

        def make(inst, p=prob, r=flip_rng):
            d = _noisy_descriptor(inst, 1.0, node=node, constants=constants, seed=seed)
            cls = d.app_class
            if r.random() < p:
                cls = _ADJACENT[cls]
            return AppDescriptor(
                features=d.features, app_class=cls, data_bytes=d.data_bytes
            )

        mean_error[name] = score(make)

    return RobustnessReport(
        conditions=tuple(conditions), mean_error=mean_error, n_pairs=len(pairs)
    )
