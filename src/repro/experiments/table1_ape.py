"""TAB1 — APE of the learned EDP models per class pair (paper Table 1).

Trains LR, REPTree and MLP on the training-pair sweep rows and scores
the absolute percentage error of EDP *prediction* (not selection) on
held-out grid points, per class pair.  The paper reports LR ≈ 55%
average APE, REPTree ≈ 4.4%, MLP ≈ 0.77% — the shape to reproduce is
the steep accuracy ordering LR ≫ REPTree > MLP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.stp import MODEL_FACTORIES, TrainingDataset
from repro.ml.mlp import MLPRegressor
from repro.experiments.artifacts import get_training_dataset
from repro.ml.metrics import mean_ape
from repro.ml.preprocessing import train_val_split
from repro.utils.tables import render_table

MODEL_ORDER = ("lr", "reptree", "mlp")


@dataclass(frozen=True)
class Table1Report:
    """APE (%) per class pair and model."""

    ape: dict[str, dict[str, float]]  # class pair -> model -> APE %

    def averages(self) -> dict[str, float]:
        out = {}
        for model in MODEL_ORDER:
            vals = [row[model] for row in self.ape.values()]
            out[model] = float(np.mean(vals))
        return out

    def render(self) -> str:
        rows = [
            [code] + [self.ape[code][m] for m in MODEL_ORDER]
            for code in sorted(self.ape)
        ]
        avg = self.averages()
        rows.append(["Average"] + [avg[m] for m in MODEL_ORDER])
        return render_table(
            ["class pair", "LR", "REPTree", "MLP"],
            rows,
            title="Table 1 — Absolute Percentage Error (%) of EDP prediction",
            floatfmt=".2f",
        )


def run_table1(
    *,
    dataset: TrainingDataset | None = None,
    holdout_fraction: float = 0.25,
    seed: int = 0,
) -> Table1Report:
    """Fit each model per class pair and score held-out APE."""
    ds = dataset if dataset is not None else get_training_dataset()
    ape: dict[str, dict[str, float]] = {}
    for code in ds.class_pairs:
        X, y = ds.subset(code)
        Xt, yt, Xv, yv = train_val_split(
            X, y, val_fraction=holdout_fraction, seed=seed
        )
        row = {}
        for model_name in MODEL_ORDER:
            if model_name == "mlp":
                # Table 1 scores pure prediction accuracy, so the MLP
                # gets a larger budget than the online STP variant.
                model = MLPRegressor(
                    hidden=(96, 48), epochs=1000, batch_size=128,
                    lr=2e-3, log_target=False, early_stop_patience=100,
                    seed=0,
                )
            else:
                model = MODEL_FACTORIES[model_name]()
            # LR is fitted on raw EDP (the paper's straw-man linear
            # surface); the nonlinear models on log-EDP as in MLM-STP.
            if model_name == "lr":
                model.fit(Xt, yt)
                pred = np.asarray(model.predict(Xv))
            else:
                model.fit(Xt, np.log(yt))
                pred = np.exp(np.asarray(model.predict(Xv)))
            row[model_name] = mean_ape(yv, np.maximum(pred, 1e-12))
        ape[code] = row
    return Table1Report(ape=ape)
