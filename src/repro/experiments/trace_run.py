"""Seeded, traced replay runs: ``python -m repro trace <experiment>``.

One deterministic workload is replayed with a live
:class:`~repro.telemetry.tracing.Tracer` attached, producing a
Perfetto-loadable Chrome trace (job lifetimes, derived map/shuffle
phases, controller decisions, fault/recovery episodes) plus the flat
metrics JSON of a :class:`~repro.telemetry.registry.MetricsRegistry`.

Tracing is purely observational, so the traced run is byte-identical
to the same seeded run with tracing disabled — ``tests/test_tracing.py``
pins this, and :func:`run_traced` is the fixture both the CLI and the
CI trace-smoke job replay.

Experiments
-----------
``steady``
    Tuned Poisson stream on the FIFO first-fit baseline: job and phase
    spans plus the pending-queue counter.
``faulty``
    The same stream with a seeded :class:`InjectionPlan` and the
    fault injector (HDFS-backed recovery): adds fault instants,
    node-down spans, and recovery-episode spans.
``ecost``
    The stream driven by the :class:`ECoSTController` (cached STP +
    classifier artifacts) under the same fault plan: adds
    classification, pairing, and placement decision instants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.injector import FaultInjector
from repro.faults.plan import InjectionPlan
from repro.mapreduce.engine import ClusterEngine
from repro.mapreduce.job import JobResult
from repro.telemetry.registry import MetricsRegistry, cluster_registry
from repro.telemetry.tracing import Tracer
from repro.utils.rng import SeedLike
from repro.workloads.streams import poisson_job_stream

#: The replayable experiments, in documentation order.
TRACE_EXPERIMENTS = ("steady", "faulty", "ecost")


@dataclass(frozen=True)
class TracedRun:
    """Everything one traced replay produced."""

    experiment: str
    tracer: Tracer
    registry: MetricsRegistry
    results: list[JobResult]
    makespan: float
    energy_joules: float

    def summary(self) -> dict[str, float]:
        """Flat facts for the CLI banner and the smoke job."""
        cats = sorted({s.cat for s in self.tracer.spans})
        out: dict[str, float] = {
            "jobs_completed": len(self.results),
            "makespan_s": self.makespan,
            "energy_joules": self.energy_joules,
            "trace_events": self.tracer.n_events,
        }
        for cat in cats:
            out[f"spans_{cat}"] = len(self.tracer.spans_by_cat(cat))
        return out


def run_traced(
    experiment: str,
    *,
    n_jobs: int = 60,
    n_nodes: int = 8,
    seed: SeedLike = 0,
    fault_rate_per_1ks: float = 6.0,
    fault_seed: SeedLike = 7,
    model_kind: str = "reptree",
    tracer: Tracer | None = None,
) -> TracedRun:
    """Replay one seeded experiment with tracing enabled.

    The workload, the fault plan, and every scheduling decision are
    functions of the seeds alone; the tracer only observes.  Passing
    ``tracer=None`` (the default) attaches a fresh :class:`Tracer`.
    """
    if experiment not in TRACE_EXPERIMENTS:
        raise ValueError(
            f"unknown trace experiment {experiment!r}; "
            f"choose from {', '.join(TRACE_EXPERIMENTS)}"
        )
    tracer = tracer if tracer is not None else Tracer()
    specs = list(
        poisson_job_stream(n_jobs, seed=seed, tuned=True, job_ids_from=1)
    )
    cluster = ClusterEngine(n_nodes, tracer=tracer)

    controller = None
    if experiment == "ecost":
        from repro.core.controller import ECoSTController
        from repro.experiments.artifacts import get_components

        components = get_components(model_kind)
        controller = ECoSTController(
            cluster, components.pair_stp, components.classifier
        )
        for spec in specs:
            controller.submit(spec.instance, spec.submit_time)
    else:
        for spec in specs:
            cluster.submit(spec)

    if experiment in ("faulty", "ecost"):
        from repro.experiments.fault_tolerance import _build_hdfs

        horizon = specs[-1].submit_time + 4000.0
        plan = InjectionPlan.generate(
            n_nodes,
            horizon,
            rate_per_1ks=fault_rate_per_1ks,
            seed=fault_seed,
        )
        hdfs, job_files = _build_hdfs(specs, n_nodes)
        FaultInjector(
            cluster,
            plan,
            hdfs=hdfs,
            job_files=job_files if experiment == "faulty" else {},
            controller=controller,
        ).install()

    results = controller.run() if controller is not None else cluster.run()
    registry = cluster_registry(cluster)
    return TracedRun(
        experiment=experiment,
        tracer=tracer,
        registry=registry,
        results=results,
        makespan=cluster.makespan,
        energy_joules=cluster.total_energy(),
    )
