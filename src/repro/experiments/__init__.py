"""Experiment harness: one module per paper table/figure.

Every module exposes a ``run_*`` function returning a structured
report object with a ``render()`` method that prints the same rows or
series the paper's artefact shows.  The heavyweight shared inputs
(sweeps, databases, fitted models) are built once and disk-cached by
:mod:`repro.experiments.artifacts`.

Experiment index (see DESIGN.md §4):

======  =====================================================
FIG1    PCA scatter / variance of the 14 feature metrics
FIG2    EDP improvement from tuning knobs, individually vs jointly
FIG3    COLAO vs ILAO EDP ratios per class pair
FIG5    class-pair priority ranking by minimum EDP
TAB1    APE of the LR / REPTree / MLP EDP models
TAB2    predicted configurations + error vs the COLAO oracle
SEC7    mean EDP error of each STP technique on unknown workloads
FIG8    training / prediction time of each STP model
TAB3    the WS1-WS8 workload scenarios
FIG9    EDP of the mapping policies on 1/2/4/8-node clusters
======  =====================================================
"""

from repro.experiments import artifacts
from repro.experiments.scenarios import WORKLOAD_SCENARIOS, scenario_instances

__all__ = ["artifacts", "WORKLOAD_SCENARIOS", "scenario_instances"]
