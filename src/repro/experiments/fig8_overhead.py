"""FIG8 — training and prediction cost of the STP models (Figure 8).

Measures wall-clock training time of each technique on the training
dataset and the per-decision prediction time (one incoming pair →
evaluate the whole configuration grid → pick).  The paper's shape:
training cost LR < REPTree ≪ LkT < MLP (the lookup table needs the
exhaustive sweeps to populate); prediction cost LkT ≪ LR < REPTree <
MLP, with MLP's long inference the reason §7.2 prefers REPTree.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.database import build_database
from repro.core.stp import LkTSTP, MLMSTP, build_training_dataset, describe_instance
from repro.utils.tables import render_table
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import TRAINING_APPS, instances_for, get_app


@dataclass(frozen=True)
class Fig8Report:
    """(train seconds, predict seconds per decision) per technique."""

    train_s: dict[str, float]
    predict_s: dict[str, float]

    def render(self) -> str:
        rows = [
            [name, self.train_s[name], self.predict_s[name] * 1e3]
            for name in self.train_s
        ]
        return render_table(
            ["technique", "training (s)", "prediction (ms/decision)"],
            rows,
            title="Figure 8 — STP computational overhead",
            floatfmt=".3f",
        )


def run_fig8(*, rows_per_pair: int = 300, predict_repeats: int = 3) -> Fig8Report:
    """Time every technique's offline training and online prediction.

    LkT's "training" is the database construction (the exhaustive
    sweeps it needs); the learned models reuse those sweeps, so their
    training time is pure model fitting — mirroring the paper, where
    the one-time measurement campaign is shared.
    """
    training = instances_for(TRAINING_APPS)

    t0 = time.perf_counter()
    database, sweeps = build_database(training, keep_sweeps=True)
    lkt_train = time.perf_counter() - t0

    dataset = build_training_dataset(
        training, sweeps=sweeps, rows_per_pair=rows_per_pair, seed=0
    )

    train_s: dict[str, float] = {"LkT": lkt_train}
    techs: dict[str, object] = {"LkT": LkTSTP(database)}
    for name, kind in (("LR", "lr"), ("REPTree", "reptree"), ("MLP", "mlp")):
        stp = MLMSTP(kind)
        t0 = time.perf_counter()
        stp.fit(dataset)
        train_s[name] = time.perf_counter() - t0
        techs[name] = stp

    a = describe_instance(AppInstance(get_app("nb"), 5 * GB))
    b = describe_instance(AppInstance(get_app("km"), 5 * GB))
    predict_s: dict[str, float] = {}
    for name, stp in techs.items():
        best = np.inf
        for _ in range(predict_repeats):
            t0 = time.perf_counter()
            stp.predict_configs(a, b)  # type: ignore[attr-defined]
            best = min(best, time.perf_counter() - t0)
        predict_s[name] = best
    return Fig8Report(train_s=train_s, predict_s=predict_s)
