"""Disk-cached heavyweight artifacts shared across experiments.

Building the configuration database, training dataset, and fitted STP
models takes tens of seconds to minutes; every experiment and
benchmark that needs them goes through these accessors so the work
happens once per calibration version.  Caches are pickles under
``.repro_cache/`` keyed by artifact name and :data:`CACHE_VERSION` —
bump the version whenever profiles or hardware constants change.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Callable

from repro.analysis.classify import NearestCentroidClassifier
from repro.analysis.features import build_feature_matrix
from repro.core.database import ConfigDatabase, build_database
from repro.core.stp import (
    LkTSTP,
    MLMSTP,
    SoloSTP,
    TrainingDataset,
    build_training_dataset,
)
from repro.workloads.registry import TRAINING_APPS, instances_for

#: Bump when profiles / hardware constants / STP pipeline change.
CACHE_VERSION = "v1"


def cache_dir() -> Path:
    """The cache directory (override with ``REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / ".repro_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cached(name: str, build: Callable[[], Any]) -> Any:
    """Load ``name`` from the cache or build and store it."""
    path = cache_dir() / f"{name}-{CACHE_VERSION}.pkl"
    if path.exists():
        with path.open("rb") as fh:
            return pickle.load(fh)
    value = build()
    tmp = path.with_suffix(".tmp")
    with tmp.open("wb") as fh:
        pickle.dump(value, fh)
    tmp.replace(path)
    return value


def clear_cache() -> int:
    """Delete all cached artifacts; returns the number removed."""
    n = 0
    for p in cache_dir().glob("*.pkl"):
        p.unlink()
        n += 1
    return n


# ------------------------------------------------------------ accessors
def get_database_and_sweep_labels() -> ConfigDatabase:
    """The training-pair configuration database (§6.2)."""
    return cached("database", lambda: build_database(instances_for(TRAINING_APPS))[0])


def get_training_dataset(rows_per_pair: int = 500) -> TrainingDataset:
    """Model-training rows from the training-pair sweeps."""
    def build() -> TrainingDataset:
        training = instances_for(TRAINING_APPS)
        _db, sweeps = build_database(training, keep_sweeps=True)
        return build_training_dataset(
            training, sweeps=sweeps, rows_per_pair=rows_per_pair, seed=0
        )

    return cached(f"dataset-rpp{rows_per_pair}", build)


def get_lkt() -> LkTSTP:
    """The lookup-table STP over the cached database."""
    return LkTSTP(get_database_and_sweep_labels())


def get_mlm(model_kind: str) -> MLMSTP:
    """A fitted MLM-STP (``"lr"``, ``"reptree"``, or ``"mlp"``)."""
    def build() -> MLMSTP:
        return MLMSTP(model_kind).fit(get_training_dataset())

    return cached(f"mlm-{model_kind}", build)


def get_solo_stp(model_kind: str = "reptree") -> SoloSTP:
    """A fitted standalone-application tuner (PTM backend)."""
    def build() -> SoloSTP:
        return SoloSTP(model_kind).fit(instances_for(TRAINING_APPS), seed=0)

    return cached(f"solo-{model_kind}", build)


def get_classifier() -> NearestCentroidClassifier:
    """Nearest-centroid classifier fitted on the training apps."""
    def build() -> NearestCentroidClassifier:
        training = instances_for(TRAINING_APPS)
        fm = build_feature_matrix(training, seed=0)
        return NearestCentroidClassifier().fit(fm, [i.app_class for i in training])

    return cached("classifier", build)


def get_components(model_kind: str = "reptree"):
    """The PTM/ECoST/UB component bundle for the §8 policies."""
    from repro.baselines.mapping import TunedComponents

    return TunedComponents(
        solo_stp=get_solo_stp(model_kind),
        pair_stp=get_mlm(model_kind),
        classifier=get_classifier(),
    )
