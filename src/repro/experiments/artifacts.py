"""Disk-cached heavyweight artifacts shared across experiments.

Building the configuration database, training dataset, and fitted STP
models takes tens of seconds to minutes; every experiment and
benchmark that needs them goes through these accessors so the work
happens once per calibration version.

Cache design
------------
* **Content-keyed paths.**  Files live under ``.repro_cache/`` (or
  ``REPRO_CACHE_DIR``) as ``<name>-<CACHE_VERSION>-<fingerprint>.pkl``
  where the fingerprint is a SHA-256 digest of everything the cached
  artifacts are a function of: the training workload profiles, the
  hardware node spec, the simulation constants, and the cache version
  itself.  Changing any calibration input silently invalidates every
  stale entry — no manual version bump required (though bumping
  :data:`CACHE_VERSION` still works and is the right move for pipeline
  changes that don't show up in those inputs).
* **Self-describing payloads.**  Each pickle wraps its value in an
  envelope recording the version and fingerprint it was built under;
  a file whose envelope disagrees with the current scheme (e.g. one
  copied between machines) is treated as stale and rebuilt.
* **Corruption tolerance.**  A truncated, garbled, or unreadable
  pickle — or one referencing classes that no longer exist — is
  logged, quarantined to ``<file>.corrupt``, and rebuilt instead of
  crashing the caller.
* **Atomic, race-safe writes.**  Values are written to a uniquely
  named temp file and ``os.replace``-d into place, so two processes
  racing on the same key both succeed and readers never observe a
  partial file.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
import re
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.analysis.classify import NearestCentroidClassifier
from repro.analysis.features import build_feature_matrix
from repro.core.database import ConfigDatabase, build_database
from repro.core.stp import (
    LkTSTP,
    MLMSTP,
    SoloSTP,
    TrainingDataset,
    build_training_dataset,
)
from repro.workloads.registry import TRAINING_APPS, get_app, instances_for

log = logging.getLogger("repro.cache")

#: Bump when the STP pipeline changes in ways the content fingerprint
#: cannot see (profiles and hardware constants are fingerprinted).
CACHE_VERSION = "v2"

#: Errors that mean "this pickle cannot be trusted": garbage bytes,
#: truncation, classes that moved/vanished since it was written, or an
#: unreadable file.
CORRUPTION_ERRORS = (
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
    KeyError,
    OSError,
)


@dataclass
class CacheStats:
    """Counters for cache behaviour (observable by telemetry/tests)."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0  # quarantined after a failed load
    stale: int = 0  # envelope version/fingerprint mismatch

    @property
    def hit_rate(self) -> float | None:
        total = self.hits + self.misses
        return None if total == 0 else self.hits / total


_STATS = CacheStats()


def cache_stats() -> CacheStats:
    """A snapshot of the process-wide cache counters."""
    return dataclasses.replace(_STATS)


def reset_cache_stats() -> None:
    """Zero the counters (test isolation)."""
    global _STATS
    _STATS = CacheStats()


def cache_dir() -> Path:
    """The cache directory (override with ``REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        path = Path(root)
    else:
        path = Path(__file__).resolve().parents[3] / ".repro_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


_ADDR_RE = re.compile(r" at 0x[0-9a-fA-F]+")


def _jsonable(obj: Any) -> Any:
    """Last-resort canonicaliser for fingerprint serialisation.

    Must never emit process-dependent text: a memory address leaking
    into the digest (e.g. via a default ``repr``) would give every
    process its own fingerprint and silently disable the cache.
    """
    if hasattr(obj, "tolist"):  # numpy arrays / scalars
        return obj.tolist()
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    state = getattr(obj, "__dict__", None)
    if state:  # plain objects (e.g. DvfsTable): type name + attributes
        return {"__class__": type(obj).__qualname__, "state": state}
    return _ADDR_RE.sub("", repr(obj))


_FINGERPRINTS: dict[str, str] = {}


def content_fingerprint() -> str:
    """Digest of every input the cached artifacts are a function of.

    Covers the training applications' calibrated profiles, the node
    hardware spec, the simulation constants, and the cache version.
    Deterministic across processes and runs (pure values, sorted keys).
    """
    cached_fp = _FINGERPRINTS.get(CACHE_VERSION)
    if cached_fp is not None:
        return cached_fp
    from repro.hardware.node import ATOM_C2758
    from repro.model.calibration import DEFAULT_CONSTANTS

    payload = {
        "version": CACHE_VERSION,
        "node": dataclasses.asdict(ATOM_C2758),
        "constants": dataclasses.asdict(DEFAULT_CONSTANTS),
        "profiles": {
            code: dataclasses.asdict(get_app(code).profile)
            for code in TRAINING_APPS
        },
    }
    blob = json.dumps(payload, sort_keys=True, default=_jsonable)
    fp = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]
    _FINGERPRINTS[CACHE_VERSION] = fp
    return fp


def cache_path(name: str) -> Path:
    """Content-keyed path for one named artifact."""
    return cache_dir() / f"{name}-{CACHE_VERSION}-{content_fingerprint()}.pkl"


def _quarantine(path: Path, reason: str) -> None:
    """Move a bad cache file aside (or drop it) so rebuilds are clean."""
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
        log.warning("quarantined %s cache file %s -> %s", reason, path, target.name)
    except OSError:
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - unwritable cache dir
            pass
        log.warning("removed %s cache file %s", reason, path)


def _load_envelope(path: Path) -> tuple[Any, bool]:
    """(payload, ok) for one cache file; never raises on bad content."""
    try:
        with path.open("rb") as fh:
            envelope = pickle.load(fh)
    except CORRUPTION_ERRORS as exc:
        _STATS.corrupt += 1
        log.warning("unreadable cache file %s (%s: %s)", path, type(exc).__name__, exc)
        _quarantine(path, "corrupt")
        return None, False
    if (
        not isinstance(envelope, dict)
        or envelope.get("version") != CACHE_VERSION
        or envelope.get("fingerprint") != content_fingerprint()
        or "payload" not in envelope
    ):
        _STATS.stale += 1
        _quarantine(path, "stale")
        return None, False
    return envelope["payload"], True


def _atomic_write(path: Path, value: Any) -> None:
    """Write-and-rename with a per-writer unique temp name.

    ``os.replace`` is atomic on POSIX for same-filesystem paths, so
    concurrent writers on the same key simply last-write-win and no
    reader ever sees a partial pickle.
    """
    envelope = {
        "version": CACHE_VERSION,
        "fingerprint": content_fingerprint(),
        "payload": value,
    }
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp")
    try:
        with tmp.open("wb") as fh:
            pickle.dump(envelope, fh)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def cached(name: str, build: Callable[[], Any]) -> Any:
    """Load ``name`` from the cache or build and store it.

    Never trusts the disk: corrupt or stale files are quarantined and
    the artifact is rebuilt, so a bad cache can slow a run down but
    can't fail it.
    """
    path = cache_path(name)
    if path.exists():
        value, ok = _load_envelope(path)
        if ok:
            _STATS.hits += 1
            return value
    _STATS.misses += 1
    value = build()
    _atomic_write(path, value)
    return value


def clear_cache() -> int:
    """Delete all cached artifacts (including quarantined and temp
    files); returns the number removed."""
    n = 0
    for pattern in ("*.pkl", "*.pkl.corrupt", ".*.tmp"):
        for p in cache_dir().glob(pattern):
            try:
                p.unlink()
                n += 1
            except OSError:  # pragma: no cover - raced with another cleaner
                pass
    return n


# ------------------------------------------------------------ accessors
def get_database_and_sweep_labels() -> ConfigDatabase:
    """The training-pair configuration database (§6.2)."""
    return cached("database", lambda: build_database(instances_for(TRAINING_APPS))[0])


def get_training_dataset(rows_per_pair: int = 500) -> TrainingDataset:
    """Model-training rows from the training-pair sweeps."""
    def build() -> TrainingDataset:
        training = instances_for(TRAINING_APPS)
        _db, sweeps = build_database(training, keep_sweeps=True)
        return build_training_dataset(
            training, sweeps=sweeps, rows_per_pair=rows_per_pair, seed=0
        )

    return cached(f"dataset-rpp{rows_per_pair}", build)


def get_lkt() -> LkTSTP:
    """The lookup-table STP over the cached database."""
    return LkTSTP(get_database_and_sweep_labels())


def get_mlm(model_kind: str) -> MLMSTP:
    """A fitted MLM-STP (``"lr"``, ``"reptree"``, or ``"mlp"``)."""
    def build() -> MLMSTP:
        return MLMSTP(model_kind).fit(get_training_dataset())

    return cached(f"mlm-{model_kind}", build)


def get_solo_stp(model_kind: str = "reptree") -> SoloSTP:
    """A fitted standalone-application tuner (PTM backend)."""
    def build() -> SoloSTP:
        return SoloSTP(model_kind).fit(instances_for(TRAINING_APPS), seed=0)

    return cached(f"solo-{model_kind}", build)


def get_classifier() -> NearestCentroidClassifier:
    """Nearest-centroid classifier fitted on the training apps."""
    def build() -> NearestCentroidClassifier:
        training = instances_for(TRAINING_APPS)
        fm = build_feature_matrix(training, seed=0)
        return NearestCentroidClassifier().fit(fm, [i.app_class for i in training])

    return cached("classifier", build)


def get_components(model_kind: str = "reptree"):
    """The PTM/ECoST/UB component bundle for the §8 policies."""
    from repro.baselines.mapping import TunedComponents

    return TunedComponents(
        solo_stp=get_solo_stp(model_kind),
        pair_stp=get_mlm(model_kind),
        classifier=get_classifier(),
    )
