"""Table 3: the eight studied workload scenarios (§8).

Each scenario is 16 applications, transcribed verbatim from the
paper's Table 3.  Class tags are the paper's (first row of the table);
the reproduction's profiles give each listed application the same
class, so the tags are re-derivable — a test asserts that.
"""

from __future__ import annotations

from typing import Sequence

from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app

#: Scenario name → (class tags, application codes), from Table 3.
WORKLOAD_SCENARIOS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "WS1": (
        tuple("CCCCCCCCCCCCCCCC"),
        ("svm", "svm", "wc", "wc", "svm", "wc", "hmm", "wc",
         "hmm", "hmm", "wc", "wc", "hmm", "wc", "svm", "wc"),
    ),
    "WS2": (
        tuple("HHHHHHHHHHHHHHHH"),
        ("ts", "gp", "ts", "ts", "ts", "gp", "ts", "ts",
         "ts", "gp", "ts", "ts", "ts", "gp", "ts", "ts"),
    ),
    "WS3": (
        tuple("IIIIIIIIIIIIIIII"),
        ("st",) * 16,
    ),
    "WS4": (
        tuple("CCHICCHICCHICCHI"),
        ("svm", "wc", "ts", "st", "wc", "wc", "ts", "st",
         "hmm", "svm", "ts", "st", "wc", "wc", "ts", "st"),
    ),
    "WS5": (
        tuple("CHIHCHIHCHIHCHIH"),
        ("hmm", "ts", "st", "ts", "wc", "ts", "st", "ts",
         "svm", "ts", "st", "ts", "hmm", "ts", "st", "ts"),
    ),
    "WS6": (
        tuple("HIHIHHIIHIHIHIHI"),
        ("ts", "st", "ts", "st", "ts", "ts", "st", "st",
         "ts", "st", "ts", "st", "ts", "st", "ts", "st"),
    ),
    "WS7": (
        tuple("MMMIMMMIMMMMMMMI"),
        ("cf", "cf", "cf", "st", "cf", "cf", "cf", "st",
         "cf", "cf", "cf", "cf", "cf", "cf", "cf", "st"),
    ),
    "WS8": (
        tuple("MMHIMMHICCHICCHI"),
        ("cf", "fp", "ts", "st", "cf", "fp", "ts", "st",
         "hmm", "svm", "ts", "st", "wc", "wc", "ts", "st"),
    ),
}


def scenario_instances(
    name: str, *, data_bytes: int = 5 * GB
) -> list[AppInstance]:
    """The 16 instances of one scenario at a common input size."""
    try:
        _tags, codes = WORKLOAD_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; valid: {', '.join(WORKLOAD_SCENARIOS)}"
        ) from None
    return [AppInstance(get_app(c), data_bytes) for c in codes]


def scenario_classes(name: str) -> Sequence[str]:
    """The paper's class tags for a scenario."""
    return WORKLOAD_SCENARIOS[name][0]
