"""FIG2 — EDP improvement from tuning knobs (paper Figure 2, §4.1).

For each mapper count, computes the EDP improvement available from
tuning the HDFS block size alone, the frequency alone, and both
concurrently — everything normalised to the paper's baseline of
(64 MB, 1.2 GHz) at the same mapper count.  The paper's findings this
must reproduce:

* concurrent tuning beats either individual knob (by 3.73%-87.39% in
  the paper);
* sensitivity shrinks as the mapper count grows (the motivation for
  careful tuning *under co-location*, where each app gets few cores).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.hdfs.blocks import HDFS_BLOCK_SIZES
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.costmodel import standalone_metrics
from repro.utils.tables import render_series
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app

BASELINE_BLOCK = 64 * MB
BASELINE_FREQ = 1.2 * GHZ


@dataclass(frozen=True)
class Fig2Report:
    """Improvement factors per app per mapper count."""

    app_code: str
    data_bytes: int
    mappers: tuple[int, ...]
    block_only: tuple[float, ...]
    freq_only: tuple[float, ...]
    concurrent: tuple[float, ...]

    @property
    def concurrent_gain_over_individual(self) -> tuple[float, ...]:
        """Relative advantage (%) of joint tuning over the better knob."""
        return tuple(
            (c / max(b, f) - 1.0) * 100.0
            for b, f, c in zip(self.block_only, self.freq_only, self.concurrent)
        )

    def render(self) -> str:
        return render_series(
            {
                "block-only": list(self.block_only),
                "freq-only": list(self.freq_only),
                "concurrent": list(self.concurrent),
                "joint gain %": list(self.concurrent_gain_over_individual),
            },
            x_labels=list(self.mappers),
            x_name="mappers",
            title=(
                f"Figure 2 — EDP improvement over (64MB, 1.2GHz), "
                f"{self.app_code}@{self.data_bytes // GB}GB"
            ),
        )


def _mapper_point(task) -> tuple[float, float, float]:
    """(block-only, freq-only, concurrent) improvements at one mapper
    count — module-level so the sweep executor can fan it out."""
    profile, data_bytes, m, node, constants = task
    freqs = np.asarray(node.frequencies)
    blocks = np.asarray(HDFS_BLOCK_SIZES, dtype=float)

    base = standalone_metrics(
        profile, data_bytes, BASELINE_FREQ, BASELINE_BLOCK, m,
        node=node, constants=constants,
    )
    base_edp = float(np.asarray(base.edp))

    blk = standalone_metrics(
        profile, data_bytes, BASELINE_FREQ, blocks, m,
        node=node, constants=constants,
    )
    frq = standalone_metrics(
        profile, data_bytes, freqs, BASELINE_BLOCK, m,
        node=node, constants=constants,
    )
    ff, bb = np.meshgrid(freqs, blocks, indexing="ij")
    both = standalone_metrics(
        profile, data_bytes, ff.ravel(), bb.ravel(), m,
        node=node, constants=constants,
    )
    return (
        base_edp / float(blk.edp.min()),
        base_edp / float(frq.edp.min()),
        base_edp / float(both.edp.min()),
    )


def run_fig2(
    app_code: str = "wc",
    *,
    data_bytes: int = 10 * GB,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    executor: "SweepExecutor | None" = None,
) -> Fig2Report:
    """Sweep the knobs at every mapper count for one application.

    The per-mapper-count grid evaluations are independent and fan out
    through ``executor`` (honouring ``REPRO_WORKERS`` when omitted).
    """
    from repro.parallel import SweepExecutor

    profile = get_app(app_code).profile
    mappers = tuple(range(1, node.n_cores + 1))
    exec_ = executor if executor is not None else SweepExecutor()
    points = exec_.map(
        _mapper_point,
        [(profile, data_bytes, m, node, constants) for m in mappers],
    )
    block_only = [p[0] for p in points]
    freq_only = [p[1] for p in points]
    concurrent = [p[2] for p in points]

    return Fig2Report(
        app_code=app_code,
        data_bytes=data_bytes,
        mappers=mappers,
        block_only=tuple(block_only),
        freq_only=tuple(freq_only),
        concurrent=tuple(concurrent),
    )
