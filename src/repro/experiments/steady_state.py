"""Steady-state extension: ECoST under continuous Poisson arrivals.

The paper describes the wait queue "in steady state" — applications
arrive continuously and are paired as slots free up (§5) — but
evaluates only batch workloads (Table 3).  This extension drives the
controller with a Poisson arrival stream of random applications and
measures the queueing behaviour the batch experiments cannot show:
waiting times, queue dynamics, and the energy-per-job rate, with the
class-priority pairing compared against plain FIFO pairing.
"""

from __future__ import annotations

from dataclasses import dataclass
from dataclasses import field as dataclasses_field

import numpy as np

from repro.analysis.classify import NearestCentroidClassifier
from repro.core.controller import ECoSTController
from repro.core.pairing import PairingPolicy
from repro.core.stp import SelfTuningPredictor
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.engine import ClusterEngine
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.telemetry.profiling import EngineTelemetry
from repro.utils.rng import SeedLike, rng_from
from repro.utils.tables import render_table
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import ALL_APPS, get_app


@dataclass(frozen=True)
class SteadyStateMetrics:
    """Queueing + energy metrics of one streaming run."""

    label: str
    n_jobs: int
    makespan: float
    mean_wait_s: float
    p95_wait_s: float
    max_wait_s: float
    energy_per_job_kj: float
    mean_wait_by_class: dict[str, float]

    def fairness_spread_s(self) -> float:
        """Max − min mean wait across classes (seconds; 0 = even)."""
        waits = list(self.mean_wait_by_class.values())
        if len(waits) < 2:
            return 0.0
        return max(waits) - min(waits)


@dataclass(frozen=True)
class SteadyStateReport:
    runs: tuple[SteadyStateMetrics, ...]
    #: Engine hot-path counters per run (events, recontext cache hit
    #: rate), keyed by run label.  Diagnostic only — not rendered, so
    #: the report's text output is independent of engine internals.
    telemetry: dict[str, "EngineTelemetry"] = dataclasses_field(
        default_factory=dict, compare=False
    )

    def render(self) -> str:
        rows = [
            [
                r.label, r.n_jobs, r.makespan, r.mean_wait_s, r.p95_wait_s,
                r.max_wait_s, r.energy_per_job_kj, r.fairness_spread_s(),
            ]
            for r in self.runs
        ]
        return render_table(
            [
                "pairing", "jobs", "makespan (s)", "mean wait (s)",
                "p95 wait (s)", "max wait (s)", "kJ/job", "wait spread (s)",
            ],
            rows,
            title="Steady-state extension — Poisson arrivals on 4 nodes",
            floatfmt=".1f",
        )


def _poisson_workload(
    n_jobs: int, mean_interarrival_s: float, seed: SeedLike
) -> list[tuple[float, AppInstance]]:
    rng = rng_from(seed)
    t = 0.0
    out = []
    for _ in range(n_jobs):
        t += float(rng.exponential(mean_interarrival_s))
        code = ALL_APPS[int(rng.integers(len(ALL_APPS)))]
        size = int(rng.choice([1 * GB, 5 * GB]))
        out.append((t, AppInstance(get_app(code), size)))
    return out


def run_steady_state(
    stp: SelfTuningPredictor,
    classifier: NearestCentroidClassifier,
    *,
    n_jobs: int = 40,
    mean_interarrival_s: float = 18.0,
    n_nodes: int = 4,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: SeedLike = 0,
) -> SteadyStateReport:
    """Stream one Poisson workload through ECoST and FIFO pairing."""
    arrivals = _poisson_workload(n_jobs, mean_interarrival_s, seed)
    telemetry: dict[str, EngineTelemetry] = {}

    def run(label: str, pairing: PairingPolicy) -> SteadyStateMetrics:
        cluster = ClusterEngine(n_nodes, node, constants=constants)
        telemetry[label] = cluster.telemetry
        controller = ECoSTController(
            cluster, stp, classifier,
            pairing=pairing, node=node, constants=constants,
        )
        for t, inst in arrivals:
            controller.submit(inst, arrival_time=t)
        results = controller.run()
        waits = np.array([r.wait_time for r in results])
        by_class: dict[str, list[float]] = {}
        for r in results:
            by_class.setdefault(r.spec.instance.app_class.value, []).append(
                r.wait_time
            )
        makespan = cluster.makespan
        return SteadyStateMetrics(
            label=label,
            n_jobs=len(results),
            makespan=makespan,
            mean_wait_s=float(waits.mean()),
            p95_wait_s=float(np.percentile(waits, 95)),
            max_wait_s=float(waits.max()),
            energy_per_job_kj=cluster.total_energy(makespan) / len(results) / 1e3,
            mean_wait_by_class={
                k: float(np.mean(v)) for k, v in by_class.items()
            },
        )

    ecost = run("class-priority (ECoST)", PairingPolicy())
    fifo = run("FIFO pairing", PairingPolicy(priority={c: 0 for c in AppClass}))
    return SteadyStateReport(runs=(ecost, fifo), telemetry=telemetry)
