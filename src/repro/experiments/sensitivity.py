"""Calibration-sensitivity extension: are the headline shapes robust?

The reproduction's hardware/framework constants
(:class:`~repro.model.calibration.SimConstants` and the disk/power
models) were calibrated to the paper's qualitative findings.  A fair
question is whether those findings are knife-edge artefacts of the
chosen constants.  This experiment perturbs each framework constant
up and down and re-checks the two headline shapes:

* Fig. 5's ranking — I-I is the best class pair, every M-X pair is in
  the bottom four;
* Fig. 3's co-location result — the I-I COLAO/ILAO gain stays the
  maximum and stays > 1.

A shape that survives ±50% perturbations of every constant is a
property of the modelled physics (idle power, resource overlap), not
of the tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.colao import colao_best
from repro.baselines.ilao import ilao_best, ilao_pair_edp
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.utils.tables import render_table
from repro.utils.units import GB
from repro.workloads.base import AppClass, AppInstance
from repro.workloads.registry import get_app

#: Constants perturbed and the relative deltas applied.
PERTURBED_FIELDS: tuple[str, ...] = (
    "task_overhead_s",
    "shuffle_reread_fraction",
    "swap_penalty",
    "remote_shuffle_fraction",
)

_REPS = {"I": "st", "C": "wc", "H": "gp", "M": "fp"}


@dataclass(frozen=True)
class ShapeCheck:
    """Outcome of the headline-shape checks under one constant set."""

    label: str
    ii_is_best_pair: bool
    m_pairs_are_worst: bool
    ii_gain: float  # COLAO/ILAO ratio of the I-I pair

    @property
    def holds(self) -> bool:
        return self.ii_is_best_pair and self.m_pairs_are_worst and self.ii_gain > 1.0


@dataclass(frozen=True)
class SensitivityReport:
    checks: tuple[ShapeCheck, ...]

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks)

    def render(self) -> str:
        rows = [
            [c.label, str(c.ii_is_best_pair), str(c.m_pairs_are_worst),
             c.ii_gain, str(c.holds)]
            for c in self.checks
        ]
        return render_table(
            ["constants", "I-I best", "M-X worst", "I-I gain (x)", "shape holds"],
            rows,
            title="Calibration sensitivity — headline shapes under perturbation",
            floatfmt=".2f",
        )


def _check_shapes(
    label: str,
    constants: SimConstants,
    *,
    data_bytes: int,
    node: NodeSpec,
) -> ShapeCheck:
    insts = {k: AppInstance(get_app(v), data_bytes) for k, v in _REPS.items()}
    solos = {
        k: ilao_best(inst, node=node, constants=constants)
        for k, inst in insts.items()
    }
    min_edp: dict[str, float] = {}
    ii_gain = 0.0
    keys = sorted(_REPS)
    for i, ka in enumerate(keys):
        for kb in keys[i:]:
            co = colao_best(
                insts[ka], insts[kb], node=node, constants=constants
            )
            pair = f"{ka}-{kb}"
            min_edp[pair] = co.edp
            if pair == "I-I":
                ii_gain = ilao_pair_edp(solos[ka], solos[kb]) / co.edp
    ranking = sorted(min_edp, key=min_edp.get)
    m_pairs = {p for p in min_edp if "M" in p}
    return ShapeCheck(
        label=label,
        ii_is_best_pair=ranking[0] == "I-I",
        m_pairs_are_worst=set(ranking[-len(m_pairs):]) == m_pairs,
        ii_gain=ii_gain,
    )


def run_sensitivity(
    *,
    deltas: Sequence[float] = (-0.5, 0.5),
    data_bytes: int = 5 * GB,
    node: NodeSpec = ATOM_C2758,
    base: SimConstants = DEFAULT_CONSTANTS,
) -> SensitivityReport:
    """Perturb each framework constant and re-check the shapes."""
    checks = [_check_shapes("baseline", base, data_bytes=data_bytes, node=node)]
    for field in PERTURBED_FIELDS:
        for delta in deltas:
            value = getattr(base, field) * (1.0 + delta)
            # Fractions stay inside (0, 1).
            if field in ("shuffle_reread_fraction", "remote_shuffle_fraction"):
                value = min(max(value, 0.01), 0.99)
            constants = base.with_(**{field: value})
            checks.append(
                _check_shapes(
                    f"{field} {'+' if delta > 0 else ''}{delta:.0%}",
                    constants,
                    data_bytes=data_bytes,
                    node=node,
                )
            )
    return SensitivityReport(checks=tuple(checks))
