"""FIG9 — scalability of the mapping policies (Figure 9, §8).

Evaluates the seven mapping policies plus the brute-force upper bound
on the Table 3 workload scenarios over 1-, 2-, 4- and 8-node clusters,
reporting cluster EDP normalised to UB.  Shape targets:

* untuned serial/multi-node policies (SM, MNM) are the worst;
* tuning alone (PTM) improves markedly over SNM/CBM (the paper's
  ~53-55% at 8 nodes);
* ECoST is the best online policy at every cluster size and lands
  within ~10% of UB on the 8-node cluster (the paper's 8%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.baselines.mapping import (
    POLICIES,
    PolicyOutcome,
    TunedComponents,
    evaluate_policy,
)
from repro.experiments.artifacts import get_components
from repro.experiments.scenarios import WORKLOAD_SCENARIOS, scenario_instances
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.utils.tables import render_table
from repro.utils.units import GB

POLICY_ORDER = ("SM", "MNM1", "MNM2", "SNM", "CBM", "PTM", "ECoST", "UB")


@dataclass(frozen=True)
class Fig9Report:
    """EDP per (scenario, n_nodes, policy), normalised to UB."""

    node_counts: tuple[int, ...]
    scenarios: tuple[str, ...]
    outcomes: dict[tuple[str, int, str], PolicyOutcome]

    def normalized(self, scenario: str, n_nodes: int) -> dict[str, float]:
        ub = self.outcomes[(scenario, n_nodes, "UB")].edp
        return {
            p: self.outcomes[(scenario, n_nodes, p)].edp / ub for p in POLICY_ORDER
        }

    def ecost_gap(self, n_nodes: int) -> float:
        """Mean ECoST excess over UB (%) across scenarios at a size."""
        vals = [
            self.normalized(ws, n_nodes)["ECoST"] - 1.0 for ws in self.scenarios
        ]
        return float(np.mean(vals)) * 100.0

    def render(self) -> str:
        blocks = []
        for n in self.node_counts:
            rows = []
            for ws in self.scenarios:
                norm = self.normalized(ws, n)
                rows.append([ws] + [norm[p] for p in POLICY_ORDER])
            means = [
                float(np.mean([self.normalized(ws, n)[p] for ws in self.scenarios]))
                for p in POLICY_ORDER
            ]
            rows.append(["mean"] + means)
            blocks.append(
                render_table(
                    ["workload"] + list(POLICY_ORDER),
                    rows,
                    title=(
                        f"Figure 9 — EDP normalised to UB, {n} node(s) "
                        f"(ECoST gap: {self.ecost_gap(n):.1f}%)"
                    ),
                    floatfmt=".2f",
                )
            )
        return "\n\n".join(blocks)


def _scenario_cell(task) -> dict[str, PolicyOutcome]:
    """All policies for one (scenario workload, cluster size) cell —
    module-level so the sweep executor can fan it out."""
    workload, n, node, constants, comp = task
    return {
        policy: evaluate_policy(
            policy, workload, n, node=node, constants=constants, components=comp
        )
        for policy in POLICIES
    }


def run_fig9(
    *,
    scenarios: Sequence[str] | None = None,
    node_counts: Sequence[int] = (1, 2, 4, 8),
    data_bytes: int = 5 * GB,
    components: TunedComponents | None = None,
    model_kind: str = "mlp",
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    executor: "SweepExecutor | None" = None,
) -> Fig9Report:
    """Evaluate every policy × scenario × cluster size.

    ECoST's self-tuning backend defaults to the MLP model (the most
    accurate STP; the REPTree variant is exercised by the ablation
    benchmark).  The (scenario, cluster-size) cells are independent
    and fan out through ``executor`` (honouring ``REPRO_WORKERS`` when
    omitted); the fitted components are pickled once per cell.
    """
    from repro.parallel import SweepExecutor

    names = tuple(scenarios) if scenarios is not None else tuple(WORKLOAD_SCENARIOS)
    comp = components if components is not None else get_components(model_kind)
    cells = [
        (ws, scenario_instances(ws, data_bytes=data_bytes), n)
        for ws in names
        for n in node_counts
    ]
    exec_ = executor if executor is not None else SweepExecutor()
    results = exec_.map(
        _scenario_cell,
        [(workload, n, node, constants, comp) for _ws, workload, n in cells],
    )
    outcomes: dict[tuple[str, int, str], PolicyOutcome] = {}
    for (ws, _workload, n), by_policy in zip(cells, results):
        for policy, outcome in by_policy.items():
            outcomes[(ws, n, policy)] = outcome
    return Fig9Report(
        node_counts=tuple(node_counts),
        scenarios=names,
        outcomes=outcomes,
    )
