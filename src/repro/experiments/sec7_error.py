"""SEC7 — EDP error of each STP technique vs. the COLAO oracle (§7.1).

For workloads built from the *unknown* testing applications, each
technique predicts a configuration; the error is the relative EDP
excess of that configuration over the brute-force COLAO optimum.  The
paper reports average errors of LkT 8.09%, LR 20.37%, REPTree 3.84%
and MLP 3.43% — the shape to reproduce is the ordering
MLP ≤ REPTree < LkT ≪ LR.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping, Sequence

import numpy as np

from repro.core.stp import AppDescriptor, SelfTuningPredictor, describe_instance
from repro.experiments.artifacts import get_lkt, get_mlm
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.costmodel import pair_metrics
from repro.model.sweep import sweep_pair
from repro.utils.rng import rng_from
from repro.utils.tables import render_table
from repro.workloads.base import AppInstance
from repro.workloads.registry import TESTING_APPS, instances_for

TECHNIQUE_ORDER = ("LkT", "LR", "REPTree", "MLP")


@dataclass(frozen=True)
class Sec7Report:
    """Per-technique error distributions (percent vs. COLAO)."""

    errors: dict[str, np.ndarray]
    n_pairs: int

    def means(self) -> dict[str, float]:
        return {k: float(v.mean()) for k, v in self.errors.items()}

    def render(self) -> str:
        rows = []
        for name in TECHNIQUE_ORDER:
            e = self.errors[name]
            rows.append(
                [name, float(e.mean()), float(np.median(e)), float(e.max())]
            )
        return render_table(
            ["technique", "mean err %", "median err %", "worst err %"],
            rows,
            title=(
                f"S7.1 — EDP error vs. COLAO oracle over {self.n_pairs} "
                "unknown-application workloads"
            ),
            floatfmt=".2f",
        )


def default_techniques() -> Mapping[str, SelfTuningPredictor]:
    """The paper's four STP techniques, fitted from cached artifacts."""
    return {
        "LkT": get_lkt(),
        "LR": get_mlm("lr"),
        "REPTree": get_mlm("reptree"),
        "MLP": get_mlm("mlp"),
    }


def run_sec7(
    *,
    techniques: Mapping[str, SelfTuningPredictor] | None = None,
    pairs: Sequence[tuple[AppInstance, AppInstance]] | None = None,
    max_pairs: int | None = None,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: int = 0,
) -> Sec7Report:
    """Score every technique on the unknown-application pair set."""
    techs = dict(techniques) if techniques is not None else dict(default_techniques())
    if pairs is None:
        testing = instances_for(TESTING_APPS)
        pairs = list(combinations(testing, 2))
    if max_pairs is not None and len(pairs) > max_pairs:
        rng = rng_from(seed)
        idx = rng.choice(len(pairs), size=max_pairs, replace=False)
        pairs = [pairs[i] for i in sorted(idx)]

    errors: dict[str, list[float]] = {name: [] for name in techs}
    descriptors: dict[str, AppDescriptor] = {}

    def describe(inst: AppInstance) -> AppDescriptor:
        if inst.label not in descriptors:
            descriptors[inst.label] = describe_instance(
                inst, node=node, constants=constants, seed=seed
            )
        return descriptors[inst.label]

    for a, b in pairs:
        sweep = sweep_pair(a, b, node=node, constants=constants)
        oracle = sweep.best_edp
        da, db = describe(a), describe(b)
        for name, stp in techs.items():
            cfg_a, cfg_b = stp.predict_configs(da, db)
            pm = pair_metrics(
                a.profile, a.data_bytes,
                cfg_a.frequency, cfg_a.block_size, cfg_a.n_mappers,
                b.profile, b.data_bytes,
                cfg_b.frequency, cfg_b.block_size, cfg_b.n_mappers,
                node=node, constants=constants,
            )
            errors[name].append((float(pm.edp) - oracle) / oracle * 100.0)
    return Sec7Report(
        errors={k: np.asarray(v) for k, v in errors.items()},
        n_pairs=len(pairs),
    )
