"""Consolidated experiment reporting.

Runs any subset of the paper's experiments and renders one combined
report.  Used by the ``python -m repro`` command line and handy from
notebooks::

    from repro.experiments.reporting import run_experiments
    print(run_experiments(["FIG5", "SEC7"]))
"""

from __future__ import annotations

from typing import Callable, Sequence

#: Experiment id -> (description, runner returning an object with .render()).
_REGISTRY: dict[str, tuple[str, Callable[[], object]]] = {}


def _register(exp_id: str, description: str):
    def deco(fn: Callable[[], object]):
        _REGISTRY[exp_id] = (description, fn)
        return fn

    return deco


@_register("FIG1", "PCA scatter / variance of the 14 feature metrics")
def _fig1():
    from repro.experiments.fig1_pca import run_fig1

    return run_fig1()


@_register("FIG2", "EDP improvement from individual vs joint knob tuning")
def _fig2():
    from repro.experiments.fig2_tuning import run_fig2

    class Multi:
        def __init__(self, reports):
            self.reports = reports

        def render(self):
            return "\n\n".join(r.render() for r in self.reports)

    return Multi([run_fig2(code) for code in ("wc", "st", "ts")])


@_register("FIG3", "COLAO vs ILAO EDP ratios per class pair")
def _fig3():
    from repro.experiments.fig3_colao_ilao import run_fig3

    return run_fig3()


@_register("FIG5", "class-pair priority ranking by minimum EDP")
def _fig5():
    from repro.experiments.fig5_priority import run_fig5

    return run_fig5()


@_register("TAB1", "APE of the LR / REPTree / MLP EDP models")
def _tab1():
    from repro.experiments.table1_ape import run_table1

    return run_table1()


@_register("TAB2", "predicted configurations + error vs the COLAO oracle")
def _tab2():
    from repro.experiments.table2_configs import run_table2

    return run_table2()


@_register("SEC7", "mean EDP error of each STP technique on unknown workloads")
def _sec7():
    from repro.experiments.sec7_error import run_sec7

    return run_sec7()


@_register("FIG8", "training / prediction time of each STP technique")
def _fig8():
    from repro.experiments.fig8_overhead import run_fig8

    return run_fig8()


@_register("FIG9", "EDP of the mapping policies on 1/2/4/8-node clusters")
def _fig9():
    from repro.experiments.fig9_scalability import run_fig9

    return run_fig9()


@_register("EXT-CHAR", "extension: S3-style characterisation table of all apps")
def _ext_char():
    from repro.experiments.characterization import run_characterization

    return run_characterization()


@_register("EXT-FAULT", "extension: EDP degradation vs fault-injection rate")
def _ext_fault():
    from repro.experiments.fault_tolerance import run_fault_tolerance

    return run_fault_tolerance()


@_register("EXT-CORR", "extension: counter-outcome correlation analysis")
def _ext_corr():
    from repro.analysis.correlation import correlate_with_outcomes
    from repro.analysis.features import build_feature_matrix
    from repro.utils.units import GB
    from repro.workloads.registry import ALL_APPS, instances_for

    fm = build_feature_matrix(instances_for(ALL_APPS, sizes=(5 * GB,)), seed=0)
    return correlate_with_outcomes(fm)


def available_experiments() -> dict[str, str]:
    """Experiment ids and their one-line descriptions."""
    return {k: desc for k, (desc, _fn) in _REGISTRY.items()}


def run_experiment(exp_id: str) -> object:
    """Run one experiment by id; returns its report object."""
    key = exp_id.upper()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; valid: {', '.join(_REGISTRY)}"
        )
    _desc, fn = _REGISTRY[key]
    return fn()


def run_experiments(exp_ids: Sequence[str] | None = None) -> str:
    """Run several experiments and return one combined rendering."""
    ids = list(exp_ids) if exp_ids else list(_REGISTRY)
    blocks = []
    for exp_id in ids:
        report = run_experiment(exp_id)
        desc = _REGISTRY[exp_id.upper()][0]
        header = f"### {exp_id.upper()} — {desc}"
        blocks.append(header + "\n\n" + report.render())  # type: ignore[attr-defined]
    return "\n\n\n".join(blocks)
