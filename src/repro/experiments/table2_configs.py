"""TAB2 — predicted configurations and errors per technique (Table 2).

For a subset of unknown co-located workloads (the paper's Table 2
rows: H-H, C-M, I-M, H-M, I-H, H-H, H-M, M-M), reports the oracle
(COLAO) configuration and the configuration each STP technique picks,
with the relative EDP error — the paper's "(Freq, hdfs, map)" table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.stp import SelfTuningPredictor, describe_instance
from repro.experiments.sec7_error import default_techniques
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.costmodel import pair_metrics
from repro.utils.tables import render_table
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import get_app

#: The paper's Table 2 row class pairs, instantiated with unknown apps.
DEFAULT_WORKLOADS: tuple[tuple[tuple[str, int], tuple[str, int]], ...] = (
    (("km", 5), ("km", 5)),      # H-H
    (("svm", 5), ("cf", 5)),     # C-M
    (("nb", 5), ("cf", 5)),      # I-M
    (("km", 5), ("pr", 5)),      # H-M
    (("nb", 5), ("km", 5)),      # I-H
    (("km", 10), ("km", 10)),    # H-H
    (("km", 5), ("cf", 10)),     # H-M
    (("cf", 5), ("pr", 5)),      # M-M
)


@dataclass(frozen=True)
class Table2Row:
    label: str
    class_pair: str
    oracle: tuple[JobConfig, JobConfig]
    predicted: dict[str, tuple[JobConfig, JobConfig]]
    errors: dict[str, float]  # % vs oracle


@dataclass(frozen=True)
class Table2Report:
    rows: tuple[Table2Row, ...]

    def render(self) -> str:
        techs = list(self.rows[0].predicted)
        header = ["workload", "classes", "COLAO (oracle)"]
        for t in techs:
            header += [t, f"{t} err%"]
        table_rows = []
        for row in self.rows:
            cells = [
                row.label,
                row.class_pair,
                f"{row.oracle[0].label} | {row.oracle[1].label}",
            ]
            for t in techs:
                ca, cb = row.predicted[t]
                cells += [f"{ca.label} | {cb.label}", row.errors[t]]
            table_rows.append(cells)
        return render_table(
            header,
            table_rows,
            title="Table 2 — configurations chosen by COLAO and the STP techniques",
            floatfmt=".2f",
        )


def run_table2(
    *,
    workloads: Sequence[tuple[tuple[str, int], tuple[str, int]]] = DEFAULT_WORKLOADS,
    techniques: Mapping[str, SelfTuningPredictor] | None = None,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: int = 0,
    executor: "SweepExecutor | None" = None,
) -> Table2Report:
    """Reproduce Table 2 for the configured workloads.

    The per-row oracle sweeps are independent and fan out through
    ``executor`` (honouring ``REPRO_WORKERS`` when omitted).
    """
    from repro.parallel import SweepExecutor

    techs = dict(techniques) if techniques is not None else dict(default_techniques())
    pairs = [
        (AppInstance(get_app(code_a), gb_a * GB), AppInstance(get_app(code_b), gb_b * GB))
        for (code_a, gb_a), (code_b, gb_b) in workloads
    ]
    exec_ = executor if executor is not None else SweepExecutor()
    oracle_sweeps = exec_.sweep_pairs(pairs, node=node, constants=constants)
    rows = []
    for (a, b), sweep in zip(pairs, oracle_sweeps):
        oracle_cfgs = sweep.best_configs
        da = describe_instance(a, node=node, constants=constants, seed=seed)
        db = describe_instance(b, node=node, constants=constants, seed=seed)
        predicted: dict[str, tuple[JobConfig, JobConfig]] = {}
        errors: dict[str, float] = {}
        for name, stp in techs.items():
            cfg_a, cfg_b = stp.predict_configs(da, db)
            pm = pair_metrics(
                a.profile, a.data_bytes,
                cfg_a.frequency, cfg_a.block_size, cfg_a.n_mappers,
                b.profile, b.data_bytes,
                cfg_b.frequency, cfg_b.block_size, cfg_b.n_mappers,
                node=node, constants=constants,
            )
            predicted[name] = (cfg_a, cfg_b)
            errors[name] = (float(pm.edp) - sweep.best_edp) / sweep.best_edp * 100.0
        cp = "-".join(sorted((a.app_class.value, b.app_class.value)))
        rows.append(
            Table2Row(
                label=f"{a.label}+{b.label}",
                class_pair=cp,
                oracle=oracle_cfgs,
                predicted=predicted,
                errors=errors,
            )
        )
    return Table2Report(rows=tuple(rows))
