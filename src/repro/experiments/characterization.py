"""§3-style characterisation table: resource signatures of all apps.

The paper's §3 narrative characterises every studied application by
its runtime resource utilisation and micro-architectural metrics and
assigns the C/H/I/M class.  This experiment renders that
characterisation as one table — tuned solo execution per instance,
with utilisations, counters and the derived class — and doubles as the
calibration sheet for the reproduction's profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.features import PROFILING_CONFIG
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.sweep import sweep_solo
from repro.telemetry.profiling import profile_features
from repro.utils.tables import render_table
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import ALL_APPS, get_app


@dataclass(frozen=True)
class AppCharacterization:
    """One application's characterisation row."""

    code: str
    app_class: str
    tuned_config: str
    runtime_s: float
    power_w: float
    edp: float
    cpu_user_pct: float
    cpu_iowait_pct: float
    llc_mpki: float
    ipc: float
    mem_util: float
    disk_util: float


@dataclass(frozen=True)
class CharacterizationReport:
    data_bytes: int
    rows: tuple[AppCharacterization, ...]

    def by_class(self) -> dict[str, list[AppCharacterization]]:
        out: dict[str, list[AppCharacterization]] = {}
        for row in self.rows:
            out.setdefault(row.app_class, []).append(row)
        return out

    def render(self) -> str:
        table_rows = [
            [
                r.code, r.app_class, r.tuned_config, r.runtime_s, r.power_w,
                f"{r.edp:.3e}", r.cpu_user_pct, r.cpu_iowait_pct,
                r.llc_mpki, r.ipc, r.mem_util, r.disk_util,
            ]
            for r in sorted(self.rows, key=lambda r: (r.app_class, r.code))
        ]
        return render_table(
            [
                "app", "class", "tuned config", "T(s)", "P(W)", "EDP",
                "CPUuser%", "iowait%", "LLC MPKI", "IPC", "u_mem", "u_disk",
            ],
            table_rows,
            title=(
                "S3 characterisation — tuned solo execution at "
                f"{self.data_bytes // GB}GB"
            ),
            floatfmt=".2f",
        )


def run_characterization(
    *,
    data_bytes: int = 10 * GB,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: int = 0,
) -> CharacterizationReport:
    """Characterise all 11 applications at one input size."""
    rows = []
    for code in ALL_APPS:
        inst = AppInstance(get_app(code), data_bytes)
        sweep = sweep_solo(inst, node=node, constants=constants)
        i = sweep.best_index
        m = sweep.metrics
        feats = profile_features(
            inst, PROFILING_CONFIG, node=node, constants=constants, seed=seed
        )
        rows.append(
            AppCharacterization(
                code=code,
                app_class=inst.app_class.value,
                tuned_config=sweep.best_config.label,
                runtime_s=float(m.duration[i]),
                power_w=float(m.power[i]),
                edp=float(m.edp[i]),
                cpu_user_pct=feats["cpu_user"],
                cpu_iowait_pct=feats["cpu_iowait"],
                llc_mpki=feats["llc_mpki"],
                ipc=feats["ipc"],
                mem_util=float(
                    np.minimum(m.mem_demand[i] / node.membw.achievable_bw, 1.0)
                ),
                disk_util=float(m.u_disk[i]),
            )
        )
    return CharacterizationReport(data_bytes=data_bytes, rows=tuple(rows))
