"""FIG3 — COLAO vs ILAO (paper Figure 3, §4.2).

For every unordered pair of training applications at a common input
size, computes the EDP of the co-location oracle (COLAO) and of serial
individually-tuned execution (ILAO), reporting the ILAO/COLAO ratio
(>1 means co-location wins).  Shape targets from the paper: COLAO wins
almost everywhere, the largest gap is an I-I pair (4.52× in the
paper), and gaps shrink whenever a memory-bound application is
involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations_with_replacement

from repro.baselines.colao import colao_best
from repro.baselines.ilao import ilao_best, ilao_pair_edp
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.utils.tables import render_table
from repro.utils.units import GB
from repro.workloads.base import AppInstance
from repro.workloads.registry import TRAINING_APPS, get_app


@dataclass(frozen=True)
class PairRatio:
    code_a: str
    code_b: str
    class_pair: str
    ilao_edp: float
    colao_edp: float

    @property
    def ratio(self) -> float:
        """ILAO/COLAO EDP ratio: >1 means co-location wins."""
        return self.ilao_edp / self.colao_edp


@dataclass(frozen=True)
class Fig3Report:
    data_bytes: int
    pairs: tuple[PairRatio, ...]

    @property
    def max_ratio(self) -> PairRatio:
        return max(self.pairs, key=lambda p: p.ratio)

    def ratios_by_class(self) -> dict[str, float]:
        """Mean ratio per class pair."""
        acc: dict[str, list[float]] = {}
        for p in self.pairs:
            acc.setdefault(p.class_pair, []).append(p.ratio)
        return {k: sum(v) / len(v) for k, v in acc.items()}

    def render(self) -> str:
        rows = [
            [p.code_a + "-" + p.code_b, p.class_pair, p.ilao_edp, p.colao_edp, p.ratio]
            for p in sorted(self.pairs, key=lambda p: -p.ratio)
        ]
        best = self.max_ratio
        return render_table(
            ["pair", "classes", "ILAO EDP", "COLAO EDP", "COLAO gain (x)"],
            rows,
            title=(
                "Figure 3 — COLAO vs ILAO at "
                f"{self.data_bytes // GB}GB (max gain "
                f"{best.ratio:.2f}x on {best.class_pair})"
            ),
            floatfmt=".3g",
        )


def run_fig3(
    *,
    data_bytes: int = 10 * GB,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    codes: tuple[str, ...] = TRAINING_APPS,
) -> Fig3Report:
    """COLAO/ILAO over all same-size training pairs (incl. self-pairs)."""
    instances = {c: AppInstance(get_app(c), data_bytes) for c in codes}
    solos = {c: ilao_best(inst, node=node, constants=constants) for c, inst in instances.items()}
    pairs = []
    for a, b in combinations_with_replacement(codes, 2):
        co = colao_best(instances[a], instances[b], node=node, constants=constants)
        ilao = ilao_pair_edp(solos[a], solos[b])
        cp = "-".join(
            sorted((instances[a].app_class.value, instances[b].app_class.value))
        )
        pairs.append(
            PairRatio(
                code_a=a, code_b=b, class_pair=cp,
                ilao_edp=ilao, colao_edp=co.edp,
            )
        )
    return Fig3Report(data_bytes=data_bytes, pairs=tuple(pairs))
