"""Fault-tolerance extension: EDP degradation vs. injection rate.

The paper's EDP claims are measured on a healthy cluster; a production
scheduler is judged by how gracefully those numbers degrade when tasks
die, nodes crash, and stragglers appear.  This extension replays the
same seeded Poisson job stream under increasing fault-injection rates
— through :class:`~repro.faults.injector.FaultInjector`'s Hadoop-style
recovery (task re-execution, speculative duplicates, HDFS
re-replication) — and reports makespan/EDP degradation relative to the
healthy (rate 0) run for two steady-state policies:

``tuned``
    Every arrival at its class's converged ECoST configuration
    (:data:`~repro.workloads.streams.TUNED_CLASS_CONFIGS`) — the
    post-learning steady state of the paper's controller.
``untuned``
    Knobs drawn uniformly from the full grids — the uncontrolled
    baseline the controller is compared against.

Everything is seeded: the job stream (with explicit job ids), the
injection plan, and HDFS placement, so the report — and the recovery
trace behind it — is bit-identical across runs.  The rate-0 row runs
with an *empty* plan, making it byte-identical to a fault-free engine
run; ``tests/test_golden_equivalence.py`` pins exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.injector import FaultInjector
from repro.faults.plan import InjectionPlan
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.hdfs.filesystem import MiniHdfs
from repro.mapreduce.engine import ClusterEngine
from repro.mapreduce.job import JobSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.utils.rng import SeedLike
from repro.utils.tables import render_table
from repro.utils.units import MB
from repro.workloads.streams import poisson_job_stream

#: Injection rates (faults per 1000 simulated seconds) swept by default.
DEFAULT_RATES: tuple[float, ...] = (0.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class FaultRunMetrics:
    """Outcome of one (policy, rate) run."""

    policy: str
    rate_per_1ks: float
    n_jobs: int
    n_faults: int
    tasks_retried: int
    speculative_wasted: int
    blocks_rereplicated: int
    makespan: float
    edp: float


@dataclass(frozen=True)
class FaultToleranceReport:
    """All runs plus the recovery traces that produced them."""

    runs: tuple[FaultRunMetrics, ...]
    #: ``(policy, rate)`` -> the injector's recovery trace; the golden
    #: suite pins the faulty trace bytes, and notebooks can inspect the
    #: exact recovery decisions behind any row.
    traces: dict[tuple[str, float], tuple[str, ...]]

    def baseline(self, policy: str) -> FaultRunMetrics:
        """The healthy (lowest-rate) run of a policy."""
        candidates = [r for r in self.runs if r.policy == policy]
        if not candidates:
            raise ValueError(f"no runs for policy {policy!r}")
        return min(candidates, key=lambda r: r.rate_per_1ks)

    def render(self) -> str:
        rows = []
        for r in self.runs:
            base = self.baseline(r.policy)
            rows.append(
                [
                    r.policy,
                    r.rate_per_1ks,
                    r.n_jobs,
                    r.n_faults,
                    r.tasks_retried,
                    r.speculative_wasted,
                    r.blocks_rereplicated,
                    r.makespan,
                    100.0 * (r.makespan / base.makespan - 1.0),
                    100.0 * (r.edp / base.edp - 1.0),
                ]
            )
        return render_table(
            [
                "policy", "rate/1ks", "jobs", "faults", "retries",
                "spec waste", "re-repl", "makespan (s)",
                "makespan +%", "EDP +%",
            ],
            rows,
            title="Fault-tolerance extension — EDP degradation vs injection rate",
            floatfmt=".1f",
        )


def _build_hdfs(
    specs: list[JobSpec], n_nodes: int
) -> tuple[MiniHdfs, dict[int, str]]:
    """One HDFS file per distinct input, shared by the jobs reading it.

    Mirrors a real cluster's datasets: every job of the same
    application/size pair reads the same replicated file, so locality
    and re-replication act on shared blocks.  Placement is the
    deterministic round-robin writer of :meth:`MiniHdfs.write_file`.
    """
    hdfs = MiniHdfs(n_nodes=n_nodes, replication=min(3, n_nodes))
    job_files: dict[int, str] = {}
    for i, spec in enumerate(specs):
        name = f"{spec.instance.app.code}-{spec.instance.data_bytes}.dat"
        if name not in hdfs.list_files():
            # Cap the modelled extent: block metadata is all we track,
            # and a few hundred blocks per file keeps plans cheap.
            size = min(spec.instance.data_bytes, 512 * MB)
            hdfs.write_file(name, size, spec.config.block_size, writer_node=i)
        job_files[spec.job_id] = name
    return hdfs, job_files


def _healthy_row_via_backend(
    specs: list[JobSpec],
    *,
    backend: str,
    policy: str,
    rate: float,
    n_nodes: int,
    node: NodeSpec,
    constants: SimConstants,
) -> FaultRunMetrics:
    """The rate-0 (fault-free) row through the batch evaluation layer.

    A healthy run has no recovery semantics, so it is exactly the kind
    of scenario :func:`repro.batch.engine.evaluate_scenarios` covers;
    large Poisson streams still classify as engine-only shapes and fall
    back honestly, but the selector stays uniform for callers.  All
    fault counters are structurally zero on this path.
    """
    from repro.batch.engine import evaluate_scenarios
    from repro.conformance.scenarios import Scenario, ScenarioJob

    scenario = Scenario(
        n_nodes=n_nodes,
        jobs=tuple(
            ScenarioJob(
                code=s.instance.app.code,
                data_bytes=s.instance.data_bytes,
                frequency=s.config.frequency,
                block_size=s.config.block_size,
                n_mappers=s.config.n_mappers,
                submit_time=s.submit_time,
            )
            for s in specs
        ),
        recorder="off",
    )
    [outcome] = evaluate_scenarios(
        [scenario], backend=backend, node=node, constants=constants
    )
    return FaultRunMetrics(
        policy=policy,
        rate_per_1ks=rate,
        n_jobs=len(specs),
        n_faults=0,
        tasks_retried=0,
        speculative_wasted=0,
        blocks_rereplicated=0,
        makespan=outcome.makespan,
        edp=outcome.edp,
    )


def run_fault_tolerance(
    *,
    rates: tuple[float, ...] = DEFAULT_RATES,
    n_jobs: int = 120,
    mean_interarrival_s: float = 8.0,
    n_nodes: int = 4,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    seed: SeedLike = 0,
    fault_seed: SeedLike = 7,
    backend: str = "event",
) -> FaultToleranceReport:
    """Sweep injection rates over tuned and untuned steady-state streams.

    Each (policy, rate) cell replays the *same* seeded workload with a
    fresh cluster and a plan drawn from ``fault_seed`` — rates differ
    but the workload does not, so every delta in the table is caused by
    faults and recovery, not by workload noise.

    ``backend`` selects the evaluation path for the *healthy* rate-0
    rows (``"event"``/``"scalar"``/``"batch"``); faulted rows always
    run the event engine, whose recovery semantics the closed forms do
    not model.  The default leaves every byte of the golden-pinned
    output unchanged.  Non-event rate-0 rows carry empty recovery
    traces (there is no injector on that path).
    """
    if not rates:
        raise ValueError("rates must be non-empty")
    if backend not in ("event", "scalar", "batch"):
        raise ValueError(
            f"unknown backend {backend!r}; valid: event, scalar, batch"
        )
    runs: list[FaultRunMetrics] = []
    traces: dict[tuple[str, float], tuple[str, ...]] = {}
    for policy, tuned in (("tuned", True), ("untuned", False)):
        for rate in sorted(rates):
            specs = list(
                poisson_job_stream(
                    n_jobs,
                    mean_interarrival_s=mean_interarrival_s,
                    seed=seed,
                    tuned=tuned,
                    job_ids_from=1,
                )
            )
            if rate == 0 and backend != "event":
                runs.append(
                    _healthy_row_via_backend(
                        specs,
                        backend=backend,
                        policy=policy,
                        rate=rate,
                        n_nodes=n_nodes,
                        node=node,
                        constants=constants,
                    )
                )
                traces[(policy, rate)] = ()
                continue
            cluster = ClusterEngine(
                n_nodes, node, constants=constants, recorder="off"
            )
            for s in specs:
                cluster.submit(s)
            horizon = specs[-1].submit_time + 4000.0
            if rate > 0:
                plan = InjectionPlan.generate(
                    n_nodes, horizon, rate_per_1ks=rate, seed=fault_seed
                )
            else:
                plan = InjectionPlan.empty()
            hdfs, job_files = _build_hdfs(specs, n_nodes)
            injector = FaultInjector(
                cluster, plan, hdfs=hdfs, job_files=job_files
            ).install()
            results = cluster.run()
            if len(results) != n_jobs:
                raise RuntimeError(
                    f"{policy}@{rate}: {len(results)}/{n_jobs} jobs completed"
                )
            tel = cluster.telemetry
            runs.append(
                FaultRunMetrics(
                    policy=policy,
                    rate_per_1ks=rate,
                    n_jobs=len(results),
                    n_faults=tel.faults_injected,
                    tasks_retried=tel.tasks_retried,
                    speculative_wasted=tel.speculative_wasted,
                    blocks_rereplicated=tel.blocks_rereplicated,
                    makespan=cluster.makespan,
                    edp=cluster.edp(),
                )
            )
            traces[(policy, rate)] = tuple(injector.trace)
    return FaultToleranceReport(runs=tuple(runs), traces=traces)
