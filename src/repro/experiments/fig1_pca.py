"""FIG1 — PCA of the 14 feature metrics (paper Figure 1, §3.2).

Profiles all 33 application instances, scales the 14-feature matrix to
unit normal, projects onto the first two principal components, and
clusters the *features* hierarchically to select the 7 representative
counters.  The paper reports PC1+PC2 covering 85.22% of variance and
keeps {CPUuser, CPUiowait, I/O read, I/O write, IPC, memory footprint,
LLC MPKI}.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.features import FeatureMatrix, build_feature_matrix
from repro.analysis.hcluster import AgglomerativeClustering
from repro.analysis.pca import PCA
from repro.telemetry.profiling import FEATURE_NAMES
from repro.utils.tables import render_table
from repro.workloads.registry import all_instances


@dataclass(frozen=True)
class Fig1Report:
    """PCA + feature-clustering results."""

    matrix: FeatureMatrix
    pc_scores: np.ndarray  # (n_instances, 2)
    explained_variance_ratio: tuple[float, float]
    feature_loadings: np.ndarray  # (2, 14): feature coordinates
    feature_clusters: dict[int, list[str]]

    @property
    def pc12_variance(self) -> float:
        return sum(self.explained_variance_ratio)

    def render(self) -> str:
        rows = []
        for inst, (pc1, pc2) in zip(self.matrix.instances, self.pc_scores):
            rows.append([inst.label, str(inst.app_class), pc1, pc2])
        scatter = render_table(
            ["instance", "class", "PC1", "PC2"],
            rows,
            title=(
                f"Figure 1 — instance scatter in PC space "
                f"(PC1+PC2 variance: {self.pc12_variance:.1%})"
            ),
        )
        load_rows = [
            [name, self.feature_loadings[0, j], self.feature_loadings[1, j]]
            for j, name in enumerate(FEATURE_NAMES)
        ]
        loadings = render_table(
            ["feature", "PC1 loading", "PC2 loading"],
            load_rows,
            title="Feature positions (loadings) on PC1/PC2",
        )
        cluster_rows = [
            [cid, ", ".join(names)] for cid, names in sorted(self.feature_clusters.items())
        ]
        clusters = render_table(
            ["cluster", "features"],
            cluster_rows,
            title="Hierarchical clustering of features (7 groups -> representatives)",
        )
        return "\n\n".join([scatter, loadings, clusters])


def run_fig1(*, seed: int = 0, n_feature_clusters: int = 7) -> Fig1Report:
    """Reproduce Figure 1's analysis end to end."""
    matrix = build_feature_matrix(all_instances(), seed=seed)
    pca = PCA(n_components=2).fit(matrix.scaled)
    scores = pca.transform(matrix.scaled)

    # Cluster features (columns) in instance space, as the paper does
    # to merge behaviourally-redundant counters.
    clustering = AgglomerativeClustering().fit(matrix.scaled.T)
    labels = clustering.labels_for(n_feature_clusters)
    clusters: dict[int, list[str]] = {}
    for name, lab in zip(FEATURE_NAMES, labels):
        clusters.setdefault(int(lab), []).append(name)

    evr = pca.explained_variance_ratio_
    assert evr is not None and pca.components_ is not None
    return Fig1Report(
        matrix=matrix,
        pc_scores=scores,
        explained_variance_ratio=(float(evr[0]), float(evr[1])),
        feature_loadings=pca.components_,
        feature_clusters=clusters,
    )
