"""COLAO: Co-Located Application Optimisation (§4.2).

The offline brute-force oracle for a co-located pair: every
combination of per-application frequency, HDFS block size, and core
partitioning is evaluated and the EDP-minimal setting returned.  This
is the "upper bound" every self-tuning prediction technique is scored
against in §7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.sweep import PairSweepResult, sweep_pair
from repro.workloads.base import AppInstance


@dataclass(frozen=True)
class ColaoResult:
    """Oracle co-location of one pair."""

    instance_a: AppInstance
    instance_b: AppInstance
    config_a: JobConfig
    config_b: JobConfig
    makespan: float
    energy: float
    edp: float
    sweep: PairSweepResult

    def partition(self) -> tuple[int, int]:
        return self.config_a.n_mappers, self.config_b.n_mappers


def colao_best(
    instance_a: AppInstance,
    instance_b: AppInstance,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    partitions: list[tuple[int, int]] | None = None,
) -> ColaoResult:
    """Exhaustively tune a co-located pair (the COLAO oracle)."""
    sweep = sweep_pair(
        instance_a, instance_b, node=node, constants=constants, partitions=partitions
    )
    i = sweep.best_index
    cfg_a, cfg_b = sweep.configs_at(i)
    return ColaoResult(
        instance_a=instance_a,
        instance_b=instance_b,
        config_a=cfg_a,
        config_b=cfg_b,
        makespan=float(sweep.metrics.makespan[i]),
        energy=float(sweep.metrics.energy[i]),
        edp=float(sweep.metrics.edp[i]),
        sweep=sweep,
    )
