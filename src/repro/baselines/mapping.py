"""The §8 application mapping policies and the brute-force upper bound.

Seven policies place a 16-application workload (Table 3) on a 1/2/4/8
node cluster:

=======  ====== ====== =====================================================
policy   paired tuned  placement
=======  ====== ====== =====================================================
SM        no     no    each app serially over the whole cluster
MNM1      no     no    2 apps in parallel, each over half the nodes
MNM2      no     no    4 apps in parallel, each over a quarter of the nodes
SNM       no     no    1 app per node (all 8 cores), untuned
CBM       yes    no    2 apps per node, 4 cores each, untuned
PTM       no     yes   1 app per node, configuration predicted by STP
ECoST     yes    yes   the full pipeline (classify/pair/self-tune)
UB        yes    yes   brute force: optimal pairing (exact min-cost
                       matching) + oracle per-pair configurations
=======  ====== ====== =====================================================

Energy accounting is uniform: every node of the cluster draws idle
power for the entire workload makespan (a rack is powered whether or
not its nodes compute), plus each job's dynamic energy.  Node-level
policies run on the discrete-event engine; whole-cluster policies use
the closed-form distributed model — the two are consistent by
construction (they share the cost kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.classify import NearestCentroidClassifier
from repro.analysis.features import build_feature_matrix
from repro.core.controller import ECoSTController
from repro.core.database import build_database
from repro.core.stp import MLMSTP, SoloSTP, build_training_dataset, describe_instance
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.mapreduce.engine import ClusterEngine
from repro.mapreduce.job import JobSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.costmodel import distributed_metrics
from repro.model.sweep import sweep_pair, sweep_solo
from repro.utils.units import GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import TRAINING_APPS, instances_for

#: Stock defaults for the [NT] (not-tuned) policies: Hadoop 1.x's
#: 64 MB block size and the microserver's shipping powersave governor
#: (lowest DVFS point — see repro.hardware.governor: even ondemand
#: settles at the bottom for the I/O-heavy duty cycles these nodes
#: see).  Mapper count is set per policy (SNM: all cores; CBM: half).
#: These are the "running without tuning the studied parameters"
#: baselines of §8.
DEFAULT_UNTUNED_CONFIG = dict(frequency=1.2 * GHZ, block_size=64 * MB)


@dataclass(frozen=True)
class PolicyOutcome:
    """Cluster-level result of one policy on one workload."""

    policy: str
    n_nodes: int
    makespan: float
    energy: float
    details: tuple[str, ...] = ()

    @property
    def edp(self) -> float:
        return self.energy * self.makespan


@dataclass(frozen=True)
class TunedComponents:
    """Trained pieces shared by PTM / ECoST / UB evaluations."""

    solo_stp: SoloSTP
    pair_stp: MLMSTP
    classifier: NearestCentroidClassifier


def build_components(
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    model_kind: str = "reptree",
    seed: int = 0,
) -> TunedComponents:
    """Train STP + classifier from the known training applications."""
    training = instances_for(TRAINING_APPS)
    _db, sweeps = build_database(
        training, node=node, constants=constants, keep_sweeps=True
    )
    dataset = build_training_dataset(
        training, node=node, constants=constants, sweeps=sweeps, seed=seed
    )
    pair_stp = MLMSTP(model_kind, node=node).fit(dataset)
    solo_stp = SoloSTP(model_kind, node=node, constants=constants).fit(
        training, seed=seed
    )
    fm = build_feature_matrix(training, node=node, constants=constants, seed=seed)
    classifier = NearestCentroidClassifier().fit(fm, [i.app_class for i in training])
    return TunedComponents(solo_stp=solo_stp, pair_stp=pair_stp, classifier=classifier)


# ----------------------------------------------------------------- helpers
def _dyn_energy_distributed(
    inst: AppInstance, k: int, m: int, node: NodeSpec, constants: SimConstants
) -> tuple[float, float]:
    """(makespan, dynamic energy over all k nodes) of one distributed job."""
    dm = distributed_metrics(
        inst.profile, inst.data_bytes, k,
        DEFAULT_UNTUNED_CONFIG["frequency"], DEFAULT_UNTUNED_CONFIG["block_size"], m,
        node=node, constants=constants,
    )
    makespan = float(np.asarray(dm["makespan"]))
    per_node_power = float(np.asarray(dm["per_node"].power))
    dyn = (per_node_power - node.power.idle_power) * makespan * k
    return makespan, dyn


def _cluster_outcome(
    policy: str,
    n_nodes: int,
    makespan: float,
    dyn_energy: float,
    node: NodeSpec,
    details: Sequence[str] = (),
) -> PolicyOutcome:
    energy = node.power.idle_power * n_nodes * makespan + dyn_energy
    return PolicyOutcome(
        policy=policy,
        n_nodes=n_nodes,
        makespan=makespan,
        energy=energy,
        details=tuple(details),
    )


# ------------------------------------------------------------ NT policies
def _serial_mapping(
    workload: Sequence[AppInstance], n_nodes: int,
    node: NodeSpec, constants: SimConstants, _c: TunedComponents | None,
) -> PolicyOutcome:
    makespan = 0.0
    dyn = 0.0
    for inst in workload:
        t, e = _dyn_energy_distributed(inst, n_nodes, node.n_cores, node, constants)
        makespan += t
        dyn += e
    return _cluster_outcome("SM", n_nodes, makespan, dyn, node)


def _multi_node_mapping(groups: int) -> Callable:
    def policy(
        workload: Sequence[AppInstance], n_nodes: int,
        node: NodeSpec, constants: SimConstants, _c: TunedComponents | None,
    ) -> PolicyOutcome:
        g = min(groups, n_nodes)  # degenerate gracefully on small clusters
        per_group = n_nodes // g
        busy = [0.0] * g
        dyn = 0.0
        for i, inst in enumerate(workload):
            grp = i % g
            t, e = _dyn_energy_distributed(
                inst, per_group, node.n_cores, node, constants
            )
            busy[grp] += t
            dyn += e
        return _cluster_outcome(f"MNM{1 if groups == 2 else 2}", n_nodes, max(busy), dyn, node)

    return policy


def _engine_policy(
    name: str,
    config_for: Callable[[AppInstance], JobConfig],
) -> Callable:
    """A node-level policy on the DES: fixed per-app configs, FIFO."""

    def policy(
        workload: Sequence[AppInstance], n_nodes: int,
        node: NodeSpec, constants: SimConstants, _c: TunedComponents | None,
    ) -> PolicyOutcome:
        # Only makespan/total-horizon energy are reported — skip the
        # per-segment interval records entirely.
        cluster = ClusterEngine(n_nodes, node, constants=constants, recorder="off")
        for inst in workload:
            cluster.submit(JobSpec(instance=inst, config=config_for(inst)))
        cluster.run()
        makespan = cluster.makespan
        return PolicyOutcome(
            policy=name,
            n_nodes=n_nodes,
            makespan=makespan,
            energy=cluster.total_energy(makespan),
        )

    return policy


def _snm(workload, n_nodes, node, constants, components):
    cfg = lambda inst: JobConfig(n_mappers=node.n_cores, **DEFAULT_UNTUNED_CONFIG)
    return _engine_policy("SNM", cfg)(workload, n_nodes, node, constants, components)


def _cbm(workload, n_nodes, node, constants, components):
    cfg = lambda inst: JobConfig(n_mappers=node.n_cores // 2, **DEFAULT_UNTUNED_CONFIG)
    return _engine_policy("CBM", cfg)(workload, n_nodes, node, constants, components)


# --------------------------------------------------------- tuned policies
def _ptm(workload, n_nodes, node, constants, components):
    if components is None:
        raise ValueError("PTM requires trained components")
    def cfg(inst: AppInstance) -> JobConfig:
        desc = describe_instance(inst, node=node, constants=constants)
        return components.solo_stp.predict_config(desc)
    return _engine_policy("PTM", cfg)(workload, n_nodes, node, constants, components)


def _ecost(workload, n_nodes, node, constants, components):
    if components is None:
        raise ValueError("ECoST requires trained components")
    cluster = ClusterEngine(n_nodes, node, constants=constants, recorder="off")
    controller = ECoSTController(
        cluster, components.pair_stp, components.classifier,
        node=node, constants=constants,
    )
    for inst in workload:
        controller.submit(inst)
    controller.run()
    makespan = cluster.makespan
    return PolicyOutcome(
        policy="ECoST",
        n_nodes=n_nodes,
        makespan=makespan,
        energy=cluster.total_energy(makespan),
        details=tuple(controller.decisions),
    )


def _min_cost_matching(cost: np.ndarray) -> list[tuple[int, int]]:
    """Exact minimum-cost perfect matching via bitmask DP.

    ``cost`` is a symmetric (n, n) matrix, n even and ≤ ~18 (2ⁿ DP).
    """
    n = cost.shape[0]
    if n % 2:
        raise ValueError("perfect matching requires an even count")
    full = (1 << n) - 1
    INF = float("inf")
    dp = np.full(1 << n, INF)
    dp[0] = 0.0
    choice: dict[int, tuple[int, int]] = {}
    for mask in range(1 << n):
        if dp[mask] == INF:
            continue
        # Lowest unmatched index anchors the next pair (canonical order
        # keeps the DP linear in matchings rather than permutations).
        rest = full & ~mask
        if rest == 0:
            continue
        i = (rest & -rest).bit_length() - 1
        for j in range(i + 1, n):
            if rest >> j & 1:
                nmask = mask | (1 << i) | (1 << j)
                cand = dp[mask] + cost[i, j]
                if cand < dp[nmask]:
                    dp[nmask] = cand
                    choice[nmask] = (i, j)
    pairs = []
    mask = full
    while mask:
        i, j = choice[mask]
        pairs.append((i, j))
        mask &= ~((1 << i) | (1 << j))
    return pairs


def _ub(workload, n_nodes, node, constants, components):
    """Brute-force upper bound: oracle pairing + oracle configurations.

    Pairing is the exact min-total-EDP perfect matching over the
    workload; pairs are then placed LPT (longest processing time
    first) onto nodes, each executing its oracle configuration.
    """
    n = len(workload)
    if n % 2:
        raise ValueError("UB expects an even number of applications")
    sweeps = {}
    cost = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            s = sweep_pair(workload[i], workload[j], node=node, constants=constants)
            sweeps[(i, j)] = s
            cost[i, j] = cost[j, i] = s.best_edp
    pairs = _min_cost_matching(cost)
    # LPT scheduling of pairs onto nodes.
    jobs = []
    for i, j in pairs:
        s = sweeps[(min(i, j), max(i, j))]
        k = s.best_index
        jobs.append(
            (float(s.metrics.makespan[k]), float(s.metrics.energy[k]))
        )
    jobs.sort(reverse=True)
    busy = [0.0] * n_nodes
    dyn = 0.0
    for makespan_j, energy_j in jobs:
        k = int(np.argmin(busy))
        busy[k] += makespan_j
        dyn += energy_j - node.power.idle_power * makespan_j
    return _cluster_outcome("UB", n_nodes, max(busy), dyn, node)


#: Policy registry in the paper's presentation order.
POLICIES: dict[str, Callable] = {
    "SM": _serial_mapping,
    "MNM1": _multi_node_mapping(2),
    "MNM2": _multi_node_mapping(4),
    "SNM": _snm,
    "CBM": _cbm,
    "PTM": _ptm,
    "ECoST": _ecost,
    "UB": _ub,
}


def evaluate_policy(
    policy: str,
    workload: Sequence[AppInstance],
    n_nodes: int,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
    components: TunedComponents | None = None,
) -> PolicyOutcome:
    """Run one mapping policy over a workload on an n-node cluster."""
    try:
        fn = POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {policy!r}; valid: {', '.join(POLICIES)}"
        ) from None
    if not workload:
        raise ValueError("empty workload")
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    return fn(workload, n_nodes, node, constants, components)
