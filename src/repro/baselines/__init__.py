"""Offline oracles and mapping-policy baselines (§4.2, §8).

* :mod:`repro.baselines.ilao` — Individually-Located Application
  Optimisation: serial execution, each application exhaustively tuned
  alone.
* :mod:`repro.baselines.colao` — Co-Located Application Optimisation:
  the brute-force co-location oracle over the full pair grid.
* :mod:`repro.baselines.mapping` — the seven cluster mapping policies
  of the §8 scalability study (SM, MNM1, MNM2, SNM, CBM, PTM, ECoST)
  plus the brute-force upper bound UB.
"""

from repro.baselines.ilao import IlaoResult, ilao_best, ilao_pair_edp
from repro.baselines.colao import ColaoResult, colao_best
from repro.baselines.mapping import (
    DEFAULT_UNTUNED_CONFIG,
    PolicyOutcome,
    evaluate_policy,
    POLICIES,
)

__all__ = [
    "IlaoResult",
    "ilao_best",
    "ilao_pair_edp",
    "ColaoResult",
    "colao_best",
    "DEFAULT_UNTUNED_CONFIG",
    "PolicyOutcome",
    "evaluate_policy",
    "POLICIES",
]
