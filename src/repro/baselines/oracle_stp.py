"""Oracle self-tuning backend: brute-force configs behind the STP API.

Plugging this into :class:`~repro.core.controller.ECoSTController`
isolates the contributions of ECoST's two decisions: with oracle
tuning, any remaining gap to the UB policy is purely the *decoupled
scheduling* (queue + pairing decision tree); the difference between
oracle-tuned and model-tuned ECoST is purely the *self-tuning
prediction* error.  The decoupling ablation benchmark uses both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stp import AppDescriptor
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.sweep import sweep_pair
from repro.telemetry.profiling import reduced_vector
from repro.workloads.base import AppInstance


@dataclass
class OraclePairSTP:
    """predict_configs via exhaustive search over the true pair.

    Descriptors carry only features/class/size, so the oracle must
    first resolve which registered instance a descriptor denotes; it
    matches by (size, nearest features), which is exact for distinct
    applications and identity-preserving for replicas.
    """

    node: NodeSpec = ATOM_C2758
    constants: SimConstants = DEFAULT_CONSTANTS
    _instances: list[AppInstance] = field(default_factory=list)
    _features: list[np.ndarray] = field(default_factory=list)
    _cache: dict = field(default_factory=dict)

    def register(self, instance: AppInstance, descriptor: AppDescriptor) -> None:
        """Associate an instance with its learning-period descriptor."""
        self._instances.append(instance)
        self._features.append(reduced_vector(dict(descriptor.features)))

    def register_workload(self, instances, describe) -> "OraclePairSTP":
        """Register every instance using a descriptor factory."""
        for inst in instances:
            self.register(inst, describe(inst))
        return self

    def _resolve(self, d: AppDescriptor) -> AppInstance:
        if not self._instances:
            raise RuntimeError("oracle has no registered instances")
        feat = reduced_vector(dict(d.features))
        candidates = [
            i for i, inst in enumerate(self._instances)
            if inst.data_bytes == d.data_bytes
        ] or list(range(len(self._instances)))
        stacked = np.vstack([self._features[i] for i in candidates])
        span = stacked.max(axis=0) - stacked.min(axis=0)
        span = np.where(span < 1e-12, 1.0, span)
        dists = np.linalg.norm((stacked - feat) / span, axis=1)
        return self._instances[candidates[int(np.argmin(dists))]]

    def predict_configs(
        self, a: AppDescriptor, b: AppDescriptor
    ) -> tuple[JobConfig, JobConfig]:
        inst_a = self._resolve(a)
        inst_b = self._resolve(b)
        key = tuple(sorted((inst_a.label, inst_b.label)))
        if key not in self._cache:
            self._cache[key] = sweep_pair(
                inst_a, inst_b, node=self.node, constants=self.constants
            )
        sweep = self._cache[key]
        cfg_a, cfg_b = sweep.best_configs
        if (sweep.instance_a.label, sweep.instance_b.label) != (
            inst_a.label,
            inst_b.label,
        ):
            cfg_a, cfg_b = cfg_b, cfg_a
        return cfg_a, cfg_b
