"""ILAO: Individually-Located Application Optimisation (§4.2).

Runs applications serially, each tuned alone by exhaustive search over
its 160-point configuration space.  For a pair of applications the
composed metric is serial: makespan is the sum of the two tuned
durations and energy the sum of the two whole-node energies — the
baseline COLAO is compared against in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.model.calibration import DEFAULT_CONSTANTS, SimConstants
from repro.model.config import JobConfig
from repro.model.sweep import SoloSweepResult, sweep_solo
from repro.workloads.base import AppInstance


@dataclass(frozen=True)
class IlaoResult:
    """Oracle-tuned standalone execution of one instance."""

    instance: AppInstance
    config: JobConfig
    duration: float
    energy: float
    edp: float
    sweep: SoloSweepResult

    @property
    def power(self) -> float:
        return self.energy / self.duration


def ilao_best(
    instance: AppInstance,
    *,
    node: NodeSpec = ATOM_C2758,
    constants: SimConstants = DEFAULT_CONSTANTS,
) -> IlaoResult:
    """Exhaustively tune one application running alone."""
    sweep = sweep_solo(instance, node=node, constants=constants)
    i = sweep.best_index
    return IlaoResult(
        instance=instance,
        config=sweep.best_config,
        duration=float(sweep.metrics.duration[i]),
        energy=float(sweep.metrics.energy[i]),
        edp=float(sweep.metrics.edp[i]),
        sweep=sweep,
    )


def ilao_pair_edp(a: IlaoResult, b: IlaoResult) -> float:
    """EDP of a tuned pair run back to back (serial composition)."""
    makespan = a.duration + b.duration
    energy = a.energy + b.energy
    return float(energy * makespan)
