"""NameNode: block placement, replication and locality metadata."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdfs.blocks import Block
from repro.hdfs.datanode import DataNode


@dataclass
class NameNode:
    """Placement and lookup authority for the mini-HDFS.

    Placement policy: the first replica goes to the writer's node
    (write affinity, as in real HDFS), the remaining replicas
    round-robin across other nodes.  With single-node clusters the
    effective replication is capped at the node count.

    Failure handling mirrors real HDFS: a datanode reported dead via
    :meth:`handle_node_failure` has its replicas dropped, every block it
    held becomes under-replicated, and the namenode immediately
    re-replicates each one from a surviving replica onto a live node
    that lacks it.  A block with no surviving replica is *lost*
    (:meth:`locate` then returns an empty list); a node that returns via
    :meth:`mark_alive` comes back empty, exactly as a re-imaged node
    rejoining the cluster would.
    """

    datanodes: list[DataNode]
    replication: int = 3
    _placement: dict[str, list[int]] = field(default_factory=dict, repr=False)
    _rr_cursor: int = 0
    _dead: set[int] = field(default_factory=set, repr=False)

    def __post_init__(self) -> None:
        if not self.datanodes:
            raise ValueError("namenode needs at least one datanode")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")

    @property
    def n_nodes(self) -> int:
        return len(self.datanodes)

    @property
    def n_live_nodes(self) -> int:
        return self.n_nodes - len(self._dead)

    def is_dead(self, node_id: int) -> bool:
        return node_id in self._dead

    def effective_replication(self) -> int:
        return min(self.replication, self.n_live_nodes)

    def place_block(self, block: Block, writer_node: int) -> list[int]:
        """Choose replica nodes for ``block`` and store the replicas."""
        if not 0 <= writer_node < self.n_nodes:
            raise ValueError(f"writer_node {writer_node} out of range")
        if writer_node in self._dead:
            raise ValueError(f"writer_node {writer_node} is dead")
        if block.block_id in self._placement:
            raise ValueError(f"block {block.block_id} already placed")
        targets = [writer_node]
        while len(targets) < self.effective_replication():
            candidate = self._rr_cursor % self.n_nodes
            self._rr_cursor += 1
            if candidate not in targets and candidate not in self._dead:
                targets.append(candidate)
        for node_id in targets:
            self.datanodes[node_id].store(block)
        self._placement[block.block_id] = targets
        return list(targets)

    def locate(self, block_id: str) -> list[int]:
        """Replica node ids for a block ([] when every replica was lost)."""
        try:
            return list(self._placement[block_id])
        except KeyError:
            raise KeyError(f"unknown block {block_id}") from None

    def is_local(self, block_id: str, node_id: int) -> bool:
        """Whether a block has a replica on ``node_id`` (task locality)."""
        return node_id in self.locate(block_id)

    def blocks_on(self, node_id: int) -> list[str]:
        """Block ids replicated on ``node_id`` (the inverse of locate).

        Answered by the datanode's own store in O(replicas held), so a
        scheduler can build per-node candidate sets without scanning the
        whole placement map.
        """
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node_id {node_id} out of range")
        return self.datanodes[node_id].block_ids()

    def delete_block(self, block_id: str) -> None:
        """Drop every replica of a block."""
        for node_id in self.locate(block_id):
            self.datanodes[node_id].drop(block_id)
        del self._placement[block_id]

    def locality_fraction(self, block_ids: list[str], node_id: int) -> float:
        """Fraction of the given blocks readable locally from ``node_id``."""
        if not block_ids:
            return 1.0
        local = sum(1 for b in block_ids if self.is_local(b, node_id))
        return local / len(block_ids)

    # ------------------------------------------------------ failure path
    def _pick_rereplication_target(self, holders: list[int], length: float) -> int | None:
        """Next live node (round-robin) without a replica and with space."""
        for _ in range(self.n_nodes):
            candidate = self._rr_cursor % self.n_nodes
            self._rr_cursor += 1
            if candidate in self._dead or candidate in holders:
                continue
            if length <= self.datanodes[candidate].free_bytes:
                return candidate
        return None

    def handle_node_failure(self, node_id: int) -> tuple[int, int]:
        """Report a datanode dead and re-replicate what it held.

        Every replica on the node is dropped; each affected block with a
        surviving replica is copied to a live node that lacks it (when
        one with space exists).  Returns ``(n_rereplicated, n_lost)``
        where *lost* blocks had their last replica on the dead node.
        """
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node_id {node_id} out of range")
        if node_id in self._dead:
            raise ValueError(f"node {node_id} is already dead")
        self._dead.add(node_id)
        dn = self.datanodes[node_id]
        rereplicated = lost = 0
        for block_id in dn.block_ids():
            holders = self._placement[block_id]
            holders.remove(node_id)
            if not holders:
                lost += 1
                dn.drop(block_id)
                continue
            block = self.datanodes[holders[0]].get_block(block_id)
            dn.drop(block_id)
            target = self._pick_rereplication_target(holders, block.length)
            if target is not None:
                self.datanodes[target].store(block)
                holders.append(target)
                rereplicated += 1
        return rereplicated, lost

    def mark_alive(self, node_id: int) -> None:
        """A dead datanode rejoined (empty — its replicas were dropped)."""
        if node_id not in self._dead:
            raise ValueError(f"node {node_id} is not dead")
        self._dead.remove(node_id)

    def under_replicated(self) -> list[str]:
        """Blocks with fewer live replicas than the effective target."""
        want = self.effective_replication()
        return [b for b, holders in self._placement.items() if len(holders) < want]
