"""NameNode: block placement, replication and locality metadata."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdfs.blocks import Block
from repro.hdfs.datanode import DataNode


@dataclass
class NameNode:
    """Placement and lookup authority for the mini-HDFS.

    Placement policy: the first replica goes to the writer's node
    (write affinity, as in real HDFS), the remaining replicas
    round-robin across other nodes.  With single-node clusters the
    effective replication is capped at the node count.
    """

    datanodes: list[DataNode]
    replication: int = 3
    _placement: dict[str, list[int]] = field(default_factory=dict, repr=False)
    _rr_cursor: int = 0

    def __post_init__(self) -> None:
        if not self.datanodes:
            raise ValueError("namenode needs at least one datanode")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")

    @property
    def n_nodes(self) -> int:
        return len(self.datanodes)

    def effective_replication(self) -> int:
        return min(self.replication, self.n_nodes)

    def place_block(self, block: Block, writer_node: int) -> list[int]:
        """Choose replica nodes for ``block`` and store the replicas."""
        if not 0 <= writer_node < self.n_nodes:
            raise ValueError(f"writer_node {writer_node} out of range")
        if block.block_id in self._placement:
            raise ValueError(f"block {block.block_id} already placed")
        targets = [writer_node]
        while len(targets) < self.effective_replication():
            candidate = self._rr_cursor % self.n_nodes
            self._rr_cursor += 1
            if candidate not in targets:
                targets.append(candidate)
        for node_id in targets:
            self.datanodes[node_id].store(block)
        self._placement[block.block_id] = targets
        return list(targets)

    def locate(self, block_id: str) -> list[int]:
        """Replica node ids for a block."""
        try:
            return list(self._placement[block_id])
        except KeyError:
            raise KeyError(f"unknown block {block_id}") from None

    def is_local(self, block_id: str, node_id: int) -> bool:
        """Whether a block has a replica on ``node_id`` (task locality)."""
        return node_id in self.locate(block_id)

    def delete_block(self, block_id: str) -> None:
        """Drop every replica of a block."""
        for node_id in self.locate(block_id):
            self.datanodes[node_id].drop(block_id)
        del self._placement[block_id]

    def locality_fraction(self, block_ids: list[str], node_id: int) -> float:
        """Fraction of the given blocks readable locally from ``node_id``."""
        if not block_ids:
            return 1.0
        local = sum(1 for b in block_ids if self.is_local(b, node_id))
        return local / len(block_ids)
