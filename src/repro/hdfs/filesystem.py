"""MiniHdfs: the file-level facade over namenode/datanodes.

Supports writing (placing) files, listing their blocks, computing the
input splits MapReduce will create, and deleting files.  The paper's
methodology flushes page caches before each run (§2.1), so we expose
:meth:`drop_caches` as an explicit (no-op placeholder for state) hook
the engine calls to model cold reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdfs.blocks import Block, split_file, validate_block_size
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class HdfsFile:
    """Metadata of one stored file."""

    name: str
    size: int
    block_size: int
    blocks: tuple[Block, ...]


@dataclass
class MiniHdfs:
    """A minimal but real HDFS: files → blocks → replicated placement."""

    n_nodes: int = 8
    replication: int = 3
    namenode: NameNode = field(init=False)
    _files: dict[str, HdfsFile] = field(default_factory=dict, repr=False)
    _cold: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        datanodes = [DataNode(node_id=i) for i in range(self.n_nodes)]
        self.namenode = NameNode(datanodes=datanodes, replication=self.replication)

    def write_file(
        self, name: str, size: int, block_size: int, *, writer_node: int = 0
    ) -> HdfsFile:
        """Create a file of ``size`` bytes with the given block size."""
        if name in self._files:
            raise FileExistsError(f"HDFS file {name!r} already exists")
        check_positive("size", size)
        validate_block_size(block_size)
        blocks = split_file(name, size, block_size)
        for i, block in enumerate(blocks):
            # Round-robin the writer across nodes so large files spread
            # evenly, as a distributed TeraGen/producer job would.
            self.namenode.place_block(block, (writer_node + i) % self.n_nodes)
        f = HdfsFile(name=name, size=size, block_size=block_size, blocks=tuple(blocks))
        self._files[name] = f
        return f

    def get_file(self, name: str) -> HdfsFile:
        try:
            return self._files[name]
        except KeyError:
            raise FileNotFoundError(f"no HDFS file {name!r}") from None

    def delete_file(self, name: str) -> None:
        f = self.get_file(name)
        for block in f.blocks:
            self.namenode.delete_block(block.block_id)
        del self._files[name]

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def splits_for(self, name: str) -> list[Block]:
        """Input splits for a MapReduce job over ``name`` (1 per block)."""
        return list(self.get_file(name).blocks)

    def splits_on_node(self, name: str, node_id: int) -> list[Block]:
        """The file's blocks with a local replica on ``node_id``."""
        return [
            b for b in self.get_file(name).blocks
            if self.namenode.is_local(b.block_id, node_id)
        ]

    def drop_caches(self) -> None:
        """Model the paper's pre-run page-cache flush (§2.1)."""
        self._cold = True

    @property
    def cold_read(self) -> bool:
        return self._cold
