"""HDFS substrate: block-structured files, placement and replication.

The tuning knob the paper studies (§2.4) is the HDFS block size —
64 MB to 1024 MB — which determines both the number of map tasks (one
per block/split) and the contiguous extent size seen by the disk.
This package implements enough of HDFS for those effects to be real:
files are split into blocks, blocks are placed on datanodes by a
namenode with rack-unaware round-robin + replication, and the engine
queries locality when scheduling map tasks.
"""

from repro.hdfs.blocks import HDFS_BLOCK_SIZES, Block, split_file
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.filesystem import HdfsFile, MiniHdfs

__all__ = [
    "HDFS_BLOCK_SIZES",
    "Block",
    "split_file",
    "DataNode",
    "NameNode",
    "HdfsFile",
    "MiniHdfs",
]
