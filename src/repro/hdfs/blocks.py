"""Block arithmetic: splitting files into HDFS blocks.

A file of ``size`` bytes with block size ``b`` yields ``ceil(size/b)``
blocks, the last one partial.  MapReduce creates one input split per
block, so this function is the origin of the paper's
block-size/mapper-count interplay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import MB
from repro.utils.validation import check_in, check_positive

#: The five block sizes studied in the paper (§2.4), in bytes.
HDFS_BLOCK_SIZES: tuple[int, ...] = (
    64 * MB,
    128 * MB,
    256 * MB,
    512 * MB,
    1024 * MB,
)


@dataclass(frozen=True)
class Block:
    """One HDFS block of a file."""

    file_name: str
    index: int
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("block index must be >= 0")
        if self.offset < 0:
            raise ValueError("block offset must be >= 0")
        check_positive("length", self.length)

    @property
    def block_id(self) -> str:
        return f"{self.file_name}#{self.index}"


def validate_block_size(block_size: int) -> int:
    """Require one of the paper's five studied block sizes."""
    return check_in("block_size", block_size, HDFS_BLOCK_SIZES)


def split_file(file_name: str, size: int, block_size: int) -> list[Block]:
    """Split a file into blocks of ``block_size`` (last one partial)."""
    check_positive("size", size)
    check_positive("block_size", block_size)
    blocks = []
    offset = 0
    index = 0
    while offset < size:
        length = min(block_size, size - offset)
        blocks.append(Block(file_name=file_name, index=index, offset=offset, length=length))
        offset += length
        index += 1
    return blocks


def n_blocks(size: int, block_size: int) -> int:
    """Number of blocks without materialising them (vector-safe math)."""
    check_positive("size", size)
    check_positive("block_size", block_size)
    return -(-size // block_size)
