"""DataNode: per-node block storage with capacity accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hdfs.blocks import Block
from repro.utils.units import GB
from repro.utils.validation import check_positive


@dataclass
class DataNode:
    """Block storage on one cluster node."""

    node_id: int
    capacity_bytes: float = 500 * GB
    _blocks: dict[str, Block] = field(default_factory=dict, repr=False)
    _used: float = 0.0

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError("node_id must be >= 0")
        check_positive("capacity_bytes", self.capacity_bytes)

    @property
    def used_bytes(self) -> float:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self._used

    def store(self, block: Block) -> None:
        """Store a replica of ``block``; raises when out of space."""
        if block.block_id in self._blocks:
            raise ValueError(f"block {block.block_id} already stored on node {self.node_id}")
        if block.length > self.free_bytes:
            raise IOError(
                f"datanode {self.node_id} full: need {block.length}, free {self.free_bytes:.0f}"
            )
        self._blocks[block.block_id] = block
        self._used += block.length

    def has_block(self, block_id: str) -> bool:
        return block_id in self._blocks

    def get_block(self, block_id: str) -> Block:
        """The stored replica's metadata (re-replication source read)."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise KeyError(f"block {block_id} not on node {self.node_id}") from None

    def drop(self, block_id: str) -> None:
        """Remove a replica (file deletion / rebalancing)."""
        block = self._blocks.pop(block_id, None)
        if block is None:
            raise KeyError(f"block {block_id} not on node {self.node_id}")
        self._used -= block.length

    def block_ids(self) -> list[str]:
        return list(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)
