"""Registry of the 11 studied applications and their instances.

The paper splits the applications into a *training* set used to build
the configuration database and a *testing* set of "unknown" incoming
applications (§7): NB, CF, SVM, PR, HMM and KM are unknown; WC, ST,
GP, TS and FP are known.  11 apps × 3 input sizes gives the 33
instances whose 528 unordered pairs form the co-location workloads.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.workloads.analytics import (
    CollaborativeFiltering,
    FPGrowth,
    HiddenMarkovModel,
    KMeans,
    NaiveBayes,
    PageRank,
    SupportVectorMachine,
)
from repro.workloads.base import DATA_SIZES, AppInstance, Application
from repro.workloads.micro import Grep, Sort, TeraSort, WordCount

_FACTORIES = {
    "wc": WordCount,
    "st": Sort,
    "gp": Grep,
    "ts": TeraSort,
    "nb": NaiveBayes,
    "fp": FPGrowth,
    "cf": CollaborativeFiltering,
    "svm": SupportVectorMachine,
    "pr": PageRank,
    "hmm": HiddenMarkovModel,
    "km": KMeans,
}

#: All 11 application codes in the paper's order (§2.2).
ALL_APPS: tuple[str, ...] = ("wc", "st", "gp", "ts", "nb", "fp", "cf", "svm", "pr", "hmm", "km")

#: Known applications used to build the training database (§7).
TRAINING_APPS: tuple[str, ...] = ("wc", "st", "gp", "ts", "fp")

#: Unknown incoming applications held out for validation (§7).
TESTING_APPS: tuple[str, ...] = ("nb", "cf", "svm", "pr", "hmm", "km")

_CACHE: dict[str, Application] = {}


def get_app(code: str) -> Application:
    """The (cached) application object for a code like ``"wc"``.

    Applications are stateless for scheduling purposes, so one shared
    instance per code is safe and keeps profile identity stable.
    """
    try:
        factory = _FACTORIES[code]
    except KeyError:
        raise KeyError(
            f"unknown application {code!r}; valid codes: {', '.join(ALL_APPS)}"
        ) from None
    if code not in _CACHE:
        _CACHE[code] = factory()
    return _CACHE[code]


def instances_for(
    codes: Iterable[str], sizes: Sequence[int] = DATA_SIZES
) -> list[AppInstance]:
    """All (app, size) instances for the given codes."""
    return [AppInstance(get_app(code), size) for code in codes for size in sizes]


def all_instances(sizes: Sequence[int] = DATA_SIZES) -> list[AppInstance]:
    """The full 11 × len(sizes) instance set (33 by default)."""
    return instances_for(ALL_APPS, sizes)


def all_pairs(instances: Sequence[AppInstance] | None = None) -> list[tuple[AppInstance, AppInstance]]:
    """Unordered instance pairs — 528 for the default 33 instances (§7)."""
    if instances is None:
        instances = all_instances()
    return list(combinations(instances, 2))
