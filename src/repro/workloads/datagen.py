"""Synthetic input generators for the 11 studied applications.

The paper drives its workloads with HiBench-style inputs (Zipfian text,
random TeraSort records, ratings matrices, transaction baskets, graph
edges…).  Each generator here produces a deterministic stream of
records from a seed, sized so correctness tests and examples run on a
laptop while exercising the same code paths.
"""

from __future__ import annotations

import string
from typing import Iterator

import numpy as np

from repro.utils.rng import rng_from

#: Vocabulary used by the text generators (Zipf-distributed).
_VOCAB_SIZE = 5000
_WORD_CHARS = np.array(list(string.ascii_lowercase))


def _vocabulary(rng: np.random.Generator, size: int = _VOCAB_SIZE) -> list[str]:
    """A deterministic vocabulary of pronounceable-ish lowercase words."""
    words = []
    seen = set()
    while len(words) < size:
        length = int(rng.integers(3, 10))
        word = "".join(rng.choice(_WORD_CHARS, size=length))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


def zipf_text_lines(
    n_lines: int,
    *,
    words_per_line: int = 10,
    exponent: float = 1.2,
    seed: int = 0,
) -> Iterator[str]:
    """Lines of Zipf-distributed words (WordCount / Grep input)."""
    rng = rng_from(seed)
    vocab = _vocabulary(rng)
    ranks = np.arange(1, len(vocab) + 1, dtype=float)
    probs = ranks**-exponent
    probs /= probs.sum()
    for _ in range(n_lines):
        idx = rng.choice(len(vocab), size=words_per_line, p=probs)
        yield " ".join(vocab[i] for i in idx)


def terasort_records(n_records: int, *, seed: int = 0) -> Iterator[tuple[bytes, bytes]]:
    """(10-byte key, 90-byte payload) records in TeraGen's format."""
    rng = rng_from(seed)
    for _ in range(n_records):
        key = bytes(rng.integers(0, 256, size=10, dtype=np.uint8))
        payload = bytes(rng.integers(32, 127, size=90, dtype=np.uint8))
        yield key, payload


def kv_records(n_records: int, *, key_space: int = 10_000, seed: int = 0) -> Iterator[tuple[int, float]]:
    """Generic (int key, float value) records (Sort input)."""
    rng = rng_from(seed)
    for _ in range(n_records):
        yield int(rng.integers(0, key_space)), float(rng.random())


def labeled_vectors(
    n_records: int,
    *,
    n_features: int = 16,
    seed: int = 0,
) -> Iterator[tuple[int, np.ndarray]]:
    """Linearly-separable-ish labelled feature vectors (SVM / NB input).

    Two Gaussian clusters with distinct means so learning kernels have
    signal to find; labels are ±1.
    """
    rng = rng_from(seed)
    direction = rng.normal(size=n_features)
    direction /= np.linalg.norm(direction)
    for _ in range(n_records):
        label = 1 if rng.random() < 0.5 else -1
        x = rng.normal(size=n_features) + 1.5 * label * direction
        yield label, x


def rating_triples(
    n_records: int,
    *,
    n_users: int = 500,
    n_items: int = 200,
    seed: int = 0,
) -> Iterator[tuple[int, tuple[int, float]]]:
    """(user, (item, rating)) triples (Collaborative Filtering input)."""
    rng = rng_from(seed)
    for _ in range(n_records):
        user = int(rng.integers(0, n_users))
        item = int(rng.integers(0, n_items))
        rating = float(rng.integers(1, 6))
        yield user, (item, rating)


def transactions(
    n_records: int,
    *,
    n_items: int = 300,
    basket_mean: int = 8,
    seed: int = 0,
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """(txn id, item basket) records (FP-Growth input).

    Item popularity is Zipfian so frequent itemsets actually exist.
    """
    rng = rng_from(seed)
    ranks = np.arange(1, n_items + 1, dtype=float)
    probs = ranks**-1.1
    probs /= probs.sum()
    for txn in range(n_records):
        size = max(1, int(rng.poisson(basket_mean)))
        basket = tuple(sorted(set(int(i) for i in rng.choice(n_items, size=size, p=probs))))
        yield txn, basket


def graph_edges(
    n_records: int,
    *,
    n_nodes: int = 400,
    seed: int = 0,
) -> Iterator[tuple[int, int]]:
    """Directed edges with preferential attachment (PageRank input)."""
    rng = rng_from(seed)
    ranks = np.arange(1, n_nodes + 1, dtype=float)
    probs = ranks**-0.9
    probs /= probs.sum()
    for _ in range(n_records):
        src = int(rng.integers(0, n_nodes))
        dst = int(rng.choice(n_nodes, p=probs))
        if dst == src:
            dst = (dst + 1) % n_nodes
        yield src, dst


def hmm_sequences(
    n_records: int,
    *,
    n_states: int = 4,
    n_symbols: int = 8,
    seq_len: int = 24,
    seed: int = 0,
) -> Iterator[tuple[int, tuple[int, ...]]]:
    """(sequence id, observation sequence) records (HMM training input).

    Sequences are emitted by a fixed random HMM so the Baum-Welch
    kernel has consistent statistics to estimate.
    """
    rng = rng_from(seed)
    trans = rng.dirichlet(np.ones(n_states), size=n_states)
    emit = rng.dirichlet(np.ones(n_symbols), size=n_states)
    for sid in range(n_records):
        state = int(rng.integers(0, n_states))
        obs = []
        for _ in range(seq_len):
            obs.append(int(rng.choice(n_symbols, p=emit[state])))
            state = int(rng.choice(n_states, p=trans[state]))
        yield sid, tuple(obs)


def points(
    n_records: int,
    *,
    n_dims: int = 8,
    n_clusters: int = 5,
    seed: int = 0,
) -> Iterator[tuple[int, np.ndarray]]:
    """Clustered points (K-Means input); key is the hidden cluster id."""
    rng = rng_from(seed)
    centers = rng.normal(scale=6.0, size=(n_clusters, n_dims))
    for _ in range(n_records):
        c = int(rng.integers(0, n_clusters))
        yield c, centers[c] + rng.normal(size=n_dims)
