"""Deterministic data-skew: seeded Zipf split sizes.

Real MapReduce inputs are rarely uniform — a handful of splits carry a
disproportionate share of the bytes (hot keys, unsplittable files), so
some tasks straggle *organically*, without any machine being slow.
This module provides that knob as pure, seeded arithmetic:

* :func:`zipf_split_weights` — normalised Zipf(``skew``) weights over
  ``n_splits`` slots, assigned to slot positions by a seeded shuffle so
  the heavy split lands at a seed-dependent index.
* :func:`skewed_split_sizes` — integer byte sizes summing *exactly* to
  the requested total (largest-remainder apportionment, floor-bounded).
* :func:`skew_data_bytes` — redistribute an existing per-job byte
  vector under the same law, preserving the grand total.

``skew = 0`` is the identity by construction: weights are exactly
uniform, no RNG state is consumed, and :func:`skew_data_bytes` returns
its input byte-for-byte — the conformance relation
"skew=0 ≡ uniform" pins this.  Skewed inputs produce stragglers that
are *workload-shaped*, which keeps them distinct from the machine-side
slowdowns :mod:`repro.faults` injects: a faulted node runs everything
slowly, a skewed workload runs one split long on a healthy node.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng, SeedLike

#: No split is apportioned below this share of a uniform split — the
#: cost kernel needs strictly positive bytes and degenerate slivers
#: teach nothing about stragglers.
MIN_SPLIT_FRACTION = 0.05


def zipf_split_weights(
    n_splits: int, *, skew: float, seed: SeedLike = 0
) -> np.ndarray:
    """Normalised split weights under a Zipf(``skew``) law.

    Returns an array of ``n_splits`` positive floats summing to 1.
    ``skew = 0`` yields the exact uniform vector without touching the
    RNG; for ``skew > 0`` the rank weights ``rank**-skew`` are
    assigned to positions by a ``derive_rng(seed, "skew")``-seeded
    permutation, so which split is heavy depends only on the seed.
    """
    if n_splits < 1:
        raise ValueError("n_splits must be >= 1")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    if skew == 0:
        return np.full(n_splits, 1.0 / n_splits)
    ranks = np.arange(1, n_splits + 1, dtype=float)
    weights = ranks**-skew
    weights /= weights.sum()
    rng = derive_rng(seed, "skew", n_splits)
    return weights[rng.permutation(n_splits)]


def skewed_split_sizes(
    total_bytes: int,
    n_splits: int,
    *,
    skew: float = 0.0,
    seed: SeedLike = 0,
) -> tuple[int, ...]:
    """Integer split sizes summing exactly to ``total_bytes``.

    Weights come from :func:`zipf_split_weights`, floored at
    :data:`MIN_SPLIT_FRACTION` of a uniform split (then renormalised)
    so no split degenerates, and apportioned to integers by the
    largest-remainder method with index-ordered ties — fully
    deterministic in ``(total_bytes, n_splits, skew, seed)``.
    """
    if total_bytes < n_splits:
        raise ValueError(
            f"cannot split {total_bytes} byte(s) into {n_splits} positive splits"
        )
    weights = zipf_split_weights(n_splits, skew=skew, seed=seed)
    floor = MIN_SPLIT_FRACTION / n_splits
    weights = np.maximum(weights, floor)
    weights /= weights.sum()
    shares = weights * float(total_bytes)
    sizes = np.floor(shares).astype(np.int64)
    # Largest-remainder: hand the leftover bytes to the largest
    # fractional parts; ties break toward the lower index (argsort is
    # stable on the negated remainders).
    leftover = int(total_bytes - int(sizes.sum()))
    if leftover:
        order = np.argsort(-(shares - sizes), kind="stable")
        sizes[order[:leftover]] += 1
    # The floor keeps every weight ≥ floor/2 of a uniform share, so a
    # zero-byte split would need total_bytes < n_splits — rejected above.
    assert int(sizes.min()) >= 1
    return tuple(int(s) for s in sizes)


def skew_data_bytes(
    sizes: "list[int] | tuple[int, ...]",
    *,
    skew: float = 0.0,
    seed: SeedLike = 0,
) -> tuple[int, ...]:
    """Redistribute a per-job byte vector under the Zipf(``skew``) law.

    The grand total is preserved exactly; individual entries are
    re-apportioned by :func:`skewed_split_sizes`.  ``skew = 0`` returns
    the input unchanged (same integers, not a uniform re-split), which
    is what makes the knob a strict superset of today's behaviour.
    """
    sizes = tuple(int(s) for s in sizes)
    if not sizes:
        return sizes
    if any(s <= 0 for s in sizes):
        raise ValueError("sizes must be positive")
    if skew == 0:
        return sizes
    return skewed_split_sizes(sum(sizes), len(sizes), skew=skew, seed=seed)
