"""The 11 Hadoop MapReduce applications studied in the paper (§2.2).

Micro-benchmarks: WordCount (WC), Sort (ST), Grep (GP), TeraSort (TS).
Real-world analytics: Naive Bayes (NB), FP-Growth (FP), Collaborative
Filtering (CF), SVM, PageRank (PR), Hidden Markov Model (HMM),
K-Means (KM).

Each application exists in two coupled forms:

* **Functional kernels** — real ``mapper``/``reducer`` functions that run
  on the in-memory MapReduce executor over synthetic data, used for
  correctness tests and the examples.
* **Resource profile** — the calibrated per-byte cost signature
  (instructions/byte, IPC, LLC MPKI, I/O ratios, cache behaviour…)
  consumed by the timing simulator.  Profiles determine each app's
  class: compute-bound (C), hybrid (H), I/O-bound (I), memory-bound (M).
"""

from repro.workloads.base import (
    AppClass,
    AppInstance,
    AppProfile,
    Application,
    DATA_SIZES,
)
from repro.workloads.registry import (
    ALL_APPS,
    TESTING_APPS,
    TRAINING_APPS,
    all_instances,
    get_app,
    instances_for,
)
from repro.workloads.skew import (
    MIN_SPLIT_FRACTION,
    skew_data_bytes,
    skewed_split_sizes,
    zipf_split_weights,
)

__all__ = [
    "AppClass",
    "AppInstance",
    "AppProfile",
    "Application",
    "DATA_SIZES",
    "ALL_APPS",
    "TRAINING_APPS",
    "TESTING_APPS",
    "get_app",
    "all_instances",
    "instances_for",
    "MIN_SPLIT_FRACTION",
    "skew_data_bytes",
    "skewed_split_sizes",
    "zipf_split_weights",
]
