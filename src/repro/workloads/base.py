"""Application base classes: profiles, classes, instances.

The paper's controller never sees application *code* — it observes
hardware counters and resource utilisation.  The
:class:`AppProfile` is therefore the contract between a workload and
the simulated cluster: it encodes the per-byte compute cost, the I/O
amplification of each MapReduce stage, and the micro-architectural
signature (IPC, MPKI…) that telemetry will report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.utils.units import GB, MB
from repro.utils.validation import check_positive, check_probability


class AppClass(enum.Enum):
    """Application classes from §3.2 of the paper."""

    COMPUTE = "C"
    HYBRID = "H"
    IO = "I"
    MEMORY = "M"

    @classmethod
    def from_code(cls, code: str) -> "AppClass":
        for member in cls:
            if member.value == code.upper():
                return member
        raise ValueError(f"unknown application class code {code!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: The three studied per-node input sizes (§2.3): small, medium, large.
DATA_SIZES: tuple[int, ...] = (1 * GB, 5 * GB, 10 * GB)


@dataclass(frozen=True)
class AppProfile:
    """Calibrated resource signature of one application.

    Parameters
    ----------
    instructions_per_byte:
        Retired instructions per input byte on the map side (includes
        framework/JVM overhead, hence the large values).
    ipc0:
        Cache-resident IPC of the instruction mix on the in-order core.
    llc_mpki0:
        LLC misses per kilo-instruction with the full LLC available.
    icache_mpki / branch_mpki:
        Front-end signature — reported by telemetry, used as features.
    read_factor / spill_factor / shuffle_factor / output_factor:
        Bytes moved per input byte by: HDFS reads, map-side spills
        (disk writes), the shuffle (network for remote partitions,
        disk for local), and final HDFS output writes.
    reduce_instr_per_byte:
        Reduce-side instructions per *shuffled* byte.
    io_overlap:
        Fraction of I/O time the framework overlaps with computation
        inside a task (prefetching, async spill).  Low values give the
        alternating compute/IO behaviour of I/O-bound apps, which is
        what leaves resources idle for a co-runner.
    cache_pressure:
        Relative LLC demand (drives the contention partition).
    cache_alpha:
        Miss-curve exponent: sensitivity of MPKI to lost LLC capacity.
    mem_stream_factor:
        Extra DRAM traffic per LLC-miss byte (streaming stores,
        prefetch overshoot); scales memory-bandwidth demand.
    footprint_per_task:
        Resident memory per concurrently-running map task (bytes).
    """

    instructions_per_byte: float
    ipc0: float
    llc_mpki0: float
    icache_mpki: float
    branch_mpki: float
    read_factor: float = 1.0
    spill_factor: float = 0.1
    shuffle_factor: float = 0.1
    output_factor: float = 0.05
    reduce_instr_per_byte: float = 40.0
    io_overlap: float = 0.5
    cache_pressure: float = 0.4
    cache_alpha: float = 0.2
    mem_stream_factor: float = 1.5
    footprint_per_task: float = 350 * MB

    def __post_init__(self) -> None:
        check_positive("instructions_per_byte", self.instructions_per_byte)
        check_positive("ipc0", self.ipc0)
        check_positive("llc_mpki0", self.llc_mpki0)
        check_positive("icache_mpki", self.icache_mpki)
        check_positive("branch_mpki", self.branch_mpki)
        check_positive("read_factor", self.read_factor)
        check_positive("spill_factor", self.spill_factor, strict=False)
        check_positive("shuffle_factor", self.shuffle_factor, strict=False)
        check_positive("output_factor", self.output_factor, strict=False)
        check_positive("reduce_instr_per_byte", self.reduce_instr_per_byte, strict=False)
        check_probability("io_overlap", self.io_overlap)
        check_probability("cache_pressure", self.cache_pressure)
        check_positive("cache_alpha", self.cache_alpha, strict=False)
        check_positive("mem_stream_factor", self.mem_stream_factor)
        check_positive("footprint_per_task", self.footprint_per_task)

    @property
    def cpi0(self) -> float:
        """Cache-resident cycles per instruction."""
        return 1.0 / self.ipc0

    @property
    def disk_bytes_per_input_byte(self) -> float:
        """Total disk traffic per input byte across all stages.

        Shuffle data is written locally by the mapper and read back by
        the reducer, so it traverses the disk regardless of whether the
        destination partition is remote.
        """
        return (
            self.read_factor
            + self.spill_factor
            + self.shuffle_factor
            + self.output_factor
        )


KeyValue = tuple[object, object]


class Application:
    """A MapReduce application: functional kernels plus a profile.

    Subclasses implement :meth:`mapper` and :meth:`reducer` (and
    optionally :meth:`combiner`) — real computations that the in-memory
    executor runs for correctness tests — and provide the calibrated
    :class:`AppProfile` the timing simulator uses.
    """

    #: Short code used throughout the paper, e.g. ``"wc"``.
    code: str = ""
    #: Full human-readable name.
    name: str = ""
    #: Application class (C/H/I/M).
    app_class: AppClass = AppClass.COMPUTE
    #: Calibrated resource profile.
    profile: AppProfile

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        """Map one input record to zero or more intermediate pairs."""
        raise NotImplementedError

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        """Reduce all values of one intermediate key to output pairs."""
        raise NotImplementedError

    def combiner(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        """Optional map-side combine; defaults to the reducer."""
        return self.reducer(key, values)

    @property
    def has_combiner(self) -> bool:
        """Whether a map-side combiner is semantically valid for this app."""
        return True

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        """Yield ``n_records`` synthetic input records for this app."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.code} [{self.app_class}]>"


@dataclass(frozen=True)
class AppInstance:
    """An application paired with a per-node input size.

    This is the paper's unit of scheduling: 11 apps × 3 sizes = 33
    instances, giving the 528 unordered co-location pairs of §7.
    """

    app: Application
    data_bytes: int

    def __post_init__(self) -> None:
        check_positive("data_bytes", self.data_bytes)

    @property
    def code(self) -> str:
        return self.app.code

    @property
    def app_class(self) -> AppClass:
        return self.app.app_class

    @property
    def profile(self) -> AppProfile:
        return self.app.profile

    @property
    def label(self) -> str:
        return f"{self.app.code}@{self.data_bytes // GB}GB"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AppInstance {self.label}>"
