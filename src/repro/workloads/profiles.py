"""Calibrated resource profiles for the 11 studied applications.

These numbers are the substitution for the paper's measurements on the
Atom C2758 testbed: they are chosen so that each application reproduces
its published *class* (C/H/I/M, §3.2 and Table 3) and the qualitative
resource signature the paper reports —

* **C** (WordCount, SVM, HMM): high CPUuser, low iowait and I/O rates,
  modest MPKI; runtime scales with frequency and mapper count.
* **H** (TeraSort, Grep, K-Means): both compute and I/O phases matter;
  TeraSort additionally moves its whole input through shuffle/output.
* **I** (Sort, Naive Bayes): little compute per byte, heavy disk and
  shuffle traffic, low ``io_overlap`` (compute/IO alternate) so a
  tuned instance leaves most of every resource idle — the property
  that makes I-I the best co-location pair (Fig. 5).
* **M** (CF, FP-Growth, PageRank): poor cache behaviour (high LLC
  MPKI, steep miss curves, large footprints) and long runtimes; they
  prefer all cores and suffer most from sharing (Figs. 3 and 5).

The classes of WC/SVM/HMM (C), TS/GP (H), ST (I) and CF/FP (M) are
taken directly from the paper's Table 3 scenario listing; NB, KM and
PR do not appear there, so we assign I, H and M respectively from the
applications' well-known Hadoop behaviour (NB scoring is a scan, KM
alternates scan and compute, PageRank is the canonical memory-bound
graph workload).
"""

from __future__ import annotations

from repro.utils.units import MB
from repro.workloads.base import AppClass, AppProfile

#: code -> (class, profile).  Instruction-per-byte figures include JVM
#: and framework overhead, which dominates on in-order Atom cores.
PROFILES: dict[str, tuple[AppClass, AppProfile]] = {
    # ------------------------------------------------------- compute-bound
    "wc": (
        AppClass.COMPUTE,
        AppProfile(
            instructions_per_byte=800.0,
            ipc0=1.10,
            llc_mpki0=1.2,
            icache_mpki=4.0,
            branch_mpki=9.0,
            read_factor=1.0,
            spill_factor=0.06,
            shuffle_factor=0.05,
            output_factor=0.03,
            reduce_instr_per_byte=60.0,
            io_overlap=0.80,
            cache_pressure=0.30,
            cache_alpha=0.12,
            mem_stream_factor=1.3,
            footprint_per_task=300 * MB,
        ),
    ),
    "svm": (
        AppClass.COMPUTE,
        AppProfile(
            instructions_per_byte=850.0,
            ipc0=1.20,
            llc_mpki0=0.8,
            icache_mpki=2.0,
            branch_mpki=4.0,
            read_factor=1.0,
            spill_factor=0.02,
            shuffle_factor=0.01,
            output_factor=0.005,
            reduce_instr_per_byte=30.0,
            io_overlap=0.85,
            cache_pressure=0.25,
            cache_alpha=0.10,
            mem_stream_factor=1.2,
            footprint_per_task=350 * MB,
        ),
    ),
    "hmm": (
        AppClass.COMPUTE,
        AppProfile(
            instructions_per_byte=900.0,
            ipc0=1.15,
            llc_mpki0=1.0,
            icache_mpki=3.0,
            branch_mpki=6.5,
            read_factor=1.0,
            spill_factor=0.03,
            shuffle_factor=0.02,
            output_factor=0.01,
            reduce_instr_per_byte=40.0,
            io_overlap=0.85,
            cache_pressure=0.30,
            cache_alpha=0.12,
            mem_stream_factor=1.2,
            footprint_per_task=400 * MB,
        ),
    ),
    # ------------------------------------------------------------- hybrid
    "ts": (
        AppClass.HYBRID,
        AppProfile(
            instructions_per_byte=150.0,
            ipc0=0.90,
            llc_mpki0=3.0,
            icache_mpki=6.0,
            branch_mpki=11.0,
            read_factor=1.0,
            spill_factor=1.0,
            shuffle_factor=1.0,
            output_factor=1.0,
            reduce_instr_per_byte=90.0,
            io_overlap=0.45,
            cache_pressure=0.50,
            cache_alpha=0.28,
            mem_stream_factor=1.8,
            footprint_per_task=450 * MB,
        ),
    ),
    "gp": (
        AppClass.HYBRID,
        AppProfile(
            instructions_per_byte=500.0,
            ipc0=1.00,
            llc_mpki0=2.2,
            icache_mpki=5.0,
            branch_mpki=10.0,
            read_factor=1.0,
            spill_factor=0.10,
            shuffle_factor=0.05,
            output_factor=0.02,
            reduce_instr_per_byte=50.0,
            io_overlap=0.50,
            cache_pressure=0.40,
            cache_alpha=0.22,
            mem_stream_factor=1.5,
            footprint_per_task=250 * MB,
        ),
    ),
    "km": (
        AppClass.HYBRID,
        AppProfile(
            instructions_per_byte=450.0,
            ipc0=1.05,
            llc_mpki0=2.6,
            icache_mpki=4.5,
            branch_mpki=7.0,
            read_factor=1.0,
            spill_factor=0.15,
            shuffle_factor=0.10,
            output_factor=0.05,
            reduce_instr_per_byte=70.0,
            io_overlap=0.50,
            cache_pressure=0.45,
            cache_alpha=0.25,
            mem_stream_factor=1.6,
            footprint_per_task=500 * MB,
        ),
    ),
    # ----------------------------------------------------------- I/O-bound
    "st": (
        AppClass.IO,
        AppProfile(
            instructions_per_byte=90.0,
            ipc0=0.85,
            llc_mpki0=2.0,
            icache_mpki=5.5,
            branch_mpki=8.0,
            read_factor=1.0,
            spill_factor=0.5,
            shuffle_factor=1.0,
            output_factor=1.0,
            reduce_instr_per_byte=45.0,
            io_overlap=0.25,
            cache_pressure=0.30,
            cache_alpha=0.10,
            mem_stream_factor=1.6,
            footprint_per_task=400 * MB,
        ),
    ),
    "nb": (
        AppClass.IO,
        AppProfile(
            instructions_per_byte=95.0,
            ipc0=0.90,
            llc_mpki0=1.8,
            icache_mpki=4.8,
            branch_mpki=7.5,
            read_factor=1.0,
            spill_factor=0.55,
            shuffle_factor=0.80,
            output_factor=0.80,
            reduce_instr_per_byte=42.0,
            io_overlap=0.20,
            cache_pressure=0.30,
            cache_alpha=0.10,
            mem_stream_factor=1.4,
            footprint_per_task=300 * MB,
        ),
    ),
    # -------------------------------------------------------- memory-bound
    "cf": (
        AppClass.MEMORY,
        AppProfile(
            instructions_per_byte=410.0,
            ipc0=0.52,
            llc_mpki0=8.7,
            icache_mpki=3.5,
            branch_mpki=6.0,
            read_factor=1.0,
            spill_factor=0.45,
            shuffle_factor=0.35,
            output_factor=0.17,
            reduce_instr_per_byte=125.0,
            io_overlap=0.60,
            cache_pressure=0.92,
            cache_alpha=0.57,
            mem_stream_factor=3.3,
            footprint_per_task=980 * MB,
        ),
    ),
    "fp": (
        AppClass.MEMORY,
        AppProfile(
            instructions_per_byte=430.0,
            ipc0=0.50,
            llc_mpki0=9.0,
            icache_mpki=3.0,
            branch_mpki=7.0,
            read_factor=1.0,
            spill_factor=0.40,
            shuffle_factor=0.30,
            output_factor=0.15,
            reduce_instr_per_byte=140.0,
            io_overlap=0.60,
            cache_pressure=0.95,
            cache_alpha=0.60,
            mem_stream_factor=3.4,
            footprint_per_task=1000 * MB,
        ),
    ),
    "pr": (
        AppClass.MEMORY,
        AppProfile(
            instructions_per_byte=400.0,
            ipc0=0.55,
            llc_mpki0=8.3,
            icache_mpki=4.0,
            branch_mpki=8.5,
            read_factor=1.0,
            spill_factor=0.45,
            shuffle_factor=0.38,
            output_factor=0.20,
            reduce_instr_per_byte=120.0,
            io_overlap=0.58,
            cache_pressure=0.88,
            cache_alpha=0.55,
            mem_stream_factor=3.2,
            footprint_per_task=950 * MB,
        ),
    ),
}


def profile_for(code: str) -> AppProfile:
    """The calibrated profile for an application code."""
    try:
        return PROFILES[code][1]
    except KeyError:
        raise KeyError(f"no profile for application {code!r}") from None


def class_for(code: str) -> AppClass:
    """The published class (C/H/I/M) for an application code."""
    try:
        return PROFILES[code][0]
    except KeyError:
        raise KeyError(f"no class for application {code!r}") from None
