"""Iterative algorithm drivers: run the MapReduce apps to convergence.

Several of the studied applications (PageRank, K-Means, SVM, HMM) are
iterative: in production each iteration is one MapReduce job.  The
single-iteration kernels live in :mod:`repro.workloads.analytics`;
these drivers chain them — feeding each iteration's reduce output back
into the next iteration's mapper state — exactly as Mahout's driver
programs do around Hadoop.

All drivers run on the functional runtime and report convergence
diagnostics, so the repository's applications are complete programs,
not one-shot kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapreduce.functional import MapReduceRuntime
from repro.workloads.analytics import (
    HiddenMarkovModel,
    KMeans,
    PageRank,
    SupportVectorMachine,
)
from repro.workloads.base import KeyValue


@dataclass(frozen=True)
class IterativeResult:
    """Outcome of an iterative MapReduce computation."""

    iterations: int
    converged: bool
    final_delta: float
    history: tuple[float, ...]  # per-iteration change measure


def run_kmeans(
    n_records: int = 500,
    *,
    n_clusters: int = 5,
    n_dims: int = 8,
    max_iterations: int = 25,
    tol: float = 1e-3,
    seed: int = 0,
    runtime: MapReduceRuntime | None = None,
) -> tuple[IterativeResult, np.ndarray]:
    """Lloyd's algorithm: one MapReduce job per iteration.

    Returns the convergence record and the final centroids.
    """
    app = KMeans(n_clusters=n_clusters, n_dims=n_dims, seed=seed)
    rt = runtime or MapReduceRuntime(n_reducers=2, split_records=100)
    records = list(app.generate_records(n_records, seed=seed))
    history = []
    converged = False
    for _it in range(max_iterations):
        out = rt.run(app, records)
        new_centroids = app.centroids.copy()
        for cluster, (mean, count) in out.as_dict().items():
            if count > 0:
                new_centroids[cluster] = np.asarray(mean)
        delta = float(np.linalg.norm(new_centroids - app.centroids))
        history.append(delta)
        app.set_centroids(new_centroids)
        if delta < tol:
            converged = True
            break
    return (
        IterativeResult(
            iterations=len(history),
            converged=converged,
            final_delta=history[-1],
            history=tuple(history),
        ),
        app.centroids,
    )


def run_pagerank(
    n_edges: int = 2000,
    *,
    n_nodes: int = 200,
    max_iterations: int = 50,
    tol: float = 1e-4,
    seed: int = 0,
    runtime: MapReduceRuntime | None = None,
) -> tuple[IterativeResult, dict[int, float]]:
    """Power iteration: one MapReduce job per iteration."""
    from repro.workloads import datagen

    app = PageRank()
    rt = runtime or MapReduceRuntime(n_reducers=2, split_records=200)
    edges: list[KeyValue] = list(datagen.graph_edges(n_edges, n_nodes=n_nodes, seed=seed))
    out_degree: dict[int, int] = {}
    for src, _dst in edges:
        out_degree[src] = out_degree.get(src, 0) + 1
    ranks = {v: 1.0 for v in range(n_nodes)}
    history = []
    converged = False
    for _it in range(max_iterations):
        app.set_ranks(ranks, out_degree)
        out = rt.run(app, edges)
        new_ranks = dict(ranks)
        for v, r in out.records:
            new_ranks[v] = float(r)
        # Dangling/unreferenced vertices decay to the teleport mass.
        for v in new_ranks:
            if v not in dict(out.records):
                new_ranks[v] = (1.0 - app.damping) + 0.0
        delta = float(
            sum(abs(new_ranks[v] - ranks[v]) for v in ranks) / len(ranks)
        )
        history.append(delta)
        ranks = new_ranks
        if delta < tol:
            converged = True
            break
    return (
        IterativeResult(
            iterations=len(history),
            converged=converged,
            final_delta=history[-1],
            history=tuple(history),
        ),
        ranks,
    )


def run_svm(
    n_records: int = 800,
    *,
    n_features: int = 16,
    epochs: int = 30,
    lr: float = 0.5,
    seed: int = 0,
    runtime: MapReduceRuntime | None = None,
) -> tuple[IterativeResult, np.ndarray, float]:
    """Distributed gradient descent: one MapReduce job per epoch.

    Returns the convergence record, the weight vector, and the final
    training accuracy.
    """
    app = SupportVectorMachine(n_features=n_features)
    rt = runtime or MapReduceRuntime(n_reducers=1, split_records=200)
    records = list(app.generate_records(n_records, seed=seed))
    history = []
    for _epoch in range(epochs):
        out = rt.run(app, records)
        grad = np.asarray(out.as_dict()["grad"])
        step = lr * grad
        app.weights = app.weights - step
        history.append(float(np.linalg.norm(step)))
    X = np.array([x for _y, x in records])
    y = np.array([y for y, _x in records])
    accuracy = float(((X @ app.weights) * y > 0).mean())
    return (
        IterativeResult(
            iterations=len(history),
            converged=history[-1] < history[0],
            final_delta=history[-1],
            history=tuple(history),
        ),
        app.weights,
        accuracy,
    )


def run_hmm_em(
    n_sequences: int = 40,
    *,
    n_states: int = 3,
    n_symbols: int = 6,
    iterations: int = 5,
    seed: int = 0,
    runtime: MapReduceRuntime | None = None,
) -> tuple[IterativeResult, np.ndarray]:
    """Baum-Welch: each EM iteration's E-step is one MapReduce job.

    The M-step renormalises the expected emission counts into a new
    emission matrix.  Returns the convergence record and the final
    emission matrix.
    """
    app = HiddenMarkovModel(n_states=n_states, n_symbols=n_symbols)
    rt = runtime or MapReduceRuntime(n_reducers=2, split_records=20)
    records = list(
        app.generate_records(n_sequences, seed=seed)
    )
    history = []
    for _it in range(iterations):
        out = rt.run(app, records)
        counts = np.full((n_states, n_symbols), 1e-6)
        for key, value in out.records:
            _tag, state, symbol = key
            counts[state, symbol] += float(value)
        new_emit = counts / counts.sum(axis=1, keepdims=True)
        delta = float(np.abs(new_emit - app.emit).sum())
        history.append(delta)
        app.emit = new_emit
    return (
        IterativeResult(
            iterations=len(history),
            converged=history[-1] <= history[0],
            final_delta=history[-1],
            history=tuple(history),
        ),
        app.emit,
    )
