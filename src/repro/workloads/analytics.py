"""The seven real-world analytics applications (§2.2).

Each is the standard Mahout-style MapReduce formulation; iterative
algorithms (PageRank, K-Means, SVM via gradient descent, HMM via
Baum-Welch) are expressed as one iteration per MapReduce job, which is
exactly how they execute on Hadoop.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.utils.rng import SeedLike, rng_from
from repro.workloads import datagen
from repro.workloads.base import Application, KeyValue
from repro.workloads.profiles import class_for, profile_for


class NaiveBayes(Application):
    """Naive Bayes training: per-(label, feature-bucket) counting."""

    code = "nb"
    name = "Naive Bayes"

    def __init__(self, n_buckets: int = 8) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)
        if n_buckets < 2:
            raise ValueError("n_buckets must be >= 2")
        self.n_buckets = n_buckets

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        label = int(key)  # type: ignore[arg-type]
        x = np.asarray(value, dtype=float)
        yield ("prior", label), 1
        for j, xj in enumerate(x):
            bucket = min(self.n_buckets - 1, max(0, int((xj + 4.0) / 8.0 * self.n_buckets)))
            yield (label, j, bucket), 1

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        yield key, sum(int(v) for v in values)

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        yield from datagen.labeled_vectors(n_records, seed=seed)


class FPGrowth(Application):
    """Frequent-itemset counting (the parallel counting pass of FP-Growth).

    Emits singleton and pair candidates per basket; the reducer sums
    supports.  This is the memory-hungry phase that makes FP-Growth
    the paper's canonical memory-bound application.
    """

    code = "fp"
    name = "FP-Growth"

    def __init__(self, max_pair_items: int = 12) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)
        if max_pair_items < 2:
            raise ValueError("max_pair_items must be >= 2")
        self.max_pair_items = max_pair_items

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        basket = tuple(value)  # type: ignore[arg-type]
        for item in basket:
            yield (item,), 1
        head = basket[: self.max_pair_items]
        for pair in combinations(head, 2):
            yield pair, 1

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        yield key, sum(int(v) for v in values)

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        yield from datagen.transactions(n_records, seed=seed)


class CollaborativeFiltering(Application):
    """Item co-occurrence counting for item-based CF recommendation."""

    code = "cf"
    name = "Collaborative Filtering"

    def __init__(self, max_items_per_user: int = 20) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)
        self.max_items_per_user = max_items_per_user
        self._user_items: dict[int, list[int]] = {}

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        user = int(key)  # type: ignore[arg-type]
        item, rating = value  # type: ignore[misc]
        # Emit keyed by user so the reducer sees each user's item list;
        # the co-occurrence join happens reduce-side (Mahout's layout).
        yield user, (int(item), float(rating))

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        items = sorted({int(item) for item, _ in values})[: self.max_items_per_user]
        for a, b in combinations(items, 2):
            yield (a, b), 1

    @property
    def has_combiner(self) -> bool:
        # Combining would pre-aggregate per-user item lists incorrectly.
        return False

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        yield from datagen.rating_triples(n_records, seed=seed)


class SupportVectorMachine(Application):
    """One epoch of linear-SVM training: partial hinge-loss gradients."""

    code = "svm"
    name = "SVM"

    def __init__(self, n_features: int = 16, weights: np.ndarray | None = None) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)
        self.n_features = n_features
        self.weights = (
            np.zeros(n_features) if weights is None else np.asarray(weights, dtype=float)
        )
        if self.weights.shape != (n_features,):
            raise ValueError("weights shape does not match n_features")

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        label = int(key)  # type: ignore[arg-type]
        x = np.asarray(value, dtype=float)
        margin = label * float(self.weights @ x)
        if margin < 1.0:
            grad = -label * x
            yield "grad", (grad.tolist(), 1)
        else:
            yield "grad", ([0.0] * self.n_features, 1)

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        total = np.zeros(self.n_features)
        count = 0
        for grad, n in values:
            total += np.asarray(grad, dtype=float)
            count += int(n)
        yield key, (total / max(count, 1)).tolist()

    @property
    def has_combiner(self) -> bool:
        # Partial sums combine correctly only before the mean; reuse the
        # mapper-output format by summing pairs.
        return False

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        yield from datagen.labeled_vectors(n_records, n_features=self.n_features, seed=seed)


class PageRank(Application):
    """One PageRank power iteration over an edge list.

    Mapper distributes each vertex's current rank over its out-edges;
    reducer accumulates contributions with the damping factor.  Ranks
    for the iteration are injected via :meth:`set_ranks`.
    """

    code = "pr"
    name = "PageRank"

    def __init__(self, damping: float = 0.85) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping
        self._ranks: dict[int, float] = {}
        self._out_degree: dict[int, int] = {}

    def set_ranks(self, ranks: dict[int, float], out_degree: dict[int, int]) -> None:
        """Install the current iteration's rank vector and degrees."""
        self._ranks = dict(ranks)
        self._out_degree = dict(out_degree)

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        src, dst = int(key), int(value)  # type: ignore[arg-type]
        rank = self._ranks.get(src, 1.0)
        degree = max(self._out_degree.get(src, 1), 1)
        yield dst, rank / degree

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        incoming = sum(float(v) for v in values)
        yield key, (1.0 - self.damping) + self.damping * incoming

    @property
    def has_combiner(self) -> bool:
        # Contributions are summable, but the reducer applies the
        # damping affine transform, so the raw reducer is not a valid
        # combiner.  Run without one (matches Hadoop's naive PR job).
        return False

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        yield from datagen.graph_edges(n_records, seed=seed)


class HiddenMarkovModel(Application):
    """Baum-Welch E-step: expected transition/emission counts per sequence."""

    code = "hmm"
    name = "HMM"

    def __init__(self, n_states: int = 4, n_symbols: int = 8, seed: SeedLike = 7) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)
        rng = rng_from(seed)
        self.n_states = n_states
        self.n_symbols = n_symbols
        self.trans = rng.dirichlet(np.ones(n_states), size=n_states)
        self.emit = rng.dirichlet(np.ones(n_symbols), size=n_states)
        self.start = np.full(n_states, 1.0 / n_states)

    def _forward_backward(self, obs: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        T = len(obs)
        alpha = np.zeros((T, self.n_states))
        beta = np.zeros((T, self.n_states))
        alpha[0] = self.start * self.emit[:, obs[0]]
        alpha[0] /= max(alpha[0].sum(), 1e-300)
        for t in range(1, T):
            alpha[t] = (alpha[t - 1] @ self.trans) * self.emit[:, obs[t]]
            alpha[t] /= max(alpha[t].sum(), 1e-300)
        beta[-1] = 1.0
        for t in range(T - 2, -1, -1):
            beta[t] = self.trans @ (self.emit[:, obs[t + 1]] * beta[t + 1])
            beta[t] /= max(beta[t].sum(), 1e-300)
        return alpha, beta

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        obs = list(value)  # type: ignore[arg-type]
        alpha, beta = self._forward_backward(obs)
        gamma = alpha * beta
        gamma /= np.maximum(gamma.sum(axis=1, keepdims=True), 1e-300)
        for t, symbol in enumerate(obs):
            for state in range(self.n_states):
                yield ("emit", state, int(symbol)), float(gamma[t, state])

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        yield key, sum(float(v) for v in values)

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        yield from datagen.hmm_sequences(
            n_records, n_states=self.n_states, n_symbols=self.n_symbols, seed=seed
        )


class KMeans(Application):
    """One K-Means iteration: assign points, emit partial centroid sums."""

    code = "km"
    name = "K-Means"

    def __init__(self, n_clusters: int = 5, n_dims: int = 8, seed: SeedLike = 11) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)
        rng = rng_from(seed)
        self.n_clusters = n_clusters
        self.n_dims = n_dims
        self.centroids = rng.normal(scale=6.0, size=(n_clusters, n_dims))

    def set_centroids(self, centroids: np.ndarray) -> None:
        """Install the centroids for the next iteration."""
        centroids = np.asarray(centroids, dtype=float)
        if centroids.shape != (self.n_clusters, self.n_dims):
            raise ValueError("centroid array has the wrong shape")
        self.centroids = centroids

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        x = np.asarray(value, dtype=float)
        dists = np.linalg.norm(self.centroids - x, axis=1)
        nearest = int(np.argmin(dists))
        yield nearest, (x.tolist(), 1)

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        total = np.zeros(self.n_dims)
        count = 0
        for vec, n in values:
            total += np.asarray(vec, dtype=float)
            count += int(n)
        yield key, ((total / max(count, 1)).tolist(), count)

    @property
    def has_combiner(self) -> bool:
        # Partial (sum, count) pairs are associative *before* division;
        # the reducer divides, so it cannot double as a combiner.
        return False

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        yield from datagen.points(n_records, n_dims=self.n_dims, n_clusters=self.n_clusters, seed=seed)
