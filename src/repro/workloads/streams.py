"""Poisson job streams for heavy steady-state engine runs.

The steady-state *experiment* (`repro.experiments.steady_state`)
generates arrivals of bare :class:`AppInstance`\\ s and lets the ECoST
controller pick configurations.  Benchmarks and scalability studies
instead want fully-specified :class:`JobSpec` streams — arrival time,
application, input size *and* knobs all drawn from one seeded stream —
so the engine can be driven at thousands of arrivals without any
controller in the loop.  This module is that canonical generator; the
tracked `bench_steady_state_1k` benchmark is defined in terms of it.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.mapreduce.job import JobSpec
from repro.model.config import JobConfig
from repro.utils.rng import SeedLike, rng_from
from repro.utils.units import GB, GHZ, MB
from repro.workloads.base import AppInstance
from repro.workloads.registry import ALL_APPS, get_app

#: Default knob grids for the stream: the four studied DVFS points and
#: HDFS block sizes, with 2-4 concurrent mappers.
STREAM_FREQUENCIES: tuple[float, ...] = (1.2 * GHZ, 1.6 * GHZ, 2.0 * GHZ, 2.4 * GHZ)
STREAM_BLOCK_SIZES: tuple[int, ...] = (64 * MB, 128 * MB, 256 * MB, 512 * MB)
STREAM_DATA_SIZES: tuple[int, ...] = (1 * GB, 5 * GB)

#: Per-class knobs of a *converged* self-tuning controller (the
#: paper's steady state, §5: after the learning period every arrival
#: of a known application is submitted at its tuned configuration).
#: Compute-bound apps want the clock, memory-bound ones don't pay for
#: it, I/O-bound ones want big sequential extents.
TUNED_CLASS_CONFIGS: dict[str, JobConfig] = {
    "C": JobConfig(frequency=2.4 * GHZ, block_size=256 * MB, n_mappers=4),
    "H": JobConfig(frequency=2.0 * GHZ, block_size=256 * MB, n_mappers=3),
    "I": JobConfig(frequency=1.2 * GHZ, block_size=512 * MB, n_mappers=3),
    "M": JobConfig(frequency=1.6 * GHZ, block_size=128 * MB, n_mappers=2),
}


def poisson_job_stream(
    n_jobs: int,
    *,
    mean_interarrival_s: float = 6.0,
    seed: SeedLike = 0,
    app_codes: Sequence[str] = ALL_APPS,
    data_sizes: Sequence[int] = STREAM_DATA_SIZES,
    frequencies: Sequence[float] = STREAM_FREQUENCIES,
    block_sizes: Sequence[int] = STREAM_BLOCK_SIZES,
    mapper_range: tuple[int, int] = (2, 5),
    tuned: bool = False,
    job_ids_from: int | None = None,
) -> Iterator[JobSpec]:
    """Yield ``n_jobs`` fully-configured specs with Poisson arrivals.

    With ``tuned=False`` every knob is drawn uniformly from its grid —
    the untuned exploratory regime.  With ``tuned=True`` each
    application arrives at its class's converged configuration
    (:data:`TUNED_CLASS_CONFIGS`) — the post-learning steady state the
    paper's controller runs in, where the same few ``(application,
    configuration)`` identities recur for the whole stream.

    Deterministic for a given seed: every per-job attribute is drawn
    from one stream in the fixed order (arrival gap, application, data
    size, then — only when ``tuned=False`` — frequency, block size,
    mappers), so the workload is reproducible bit-for-bit.  Because
    ``tuned=True`` skips the three knob draws, tuned and untuned
    streams at the same seed share only the *first* arrival and
    diverge from the second job on — they are different workloads, not
    the same jobs with different knobs.

    Job ids need care.  By default they come from a *per-process*
    ``itertools`` counter: unique within one process and different on
    every call, but **not** stable across runs, and under a
    ``REPRO_WORKERS`` pool each worker process restarts the counter at
    1, so defaulted ids from different workers collide.  Anything that
    compares job identities across processes or evaluation backends —
    benchmarks, golden traces, the service's offline-comparison runs —
    must pass ``job_ids_from``, which assigns sequential ids starting
    there (job ``i`` gets ``job_ids_from + i``) purely as a function
    of the arguments: the same ids in every process, pool worker and
    backend.  The caller then owns id uniqueness within one cluster.
    """
    if n_jobs < 0:
        raise ValueError("n_jobs must be >= 0")
    rng = rng_from(seed)
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(mean_interarrival_s))
        code = app_codes[int(rng.integers(len(app_codes)))]
        size = int(rng.choice(data_sizes))
        app = get_app(code)
        if tuned:
            config = TUNED_CLASS_CONFIGS[app.app_class.value]
        else:
            f = frequencies[int(rng.integers(len(frequencies)))]
            b = block_sizes[int(rng.integers(len(block_sizes)))]
            m = int(rng.integers(*mapper_range))
            config = JobConfig(frequency=f, block_size=b, n_mappers=m)
        if job_ids_from is None:
            yield JobSpec(
                instance=AppInstance(app, size),
                config=config,
                submit_time=t,
            )
        else:
            yield JobSpec(
                instance=AppInstance(app, size),
                config=config,
                submit_time=t,
                job_id=job_ids_from + i,
            )
