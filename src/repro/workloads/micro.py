"""The four Hadoop micro-benchmarks: WordCount, Sort, Grep, TeraSort.

These are the kernels the paper calls out as building blocks of larger
big-data applications (§2.2).  Each implements real map/reduce logic
runnable on :mod:`repro.mapreduce.functional`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.workloads import datagen
from repro.workloads.base import AppClass, Application, KeyValue
from repro.workloads.profiles import class_for, profile_for


class WordCount(Application):
    """Count occurrences of each word in Zipf-distributed text."""

    code = "wc"
    name = "WordCount"

    def __init__(self) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        for word in str(value).split():
            yield word, 1

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        yield key, sum(int(v) for v in values)

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        for i, line in enumerate(datagen.zipf_text_lines(n_records, seed=seed)):
            yield i, line


class Sort(Application):
    """Identity map/reduce; the framework's shuffle performs the sort.

    This is Hadoop's classic ``Sort`` example: all the work is data
    movement, which is why it is the paper's representative I/O-bound
    application.
    """

    code = "st"
    name = "Sort"

    def __init__(self) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        yield key, value

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        for v in values:
            yield key, v

    @property
    def has_combiner(self) -> bool:
        # Combining identity pairs would drop duplicates' multiplicity
        # ordering guarantees; Hadoop's Sort runs without a combiner.
        return False

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        yield from datagen.kv_records(n_records, seed=seed)


class Grep(Application):
    """Count lines matching a pattern (Hadoop's distributed grep)."""

    code = "gp"
    name = "Grep"

    def __init__(self, pattern: str = "a") -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)
        if not pattern:
            raise ValueError("grep pattern must be non-empty")
        self.pattern = pattern

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        line = str(value)
        count = line.count(self.pattern)
        if count:
            yield self.pattern, count

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        yield key, sum(int(v) for v in values)

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        for i, line in enumerate(datagen.zipf_text_lines(n_records, seed=seed)):
            yield i, line


class TeraSort(Application):
    """Sort fixed-size records by 10-byte key (the TeraSort benchmark).

    Map emits (key, payload); the shuffle's total order partitioner
    plus per-reducer sort produce globally sorted output.  The entire
    input flows through spill, shuffle and output, which is why the
    profile's I/O factors are all 1.0.
    """

    code = "ts"
    name = "TeraSort"

    def __init__(self) -> None:
        self.app_class = class_for(self.code)
        self.profile = profile_for(self.code)

    def mapper(self, key: object, value: object) -> Iterable[KeyValue]:
        yield key, value

    def reducer(self, key: object, values: Sequence[object]) -> Iterable[KeyValue]:
        for v in values:
            yield key, v

    @property
    def has_combiner(self) -> bool:
        return False

    def generate_records(self, n_records: int, seed: int = 0) -> Iterator[KeyValue]:
        yield from datagen.terasort_records(n_records, seed=seed)
