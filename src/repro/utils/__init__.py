"""Shared utilities: units, deterministic RNG management, table rendering."""

from repro.utils.units import (
    GB,
    GHZ,
    KB,
    MB,
    MHZ,
    fmt_bytes,
    fmt_duration,
    fmt_freq,
)
from repro.utils.rng import rng_from, spawn_rngs
from repro.utils.tables import render_table, render_series
from repro.utils.validation import (
    check_in,
    check_positive,
    check_probability,
)

__all__ = [
    "GB",
    "GHZ",
    "KB",
    "MB",
    "MHZ",
    "fmt_bytes",
    "fmt_duration",
    "fmt_freq",
    "rng_from",
    "spawn_rngs",
    "render_table",
    "render_series",
    "check_in",
    "check_positive",
    "check_probability",
]
