"""Unit constants and human-readable formatting helpers.

All internal quantities in the simulator use SI base units:

* sizes in **bytes**
* time in **seconds**
* frequency in **Hz**
* power in **watts**
* energy in **joules**

The constants here are multipliers from the convenient unit to the base
unit, so ``256 * MB`` is a size in bytes and ``2.4 * GHZ`` a frequency in
hertz.  Storage sizes follow the binary convention used by HDFS (a
"64 MB block" is ``64 * 2**20`` bytes).
"""

from __future__ import annotations

KB: int = 2**10
MB: int = 2**20
GB: int = 2**30

MHZ: float = 1e6
GHZ: float = 1e9


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix (``1536 -> '1.5KB'``)."""
    n = float(n)
    for suffix, scale in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= scale:
            return f"{n / scale:.4g}{suffix}"
    return f"{n:.4g}B"


def fmt_freq(hz: float) -> str:
    """Format a frequency in hertz (``2.4e9 -> '2.4GHz'``)."""
    if abs(hz) >= GHZ:
        return f"{hz / GHZ:.4g}GHz"
    return f"{hz / MHZ:.4g}MHz"


def fmt_duration(seconds: float) -> str:
    """Format a duration in seconds using the most natural unit."""
    s = float(seconds)
    if s < 0:
        return "-" + fmt_duration(-s)
    if s < 1e-3:
        return f"{s * 1e6:.3g}us"
    if s < 1.0:
        return f"{s * 1e3:.3g}ms"
    if s < 120.0:
        return f"{s:.3g}s"
    if s < 7200.0:
        return f"{s / 60.0:.3g}min"
    return f"{s / 3600.0:.3g}h"
