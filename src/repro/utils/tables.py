"""Plain-text table and series rendering for experiment reports.

The benchmark harness regenerates every table and figure of the paper as
text: tables render as aligned ASCII grids, figures (which are bar/line
charts in the paper) render as labelled numeric series that carry the
same information as the plotted points.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def _cell(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render rows as an aligned ASCII table.

    ``rows`` may contain any mix of strings and numbers; floats are
    formatted with ``floatfmt``.  Raises ``ValueError`` on ragged rows so
    a malformed experiment report fails loudly instead of mis-aligning.
    """
    str_rows = []
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
        str_rows.append([_cell(v, floatfmt) for v in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(fmt_line(list(headers)))
    lines.append(sep)
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[float]],
    *,
    x_labels: Sequence[Any] | None = None,
    title: str | None = None,
    x_name: str = "x",
    floatfmt: str = ".3f",
) -> str:
    """Render named numeric series (one column per series) as text.

    This is the textual equivalent of a multi-series line/bar chart:
    the first column is the x label, the remaining columns are the series
    values at that x.
    """
    names = list(series)
    if not names:
        raise ValueError("no series to render")
    length = len(series[names[0]])
    for name in names:
        if len(series[name]) != length:
            raise ValueError(f"series {name!r} length differs")
    if x_labels is None:
        x_labels = list(range(length))
    if len(x_labels) != length:
        raise ValueError("x_labels length does not match series length")
    headers = [x_name] + names
    rows = [[x_labels[i]] + [series[n][i] for n in names] for i in range(length)]
    return render_table(headers, rows, title=title, floatfmt=floatfmt)
