"""Small argument-validation helpers used throughout the package.

These raise ``ValueError`` with a consistent message format so that a
mis-configured experiment fails at construction time, not deep inside
the event loop.
"""

from __future__ import annotations

from typing import Any, Collection, TypeVar

T = TypeVar("T")


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Require ``value > 0`` (or ``>= 0`` when ``strict=False``)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: T, allowed: Collection[Any]) -> T:
    """Require ``value`` to be a member of ``allowed``."""
    if value not in allowed:
        raise ValueError(
            f"{name} must be one of {sorted(map(repr, allowed))}, got {value!r}"
        )
    return value


def check_fraction_sum(name: str, values: Collection[float], *, total: float = 1.0, tol: float = 1e-9) -> None:
    """Require a collection of fractions to sum to ``total`` within ``tol``."""
    s = float(sum(values))
    if abs(s - total) > tol:
        raise ValueError(f"{name} must sum to {total}, got {s}")
