"""Deterministic random-number-generator plumbing.

Every stochastic component in the reproduction takes an explicit seed or
:class:`numpy.random.Generator`; nothing reads global random state, so a
full experiment is reproducible bit-for-bit from its top-level seed.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def rng_from(seed: SeedLike) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Accepts an ``int`` seed, an existing generator (returned unchanged so
    callers can thread one generator through a pipeline), or ``None`` for
    a fixed default seed — experiments must be reproducible by default.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning so children are
    statistically independent regardless of how many are requested —
    the idiom for seeding parallel workers.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        ss = np.random.SeedSequence(0 if seed is None else seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def stable_hash(*parts: Union[str, int, float]) -> int:
    """Deterministic 63-bit hash of a tuple of primitives.

    Python's builtin ``hash`` is salted per-process for strings; this is a
    stable alternative for deriving per-entity seeds (e.g. one seed per
    (application, data size, configuration) cell of a sweep).
    """
    import hashlib

    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & (2**63 - 1)


def derive_rng(seed: SeedLike, *parts: Union[str, int, float]) -> np.random.Generator:
    """Generator keyed by a base seed plus an arbitrary identity tuple."""
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**31 - 1))
    else:
        base = 0 if seed is None else int(seed)
    return np.random.default_rng(np.random.SeedSequence([base, stable_hash(*parts)]))


def iter_seeds(seed: SeedLike, labels: Iterable[str]) -> dict[str, np.random.Generator]:
    """Map each label to its own derived generator (ordered, deterministic)."""
    return {label: derive_rng(seed, label) for label in labels}
