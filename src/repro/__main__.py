"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the available experiments (paper tables/figures).
``run FIG5 SEC7 ...``
    Run experiments and print their rendered tables/series (``run``
    with no ids runs everything — minutes of compute).
``policies [--nodes N] [--scenario WSx]``
    Evaluate the §8 mapping policies on one workload scenario.
``classify CODE [SIZE_GB]``
    Profile and classify one application, printing its features.
``trace steady|faulty|ecost``
    Replay a seeded run with tracing enabled; writes a
    Perfetto-loadable Chrome trace plus flat metrics JSON.
``conform [--self-verify]``
    Run the conformance battery: analytic-oracle matrix, metamorphic
    relations, and (optionally) mutant self-verification.
``fuzz --budget N --seed S``
    Random scenario walk with shrinking; prints a paste-ready pytest
    repro on failure (``--hetero`` forces a node-class roster onto
    every oracle-shaped draw).
``hetero``
    Run the heterogeneous acceptance matrix: every two-class scenario
    against its closed-form oracle, plus the scalar/batch backends
    differentially against the event engine with zero fallbacks
    required.
``clear-cache``
    Drop the disk-cached artifacts (forces full rebuilds).
``serve [--port P] [--nodes N] [--scheduler fifo|ecost] [--clock ...]``
    Run the always-on job-submission service (asyncio HTTP).
``submit [--code wc --size-gb 5 | --stream N --seed S]``
    Submit one job (or a seeded stream) to a running service.
``service metrics|status|trace|drain|shutdown``
    Admin calls against a running service.
``online [--jobs N] [--seed S] [--model ...] [--offline] [--json]``
    Run the seeded workload-drift scenario with champion/challenger
    online self-tuning and print the regret/promotion report.
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_list(_args) -> int:
    from repro.experiments.reporting import available_experiments

    for exp_id, desc in available_experiments().items():
        print(f"{exp_id:6} {desc}")
    return 0


def _cmd_run(args) -> int:
    from repro.experiments.reporting import run_experiments

    print(run_experiments(args.ids or None))
    return 0


def _cmd_policies(args) -> int:
    from repro.baselines.mapping import POLICIES, evaluate_policy
    from repro.experiments.artifacts import get_components
    from repro.experiments.scenarios import scenario_instances
    from repro.utils.tables import render_table

    components = get_components(args.model)
    workload = scenario_instances(args.scenario)
    rows = []
    outcomes = {}
    for policy in POLICIES:
        out = evaluate_policy(policy, workload, args.nodes, components=components)
        outcomes[policy] = out
        rows.append([policy, out.makespan, out.energy, out.edp])
    ub = outcomes["UB"].edp
    for row, policy in zip(rows, POLICIES):
        row.append(outcomes[policy].edp / ub)
    print(render_table(
        ["policy", "makespan (s)", "energy (J)", "EDP (J*s)", "vs UB"],
        rows,
        title=f"{args.scenario} on {args.nodes} node(s)",
        floatfmt=".3g",
    ))
    return 0


def _cmd_classify(args) -> int:
    from repro.analysis.features import PROFILING_CONFIG
    from repro.experiments.artifacts import get_classifier
    from repro.telemetry.profiling import FEATURE_NAMES, profile_features
    from repro.utils.tables import render_table
    from repro.utils.units import GB
    from repro.workloads.base import AppInstance
    from repro.workloads.registry import get_app

    inst = AppInstance(get_app(args.code), args.size_gb * GB)
    feats = profile_features(inst, PROFILING_CONFIG, seed=0)
    print(render_table(
        ["feature", "value"],
        [[n, feats[n]] for n in FEATURE_NAMES],
        title=f"Learning-period profile of {inst.label}",
        floatfmt=".2f",
    ))
    print(f"\nclassified as: {get_classifier().classify(feats)}")
    return 0


def _cmd_trace(args) -> int:
    import json

    from repro.experiments.trace_run import run_traced
    from repro.telemetry.tracing import validate_chrome_trace

    run = run_traced(
        args.experiment,
        n_jobs=args.jobs,
        n_nodes=args.nodes,
        seed=args.seed,
        fault_rate_per_1ks=args.fault_rate,
    )
    out = args.out or f"trace_{args.experiment}.json"
    run.tracer.write(out)
    problems = validate_chrome_trace(json.loads(open(out).read()))
    if problems:  # pragma: no cover - exporter/validator disagreement
        for p in problems:
            print(f"invalid: {p}", file=sys.stderr)
        return 1
    metrics_out = args.metrics_out or f"metrics_{args.experiment}.json"
    run.registry.to_json(metrics_out)
    for key, value in run.summary().items():
        print(f"{key:>16} = {value:g}")
    print(f"\nwrote {out} (load in https://ui.perfetto.dev) and {metrics_out}")
    return 0


def _cmd_conform(args) -> int:
    from repro.conformance import run_conformance

    report = run_conformance(
        with_self_verify=args.self_verify,
        self_verify_budget=args.budget,
        seed=args.seed,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    from repro.conformance import fuzz

    kwargs = {}
    if args.hetero:
        kwargs["roster_prob"] = 1.0
    report = fuzz(
        budget=args.budget,
        seed=args.seed,
        backends=tuple(args.backends or ()),
        **kwargs,
    )
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_hetero(args) -> int:
    from repro.batch.engine import evaluate_scenarios
    from repro.conformance.oracles import REL_TOL, check_oracle
    from repro.conformance.scenarios import hetero_matrix, run_scenario

    scenarios = hetero_matrix()
    n_hetero = sum(1 for s in scenarios if s.heterogeneous)
    rosters = sorted({s.node_classes for s in scenarios})
    print(
        f"hetero: {len(scenarios)} scenario(s), {n_hetero} mixed-class, "
        f"{len(rosters)} distinct roster(s)"
    )
    failures: list[str] = []
    clean = 0
    for s in scenarios:
        messages = check_oracle(s)
        clean += not messages
        failures.extend(messages)
    print(f"oracle: {clean}/{len(scenarios)} scenario(s) within {REL_TOL:g}")
    for message in failures[:10]:
        print(f"  {message}")

    reference = [run_scenario(s) for s in scenarios]
    backend_outcomes: dict[str, list] = {}
    for backend in ("scalar", "batch"):
        outcomes = evaluate_scenarios(scenarios, backend=backend)
        backend_outcomes[backend] = outcomes
        fallbacks = sum(1 for o in outcomes if o.fallback)
        worst = max(
            max(
                _rel_gap(ref.makespan, out.makespan),
                _rel_gap(ref.total_energy, out.total_energy),
            )
            for ref, out in zip(reference, outcomes)
        )
        print(
            f"{backend:6}: {fallbacks} fallback(s), "
            f"worst rel err vs event {worst:.2e}"
        )
        if fallbacks:
            failures.append(f"{backend}: {fallbacks} dispatcher fallback(s)")
        if worst > REL_TOL:
            failures.append(f"{backend}: rel err {worst:.2e} > {REL_TOL:g}")
    mismatches = sum(
        1
        for a, b in zip(backend_outcomes["scalar"], backend_outcomes["batch"])
        if (a.makespan, a.total_energy) != (b.makespan, b.total_energy)
    )
    print(f"scalar vs batch: {mismatches} bitwise mismatch(es)")
    if mismatches:
        failures.append(f"scalar vs batch: {mismatches} mismatch(es)")
    print(f"hetero: {'FAIL' if failures else 'PASS'}")
    return 1 if failures else 0


def _rel_gap(expected: float, actual: float) -> float:
    scale = max(abs(expected), abs(actual), 1e-12)
    return abs(expected - actual) / scale


def _cmd_serve(args) -> int:
    from repro.service.config import ServiceConfig
    from repro.service.server import serve

    overrides = {
        name: value
        for name, value in (
            ("host", args.host),
            ("port", args.port),
            ("n_nodes", args.nodes),
            ("scheduler", args.scheduler),
            ("clock", args.clock),
            ("rate_per_s", args.rate),
            ("burst", args.burst),
            ("max_inflight", args.max_inflight),
            ("time_scale", args.time_scale),
        )
        if value is not None
    }
    serve(ServiceConfig.from_env(**overrides))
    return 0


def _cmd_submit(args) -> int:
    import json

    from repro.service.client import ServiceClient
    from repro.service.requests import seeded_requests

    client = ServiceClient(args.host, args.port)
    if args.stream:
        acks = client.submit_batch(
            seeded_requests(args.stream, seed=args.seed)
        )
        accepted = sum(1 for a in acks if a.get("accepted"))
        print(f"submitted {len(acks)} request(s): {accepted} accepted, "
              f"{len(acks) - accepted} rejected")
        return 0
    from repro.utils.units import GB

    payload = {"code": args.code, "data_bytes": int(args.size_gb * GB)}
    if args.tenant is not None:
        payload["tenant"] = args.tenant
    if args.time is not None:
        payload["time"] = args.time
    print(json.dumps(client.submit(payload), indent=2))
    return 0


def _cmd_service(args) -> int:
    import json

    from repro.service.client import ServiceClient

    client = ServiceClient(args.host, args.port)
    result = getattr(client, args.action)()
    if args.action == "trace" and args.out:
        with open(args.out, "w") as fh:
            json.dump(result, fh)
        print(f"wrote {args.out} ({len(result.get('traceEvents', []))} events)")
    else:
        print(json.dumps(result, indent=2))
    return 0


def _cmd_online(args) -> int:
    import json

    from repro.online.scenario import run_drift_scenario

    report = run_drift_scenario(
        n_jobs=args.jobs,
        seed=args.seed,
        n_nodes=args.nodes,
        model_kind=args.model,
        online=not args.offline,
        crash=not args.no_crash,
    )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return 0


def _cmd_clear_cache(_args) -> int:
    from repro.experiments.artifacts import clear_cache

    print(f"removed {clear_cache()} cached artifact(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ECoST reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(
        fn=_cmd_list
    )

    p_run = sub.add_parser("run", help="run experiments and print reports")
    p_run.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_run.set_defaults(fn=_cmd_run)

    p_pol = sub.add_parser("policies", help="evaluate the mapping policies")
    p_pol.add_argument("--nodes", type=int, default=8)
    p_pol.add_argument("--scenario", default="WS4")
    p_pol.add_argument("--model", default="mlp", choices=["lr", "reptree", "mlp"])
    p_pol.set_defaults(fn=_cmd_policies)

    p_cls = sub.add_parser("classify", help="profile + classify an application")
    p_cls.add_argument("code", help="application code, e.g. km")
    p_cls.add_argument("size_gb", type=int, nargs="?", default=5)
    p_cls.set_defaults(fn=_cmd_classify)

    p_trace = sub.add_parser(
        "trace", help="replay a seeded run with tracing enabled"
    )
    p_trace.add_argument(
        "experiment", choices=["steady", "faulty", "ecost"],
        help="which seeded replay to trace",
    )
    p_trace.add_argument("--jobs", type=int, default=60)
    p_trace.add_argument("--nodes", type=int, default=8)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--fault-rate", type=float, default=6.0,
                         help="fault injections per 1000 simulated seconds")
    p_trace.add_argument("--out", help="Chrome trace path (default trace_<exp>.json)")
    p_trace.add_argument("--metrics-out",
                         help="flat metrics path (default metrics_<exp>.json)")
    p_trace.set_defaults(fn=_cmd_trace)

    p_conf = sub.add_parser(
        "conform", help="run the engine conformance battery"
    )
    p_conf.add_argument(
        "--self-verify", action="store_true",
        help="also fuzz three deliberately broken engine variants "
             "and require each to be caught and shrunk",
    )
    p_conf.add_argument("--budget", type=int, default=60,
                        help="fuzz budget per mutant in self-verify mode")
    p_conf.add_argument("--seed", type=int, default=7)
    p_conf.set_defaults(fn=_cmd_conform)

    p_fuzz = sub.add_parser(
        "fuzz", help="seeded scenario fuzz with automatic shrinking"
    )
    p_fuzz.add_argument("--budget", type=int, default=200,
                        help="number of random scenarios to execute")
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument(
        "--backend", action="append", dest="backends",
        choices=["scalar", "batch"],
        help="also differentially check this evaluation backend against "
             "the event engine on every scenario (repeatable)",
    )
    p_fuzz.add_argument(
        "--hetero", action="store_true",
        help="annotate every oracle-shaped draw with a random node-class "
             "roster (the heterogeneous smoke; other draws unchanged)",
    )
    p_fuzz.set_defaults(fn=_cmd_fuzz)

    p_hetero = sub.add_parser(
        "hetero",
        help="run the heterogeneous-cluster acceptance matrix",
    )
    p_hetero.set_defaults(fn=_cmd_hetero)

    p_serve = sub.add_parser(
        "serve", help="run the always-on job-submission service"
    )
    p_serve.add_argument("--host", help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, help="bind port (default 8642; 0 = ephemeral)")
    p_serve.add_argument("--nodes", type=int, help="cluster size (default 8)")
    p_serve.add_argument("--scheduler", choices=["fifo", "ecost"],
                         help="placement policy (default fifo)")
    p_serve.add_argument("--clock", choices=["virtual", "wall"],
                         help="virtual = deterministic replayable time (default)")
    p_serve.add_argument("--rate", type=float,
                         help="per-tenant admission rate (jobs/s, default unlimited)")
    p_serve.add_argument("--burst", type=float,
                         help="per-tenant admission burst (default 64)")
    p_serve.add_argument("--max-inflight", type=int,
                         help="global accepted-but-unfinished cap")
    p_serve.add_argument("--time-scale", type=float,
                         help="wall clock: simulated seconds per real second")
    p_serve.set_defaults(fn=_cmd_serve)

    p_sub = sub.add_parser("submit", help="submit job(s) to a running service")
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, default=8642)
    p_sub.add_argument("--code", default="wc", help="application code (default wc)")
    p_sub.add_argument("--size-gb", type=float, default=5.0)
    p_sub.add_argument("--tenant")
    p_sub.add_argument("--time", type=float,
                       help="virtual arrival time (virtual-clock services)")
    p_sub.add_argument("--stream", type=int, metavar="N",
                       help="submit a seeded N-job stream instead of one job")
    p_sub.add_argument("--seed", type=int, default=0)
    p_sub.set_defaults(fn=_cmd_submit)

    p_svc = sub.add_parser("service", help="admin calls against a running service")
    p_svc.add_argument("action",
                       choices=["metrics", "status", "trace", "drain", "shutdown"])
    p_svc.add_argument("--host", default="127.0.0.1")
    p_svc.add_argument("--port", type=int, default=8642)
    p_svc.add_argument("--out", help="trace only: write Chrome trace to this path")
    p_svc.set_defaults(fn=_cmd_service)

    p_online = sub.add_parser(
        "online", help="run the seeded online self-tuning drift scenario"
    )
    p_online.add_argument("--jobs", type=int, default=64)
    p_online.add_argument("--seed", type=int, default=0)
    p_online.add_argument("--nodes", type=int, default=4)
    p_online.add_argument("--model", default="reptree",
                          choices=["lr", "reptree", "mlp"])
    p_online.add_argument("--offline", action="store_true",
                          help="run the same stream without online tuning")
    p_online.add_argument("--no-crash", action="store_true",
                          help="skip the node crash/recovery injection")
    p_online.add_argument("--json", action="store_true",
                          help="emit the full report as JSON")
    p_online.set_defaults(fn=_cmd_online)

    sub.add_parser("clear-cache", help="drop cached artifacts").set_defaults(
        fn=_cmd_clear_cache
    )

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except (KeyError, ValueError) as exc:
        # Domain lookups raise with the valid options in the message;
        # surface that cleanly instead of a traceback.  Internal bugs
        # can raise the same types — REPRO_DEBUG=1 re-raises for a
        # full stack when the message alone is not enough.
        if os.environ.get("REPRO_DEBUG"):
            raise
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
