"""Local-disk model: sequential efficiency, stream sharing, seeks.

HDFS reads and writes are large and mostly sequential within a block,
so the dominant effects are:

* **Transfer-size efficiency.**  A stream reading in chunks of ``s``
  bytes achieves ``peak · s / (s + s_half)`` — a saturating curve where
  ``s_half`` is the chunk size at which half the peak is reached.  HDFS
  block size sets the contiguous extent, so larger blocks read faster
  per byte.  This is one of the two reasons block size matters (the
  other being task-scheduling overhead, modelled in the engine).

* **Stream interleaving.**  ``k`` concurrent streams force head
  movement between extents; aggregate bandwidth degrades by
  ``1 / (1 + seek_penalty · (k - 1))``.

* **Fluid sharing.**  Like memory bandwidth, the (possibly degraded)
  aggregate bandwidth is split across demanding streams proportionally.

Defaults approximate a 7.2k-rpm SATA disk of the paper's era.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.units import MB
from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class DiskModel:
    """Single local disk shared by all tasks on the node."""

    peak_bw: float = 180.0 * MB  # bytes/s sequential
    half_extent: float = 12.0 * MB  # extent size achieving half of peak
    seek_penalty: float = 0.05  # per extra concurrent stream

    def __post_init__(self) -> None:
        check_positive("peak_bw", self.peak_bw)
        check_positive("half_extent", self.half_extent)
        check_probability("seek_penalty", self.seek_penalty)

    def sequential_efficiency(self, extent_bytes) -> np.ndarray:
        """Fraction of peak bandwidth achieved for a contiguous extent."""
        extent = np.asarray(extent_bytes, dtype=float)
        if np.any(extent <= 0):
            raise ValueError("extent_bytes must be positive")
        return extent / (extent + self.half_extent)

    def aggregate_bw(self, n_streams, extent_bytes) -> np.ndarray:
        """Total deliverable bandwidth with ``n_streams`` concurrent streams.

        ``extent_bytes`` is the effective contiguous extent per stream
        (the HDFS block size for map input).  With zero streams the
        disk delivers nothing.  Broadcasts over arrays.
        """
        k = np.asarray(n_streams, dtype=float)
        if np.any(k < 0):
            raise ValueError("n_streams must be non-negative")
        eff = self.sequential_efficiency(extent_bytes)
        interleave = 1.0 / (1.0 + self.seek_penalty * np.maximum(k - 1.0, 0.0))
        return np.where(k > 0, self.peak_bw * eff * interleave, 0.0)

    def share(self, demands: Sequence[float] | np.ndarray, extent_bytes) -> np.ndarray:
        """Per-stream achieved bandwidth given demands (bytes/s).

        Streams never receive more than they demand; leftover bandwidth
        from under-demanding streams is redistributed to saturated ones
        (max-min fairness, solved by the standard water-filling loop).
        """
        d = np.asarray(demands, dtype=float)
        if d.ndim != 1:
            raise ValueError("share() expects a 1-D demand vector")
        if np.any(d < 0):
            raise ValueError("demands must be non-negative")
        active = d > 0
        k = int(active.sum())
        if k == 0:
            return np.zeros_like(d)
        capacity = float(self.aggregate_bw(k, extent_bytes))
        alloc = np.zeros_like(d)
        remaining = capacity
        todo = list(np.flatnonzero(active))
        # Water-filling: satisfy the smallest demands first.  A cursor
        # walks the sorted order instead of popping the head — each
        # ``list.pop(0)`` shifts the whole remainder, turning the loop
        # O(k²) for k active streams.
        todo.sort(key=lambda i: d[i])
        head = 0
        while head < len(todo):
            fair = remaining / (len(todo) - head)
            i = todo[head]
            if d[i] <= fair:
                alloc[i] = d[i]
                remaining -= d[i]
                head += 1
            else:
                for j in todo[head:]:
                    alloc[j] = fair
                break
        return alloc

    def utilization(self, demands: Sequence[float] | np.ndarray, extent_bytes) -> float:
        """Disk utilisation in [0, 1] for a demand vector."""
        d = np.asarray(demands, dtype=float)
        active = d > 0
        k = int(active.sum())
        if k == 0:
            return 0.0
        capacity = float(self.aggregate_bw(k, extent_bytes))
        return float(min(d.sum() / capacity, 1.0))
