"""DVFS operating points for the simulated Atom microserver.

The paper sweeps four frequency settings (1.2, 1.6, 2.0, 2.4 GHz,
§2.4).  Each operating point pairs a clock frequency with a supply
voltage; dynamic power scales as C·V²·f, so the voltage column is what
makes frequency an *energy* knob rather than a pure performance knob.

Voltages follow a typical low-power Silvermont V/f curve.  Absolute
values only matter through the power model's calibration constant, so
the curve's *shape* (superlinear power in f) is the load-bearing part.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GHZ
from repro.utils.validation import check_positive


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """One DVFS setting: clock frequency (Hz) and supply voltage (V)."""

    frequency: float
    voltage: float

    def __post_init__(self) -> None:
        check_positive("frequency", self.frequency)
        check_positive("voltage", self.voltage)

    @property
    def ghz(self) -> float:
        """Frequency in GHz (the unit used in the paper's tables)."""
        return self.frequency / GHZ

    def dynamic_scale(self, reference: "OperatingPoint") -> float:
        """Ratio of dynamic power vs. ``reference`` at equal activity.

        Implements the classic CMOS scaling P_dyn ∝ V²·f.
        """
        return (self.voltage / reference.voltage) ** 2 * (
            self.frequency / reference.frequency
        )


#: The four operating points studied in the paper (§2.4).
DVFS_LEVELS: tuple[OperatingPoint, ...] = (
    OperatingPoint(frequency=1.2 * GHZ, voltage=0.85),
    OperatingPoint(frequency=1.6 * GHZ, voltage=0.93),
    OperatingPoint(frequency=2.0 * GHZ, voltage=1.02),
    OperatingPoint(frequency=2.4 * GHZ, voltage=1.12),
)


class DvfsTable:
    """Lookup and validation of the discrete DVFS operating points."""

    def __init__(self, levels: tuple[OperatingPoint, ...] = DVFS_LEVELS) -> None:
        if not levels:
            raise ValueError("DVFS table needs at least one operating point")
        self._levels = tuple(sorted(levels))
        freqs = [p.frequency for p in self._levels]
        if len(set(freqs)) != len(freqs):
            raise ValueError("duplicate frequencies in DVFS table")

    @property
    def levels(self) -> tuple[OperatingPoint, ...]:
        return self._levels

    @property
    def frequencies(self) -> tuple[float, ...]:
        """All frequencies, ascending, in Hz."""
        return tuple(p.frequency for p in self._levels)

    @property
    def min_point(self) -> OperatingPoint:
        return self._levels[0]

    @property
    def max_point(self) -> OperatingPoint:
        return self._levels[-1]

    def point_for(self, frequency: float, *, tol: float = 1e-3) -> OperatingPoint:
        """The operating point matching ``frequency`` (Hz), within ``tol`` relative."""
        for point in self._levels:
            if abs(point.frequency - frequency) <= tol * point.frequency:
                return point
        ghz = frequency / GHZ
        valid = ", ".join(f"{p.ghz:g}" for p in self._levels)
        raise ValueError(f"{ghz:g} GHz is not a DVFS level (valid: {valid} GHz)")

    def voltage_for(self, frequency: float) -> float:
        return self.point_for(frequency).voltage

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self):
        return iter(self._levels)
