"""Cluster specification: N homogeneous nodes.

The paper evaluates scalability on 1-, 2-, 4- and 8-node clusters of
identical Atom microservers (§8).  Data is distributed per node (a
"10 GB" run means 10 GB of input *per node*, §2.3), so cluster-level
execution parallelises a job across nodes with per-node input shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.node import ATOM_C2758, NodeSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of microserver nodes."""

    n_nodes: int = 8
    node: NodeSpec = field(default_factory=lambda: ATOM_C2758)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.node.n_cores

    def subcluster(self, n_nodes: int) -> "ClusterSpec":
        """A cluster of the same node type with ``n_nodes`` nodes."""
        return ClusterSpec(n_nodes=n_nodes, node=self.node)

    def degraded(self, n_failed: int) -> "ClusterSpec":
        """Capacity view after ``n_failed`` nodes are lost.

        At least one node must survive — the fault layer never crashes
        the last alive node, and neither does this helper.
        """
        if not 0 <= n_failed < self.n_nodes:
            raise ValueError(
                f"n_failed must be in [0, {self.n_nodes - 1}], got {n_failed}"
            )
        return ClusterSpec(n_nodes=self.n_nodes - n_failed, node=self.node)
