"""Cluster specification: N homogeneous nodes, or a mixed roster.

The paper evaluates scalability on 1-, 2-, 4- and 8-node clusters of
identical Atom microservers (§8).  Data is distributed per node (a
"10 GB" run means 10 GB of input *per node*, §2.3), so cluster-level
execution parallelises a job across nodes with per-node input shares.

Heterogeneous fleets (arXiv:1408.2284) are described by an explicit
``roster`` — one :class:`~repro.hardware.node.NodeSpec` per node, in
placement order.  Every consumer that assumed "one node type" reads
:meth:`ClusterSpec.node_specs` instead; the homogeneous constructor
path is unchanged and remains the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.node import ATOM_C2758, NodeSpec


@dataclass(frozen=True)
class ClusterSpec:
    """A cluster of microserver nodes.

    Homogeneous by default (``n_nodes`` copies of ``node``); passing a
    ``roster`` pins each node's spec individually.  When a roster is
    given it is authoritative: ``n_nodes`` must match its length (or be
    left at the value it implies) and ``node`` becomes the roster's
    first entry for consumers that only need *a* representative spec.
    """

    n_nodes: int = 8
    node: NodeSpec = field(default_factory=lambda: ATOM_C2758)
    roster: tuple[NodeSpec, ...] | None = None

    def __post_init__(self) -> None:
        if self.roster is not None:
            roster = tuple(self.roster)
            if not roster:
                raise ValueError("roster must contain at least one node")
            object.__setattr__(self, "roster", roster)
            # A defaulted n_nodes follows the roster; an explicit one
            # must agree with it.
            if self.n_nodes != len(roster):
                if self.n_nodes == 8 and len(roster) != 8:
                    object.__setattr__(self, "n_nodes", len(roster))
                else:
                    raise ValueError(
                        f"n_nodes={self.n_nodes} disagrees with roster "
                        f"of {len(roster)} node(s)"
                    )
            object.__setattr__(self, "node", roster[0])
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")

    @property
    def node_specs(self) -> tuple[NodeSpec, ...]:
        """Per-node specs in placement order (length ``n_nodes``)."""
        if self.roster is not None:
            return self.roster
        return (self.node,) * self.n_nodes

    @property
    def heterogeneous(self) -> bool:
        """True when the roster mixes more than one node spec."""
        if self.roster is None:
            return False
        first = self.roster[0]
        return any(spec is not first and spec != first for spec in self.roster[1:])

    @property
    def total_cores(self) -> int:
        if self.roster is not None:
            return sum(spec.n_cores for spec in self.roster)
        return self.n_nodes * self.node.n_cores

    def subcluster(self, n_nodes: int) -> "ClusterSpec":
        """The first ``n_nodes`` nodes of this cluster."""
        if self.roster is not None:
            if not 1 <= n_nodes <= len(self.roster):
                raise ValueError(
                    f"n_nodes must be in [1, {len(self.roster)}], got {n_nodes}"
                )
            return ClusterSpec(n_nodes=n_nodes, roster=self.roster[:n_nodes])
        return ClusterSpec(n_nodes=n_nodes, node=self.node)

    def degraded(self, n_failed: int) -> "ClusterSpec":
        """Capacity view after ``n_failed`` nodes are lost.

        At least one node must survive — the fault layer never crashes
        the last alive node, and neither does this helper.  On a mixed
        roster the *last* nodes are dropped (placement order is the
        survival order).
        """
        if not 0 <= n_failed < self.n_nodes:
            raise ValueError(
                f"n_failed must be in [0, {self.n_nodes - 1}], got {n_failed}"
            )
        if self.roster is not None:
            return ClusterSpec(roster=self.roster[: self.n_nodes - n_failed])
        return ClusterSpec(n_nodes=self.n_nodes - n_failed, node=self.node)
