"""Named node classes for heterogeneous clusters.

The paper's testbed is eight identical Atom C2758 microservers, but
its EDP story changes qualitatively on mixed fleets: "Hadoop in
Low-Power Processors" (arXiv:1408.2284) measures Atom vs. Xeon nodes
trading energy for runtime per workload class, and "Energy-Optimal
Configurations for Single-Node HPC Applications" (arXiv:1805.00998)
shows the energy-optimal frequency point moving with the hardware.

A :class:`NodeClass` is a *named* :class:`~repro.hardware.node.NodeSpec`
registered in :data:`NODE_CLASSES`; scenario descriptions, the fuzzer
and the CLI refer to classes by name ("atom", "xeon") and resolve them
here, so a roster serialises as a tuple of short strings.

Both presets share the same four studied DVFS frequencies (1.2, 1.6,
2.0, 2.4 GHz) so any :class:`~repro.model.config.JobConfig` validates
on any node — what differs is the voltage curve, core count,
micro-architecture (out-of-order Xeon cores hide far more memory
latency), cache and memory capacity, disk, and above all the power
envelope: the Xeon draws roughly twice the Atom's wall power at idle
and ~4x per busy core, reproducing the energy-vs-runtime trade the
two cited papers measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.cache import SharedCacheModel
from repro.hardware.cpu import CoreModel
from repro.hardware.disk import DiskModel
from repro.hardware.frequency import DvfsTable, OperatingPoint
from repro.hardware.memorybw import MemoryBandwidthModel
from repro.hardware.node import ATOM_C2758, NodeSpec
from repro.hardware.power import PowerModel
from repro.utils.units import GB, GHZ, MB

#: Xeon V/f curve over the same studied frequencies.  Server cores run
#: a higher, flatter voltage curve than the low-power Silvermont ladder;
#: the absolute values only matter through ``dynamic_scale`` ratios.
XEON_DVFS_LEVELS: tuple[OperatingPoint, ...] = (
    OperatingPoint(frequency=1.2 * GHZ, voltage=0.95),
    OperatingPoint(frequency=1.6 * GHZ, voltage=1.00),
    OperatingPoint(frequency=2.0 * GHZ, voltage=1.08),
    OperatingPoint(frequency=2.4 * GHZ, voltage=1.20),
)

_XEON_DVFS = DvfsTable(XEON_DVFS_LEVELS)

#: A dual-socket-era Xeon E5 node per arXiv:1408.2284's "big core"
#: column: 16 out-of-order cores, 32 GB DDR3, a 20 MB shared LLC, a
#: faster disk — and a power envelope that idles at roughly twice the
#: Atom's whole-system draw with ~4x the per-core busy power.
XEON_E5 = NodeSpec(
    name="xeon-e5",
    n_cores=16,
    memory_bytes=32 * GB,
    reserved_memory_bytes=2.5 * GB,
    nic_bw=119 * MB,
    core=CoreModel(mem_latency_s=75e-9, mlp_overlap=0.70),
    cache=SharedCacheModel(capacity_bytes=20 * MB, max_inflation=3.0),
    membw=MemoryBandwidthModel(achievable_bw=40.0 * GB),
    disk=DiskModel(peak_bw=250.0 * MB, half_extent=12.0 * MB, seek_penalty=0.05),
    power=PowerModel(
        idle_power=65.0,
        core_max_power=8.5,
        stall_power_fraction=0.55,
        mem_max_power=6.0,
        disk_max_power=4.0,
        dvfs=_XEON_DVFS,
    ),
    dvfs=_XEON_DVFS,
)


@dataclass(frozen=True)
class NodeClass:
    """A named node specification, resolvable from scenario data."""

    name: str
    spec: NodeSpec

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node class name must be non-empty")


#: The paper's testbed node, as a named class.
ATOM = NodeClass(name="atom", spec=ATOM_C2758)
#: The arXiv:1408.2284 "big core" comparison node.
XEON = NodeClass(name="xeon", spec=XEON_E5)

#: Registry: class name -> :class:`NodeClass`.  Scenario rosters,
#: the fuzzer and the CLI resolve names through this mapping.
NODE_CLASSES: dict[str, NodeClass] = {c.name: c for c in (ATOM, XEON)}


def get_node_class(name: str) -> NodeClass:
    """Look up a node class by name, with the valid names in the error."""
    try:
        return NODE_CLASSES[name]
    except KeyError:
        valid = ", ".join(sorted(NODE_CLASSES))
        raise KeyError(f"unknown node class {name!r} (valid: {valid})") from None


def class_name_of(spec: NodeSpec) -> str:
    """The registered class name of ``spec`` (falls back to its own name)."""
    for cls in NODE_CLASSES.values():
        if cls.spec is spec or cls.spec == spec:
            return cls.name
    return spec.name


def roster_from_classes(names) -> tuple[NodeSpec, ...]:
    """Resolve a sequence of class names into a node-spec roster."""
    return tuple(get_node_class(n).spec for n in names)
