"""DRAM bandwidth sharing model.

The node has one DDR3-1600 channel (12.8 GB/s peak; ~10 GB/s achievable
with realistic access streams).  Bandwidth is a *fluid* resource: when
the co-scheduled tasks' aggregate demand exceeds the achievable
bandwidth, every consumer is throttled by the same factor (memory
controllers arbitrate roughly fairly between cores at equal priority).

This is the mechanism that makes memory-bound (M) applications poor
co-location partners in the reproduction: two M apps oversubscribe the
channel and both slow down, matching Fig. 5's ranking where M-X pairs
come last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.units import GB
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MemoryBandwidthModel:
    """Fluid-shared memory channel."""

    achievable_bw: float = 10.0 * GB  # bytes/s

    def __post_init__(self) -> None:
        check_positive("achievable_bw", self.achievable_bw)

    def throttle_factor(self, demands: Sequence[float] | np.ndarray) -> np.ndarray:
        """Per-consumer rate multiplier given bandwidth demands (bytes/s).

        Returns 1.0 for every consumer when total demand fits, else
        ``capacity / total_demand`` for all (proportional fair share).
        Broadcasts: ``demands`` may be an array whose last axis indexes
        consumers, enabling vectorised sweep evaluation.
        """
        d = np.asarray(demands, dtype=float)
        if np.any(d < 0):
            raise ValueError("demands must be non-negative")
        total = d.sum(axis=-1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            factor = np.where(total > self.achievable_bw, self.achievable_bw / np.where(total > 0, total, 1.0), 1.0)
        return np.broadcast_to(factor, d.shape).copy()

    def utilization(self, demands: Sequence[float] | np.ndarray) -> float | np.ndarray:
        """Channel utilisation in [0, 1] given raw demands."""
        d = np.asarray(demands, dtype=float)
        total = d.sum(axis=-1)
        return np.minimum(total / self.achievable_bw, 1.0)
